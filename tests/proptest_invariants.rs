//! Property-based tests on the core data structures and invariants,
//! driven by the in-tree seeded RNG (`rbp::util::Rng`) so every case is
//! a deterministic function of its loop index.

use rbp::core::rbp_dag::{generators, io, traversal, NodeId, NodeSet};
use rbp::core::{solve_spp, MppInstance, SolveLimits, SppInstance};
use rbp::schedulers::{spp_belady, Greedy, MppScheduler};
use rbp::util::Rng;
use std::collections::BTreeSet;

/// NodeSet behaves like a reference BTreeSet under a random op sequence.
#[test]
fn nodeset_matches_btreeset() {
    let mut rng = Rng::new(0x1a_0001);
    for case in 0..100 {
        let mut set = NodeSet::new(96);
        let mut model = BTreeSet::new();
        let ops = rng.index(200);
        for _ in 0..ops {
            let (op, x) = (rng.index(3), rng.index(96));
            let v = NodeId::new(x);
            match op {
                0 => assert_eq!(set.insert(v), model.insert(x), "case {case}"),
                1 => assert_eq!(set.remove(v), model.remove(&x), "case {case}"),
                _ => assert_eq!(set.contains(v), model.contains(&x), "case {case}"),
            }
            assert_eq!(set.len(), model.len(), "case {case}");
        }
        let got: Vec<usize> = set.iter().map(|v| v.index()).collect();
        let want: Vec<usize> = model.into_iter().collect();
        assert_eq!(got, want, "case {case}");
    }
}

/// Set algebra laws against the reference model.
#[test]
fn nodeset_algebra_laws() {
    let mut rng = Rng::new(0x1a_0002);
    for case in 0..200 {
        let draw = |rng: &mut Rng| {
            let len = rng.index(40);
            (0..len).map(|_| rng.index(80)).collect::<BTreeSet<usize>>()
        };
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        let sa = NodeSet::from_iter(80, a.iter().map(|&x| NodeId::new(x)));
        let sb = NodeSet::from_iter(80, b.iter().map(|&x| NodeId::new(x)));
        let union: BTreeSet<usize> = a.union(&b).copied().collect();
        let inter: BTreeSet<usize> = a.intersection(&b).copied().collect();
        let diff: BTreeSet<usize> = a.difference(&b).copied().collect();
        assert_eq!(
            sa.union(&sb).iter().map(|v| v.index()).collect::<Vec<_>>(),
            union.iter().copied().collect::<Vec<_>>(),
            "case {case}"
        );
        assert_eq!(sa.intersection(&sb).len(), inter.len(), "case {case}");
        assert_eq!(sa.intersection_len(&sb), inter.len(), "case {case}");
        assert_eq!(sa.difference(&sb).len(), diff.len(), "case {case}");
        assert_eq!(sa.is_subset(&sb), a.is_subset(&b), "case {case}");
        assert_eq!(sa.is_disjoint(&sb), a.is_disjoint(&b), "case {case}");
    }
}

/// Random DAGs: topological order respects every edge, and the text
/// format round-trips.
#[test]
fn random_dag_topo_and_io_round_trip() {
    let mut rng = Rng::new(0x1a_0003);
    for case in 0..200 {
        let n = 1 + rng.index(29);
        let p = rng.f64();
        let dag = generators::random_dag(n, p, case);
        let topo = dag.topo();
        for (u, v) in dag.edges() {
            assert!(topo.rank(u) < topo.rank(v), "case {case}");
        }
        let text = io::to_text(&dag);
        let back = io::parse(&text).unwrap();
        assert_eq!(dag.n(), back.n(), "case {case}");
        assert_eq!(
            dag.edges().collect::<Vec<_>>(),
            back.edges().collect::<Vec<_>>(),
            "case {case}"
        );
    }
}

/// Ancestor closure is downward-closed and monotone.
#[test]
fn closure_properties() {
    let mut rng = Rng::new(0x1a_0004);
    for case in 0..200 {
        let n = 1 + rng.index(24);
        let p = rng.f64() * 0.5;
        let dag = generators::random_dag(n, p, case);
        let v = NodeId::new(rng.index(n));
        let anc = traversal::ancestors(&dag, v);
        assert!(traversal::is_downward_closed(&dag, &anc), "case {case}");
        assert!(anc.contains(v), "case {case}");
    }
}

/// The greedy scheduler emits valid strategies on random layered DAGs
/// for arbitrary parameters in range.
#[test]
fn greedy_always_valid() {
    let mut rng = Rng::new(0x1a_0005);
    for case in 0..150 {
        let levels = 1 + rng.index(4);
        let width = 1 + rng.index(4);
        let in_deg = 1 + rng.index(3);
        let k = 1 + rng.index(3);
        let g = rng.range_u64(1, 6);
        let dag = generators::layered_random(levels, width, in_deg, case);
        let r = dag.max_in_degree() + 2;
        let inst = MppInstance::new(&dag, k, r, g);
        let run = Greedy::default().schedule(&inst).unwrap();
        let cost = run.strategy.validate(&inst).unwrap();
        assert_eq!(cost, run.cost, "case {case}");
        // Lemma 1 bracket.
        let total = cost.total(inst.model);
        assert!(total >= rbp::bounds::trivial::lower(&inst), "case {case}");
        assert!(total <= rbp::bounds::trivial::upper(&inst), "case {case}");
    }
}

/// Belady SPP reference: valid, and never better than the exact optimum
/// on tiny instances.
#[test]
fn belady_valid_and_dominated_by_exact() {
    let mut rng = Rng::new(0x1a_0006);
    for case in 0..150 {
        let n = 2 + rng.index(7);
        let p = rng.f64() * 0.6;
        let dag = generators::random_dag(n, p, case);
        let r = dag.max_in_degree() + 1;
        let inst = SppInstance::with_compute(&dag, r, 2);
        let (strategy, cost) = spp_belady(&inst);
        let check = strategy.validate(&inst).unwrap();
        assert_eq!(check, cost, "case {case}");
        if let Some(opt) = solve_spp(&inst, SolveLimits::states(300_000)) {
            assert!(opt.total <= cost.total(inst.model), "case {case}");
        }
    }
}

/// Exact SPP optimum is monotone non-increasing in memory.
#[test]
fn spp_optimum_monotone_in_memory() {
    for case in 0..50 {
        let dag = generators::random_dag(7, 0.3, case);
        let dmin = dag.max_in_degree() + 1;
        let mut prev = u64::MAX;
        for r in dmin..dmin + 3 {
            let inst = SppInstance::with_compute(&dag, r, 3);
            if let Some(sol) = solve_spp(&inst, SolveLimits::states(300_000)) {
                assert!(sol.total <= prev, "case {case} r={r}");
                prev = sol.total;
            }
        }
    }
}
