//! Property-based tests on the core data structures and invariants.

use proptest::prelude::*;
use rbp::core::rbp_dag::{generators, io, traversal, NodeId, NodeSet};
use rbp::core::{solve_spp, MppInstance, SolveLimits, SppInstance};
use rbp::schedulers::{spp_belady, Greedy, MppScheduler};
use std::collections::BTreeSet;

proptest! {
    /// NodeSet behaves like a reference BTreeSet under a random op
    /// sequence.
    #[test]
    fn nodeset_matches_btreeset(ops in prop::collection::vec((0usize..3, 0usize..96), 0..200)) {
        let mut set = NodeSet::new(96);
        let mut model = BTreeSet::new();
        for (op, x) in ops {
            let v = NodeId::new(x);
            match op {
                0 => prop_assert_eq!(set.insert(v), model.insert(x)),
                1 => prop_assert_eq!(set.remove(v), model.remove(&x)),
                _ => prop_assert_eq!(set.contains(v), model.contains(&x)),
            }
            prop_assert_eq!(set.len(), model.len());
        }
        let got: Vec<usize> = set.iter().map(|v| v.index()).collect();
        let want: Vec<usize> = model.into_iter().collect();
        prop_assert_eq!(got, want);
    }

    /// Set algebra laws against the reference model.
    #[test]
    fn nodeset_algebra_laws(
        a in prop::collection::btree_set(0usize..80, 0..40),
        b in prop::collection::btree_set(0usize..80, 0..40),
    ) {
        let sa = NodeSet::from_iter(80, a.iter().map(|&x| NodeId::new(x)));
        let sb = NodeSet::from_iter(80, b.iter().map(|&x| NodeId::new(x)));
        let union: BTreeSet<usize> = a.union(&b).copied().collect();
        let inter: BTreeSet<usize> = a.intersection(&b).copied().collect();
        let diff: BTreeSet<usize> = a.difference(&b).copied().collect();
        prop_assert_eq!(sa.union(&sb).iter().map(|v| v.index()).collect::<Vec<_>>(),
            union.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(sa.intersection(&sb).len(), inter.len());
        prop_assert_eq!(sa.intersection_len(&sb), inter.len());
        prop_assert_eq!(sa.difference(&sb).len(), diff.len());
        prop_assert_eq!(sa.is_subset(&sb), a.is_subset(&b));
        prop_assert_eq!(sa.is_disjoint(&sb), a.is_disjoint(&b));
    }

    /// Random DAGs: topological order respects every edge, and the text
    /// format round-trips.
    #[test]
    fn random_dag_topo_and_io_round_trip(n in 1usize..30, p in 0.0f64..1.0, seed in 0u64..1000) {
        let dag = generators::random_dag(n, p, seed);
        let topo = dag.topo();
        for (u, v) in dag.edges() {
            prop_assert!(topo.rank(u) < topo.rank(v));
        }
        let text = io::to_text(&dag);
        let back = io::parse(&text).unwrap();
        prop_assert_eq!(dag.n(), back.n());
        prop_assert_eq!(dag.edges().collect::<Vec<_>>(), back.edges().collect::<Vec<_>>());
    }

    /// Ancestor closure is downward-closed and monotone.
    #[test]
    fn closure_properties(n in 1usize..25, p in 0.0f64..0.5, seed in 0u64..500) {
        let dag = generators::random_dag(n, p, seed);
        let v = NodeId::new(seed as usize % n);
        let anc = traversal::ancestors(&dag, v);
        prop_assert!(traversal::is_downward_closed(&dag, &anc));
        prop_assert!(anc.contains(v));
    }

    /// The greedy scheduler emits valid strategies on random layered
    /// DAGs for arbitrary parameters in range.
    #[test]
    fn greedy_always_valid(
        levels in 1usize..5,
        width in 1usize..5,
        in_deg in 1usize..4,
        seed in 0u64..300,
        k in 1usize..4,
        g in 1u64..6,
    ) {
        let dag = generators::layered_random(levels, width, in_deg, seed);
        let r = dag.max_in_degree() + 2;
        let inst = MppInstance::new(&dag, k, r, g);
        let run = Greedy::default().schedule(&inst).unwrap();
        let cost = run.strategy.validate(&inst).unwrap();
        prop_assert_eq!(cost, run.cost);
        // Lemma 1 bracket.
        let total = cost.total(inst.model);
        prop_assert!(total >= rbp::bounds::trivial::lower(&inst));
        prop_assert!(total <= rbp::bounds::trivial::upper(&inst));
    }

    /// Belady SPP reference: valid, and never better than the exact
    /// optimum on tiny instances.
    #[test]
    fn belady_valid_and_dominated_by_exact(n in 2usize..9, p in 0.0f64..0.6, seed in 0u64..200) {
        let dag = generators::random_dag(n, p, seed);
        let r = dag.max_in_degree() + 1;
        let inst = SppInstance::with_compute(&dag, r, 2);
        let (strategy, cost) = spp_belady(&inst);
        let check = strategy.validate(&inst).unwrap();
        prop_assert_eq!(check, cost);
        if let Some(opt) = solve_spp(&inst, SolveLimits { max_states: 300_000 }) {
            prop_assert!(opt.total <= cost.total(inst.model));
        }
    }

    /// Exact SPP optimum is monotone non-increasing in memory.
    #[test]
    fn spp_optimum_monotone_in_memory(seed in 0u64..50) {
        let dag = generators::random_dag(7, 0.3, seed);
        let dmin = dag.max_in_degree() + 1;
        let mut prev = u64::MAX;
        for r in dmin..dmin + 3 {
            let inst = SppInstance::with_compute(&dag, r, 3);
            if let Some(sol) = solve_spp(&inst, SolveLimits { max_states: 300_000 }) {
                prop_assert!(sol.total <= prev);
                prev = sol.total;
            }
        }
    }
}
