//! Fuzzing the MPP rules engine: random move sequences never panic, are
//! either cleanly rejected or produce consistent state, and the
//! simulator agrees with the batch validator move for move.
//!
//! Uses the in-tree seeded RNG (`rbp::util::Rng`) instead of an external
//! property-testing framework: each case is a deterministic function of
//! the loop index, so failures reproduce exactly.

use rbp::core::rbp_dag::{generators, NodeId};
use rbp::core::{
    async_makespan, validate_mpp, MppInstance, MppMove, MppSimulator, MppStrategy, Pebble,
};
use rbp::util::Rng;

fn arb_move(rng: &mut Rng, k: usize, n: usize) -> MppMove {
    let arb_batch = |rng: &mut Rng| {
        let len = 1 + rng.index(k.min(3));
        (0..len)
            .map(|_| (rng.index(k), NodeId::new(rng.index(n))))
            .collect::<Vec<_>>()
    };
    match rng.index(5) {
        0 => MppMove::Compute(arb_batch(rng)),
        1 => MppMove::Load(arb_batch(rng)),
        2 => MppMove::Store(arb_batch(rng)),
        3 => MppMove::Remove(Pebble::Red(rng.index(k), NodeId::new(rng.index(n)))),
        _ => MppMove::Remove(Pebble::Blue(NodeId::new(rng.index(n)))),
    }
}

/// Random move soup: the simulator applies each move or rejects it
/// without corrupting state; the accepted prefix re-validates to the
/// same cost (modulo terminality, which we repair by ignoring it).
#[test]
fn simulator_accepts_exactly_what_validator_accepts() {
    let mut rng = Rng::new(0x5eed_0001);
    for case in 0..300 {
        let dag = generators::random_dag(8, 0.3, case);
        let inst = MppInstance::new(&dag, 3, 3, 2);
        let mut sim = MppSimulator::new(inst);
        let mut accepted = Vec::new();
        let n_moves = rng.index(60);
        for _ in 0..n_moves {
            let mv = arb_move(&mut rng, 3, 8);
            if sim.apply(mv.clone()).is_ok() {
                accepted.push(mv);
            }
        }
        // The accepted prefix must replay cleanly (ignore terminality by
        // checking the error kind).
        let strategy = MppStrategy::from_moves(accepted);
        match validate_mpp(&inst, &strategy.moves) {
            Ok(cost) => assert_eq!(cost, sim.cost(), "case {case}"),
            Err(e) => {
                assert!(
                    matches!(e.kind, rbp::core::MppErrorKind::NotTerminal(_)),
                    "case {case}: replay diverged: {e}"
                );
            }
        }
        // Capacity invariant always holds on the live configuration.
        assert!(sim.config().is_valid(inst.r), "case {case}");
        // Async makespan never exceeds the synchronous cost.
        let asy = async_makespan(&inst, &strategy);
        assert!(asy.makespan <= sim.cost().total(inst.model), "case {case}");
    }
}

/// Rejected moves leave the configuration bit-for-bit unchanged.
#[test]
fn rejected_moves_do_not_mutate() {
    let mut rng = Rng::new(0x5eed_0002);
    for case in 0..200 {
        let dag = generators::random_dag(6, 0.4, case);
        let inst = MppInstance::new(&dag, 2, 2, 1);
        let mut sim = MppSimulator::new(inst);
        let n_moves = 1 + rng.index(39);
        for _ in 0..n_moves {
            let mv = arb_move(&mut rng, 2, 6);
            let before = sim.config().clone();
            let steps = sim.steps();
            if sim.apply(mv).is_err() {
                assert_eq!(sim.config(), &before, "case {case}");
                assert_eq!(sim.steps(), steps, "case {case}");
            }
        }
    }
}

/// The exact solver's witness always replays to its claimed cost on
/// random tiny instances (when the solve fits the budget).
#[test]
fn exact_witness_replays() {
    use rbp::core::{solve_mpp, SolveLimits};
    let mut rng = Rng::new(0x5eed_0003);
    for case in 0..60 {
        let k = 1 + rng.index(2);
        let g = rng.range_u64(1, 4);
        let dag = generators::random_dag(6, 0.3, case);
        let r = dag.max_in_degree() + 1;
        let inst = MppInstance::new(&dag, k, r, g);
        if let Some(sol) = solve_mpp(&inst, SolveLimits::states(200_000)) {
            let cost = sol.strategy.validate(&inst).unwrap();
            assert_eq!(cost.total(inst.model), sol.total, "case {case}");
            // Lemma 1 bracket on the optimum itself.
            assert!(
                sol.total >= rbp::bounds::trivial::lower(&inst),
                "case {case}"
            );
            assert!(
                sol.total <= rbp::bounds::trivial::upper(&inst),
                "case {case}"
            );
        }
    }
}
