//! Fuzzing the MPP rules engine: random move sequences never panic, are
//! either cleanly rejected or produce consistent state, and the
//! simulator agrees with the batch validator move for move.

use proptest::prelude::*;
use rbp::core::rbp_dag::{generators, NodeId};
use rbp::core::{
    async_makespan, validate_mpp, MppInstance, MppMove, MppSimulator, MppStrategy, Pebble,
};

fn arb_move(k: usize, n: usize) -> impl Strategy<Value = MppMove> {
    let pair = (0..k, 0..n).prop_map(|(p, v)| (p, NodeId::new(v)));
    let batch = prop::collection::vec(pair, 1..=k.min(3));
    prop_oneof![
        batch.clone().prop_map(MppMove::Compute),
        batch.clone().prop_map(MppMove::Load),
        batch.prop_map(MppMove::Store),
        (0..k, 0..n).prop_map(|(p, v)| MppMove::Remove(Pebble::Red(p, NodeId::new(v)))),
        (0..n).prop_map(|v| MppMove::Remove(Pebble::Blue(NodeId::new(v)))),
    ]
}

proptest! {
    /// Random move soup: the simulator applies each move or rejects it
    /// without corrupting state; the accepted prefix re-validates to the
    /// same cost (modulo terminality, which we repair by ignoring it).
    #[test]
    fn simulator_accepts_exactly_what_validator_accepts(
        seed in 0u64..500,
        moves in prop::collection::vec(arb_move(3, 8), 0..60),
    ) {
        let dag = generators::random_dag(8, 0.3, seed);
        let inst = MppInstance::new(&dag, 3, 3, 2);
        let mut sim = MppSimulator::new(inst);
        let mut accepted = Vec::new();
        for mv in moves {
            if sim.apply(mv.clone()).is_ok() {
                accepted.push(mv);
            }
        }
        // The accepted prefix must replay cleanly (ignore terminality by
        // checking the error kind).
        let strategy = MppStrategy::from_moves(accepted);
        match validate_mpp(&inst, &strategy.moves) {
            Ok(cost) => prop_assert_eq!(cost, sim.cost()),
            Err(e) => {
                prop_assert!(
                    matches!(e.kind, rbp::core::MppErrorKind::NotTerminal(_)),
                    "replay diverged: {e}"
                );
            }
        }
        // Capacity invariant always holds on the live configuration.
        prop_assert!(sim.config().is_valid(inst.r));
        // Async makespan never exceeds the synchronous cost.
        let asy = async_makespan(&inst, &strategy);
        prop_assert!(asy.makespan <= sim.cost().total(inst.model));
    }

    /// Rejected moves leave the configuration bit-for-bit unchanged.
    #[test]
    fn rejected_moves_do_not_mutate(
        seed in 0u64..200,
        moves in prop::collection::vec(arb_move(2, 6), 1..40),
    ) {
        let dag = generators::random_dag(6, 0.4, seed);
        let inst = MppInstance::new(&dag, 2, 2, 1);
        let mut sim = MppSimulator::new(inst);
        for mv in moves {
            let before = sim.config().clone();
            let steps = sim.steps();
            if sim.apply(mv).is_err() {
                prop_assert_eq!(sim.config(), &before);
                prop_assert_eq!(sim.steps(), steps);
            }
        }
    }

    /// The exact solver's witness always replays to its claimed cost on
    /// random tiny instances (when the solve fits the budget).
    #[test]
    fn exact_witness_replays(seed in 0u64..60, k in 1usize..3, g in 1u64..4) {
        use rbp::core::{solve_mpp, SolveLimits};
        let dag = generators::random_dag(6, 0.3, seed);
        let r = dag.max_in_degree() + 1;
        let inst = MppInstance::new(&dag, k, r, g);
        if let Some(sol) = solve_mpp(&inst, SolveLimits { max_states: 200_000 }) {
            let cost = sol.strategy.validate(&inst).unwrap();
            prop_assert_eq!(cost.total(inst.model), sol.total);
            // Lemma 1 bracket on the optimum itself.
            prop_assert!(sol.total >= rbp::bounds::trivial::lower(&inst));
            prop_assert!(sol.total <= rbp::bounds::trivial::upper(&inst));
        }
    }
}
