//! Equivalence harness for the sharded parallel exact solver.
//!
//! The parallel engine (HDA\*-style shard ownership over SPSC
//! channels) must be invisible in the results: on every instance,
//! every thread count, and every [`PartitionMode`] it proves the same
//! optimal `total` as the sequential engine, its witness validates,
//! and its stop reasons stay meaningful. This harness checks that on
//! randomized small instances across MPP (k ≤ 3) and the SPP variant
//! zoo, at 2, 4, and 8 worker threads (rotating the partition mode
//! through the random cases and sweeping all modes exhaustively on
//! fixed instances), plus determinism of the proven cost across
//! repeated parallel runs.
//!
//! Every case is a deterministic function of its loop index (seeded
//! in-tree RNG), so a failure message identifies the exact instance.

use std::time::Duration;

use rbp::core::rbp_dag::generators;
use rbp::core::{
    solve_mpp_with, solve_spp_with, CostModel, MppInstance, PartitionMode, SearchConfig,
    SolveLimits, SppInstance, SppVariant, StopReason,
};
use rbp::util::Rng;

const THREAD_COUNTS: [usize; 3] = [2, 4, 8];

/// Deterministically rotates ownership strategies through the random
/// cases, so every (mode, thread-count) pair gets steady coverage
/// without tripling the harness's runtime.
fn rotate_mode(case: u64, threads: usize) -> PartitionMode {
    PartitionMode::ALL[(case as usize + threads) % PartitionMode::ALL.len()]
}

fn sequential_cfg() -> SearchConfig {
    SearchConfig::default().with_limits(SolveLimits::states(400_000))
}

/// 60 random MPP instances × thread counts {2, 4, 8}: the parallel
/// engine proves the sequential optimum, its witness validates, and it
/// reports one shard row per worker.
#[test]
fn mpp_parallel_matches_sequential_on_random_dags() {
    let seq_cfg = sequential_cfg();
    let mut rng = Rng::new(0x9a11e1);
    for case in 0..60u64 {
        let n = 4 + rng.index(4); // 4..=7 nodes
        let p = 0.15 + rng.f64() * 0.45;
        let dag = generators::random_dag(n, p, case);
        let k = 1 + rng.index(3); // 1..=3 processors
        let r = dag.max_in_degree() + 1 + rng.index(2);
        let g = rng.range_u64(1, 5);
        let inst = MppInstance::new(&dag, k, r, g);

        let seq = solve_mpp_with(&inst, &seq_cfg);
        let ctx = format!("case {case}: n={n} k={k} r={r} g={g}");
        let s = seq
            .solution
            .unwrap_or_else(|| panic!("{ctx}: sequential budget"));
        for threads in THREAD_COUNTS {
            let mode = rotate_mode(case, threads);
            let par = solve_mpp_with(&inst, &seq_cfg.with_threads(threads).with_partition(mode));
            let p = par
                .solution
                .unwrap_or_else(|| panic!("{ctx}: t={threads} {mode} budget"));
            assert_eq!(
                s.total, p.total,
                "{ctx}: t={threads} {mode} optimum differs"
            );
            assert_eq!(par.reason, StopReason::Solved, "{ctx}: t={threads} reason");
            let cost = p
                .strategy
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{ctx}: t={threads} witness invalid: {e}"));
            assert_eq!(cost.total(inst.model), p.total, "{ctx}: witness cost");
            assert_eq!(
                par.stats.threads, threads as u64,
                "{ctx}: reported thread count"
            );
            assert_eq!(par.shards.len(), threads, "{ctx}: shard row count");
            let shard_settled: u64 = par.shards.iter().map(|s| s.settled).sum();
            assert_eq!(
                shard_settled, par.stats.settled,
                "{ctx}: shard settled sums to the aggregate"
            );
        }
    }
}

/// 40 random SPP instances across the §3.1 variant zoo × thread counts
/// {2, 4, 8}: parallel and sequential agree on both the optimum and on
/// unsolvability (one-shot instances can be genuinely unsolvable).
#[test]
fn spp_parallel_matches_sequential_across_variants() {
    let seq_cfg = sequential_cfg();
    let mut rng = Rng::new(0x5e9_1a1 ^ 0xffff);
    let mut solved = 0u32;
    for case in 0..40u64 {
        let n = 4 + rng.index(4);
        let p = 0.15 + rng.f64() * 0.45;
        let dag = generators::random_dag(n, p, case);
        let r = dag.max_in_degree() + 1 + rng.index(2);
        let g = rng.range_u64(1, 5);
        let (model, variant) = match case % 5 {
            0 => (CostModel::spp_io_only(g), SppVariant::base()),
            1 => (CostModel::mpp(g), SppVariant::base()),
            2 => (CostModel::spp_with_compute(g, 2), SppVariant::base()),
            3 => (CostModel::spp_io_only(g), SppVariant::hong_kung()),
            _ => (CostModel::mpp(g), SppVariant::one_shot()),
        };
        let inst = SppInstance {
            dag: &dag,
            r,
            model,
            variant,
        };

        let seq = solve_spp_with(&inst, &seq_cfg);
        let ctx = format!("case {case}: n={n} r={r} g={g} variant={variant:?}");
        for threads in THREAD_COUNTS {
            let mode = rotate_mode(case, threads);
            let par = solve_spp_with(&inst, &seq_cfg.with_threads(threads).with_partition(mode));
            match (&seq.solution, par.solution) {
                (None, None) => {
                    assert!(variant.one_shot, "{ctx}: only one-shot can be unsolvable");
                }
                (Some(s), Some(p)) => {
                    assert_eq!(s.total, p.total, "{ctx}: t={threads} optimum differs");
                    let cost = p
                        .strategy
                        .validate(&inst)
                        .unwrap_or_else(|e| panic!("{ctx}: t={threads} witness invalid: {e}"));
                    assert_eq!(cost.total(inst.model), p.total, "{ctx}: witness cost");
                    solved += 1;
                }
                (s, p) => panic!(
                    "{ctx}: t={threads} disagrees on solvability (seq={}, par={})",
                    s.is_some(),
                    p.is_some()
                ),
            }
        }
    }
    // The unsolvable one-shot cases are a small minority.
    assert!(
        solved >= 90,
        "only {solved} (instance, threads) runs solved"
    );
}

/// Exhaustive modes × thread-counts sweep on fixed instances: every
/// partition strategy proves the identical optimum with a validating
/// witness, reports sane traffic stats (fractions in range, shard rows
/// summing to the aggregate), and the speculative expander never
/// invents settled work the counters don't account for.
#[test]
fn all_partition_modes_prove_identical_optima() {
    let cfg = sequential_cfg();
    for (dag, k, r, g) in [
        (generators::grid(3, 3), 2, 3, 2),
        (generators::binary_in_tree(4), 2, 3, 1),
        (generators::independent_chains(2, 4), 3, 2, 2),
    ] {
        let inst = MppInstance::new(&dag, k, r, g);
        let seq = solve_mpp_with(&inst, &cfg)
            .solution
            .expect("sequential budget");
        let ctx = format!("n={} k={k} r={r} g={g}", dag.n());
        for mode in PartitionMode::ALL {
            for threads in THREAD_COUNTS {
                let par = solve_mpp_with(&inst, &cfg.with_threads(threads).with_partition(mode));
                let sol = par
                    .solution
                    .unwrap_or_else(|| panic!("{ctx}: {mode} t={threads} budget"));
                assert_eq!(
                    seq.total, sol.total,
                    "{ctx}: {mode} t={threads} optimum differs"
                );
                let cost = sol
                    .strategy
                    .validate(&inst)
                    .unwrap_or_else(|e| panic!("{ctx}: {mode} t={threads} invalid: {e}"));
                assert_eq!(cost.total(inst.model), sol.total, "{ctx}: witness cost");
                let lf = par.stats.locality_fraction();
                assert!(
                    (0.0..=1.0).contains(&lf),
                    "{ctx}: {mode} t={threads} locality_fraction {lf} out of range"
                );
                for (i, shard) in par.shards.iter().enumerate() {
                    let dr = shard.duplicate_rate();
                    assert!(
                        (0.0..=1.0).contains(&dr),
                        "{ctx}: {mode} t={threads} shard{i} duplicate_rate {dr}"
                    );
                }
                let foreign: u64 = par.shards.iter().map(|s| s.foreign_expansions).sum();
                assert_eq!(
                    foreign, par.stats.foreign_expansions,
                    "{ctx}: {mode} t={threads} foreign_expansions aggregate"
                );
            }
        }
    }
}

/// The proven cost is deterministic run to run: tie-breaking inside the
/// parallel engine may pick different witnesses, but the optimum (and
/// its witness's validated cost) never wavers.
#[test]
fn parallel_cost_is_deterministic_across_runs() {
    let cfg = sequential_cfg().with_threads(4);
    let dag = generators::grid(3, 3);
    let inst = MppInstance::new(&dag, 2, 3, 2);
    let mut totals = Vec::new();
    for run in 0..5 {
        let out = solve_mpp_with(&inst, &cfg);
        let sol = out
            .solution
            .unwrap_or_else(|| panic!("run {run}: budget exhausted"));
        let cost = sol
            .strategy
            .validate(&inst)
            .unwrap_or_else(|e| panic!("run {run}: witness invalid: {e}"));
        assert_eq!(cost.total(inst.model), sol.total, "run {run}: witness cost");
        totals.push(sol.total);
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "parallel optimum wavered across runs: {totals:?}"
    );
}

/// Stop reasons stay distinct and honest under the parallel engine: a
/// tiny state budget reports `StateLimit`, an expired deadline reports
/// `Deadline`, and both leave the solution empty.
#[test]
fn parallel_stop_reasons_distinguish_limit_from_deadline() {
    let dag = generators::grid(3, 3);
    let inst = MppInstance::new(&dag, 2, 3, 2);

    let limited = SearchConfig::default()
        .with_limits(SolveLimits::states(8))
        .with_threads(4);
    let out = solve_mpp_with(&inst, &limited);
    assert!(out.solution.is_none(), "8 settled states cannot solve 3x3");
    assert_eq!(out.reason, StopReason::StateLimit);

    let expired = SearchConfig::default()
        .with_limits(SolveLimits::states(400_000).with_deadline(Duration::from_nanos(0)))
        .with_threads(4);
    let out = solve_mpp_with(&inst, &expired);
    assert!(out.solution.is_none(), "expired deadline cannot solve");
    assert_eq!(out.reason, StopReason::Deadline);
}
