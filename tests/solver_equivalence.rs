//! Equivalence harness for the optimized exact solvers.
//!
//! The PR's search optimizations — processor-symmetry canonicalization
//! and the admissible A\* heuristic — must be invisible in the results:
//! on every instance the optimized solver returns the same optimal
//! `total` as the plain-Dijkstra baseline, and its witness strategy
//! still validates. This harness checks that on hundreds of randomized
//! small instances across MPP (k ≤ 3) and the SPP variant zoo.
//!
//! Every case is a deterministic function of its loop index (seeded
//! in-tree RNG), so a failure message identifies the exact instance.

use rbp::core::rbp_dag::generators;
use rbp::core::{
    solve_mpp_with, solve_spp_with, CostModel, MppInstance, SearchConfig, SolveLimits, SppInstance,
    SppVariant,
};
use rbp::util::Rng;

fn configs() -> (SearchConfig, SearchConfig) {
    let limits = SolveLimits::states(400_000);
    (
        SearchConfig::baseline().with_limits(limits),
        SearchConfig::default().with_limits(limits),
    )
}

/// 240 random MPP instances: optimized total == baseline total, witness
/// validates, and the optimized search never settles more states.
#[test]
fn mpp_optimized_matches_baseline_on_random_dags() {
    let (base_cfg, opt_cfg) = configs();
    let mut rng = Rng::new(0xe9_1a1e);
    let mut solved = 0u32;
    for case in 0..240u64 {
        let n = 4 + rng.index(4); // 4..=7 nodes
        let p = 0.15 + rng.f64() * 0.45;
        let dag = generators::random_dag(n, p, case);
        let k = 1 + rng.index(3); // 1..=3 processors
        let r = dag.max_in_degree() + 1 + rng.index(2);
        let g = rng.range_u64(1, 5);
        let inst = MppInstance::new(&dag, k, r, g);

        let base = solve_mpp_with(&inst, &base_cfg);
        let opt = solve_mpp_with(&inst, &opt_cfg);
        let ctx = format!("case {case}: n={n} k={k} r={r} g={g}");
        // The state budget is generous for these sizes; both sides must
        // solve or the harness loses its teeth.
        let b = base
            .solution
            .unwrap_or_else(|| panic!("{ctx}: baseline budget"));
        let o = opt
            .solution
            .unwrap_or_else(|| panic!("{ctx}: optimized budget"));
        assert_eq!(b.total, o.total, "{ctx}: optima differ");
        let cost = o
            .strategy
            .validate(&inst)
            .unwrap_or_else(|e| panic!("{ctx}: witness invalid: {e}"));
        assert_eq!(cost.total(inst.model), o.total, "{ctx}: witness cost");
        assert!(
            opt.stats.settled <= base.stats.settled,
            "{ctx}: optimized settled more states ({} > {})",
            opt.stats.settled,
            base.stats.settled
        );
        solved += 1;
    }
    assert_eq!(solved, 240);
}

/// 200 random SPP instances across the §3.1 variant zoo: base,
/// I/O-only, computation costs, Hong–Kung boundary, one-shot.
#[test]
fn spp_optimized_matches_baseline_across_variants() {
    let (base_cfg, opt_cfg) = configs();
    let mut rng = Rng::new(0x59fe9 ^ 0xffff);
    let mut solved = 0u32;
    for case in 0..200u64 {
        let n = 4 + rng.index(4);
        let p = 0.15 + rng.f64() * 0.45;
        let dag = generators::random_dag(n, p, case);
        let r = dag.max_in_degree() + 1 + rng.index(2);
        let g = rng.range_u64(1, 5);
        let (model, variant) = match case % 5 {
            0 => (CostModel::spp_io_only(g), SppVariant::base()),
            1 => (CostModel::mpp(g), SppVariant::base()),
            2 => (CostModel::spp_with_compute(g, 2), SppVariant::base()),
            3 => (CostModel::spp_io_only(g), SppVariant::hong_kung()),
            _ => (CostModel::mpp(g), SppVariant::one_shot()),
        };
        let inst = SppInstance {
            dag: &dag,
            r,
            model,
            variant,
        };

        let base = solve_spp_with(&inst, &base_cfg);
        let opt = solve_spp_with(&inst, &opt_cfg);
        let ctx = format!("case {case}: n={n} r={r} g={g} variant={variant:?}");
        // One-shot instances can be genuinely unsolvable; both searches
        // must then agree on that too.
        match (base.solution, opt.solution) {
            (None, None) => {
                assert!(variant.one_shot, "{ctx}: only one-shot can be unsolvable");
            }
            (Some(b), Some(o)) => {
                assert_eq!(b.total, o.total, "{ctx}: optima differ");
                let cost = o
                    .strategy
                    .validate(&inst)
                    .unwrap_or_else(|e| panic!("{ctx}: witness invalid: {e}"));
                assert_eq!(cost.total(inst.model), o.total, "{ctx}: witness cost");
                solved += 1;
            }
            (b, o) => panic!(
                "{ctx}: solvers disagree on solvability (base={}, opt={})",
                b.is_some(),
                o.is_some()
            ),
        }
    }
    // The unsolvable one-shot cases are a small minority.
    assert!(solved >= 150, "only {solved}/200 instances solved");
}
