//! Integration tests that re-verify the paper's lemma statements through
//! the public API (the experiment binaries print these; here they are
//! asserted).

use rbp::core::rbp_dag::generators;
use rbp::core::{solve_mpp, CostModel, MppInstance, SolveLimits};
use rbp::gadgets::{ImbalancedPair, RotatingChain, SparseLadder, TwoZippers, Zipper};

#[test]
fn lemma7_fair_chains_ratio_is_one_over_k() {
    // k independent chains, fair memory split: OPT(k)/OPT(1) = 1/k.
    let k = 2;
    let dag = generators::independent_chains(k, 4);
    let o1 = solve_mpp(&MppInstance::new(&dag, 1, 2 * k, 2), SolveLimits::default())
        .unwrap()
        .total;
    let ok = solve_mpp(&MppInstance::new(&dag, k, 2, 2), SolveLimits::default())
        .unwrap()
        .total;
    assert_eq!(o1, 8);
    assert_eq!(ok, 4);
}

#[test]
fn lemma8_fair_split_ratio_grows_like_the_bound() {
    let (m, c, n0, g) = (4usize, 4usize, 40usize, 5u64);
    let rc = RotatingChain::build(m, c, n0);
    let resident = rc
        .strategy_resident(g)
        .unwrap()
        .cost
        .total(CostModel::mpp(g));
    assert_eq!(resident as usize, rc.dag.n(), "OPT(1) = n exactly");
    let r_half = rc.resident_r() / 2;
    let split = rc
        .strategy_fair_split(g, r_half)
        .unwrap()
        .cost
        .total(CostModel::mpp(g));
    let ratio = split as f64 / resident as f64;
    // Lemma 8 shape: ratio ≈ (k−1)/k·g·(Δin−1)+1 = 0.5·5·4+1 = 11 for
    // k=2 (up to the pinning granularity of the constructive strategy).
    assert!(
        ratio > 5.0,
        "ratio {ratio:.2} too small for the Lemma 8 regime"
    );
}

#[test]
fn lemma9_nonmonotone_in_k() {
    let tz = TwoZippers::build(3, 24);
    let g = 2;
    let model = CostModel::mpp(g);
    let c1 = tz.strategy_k1(g).unwrap().cost.total(model);
    let c2 = tz.strategy_k2(g).unwrap().cost.total(model);
    let c4 = tz.strategy_k4(g).unwrap().cost.total(model);
    assert!(c2 < c1 && c2 < c4);
    // c1 equals the Lemma 1 lower bound for k=1 → OPT(2) < OPT(1) holds
    // for the true optima, not just these strategies.
    assert_eq!(c1 as usize, tz.dag.n());
}

#[test]
fn lemma10_superlinear_speedup() {
    let (d, n0, g) = (16usize, 100usize, 4u64);
    let z = Zipper::build(d, n0, 0);
    let model = CostModel::mpp(g);
    let c1 = z.strategy_1proc_swapping(g).unwrap().cost.total(model);
    let c2 = z.strategy_2proc(g).unwrap().cost.total(model);
    let speedup = c1 as f64 / c2 as f64;
    assert!(
        speedup > 2.0,
        "speedup {speedup:.2} must be superlinear for k=2"
    );
}

#[test]
fn io_appears_with_second_processor() {
    let g = 2;
    let l = SparseLadder::build(60, 2 * g as usize + 2);
    let model = CostModel::mpp(g);
    let r1 = l.strategy_k1(g).unwrap();
    let r2 = l.strategy_k2(g).unwrap();
    assert_eq!(r1.cost.io_steps(), 0);
    assert!(r2.cost.io_steps() > 0);
    assert!(r2.cost.total(model) < r1.cost.total(model));
}

#[test]
fn io_vanishes_with_second_processor() {
    let g: u64 = 3;
    let (d, n1) = (2, 20);
    let p = ImbalancedPair::build(d, n1, n1 * (g as usize + 2), g as usize);
    let model = CostModel::mpp(g);
    let k1_loads = p.strategy_k1_loads(g).unwrap();
    let k2 = p.strategy_k2_recompute(g).unwrap();
    assert!(k1_loads.cost.io_steps() as usize >= n1);
    assert_eq!(k2.cost.io_steps(), 0);
    assert!(k2.cost.total(model) < k1_loads.cost.total(model));
}

#[test]
fn practical_comparison_never_worsens() {
    // §5: same r, more processors — exact optima can only improve.
    let dag = generators::binary_in_tree(4);
    let o1 = solve_mpp(&MppInstance::new(&dag, 1, 3, 2), SolveLimits::default())
        .unwrap()
        .total;
    let o2 = solve_mpp(&MppInstance::new(&dag, 2, 3, 2), SolveLimits::default())
        .unwrap()
        .total;
    assert!(o2 <= o1);
}

#[test]
fn pyramid_io_rises_as_memory_falls() {
    // The §2-cited pyramid trade-off: exact minimum I/O is monotone
    // non-increasing in r, and zero once the widest antichain fits.
    let dag = generators::pyramid(4);
    let mut prev = u64::MAX;
    for r in 3..=6 {
        let inst = rbp::core::SppInstance::io_only(&dag, r, 1);
        let sol = rbp::core::solve_spp(&inst, SolveLimits::default()).unwrap();
        assert!(sol.cost.io_steps() <= prev, "r={r}");
        prev = sol.cost.io_steps();
    }
    assert_eq!(prev, 0, "base row + workspace fits at r=6");
}

#[test]
fn surplus_cost_definition_matches() {
    // Definition 1: surplus = total − ceil(n/k).
    let dag = generators::chain(10);
    let inst = MppInstance::new(&dag, 3, 2, 2);
    let opt = solve_mpp(&inst, SolveLimits::default()).unwrap();
    assert_eq!(
        opt.cost.surplus(inst.model, dag.n(), inst.k),
        opt.total - 4 // ceil(10/3) = 4
    );
}
