//! Successor-set equivalence harness for the dominance-pruned
//! generation kernel.
//!
//! Dominance pruning must only ever drop successors that a surviving
//! successor provably dominates. On 110 seeded random instances across
//! the three domains (MPP, SPP variants, three-level hier), this
//! harness walks each state space and checks, state by state:
//!
//! 1. **Soundness of the set**: the pruned generator's successor set is
//!    a subset of the naive generator's (same states, same edge costs —
//!    pruning never invents anything);
//! 2. **Every pruned move is dominated**: each successor the naive
//!    generator emits and the pruned one drops is dominated by some
//!    emitted successor — equal batch cost and a pointwise-superset
//!    configuration (MPP/hier maximal batches), or the identical state
//!    at no greater cost (the SPP recompute-vs-reload rule);
//! 3. **OPT is preserved**: solving with dominance on and off yields
//!    the same optimal total on every instance, so pruning never cuts
//!    the only path to the optimum.
//!
//! Every case is a deterministic function of its loop index (seeded
//! in-tree RNG), so a failure message identifies the exact instance.

use rbp::core::mpp::exact::probe as mpp_probe;
use rbp::core::rbp_dag::generators;
use rbp::core::spp::exact::probe as spp_probe;
use rbp::core::{
    solve_mpp_with, solve_spp_with, CostModel, MppInstance, SearchConfig, SolveLimits, SppInstance,
    SppVariant,
};
use rbp::hier::exact::probe as hier_probe;
use rbp::hier::{solve_hier_with, HierInstance};
use rbp::util::Rng;

const WALK_STEPS: usize = 8;

fn configs() -> (SearchConfig, SearchConfig) {
    let limits = SolveLimits::states(400_000);
    (
        SearchConfig {
            dominance: false,
            ..SearchConfig::default()
        }
        .with_limits(limits),
        SearchConfig::default().with_limits(limits),
    )
}

/// 40 random MPP instances: pruned ⊆ naive, every dropped successor is
/// dominated by an emitted one (equal cost, pointwise-superset masks),
/// and the proven optimum is identical with dominance on and off.
#[test]
fn mpp_pruned_successors_are_dominated_and_opt_preserved() {
    let (plain_cfg, dom_cfg) = configs();
    let mut rng = Rng::new(0xd0_111a);
    for case in 0..40u64 {
        let n = 4 + rng.index(4); // 4..=7 nodes
        let p = 0.15 + rng.f64() * 0.45;
        let dag = generators::random_dag(n, p, case);
        let k = 1 + rng.index(3); // 1..=3 processors
        let r = dag.max_in_degree() + 1 + rng.index(2);
        let g = rng.range_u64(1, 5);
        let inst = MppInstance::new(&dag, k, r, g);
        let ctx = format!("mpp case {case}: n={n} k={k} r={r} g={g}");

        for (step, (naive, pruned)) in mpp_probe::successor_walk(&inst, case, WALK_STEPS)
            .into_iter()
            .enumerate()
        {
            for s in &pruned {
                assert!(
                    naive.contains(s),
                    "{ctx} step {step}: pruned invented {s:?}"
                );
            }
            for s in &naive {
                if pruned.contains(s) {
                    continue;
                }
                let dominated = pruned.iter().any(|e| {
                    e.cost == s.cost
                        && e.blue & s.blue == s.blue
                        && e.reds
                            .iter()
                            .zip(s.reds.iter())
                            .all(|(er, sr)| er & sr == *sr)
                });
                assert!(
                    dominated,
                    "{ctx} step {step}: {s:?} pruned but not dominated"
                );
            }
        }

        let plain = solve_mpp_with(&inst, &plain_cfg).solution;
        let dom = solve_mpp_with(&inst, &dom_cfg).solution;
        let plain = plain.unwrap_or_else(|| panic!("{ctx}: plain budget"));
        let dom = dom.unwrap_or_else(|| panic!("{ctx}: dominance budget"));
        assert_eq!(plain.total, dom.total, "{ctx}: optima differ");
        dom.strategy
            .validate(&inst)
            .unwrap_or_else(|e| panic!("{ctx}: witness invalid: {e}"));
    }
}

/// 40 random SPP instances across the variant zoo: the only pruned
/// moves are recomputes of already-stored nodes, each dominated by the
/// reload reaching the identical state at no greater cost; OPT agrees.
#[test]
fn spp_pruned_successors_are_dominated_and_opt_preserved() {
    let (plain_cfg, dom_cfg) = configs();
    let mut rng = Rng::new(0x59_0a1b);
    for case in 0..40u64 {
        let n = 4 + rng.index(5); // 4..=8 nodes
        let p = 0.15 + rng.f64() * 0.45;
        let dag = generators::random_dag(n, p, case.wrapping_mul(31).wrapping_add(7));
        let r = dag.max_in_degree() + 1 + rng.index(2);
        let g = rng.range_u64(1, 5);
        let (variant, vname) = match case % 4 {
            0 => (SppVariant::base(), "base"),
            1 => (SppVariant::one_shot(), "one_shot"),
            2 => (SppVariant::no_delete(), "no_delete"),
            _ => (SppVariant::hong_kung(), "hong_kung"),
        };
        let model = if case % 2 == 0 {
            CostModel::spp_io_only(g)
        } else {
            CostModel::spp_with_compute(g, 1 + case % 3)
        };
        let inst = SppInstance {
            dag: &dag,
            r,
            model,
            variant,
        };
        let ctx = format!("spp case {case} ({vname}): n={n} r={r} g={g}");

        for (step, (naive, pruned)) in spp_probe::successor_walk(&inst, case, WALK_STEPS)
            .into_iter()
            .enumerate()
        {
            for s in &pruned {
                assert!(
                    naive.contains(s),
                    "{ctx} step {step}: pruned invented {s:?}"
                );
            }
            for s in &naive {
                if pruned.contains(s) {
                    continue;
                }
                let dominated = pruned.iter().any(|e| {
                    e.red == s.red
                        && e.blue == s.blue
                        && e.computed == s.computed
                        && e.cost <= s.cost
                });
                assert!(
                    dominated,
                    "{ctx} step {step}: {s:?} pruned but not dominated"
                );
            }
        }

        let plain = solve_spp_with(&inst, &plain_cfg).solution;
        let dom = solve_spp_with(&inst, &dom_cfg).solution;
        match (plain, dom) {
            (Some(p), Some(d)) => {
                assert_eq!(p.total, d.total, "{ctx}: optima differ");
                d.strategy
                    .validate(&inst)
                    .unwrap_or_else(|e| panic!("{ctx}: witness invalid: {e}"));
            }
            // One-shot instances can be genuinely infeasible; both
            // generators must agree on that too.
            (None, None) => {}
            (p, d) => panic!(
                "{ctx}: solvability diverged (plain={}, dominance={})",
                p.is_some(),
                d.is_some()
            ),
        }
    }
}

/// 30 random three-level instances: maximal-batch pruning on all five
/// batched rules (including budget-capped green stores) only drops
/// pointwise-dominated successors, and OPT agrees.
#[test]
fn hier_pruned_successors_are_dominated_and_opt_preserved() {
    let (plain_cfg, dom_cfg) = configs();
    let mut rng = Rng::new(0x0041_e20c);
    for case in 0..30u64 {
        let n = 4 + rng.index(3); // 4..=6 nodes
        let p = 0.15 + rng.f64() * 0.45;
        let dag = generators::random_dag(n, p, case.wrapping_mul(17).wrapping_add(3));
        let k = 1 + rng.index(2); // 1..=2 processors
        let r = dag.max_in_degree() + 1 + rng.index(2);
        let g = rng.range_u64(2, 5);
        let green_cap = rng.index(3); // 0..=2 (0 = degenerate two-level)
        let green_cost = rng.range_u64(1, g.max(2));
        let inst = HierInstance::new(&dag, k, r, g, green_cap, green_cost);
        let ctx =
            format!("hier case {case}: n={n} k={k} r={r} g={g} cap={green_cap} gc={green_cost}");

        for (step, (naive, pruned)) in hier_probe::successor_walk(&inst, case, WALK_STEPS)
            .into_iter()
            .enumerate()
        {
            for s in &pruned {
                assert!(
                    naive.contains(s),
                    "{ctx} step {step}: pruned invented {s:?}"
                );
            }
            for s in &naive {
                if pruned.contains(s) {
                    continue;
                }
                let dominated = pruned.iter().any(|e| {
                    e.cost == s.cost
                        && e.blue & s.blue == s.blue
                        && e.green & s.green == s.green
                        && e.reds
                            .iter()
                            .zip(s.reds.iter())
                            .all(|(er, sr)| er & sr == *sr)
                });
                assert!(
                    dominated,
                    "{ctx} step {step}: {s:?} pruned but not dominated"
                );
            }
        }

        let plain = solve_hier_with(&inst, &plain_cfg).solution;
        let dom = solve_hier_with(&inst, &dom_cfg).solution;
        let plain = plain.unwrap_or_else(|| panic!("{ctx}: plain budget"));
        let dom = dom.unwrap_or_else(|| panic!("{ctx}: dominance budget"));
        assert_eq!(plain.total, dom.total, "{ctx}: optima differ");
        dom.strategy
            .validate(&inst)
            .unwrap_or_else(|e| panic!("{ctx}: witness invalid: {e}"));
    }
}
