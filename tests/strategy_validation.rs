//! Cross-crate integration: every scheduler produces strategies that the
//! independent rules engine accepts, on every DAG family, and all the
//! derived machinery (stats, Lemma 5 translation) agrees.

use rbp::core::rbp_dag::{generators, Dag};
use rbp::core::{mpp_to_spp, simulation_instance, MppInstance, MppRunStats};
use rbp::schedulers::all_schedulers;

fn zoo() -> Vec<Dag> {
    vec![
        generators::chain(12),
        generators::independent_chains(3, 5),
        generators::binary_in_tree(16),
        generators::binary_out_tree(8),
        generators::diamond(4),
        generators::grid(4, 5),
        generators::two_layer_full(3, 4),
        generators::two_layer_regular(6, 8, 3),
        generators::fft(3),
        generators::matmul(3),
        generators::reduction_tree(3, 9),
        generators::random_dag(12, 0.25, 5),
        generators::layered_random(5, 5, 2, 9),
        generators::pyramid(5),
        generators::r_pyramid(3, 9),
        generators::stencil_1d(6, 4),
    ]
}

#[test]
fn every_scheduler_is_valid_on_the_whole_zoo() {
    for dag in zoo() {
        if dag.n() == 0 {
            continue;
        }
        let r = dag.max_in_degree() + 2;
        for (k, g) in [(1usize, 1u64), (2, 3), (4, 2)] {
            let inst = MppInstance::new(&dag, k, r, g);
            for s in all_schedulers() {
                let run = s.schedule(&inst).unwrap_or_else(|e| {
                    panic!("{} failed on {} (k={k}, g={g}): {e}", s.name(), dag.name())
                });
                let cost = run
                    .strategy
                    .validate(&inst)
                    .unwrap_or_else(|e| panic!("{} invalid on {}: {e}", s.name(), dag.name()));
                assert_eq!(cost, run.cost, "{} on {}", s.name(), dag.name());
            }
        }
    }
}

#[test]
fn stats_totals_are_consistent_with_validator() {
    let dag = generators::layered_random(5, 6, 3, 3);
    let inst = MppInstance::new(&dag, 3, 5, 2);
    for s in all_schedulers() {
        let run = s.schedule(&inst).unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        assert_eq!(stats.cost, run.cost, "{}", s.name());
        assert_eq!(stats.total, run.cost.total(inst.model));
        assert_eq!(
            stats.total_work,
            stats.distinct_computed + stats.recomputations
        );
        // Every node computed at least once.
        assert!(stats.distinct_computed as usize == dag.n());
    }
}

#[test]
fn lemma5_translation_validates_for_all_schedulers() {
    let dag = generators::grid(3, 4);
    for k in [2usize, 3] {
        let inst = MppInstance::new(&dag, k, 4, 3);
        for s in all_schedulers() {
            let run = s.schedule(&inst).unwrap();
            let spp = mpp_to_spp(&inst, &run.strategy);
            let spp_inst = simulation_instance(&inst);
            let spp_cost = spp
                .validate(&spp_inst)
                .unwrap_or_else(|e| panic!("{} translation invalid: {e}", s.name()));
            // Lemma 5 accounting: ≤ k sequential I/O moves per parallel
            // I/O step.
            assert!(
                spp_cost.io_steps() <= inst.k as u64 * run.cost.io_steps(),
                "{}",
                s.name()
            );
        }
    }
}

#[test]
fn batchify_never_hurts_and_stays_valid() {
    use rbp::core::batchify;
    let dag = generators::fft(3);
    let inst = MppInstance::new(&dag, 4, 4, 3);
    for s in all_schedulers() {
        let run = s.schedule(&inst).unwrap();
        let opt = batchify(&inst, &run.strategy);
        let cost = opt
            .validate(&inst)
            .unwrap_or_else(|e| panic!("{}: batchified invalid: {e}", s.name()));
        assert!(
            cost.total(inst.model) <= run.cost.total(inst.model),
            "{}",
            s.name()
        );
    }
}

#[test]
fn lemma1_bracket_holds_for_all_schedulers_on_the_zoo() {
    for dag in zoo() {
        if dag.n() == 0 {
            continue;
        }
        let r = dag.max_in_degree() + 2;
        let inst = MppInstance::new(&dag, 2, r, 2);
        let lower = rbp::bounds::trivial::lower(&inst);
        let upper = rbp::bounds::trivial::upper(&inst);
        for s in all_schedulers() {
            let total = s.schedule(&inst).unwrap().cost.total(inst.model);
            assert!(
                lower <= total && total <= upper,
                "{} on {}: {total} outside [{lower}, {upper}]",
                s.name(),
                dag.name()
            );
        }
    }
}
