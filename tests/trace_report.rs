//! Integration test: `rbp report` rendering of the checked-in fixture
//! trace (the same file the CI smoke step feeds to the binary).

use rbp::trace::report::{parse, render};

const FIXTURE: &str = include_str!("fixtures/trace_small.jsonl");
const SERVE_FIXTURE: &str = include_str!("fixtures/trace_serve.jsonl");
const STREAM_FIXTURE: &str = include_str!("fixtures/trace_stream.jsonl");

#[test]
fn fixture_parses_with_manifest() {
    let trace = parse(FIXTURE).unwrap();
    assert_eq!(
        trace.manifest.get("tool").unwrap().as_str(),
        Some("fixture")
    );
    assert_eq!(trace.manifest.get("schema").unwrap().as_u64(), Some(1));
    assert_eq!(trace.events.len(), 8);
}

#[test]
fn fixture_renders_tables_counters_gauges_and_spans() {
    let md = render(FIXTURE).unwrap();
    // The table event is reproduced as a markdown table.
    assert!(md.contains("## E0"), "{md}");
    assert!(md.contains("| dag | k | OPT |"), "{md}");
    assert!(md.contains("| chain(4) | 2 | 2 |"), "{md}");
    // Counter deltas are summed per name (12 + 3).
    assert!(md.contains("| solver.mpp.settled | 15 |"), "{md}");
    // Gauges keep the last value; spans report count + total time.
    assert!(md.contains("solver.mpp.frontier_peak"), "{md}");
    assert!(md.contains("| solve.mpp | 1 |"), "{md}");
}

#[test]
fn serve_store_metrics_render_in_their_own_section() {
    let md = render(SERVE_FIXTURE).unwrap();
    // All serve.store.* metrics land in one operational section …
    assert!(md.contains("## Serve store"), "{md}");
    assert!(md.contains("| serve.store.hit | 2 |"), "{md}");
    assert!(md.contains("| serve.store.miss | 1 |"), "{md}");
    assert!(md.contains("| serve.store.append | 1 |"), "{md}");
    assert!(md.contains("| serve.store.compaction | 1 |"), "{md}");
    // … gauges keep the last value (bytes shrink after compaction).
    assert!(md.contains("| serve.store.bytes | 496 |"), "{md}");
    assert!(md.contains("| serve.store.entries | 4 |"), "{md}");
    assert!(md.contains("| serve.store.warmed | 3 |"), "{md}");
    // Non-store serve metrics stay in the generic sections.
    assert!(md.contains("| serve.wire.request | 5 |"), "{md}");
    let store_section = md.split("## Serve store").nth(1).unwrap();
    let store_table = store_section.split("\n## ").next().unwrap();
    assert!(
        !store_table.contains("serve.wire.request"),
        "wire counters are not store metrics: {store_table}"
    );
}

#[test]
fn stream_metrics_render_in_scale_section() {
    let md = render(STREAM_FIXTURE).unwrap();
    // All stream.* metrics from the streaming scheduler tier land in
    // one "Scale" section — counters summed across the two runs …
    assert!(md.contains("## Scale"), "{md}");
    assert!(md.contains("| stream.nodes | 2000000 |"), "{md}");
    assert!(md.contains("| stream.passes | 6 |"), "{md}");
    assert!(md.contains("| stream.emitted_bytes | 252078542 |"), "{md}");
    assert!(md.contains("| stream.moves | 9502486 |"), "{md}");
    // … gauges keep the last (wavefront) run's value.
    assert!(md.contains("| stream.nodes_per_sec | 6709309 |"), "{md}");
    assert!(md.contains("| stream.peak_active_set | 24 |"), "{md}");
    // The scheduling spans aggregate under the usual span table.
    assert!(md.contains("| stream.schedule | 2 |"), "{md}");
    // Non-stream metrics stay in the generic sections, and the Scale
    // table holds stream.* rows only.
    assert!(md.contains("| serve.http.accepted | 1 |"), "{md}");
    let scale_section = md.split("## Scale").nth(1).unwrap();
    let scale_table = scale_section.split("\n## ").next().unwrap();
    assert!(
        !scale_table.contains("serve."),
        "serve counters are not scale metrics: {scale_table}"
    );
}

#[test]
fn truncated_trace_is_rejected() {
    // No manifest first line → refuse.
    let bogus = "{\"type\":\"counter\",\"ts_us\":1,\"name\":\"x\",\"value\":1}\n";
    assert!(parse(bogus).is_err());
    // A newer schema than this build understands → refuse.
    let future = "{\"type\":\"manifest\",\"schema\":999,\"tool\":\"t\",\"git_rev\":null}\n";
    assert!(parse(future).is_err());
}

#[test]
fn empty_trace_is_a_clear_error_not_an_empty_report() {
    // A completely empty file.
    let err = render("").unwrap_err();
    assert!(err.contains("empty trace file"), "{err}");
    // Whitespace-only counts as empty too.
    let err = render("\n  \n").unwrap_err();
    assert!(err.contains("empty trace file"), "{err}");
}

#[test]
fn header_only_trace_is_a_clear_error_not_an_empty_report() {
    // A manifest with zero events: a run that died before flushing.
    // `rbp report` must refuse rather than print a vacuous report.
    let header = "{\"type\":\"manifest\",\"schema\":1,\"tool\":\"t\",\"git_rev\":null}\n";
    let err = render(header).unwrap_err();
    assert!(err.contains("no events"), "{err}");
    // parse() itself still accepts the header — only rendering refuses.
    assert!(parse(header).is_ok());
}
