//! Integration test: the streaming tier's JSONL strategy emission is
//! byte-compatible with the `rbp_refine::persist` format — a strategy
//! streamed by `rbp_stream::JsonlSink` must re-parse with
//! `strategy_from_jsonl` and replay cleanly through the in-memory MPP
//! validator with the exact cost the streaming simulator tallied.

use rbp::core::rbp_dag::{io, Dag};
use rbp::core::MppInstance;
use rbp::refine::persist;
use rbp::stream::{all_stream_schedulers, JsonlSink, StreamHeader};

const FIXTURES: &[&str] = &[
    include_str!("fixtures/grid_3x3.dag"),
    include_str!("fixtures/chains_2x4.dag"),
    include_str!("fixtures/fft_8.dag"),
    include_str!("fixtures/zipper_2x2.dag"),
];

fn fixture_dags() -> Vec<Dag> {
    FIXTURES
        .iter()
        .map(|t| io::parse(t).expect("fixture parses"))
        .collect()
}

/// Every streaming scheduler × every fixture DAG: stream to JSONL,
/// re-load through the persistence layer, validate in-memory.
#[test]
fn streamed_jsonl_roundtrips_through_persist_and_validates() {
    for dag in fixture_dags() {
        let (k, r, g) = (3, dag.max_in_degree() + 2, 2);
        for s in all_stream_schedulers() {
            let header = StreamHeader {
                dag_name: dag.name().to_string(),
                n: dag.n(),
                k,
                r,
                g,
            };
            let mut sink = JsonlSink::new(Vec::new(), &header).expect("vec sink");
            let run = s
                .schedule(&dag, k, r, &mut sink)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), dag.name()));
            let bytes = sink.into_inner().expect("flush");
            assert_eq!(bytes.len() as u64, run.bytes_emitted);
            let text = String::from_utf8(bytes).expect("JSONL is UTF-8");

            let saved = persist::strategy_from_jsonl(&text)
                .unwrap_or_else(|e| panic!("{} on {}: reload failed: {e}", s.name(), dag.name()));
            assert_eq!(
                (saved.n, saved.k, saved.r, saved.g),
                (dag.n(), k, r, g),
                "{} on {}: header mismatch",
                s.name(),
                dag.name()
            );
            assert_eq!(saved.dag_name, dag.name());
            assert_eq!(saved.strategy.len() as u64, run.moves);

            let inst = MppInstance::new(&dag, k, r, g);
            let cost = saved
                .strategy
                .validate(&inst)
                .unwrap_or_else(|e| panic!("{} on {}: invalid replay: {e}", s.name(), dag.name()));
            assert_eq!(
                cost,
                run.cost,
                "{} on {}: reloaded cost diverged",
                s.name(),
                dag.name()
            );
        }
    }
}

/// The JSONL survives a save/load/save cycle byte-identically — the
/// streaming writer and the in-memory persistence writer agree on
/// every serialized field, not just on semantics.
#[test]
fn streamed_jsonl_is_byte_identical_to_persist_writer() {
    let dag = fixture_dags().remove(0);
    let (k, r, g) = (2, dag.max_in_degree() + 2, 2);
    let s = &all_stream_schedulers()[0];
    let header = StreamHeader {
        dag_name: dag.name().to_string(),
        n: dag.n(),
        k,
        r,
        g,
    };
    let mut sink = JsonlSink::new(Vec::new(), &header).expect("vec sink");
    s.schedule(&dag, k, r, &mut sink).expect("schedules");
    let streamed = String::from_utf8(sink.into_inner().expect("flush")).unwrap();

    let saved = persist::strategy_from_jsonl(&streamed).expect("reload");
    let rewritten = persist::strategy_to_jsonl(&saved);
    assert_eq!(streamed, rewritten);
}
