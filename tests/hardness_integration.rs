//! Integration: the Theorem 2 machinery across crates — towers, the
//! reduction, the decision procedure, and the SPP solver all agree.

use rbp::core::spp::oneshot_zero::order_to_strategy;
use rbp::core::{zero_io_order, zero_io_pebbling_exists};
use rbp::core::{CostModel, SppInstance, SppVariant};
use rbp::dag::min_peak_memory;
use rbp::gadgets::levels::Tower;
use rbp::gadgets::{Graph, HardnessInstance};

#[test]
fn decision_procedure_agrees_with_peak_dp_on_gadgets() {
    for dag in [
        Tower::build(&[3, 4, 2]).dag,
        Tower::build(&[1, 5, 1, 3]).dag,
        HardnessInstance::build(&Graph::new(3, &[(0, 1), (1, 2)]), 2).dag,
    ] {
        let peak = min_peak_memory(&dag, 64).unwrap();
        assert_eq!(zero_io_pebbling_exists(&dag, peak), Some(true));
        if peak > 0 {
            assert_eq!(zero_io_pebbling_exists(&dag, peak - 1), Some(false));
        }
    }
}

#[test]
fn witness_orders_convert_to_valid_one_shot_strategies() {
    let g = Graph::new(4, &[(0, 1), (1, 2), (2, 3)]);
    let inst = HardnessInstance::build(&g, 2);
    let order = zero_io_order(&inst.dag, inst.budget)
        .expect("within limits")
        .expect("path has vsΔ = 2");
    let strategy = order_to_strategy(&inst.dag, &order);
    let spp = SppInstance {
        dag: &inst.dag,
        r: inst.budget,
        model: CostModel::spp_io_only(1),
        variant: SppVariant::one_shot(),
    };
    let cost = strategy.validate(&spp).expect("witness must be legal");
    assert_eq!(cost.io_steps(), 0);
    assert_eq!(cost.computes as usize, inst.dag.n());
}

#[test]
fn reduction_matches_brute_force_layout_parameter() {
    for (g, _name) in [
        (Graph::new(3, &[(0, 1), (1, 2)]), "path3"),
        (Graph::new(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]), "C4"),
        (Graph::new(3, &[(0, 1), (1, 2), (0, 2)]), "triangle"),
    ] {
        let vsd = g.transient_vertex_separation();
        for w in 1..=vsd + 1 {
            let inst = HardnessInstance::build(&g, w);
            if inst.dag.n() > 64 {
                continue;
            }
            assert_eq!(
                zero_io_pebbling_exists(&inst.dag, inst.budget),
                Some(vsd <= w)
            );
        }
    }
}

#[test]
fn vertex_cover_brute_force_sanity() {
    use rbp::gadgets::vertex_cover::{cubic_circulant, min_vertex_cover};
    for n in [4usize, 6, 8] {
        let g = cubic_circulant(n);
        let vc = min_vertex_cover(&g);
        // 3-regular graph: VC ≥ m/3 = n/2 (each vertex covers ≤ 3 edges).
        assert!(vc >= n / 2, "n={n}: vc={vc}");
        assert!(vc < n);
    }
}
