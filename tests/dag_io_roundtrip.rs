//! Roundtrip tests for the DAG text format: every checked-in
//! `tests/fixtures/*.dag` file must parse, re-serialize, and re-parse
//! to an identical graph, and the second serialization must equal the
//! first (`to_text ∘ parse` is a fixpoint).

use std::path::PathBuf;

use rbp::dag::{io, Dag};

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

/// Every `.dag` file under `tests/fixtures/`, sorted for stable output.
fn dag_fixtures() -> Vec<PathBuf> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(fixture_dir())
        .expect("tests/fixtures exists")
        .filter_map(|e| {
            let p = e.ok()?.path();
            (p.extension()? == "dag").then_some(p)
        })
        .collect();
    paths.sort();
    paths
}

fn assert_same_dag(a: &Dag, b: &Dag, context: &str) {
    assert_eq!(a.name(), b.name(), "{context}: name");
    assert_eq!(a.n(), b.n(), "{context}: node count");
    assert_eq!(a.m(), b.m(), "{context}: edge count");
    let edges_a: Vec<_> = a.edges().collect();
    let edges_b: Vec<_> = b.edges().collect();
    assert_eq!(edges_a, edges_b, "{context}: edges");
    for (va, vb) in edges_a.iter().flat_map(|&(u, v)| [(u, u), (v, v)]) {
        assert_eq!(a.label(va), b.label(vb), "{context}: label of {va:?}");
    }
}

#[test]
fn fixtures_exist() {
    let paths = dag_fixtures();
    assert!(
        paths.len() >= 4,
        "expected at least 4 .dag fixtures, found {}: {paths:?}",
        paths.len()
    );
}

#[test]
fn every_fixture_roundtrips_identically() {
    for path in dag_fixtures() {
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        let text = std::fs::read_to_string(&path).unwrap();
        let dag = io::parse(&text).unwrap_or_else(|e| panic!("{name}: does not parse: {e}"));
        let text2 = io::to_text(&dag);
        let dag2 = io::parse(&text2)
            .unwrap_or_else(|e| panic!("{name}: re-serialized text does not parse: {e}"));
        assert_same_dag(&dag, &dag2, &name);
        // The serializer is canonical: a second pass is byte-identical.
        assert_eq!(
            text2,
            io::to_text(&dag2),
            "{name}: to_text ∘ parse is not a fixpoint"
        );
    }
}

#[test]
fn labeled_fixture_keeps_labels_through_the_roundtrip() {
    let text = std::fs::read_to_string(fixture_dir().join("zipper_2x2.dag")).unwrap();
    let dag = io::parse(&text).unwrap();
    let relabeled = io::parse(&io::to_text(&dag)).unwrap();
    let labels: Vec<&str> = (0..u32::try_from(dag.n()).unwrap())
        .map(|v| relabeled.label(rbp::dag::NodeId(v)))
        .collect();
    assert!(labels.contains(&"u0"), "{labels:?}");
    assert!(labels.contains(&"w1"), "{labels:?}");
}
