//! Greedy heuristics vs the exact optimum on small instances
//! (Lemmas 3–4 in action).
//!
//! Run with: `cargo run --release --example greedy_vs_exact`

use rbp::core::rbp_dag::generators;
use rbp::core::{solve_mpp, MppInstance, SolveLimits};
use rbp::gadgets::GreedyTrap;
use rbp::schedulers::{Affinity, Greedy, GreedyConfig, MppScheduler};

fn main() {
    println!("-- small random DAGs: greedy vs exact OPT (k=2, r=3, g=2) --\n");
    println!("{:>6} {:>8} {:>8} {:>7}", "seed", "greedy", "OPT", "ratio");
    for seed in 1..=6u64 {
        let dag = generators::layered_random(3, 3, 2, seed);
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let Some(opt) = solve_mpp(&inst, SolveLimits::default()) else {
            continue;
        };
        let run = Greedy::default().schedule(&inst).unwrap();
        let total = run.cost.total(inst.model);
        println!(
            "{:>6} {:>8} {:>8} {:>7.2}",
            seed,
            total,
            opt.total,
            total as f64 / opt.total as f64
        );
    }

    println!("\n-- the Lemma 4 bait trap: both affinity metrics fall in --\n");
    let trap = GreedyTrap::build(4, 12, 16);
    println!(
        "{:>3} {:>10} {:>10} {:>10}",
        "g", "count", "fraction", "OPT"
    );
    for g in [2u64, 4, 8, 16] {
        let inst = MppInstance::new(&trap.dag, 1, trap.r(), g);
        let count = Greedy::default()
            .schedule(&inst)
            .unwrap()
            .cost
            .total(inst.model);
        let fraction = Greedy::new(GreedyConfig {
            affinity: Affinity::Fraction,
            ..GreedyConfig::default()
        })
        .schedule(&inst)
        .unwrap()
        .cost
        .total(inst.model);
        let opt = trap.strategy_optimal(g).unwrap().cost.total(inst.model);
        println!("{:>3} {:>10} {:>10} {:>10}", g, count, fraction, opt);
    }
    println!("\nLemma 4: for every greedy configuration some DAG defeats it — the\npaper's construction defeats all simultaneously.");
}
