//! The Lemma 10 superlinear speedup on the zipper gadget (Figure 2).
//!
//! A second processor with the *same* memory turns the thrashing
//! `d·g + 1`-per-node schedule into a `2g + 1`-per-node one — a speedup
//! of `≈ (Δ_in − 1)/2 · d g/(…)` that exceeds `k = 2` once `d > 4`.
//!
//! Run with: `cargo run --release --example zipper_speedup`

use rbp::core::{CostModel, MppInstance, MppRunStats};
use rbp::gadgets::Zipper;

fn main() {
    let n0 = 500;
    let g = 4;
    println!("zipper gadget, chain length {n0}, g = {g}\n");
    println!(
        "{:>4} {:>12} {:>12} {:>9} {:>10}",
        "d", "cost k=1", "cost k=2", "speedup", "predicted"
    );
    for d in [2usize, 4, 8, 16, 32, 64] {
        let z = Zipper::build(d, n0, 0);
        let model = CostModel::mpp(g);
        let one = z.strategy_1proc_swapping(g).unwrap();
        let two = z.strategy_2proc(g).unwrap();
        let c1 = one.cost.total(model);
        let c2 = two.cost.total(model);
        let predicted = (d as f64 * g as f64 + 1.0) / (2.0 * g as f64 + 1.0);
        println!(
            "{:>4} {:>12} {:>12} {:>9.2} {:>10.2}",
            d,
            c1,
            c2,
            c1 as f64 / c2 as f64,
            predicted
        );
    }

    // Where does the 2-processor cost go? Decompose the d = 16 run.
    let d = 16;
    let z = Zipper::build(d, n0, 0);
    let inst = MppInstance::new(&z.dag, 2, d + 2, g);
    let run = z.strategy_2proc(g).unwrap();
    let stats = MppRunStats::analyze(&inst, &run.strategy);
    println!("\nk=2, d={d} decomposition:");
    println!("  surplus cost (Def. 1):        {}", stats.surplus);
    println!(
        "  communication transfers:      {}",
        stats.communication_transfers()
    );
    println!(
        "  capacity spills:              {}",
        stats.spill_transfers()
    );
    println!("  recomputations:               {}", stats.recomputations);
    println!("  work per processor:           {:?}", stats.work_per_proc);
    println!("\nAll I/O is communication — exactly the trade-off MPP was built to expose.");
}
