//! The Theorem 2 machinery end to end: towers, the zero-cost decision
//! reduction, and the inapproximability gap.
//!
//! Run with: `cargo run --release --example hardness_gadgets`

use rbp::core::zero_io_pebbling_exists;
use rbp::gadgets::levels::Tower;
use rbp::gadgets::{Graph, HardnessInstance};

fn main() {
    println!("-- Figure 3 towers: footprint algebra --\n");
    for sizes in [vec![5usize, 5], vec![5, 7], vec![5, 3]] {
        let t = Tower::build(&sizes);
        println!(
            "tower {:?}: predicted peak {}, exact peak {}",
            sizes,
            t.predicted_peak(),
            rbp::dag::min_peak_memory(&t.dag, 64).unwrap()
        );
    }

    println!("\n-- Theorem 2 reduction: zero-cost pebbling ⟺ vsΔ(G') ≤ W --\n");
    let graphs = [
        ("path3", Graph::new(3, &[(0, 1), (1, 2)])),
        ("triangle", Graph::new(3, &[(0, 1), (1, 2), (0, 2)])),
        ("C4", Graph::new(4, &[(0, 1), (1, 2), (2, 3), (0, 3)])),
    ];
    for (name, g) in &graphs {
        let vsd = g.transient_vertex_separation();
        print!("{name}: vsΔ = {vsd};");
        for w in 1..=vsd + 1 {
            let inst = HardnessInstance::build(g, w);
            if inst.dag.n() > 64 {
                continue;
            }
            let ok = zero_io_pebbling_exists(&inst.dag, inst.budget).unwrap();
            print!(
                "  W={w} → {}",
                if ok {
                    "zero-cost ✓"
                } else {
                    "forced I/O ✗"
                }
            );
            assert_eq!(ok, vsd <= w);
        }
        println!();
    }

    println!("\n-- gap amplification: chaining t copies --\n");
    let g = Graph::new(3, &[(0, 1), (1, 2)]);
    let vsd = g.transient_vertex_separation();
    for t in 1..=3usize {
        let (dag, budget) = HardnessInstance::amplified(&g, vsd, t);
        println!(
            "t = {t}: n = {:>3}, budget = {budget}, zero-cost = {:?}",
            dag.n(),
            zero_io_pebbling_exists(&dag, budget)
        );
    }
    println!(
        "\nA NO instance pays ≥ 1 I/O per copy: OPT is 0 or ≥ t. Padding to\nt = n^(1−ε) copies gives Theorem 2: no finite-factor approximation\nof one-shot SPP I/O (or of MPP surplus cost) unless P = NP."
    );
}
