//! Matrix-multiplication I/O analysis (§4 lower bounds).
//!
//! Builds the classical `n×n` matmul DAG, computes the Kwasniewski-style
//! MPP lower bound `(n/k)(g(2n²/√(rk)+n)+1)`, and compares against what
//! the heuristic schedulers actually achieve.
//!
//! Run with: `cargo run --release --example matmul_io_analysis`

use rbp::bounds::{matmul, trivial};
use rbp::core::rbp_dag::{generators, DagStats};
use rbp::core::MppInstance;
use rbp::schedulers::{Greedy, MppScheduler, Partition, Wavefront};

fn main() {
    let n = 4;
    let dag = generators::matmul(n);
    let stats = DagStats::compute(&dag);
    println!("matmul({n}) DAG: {stats}\n");
    println!(
        "{:>3} {:>3} {:>3} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "k", "r", "g", "mm bound", "L1 lower", "greedy", "partition", "wavefront"
    );
    for k in [1usize, 2, 4] {
        for (r, g) in [(4usize, 1u64), (8, 1), (8, 4)] {
            let inst = MppInstance::new(&dag, k, r, g);
            let bound = matmul::mpp_total_lower(n as u64, k as u64, r as u64, g);
            let l1 = trivial::lower(&inst);
            let gr = Greedy::default()
                .schedule(&inst)
                .unwrap()
                .cost
                .total(inst.model);
            let pa = Partition.schedule(&inst).unwrap().cost.total(inst.model);
            let wf = Wavefront.schedule(&inst).unwrap().cost.total(inst.model);
            println!(
                "{:>3} {:>3} {:>3} {:>10} {:>10} {:>10} {:>10} {:>10}",
                k, r, g, bound, l1, gr, pa, wf
            );
        }
    }
    println!(
        "\nThe achieved costs sit above both bounds, fall with k and r, and rise\nwith g — the trade-off surface of §4."
    );
}
