//! Quickstart — the paper's Figure 1 walkthrough, executable.
//!
//! The example DAG: sources `v1, v2` feed `v3` and `v4`; both feed `v5`
//! and `v6`; `v7` joins them. We replay the §1 narration with one
//! processor (r = 3 red pebbles, 4 I/O operations) and with two
//! processors, then ask the exact solvers for the true optima.
//!
//! Run with: `cargo run --release --example quickstart`

use rbp::core::{
    solve_mpp, solve_spp, MppInstance, MppSimulator, SolveLimits, SppInstance, SppMove, SppStrategy,
};
use rbp::dag::{dag_from_edges, NodeId};

fn main() {
    // Figure 1 (ids are one less than the paper's labels).
    let dag = dag_from_edges(
        7,
        &[
            (0, 2), // v1 -> v3
            (1, 2), // v2 -> v3
            (0, 3), // v1 -> v4
            (1, 3), // v2 -> v4
            (2, 4), // v3 -> v5
            (3, 4), // v4 -> v5
            (2, 5), // v3 -> v6
            (3, 5), // v4 -> v6
            (4, 6), // v5 -> v7
            (5, 6), // v6 -> v7
        ],
    );
    let v = NodeId;

    println!(
        "Figure 1 DAG: n = {}, Δin = {}",
        dag.n(),
        dag.max_in_degree()
    );

    // --- Single processor, r = 3, following the §1 narration. ---
    use SppMove::{Compute, Load, RemoveRed, Store};
    let narration = SppStrategy::from_moves(vec![
        Compute(v(0)), // red on v1
        Compute(v(1)), // red on v2
        Compute(v(2)), // red on v3 (all 3 pebbles in use)
        Store(v(2)),   // I/O 1: blue on v3
        RemoveRed(v(2)),
        Compute(v(3)), // v4 analogously
        RemoveRed(v(0)),
        RemoveRed(v(1)),
        Load(v(2)),    // I/O 2: red back on v3
        Compute(v(4)), // v5
        Store(v(4)),   // I/O 3: blue on v5
        RemoveRed(v(4)),
        Compute(v(5)), // v6 (v3, v4 still red)
        RemoveRed(v(2)),
        RemoveRed(v(3)),
        Load(v(4)),    // I/O 4: red back on v5
        Compute(v(6)), // v7 — done
    ]);
    let g = 1;
    let spp = SppInstance::io_only(&dag, 3, g);
    let cost = narration.validate(&spp).expect("the narration is legal");
    println!(
        "\n[SPP, r=3] paper's walkthrough: {} I/O operations, {} computes",
        cost.io_steps(),
        cost.computes
    );

    let opt = solve_spp(&spp, SolveLimits::default()).expect("small instance");
    println!(
        "[SPP, r=3] exact optimum:       {} I/O operations",
        opt.cost.io_steps()
    );

    // --- Two processors, r = 3 each: halves in parallel, then one
    //     communication through shared memory. ---
    let inst = MppInstance::new(&dag, 2, 3, g);
    let mut sim = MppSimulator::new(inst);
    // Both processors build their own copies of v1..v4 in lockstep
    // (recomputation on the second shade instead of communication).
    for node in [0u32, 1, 2] {
        sim.compute(vec![(0, v(node)), (1, v(node))]).unwrap();
    }
    // Make room: drop v1 on both shades (v4 still needs v2… no — v4
    // needs v1 and v2; drop nothing yet, r=3 is full with v1,v2,v3).
    // Store v3, drop it, compute v4, reload v3 — batched across shades
    // where the rules allow.
    sim.store(vec![(0, v(2))]).unwrap(); // one blue copy suffices
    sim.remove_red(0, v(2)).unwrap();
    sim.remove_red(1, v(2)).unwrap();
    sim.compute(vec![(0, v(3)), (1, v(3))]).unwrap();
    for p in 0..2 {
        sim.remove_red(p, v(0)).unwrap();
        sim.remove_red(p, v(1)).unwrap();
    }
    // R2-M's set semantics forbid one batch loading the same blue value
    // into two shades — two load steps it is.
    sim.load(vec![(0, v(2))]).unwrap();
    sim.load(vec![(1, v(2))]).unwrap();
    // p0 computes v5 while p1 computes v6 — one parallel step.
    sim.compute(vec![(0, v(4)), (1, v(5))]).unwrap();
    // Communicate v5 to p1 via shared memory, compute v7 there.
    sim.store(vec![(0, v(4))]).unwrap();
    sim.remove_red(1, v(2)).unwrap();
    sim.remove_red(1, v(3)).unwrap();
    sim.load(vec![(1, v(4))]).unwrap();
    sim.compute(vec![(1, v(6))]).unwrap();
    let run = sim.finish().expect("terminal");
    println!(
        "\n[MPP, k=2, r=3] hand strategy: total cost {} ({} I/O steps, {} compute steps)",
        run.cost.total(inst.model),
        run.cost.io_steps(),
        run.cost.computes
    );

    let opt2 = solve_mpp(&inst, SolveLimits::default()).expect("small instance");
    println!(
        "[MPP, k=2, r=3] exact optimum: total cost {} ({} I/O steps)",
        opt2.total,
        opt2.cost.io_steps()
    );
    let opt1 = solve_mpp(&MppInstance::new(&dag, 1, 3, g), SolveLimits::default()).unwrap();
    println!(
        "[MPP, k=1, r=3] exact optimum: total cost {}  → two processors save {}",
        opt1.total,
        opt1.total - opt2.total
    );
}
