//! E12 — Lemma 2: MPP is NP-hard already on 2-layer DAGs and in-trees.
//!
//! Probes the instance families the BSP-style reductions emit: exact
//! optima react to the embedded balance structure, and the greedy
//! heuristic drifts from the optimum.

use rbp_bench::{banner, Table};
use rbp_core::{solve_mpp, MppInstance, SolveLimits};
use rbp_gadgets::hardness_simple::{caterpillar_in_tree, two_layer_partition};
use rbp_schedulers::{Greedy, MppScheduler};

fn main() {
    rbp_bench::init_trace("exp_hardness", &[]);
    banner("E12", "Lemma 2 families: 2-layer DAGs and in-trees");

    println!("-- 2-layer partition instances, exact OPT vs greedy (k=2, g=3) --\n");
    let mut t = Table::new(&["items", "n", "OPT(1)", "OPT(2)", "greedy(2)", "greedy/OPT"]);
    for items in [vec![1usize, 1], vec![2, 1], vec![1, 1, 1]] {
        let dag = two_layer_partition(&items);
        let r = dag.max_in_degree() + 1;
        let lim = SolveLimits::states(1_500_000);
        let Some(o1) = solve_mpp(&MppInstance::new(&dag, 1, r, 3), lim) else {
            continue;
        };
        let Some(o2) = solve_mpp(&MppInstance::new(&dag, 2, r, 3), lim) else {
            continue;
        };
        let inst2 = MppInstance::new(&dag, 2, r, 3);
        let gr = Greedy::default()
            .schedule(&inst2)
            .unwrap()
            .cost
            .total(inst2.model);
        t.row(&[
            format!("{items:?}"),
            dag.n().to_string(),
            o1.total.to_string(),
            o2.total.to_string(),
            gr.to_string(),
            format!("{:.2}", gr as f64 / o2.total as f64),
        ]);
    }
    t.print_traced("E12.two_layer");

    println!("\n-- caterpillar in-trees: memory sensitivity of the exact optimum --\n");
    let mut t2 = Table::new(&["spine", "legs", "r", "OPT total", "OPT io"]);
    for (spine, legs) in [(3usize, vec![1usize]), (4, vec![1]), (3, vec![2])] {
        let dag = caterpillar_in_tree(spine, &legs);
        let dmin = dag.max_in_degree() + 1;
        for r in [dmin, dmin + 1] {
            let Some(o) = solve_mpp(&MppInstance::new(&dag, 1, r, 5), SolveLimits::default())
            else {
                continue;
            };
            t2.row(&[
                spine.to_string(),
                format!("{legs:?}"),
                r.to_string(),
                o.total.to_string(),
                o.cost.io_steps().to_string(),
            ]);
        }
    }
    t2.print_traced("E12.caterpillar");
    println!(
        "\nBoth families are NP-hard for MPP (Lemma 2, adapting BSP scheduling\nhardness); even these toy sizes show the balance/memory coupling the\nreductions exploit."
    );
    rbp_bench::finish_trace();
}
