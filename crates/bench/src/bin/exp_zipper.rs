//! E2 — Figure 2 / Lemma 10: the zipper gadget and superlinear speedup.
//!
//! Sweeps the group size `d` and I/O cost `g`, executing the paper's
//! three canonical strategies through the rules engine, and reports the
//! measured speedup `cost(k=1, r=d+2) / cost(k=2, r=d+2)` against the
//! predicted `(d·g + 1)/(2g + 1)` — superlinear in `k = 2` once `d > 4`.

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::CostModel;
use rbp_gadgets::Zipper;

fn main() {
    rbp_bench::init_trace("exp_zipper", &[]);
    banner(
        "E2",
        "zipper gadget (Fig. 2): swapping vs 2-processor strategies, Lemma 10 speedup",
    );
    let n0 = 200;
    let mut inputs = Vec::new();
    for g in [1u64, 2, 4, 8] {
        for d in [2usize, 4, 8, 16, 32] {
            inputs.push((d, g));
        }
    }
    let rows = par_sweep(inputs, |&(d, g)| {
        let z = Zipper::build(d, n0, 0);
        let model = CostModel::mpp(g);
        let resident = z.strategy_1proc_resident(g).unwrap().cost.total(model);
        let swap = z.strategy_1proc_swapping(g).unwrap().cost.total(model);
        let two = z.strategy_2proc(g).unwrap().cost.total(model);
        let speedup = swap as f64 / two as f64;
        let predicted = (d as f64 * g as f64 + 1.0) / (2.0 * g as f64 + 1.0);
        (d, g, resident, swap, two, speedup, predicted)
    });
    let mut t = Table::new(&[
        "d",
        "g",
        "k=1 r=2d+2 (resident)",
        "k=1 r=d+2 (swap)",
        "k=2 r=d+2",
        "speedup",
        "predicted (dg+1)/(2g+1)",
    ]);
    for (d, g, resident, swap, two, speedup, predicted) in rows {
        t.row(&[
            d.to_string(),
            g.to_string(),
            resident.to_string(),
            swap.to_string(),
            two.to_string(),
            format!("{speedup:.2}"),
            format!("{predicted:.2}"),
        ]);
    }
    t.print_traced("E2");
    println!(
        "\nchain n0={n0}; speedup > 2 at k=2 is the Lemma 10 superlinear regime \
         (grows as (Δin−1)/2 with Δin = d+1)."
    );
    rbp_bench::finish_trace();
}
