//! E15 (extension) — §3.3: synchronous vs asynchronous execution.
//!
//! The paper's model discussion: MPP's synchronous rules simplify the
//! cost function; allowing processors to proceed independently (one
//! computing while another does I/O) improves things by at most a
//! bounded factor. This experiment re-times every scheduler's strategy
//! asynchronously and reports the sync/async ratio — always in
//! `[1, k]`, and far below 2 for batching-heavy schedules.

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::rbp_dag::generators;
use rbp_core::{async_makespan, MppInstance};
use rbp_schedulers::all_schedulers;
use rbp_util::env_seed;

fn main() {
    rbp_bench::init_trace("exp_async", &[]);
    banner("E15", "sync cost vs async makespan (§3.3 extension)");
    let workloads = vec![
        ("fft(4)".to_string(), generators::fft(4)),
        ("grid(6x6)".to_string(), generators::grid(6, 6)),
        (
            "layered(6,8,3)".to_string(),
            generators::layered_random(6, 8, 3, 7 + env_seed(0)),
        ),
        (
            "chains(4x16)".to_string(),
            generators::independent_chains(4, 16),
        ),
    ];
    let mut t = Table::new(&["dag", "scheduler", "sync cost", "async makespan", "ratio"]);
    for (name, dag) in &workloads {
        let r = dag.max_in_degree() + 2;
        let inst = MppInstance::new(dag, 4, r, 3);
        let rows = par_sweep(all_schedulers(), |s| {
            let run = s.schedule(&inst).expect("scheduler runs");
            let sync = run.cost.total(inst.model);
            let asy = async_makespan(&inst, &run.strategy).makespan;
            assert!(asy <= sync, "async can only help");
            assert!(asy * inst.k as u64 >= sync, "speedup capped at k");
            (s.name(), sync, asy)
        });
        for (sname, sync, asy) in rows {
            t.row(&[
                name.clone(),
                sname,
                sync.to_string(),
                asy.to_string(),
                format!("{:.2}", sync as f64 / asy as f64),
            ]);
        }
    }
    t.print_traced("E15");
    println!(
        "\nDe-synchronizing helps most where batches were empty (per-node\nbaseline), least where batching already filled every slot — consistent\nwith the bounded-improvement remark in §3.3."
    );
    rbp_bench::finish_trace();
}
