//! E14 — Definition 1: surplus cost decomposition across schedulers.
//!
//! The surplus `C − n/k` isolates the pebbling's imperfections: I/O,
//! work imbalance, and recomputation. This experiment decomposes each
//! scheduler's surplus on a mixed workload.

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::rbp_dag::generators;
use rbp_core::{MppInstance, MppRunStats};
use rbp_schedulers::all_schedulers;
use rbp_util::env_seed;

fn main() {
    rbp_bench::init_trace("exp_surplus", &[]);
    banner(
        "E14",
        "surplus cost (Def. 1): io / imbalance / recompute decomposition",
    );
    let dag = generators::layered_random(6, 8, 3, 13 + env_seed(0));
    let inst = MppInstance::new(&dag, 4, 4, 3);
    let rows = par_sweep(all_schedulers(), |s| {
        let run = s.schedule(&inst).expect("scheduler runs");
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        (s.name(), stats)
    });
    let mut t = Table::new(&[
        "scheduler",
        "total",
        "surplus",
        "io steps",
        "comm transfers",
        "spill transfers",
        "recomputes",
        "imbalance",
        "avg compute batch",
    ]);
    for (name, s) in rows {
        t.row(&[
            name,
            s.total.to_string(),
            s.surplus.to_string(),
            s.cost.io_steps().to_string(),
            s.communication_transfers().to_string(),
            s.spill_transfers().to_string(),
            s.recomputations.to_string(),
            format!("{:.1}", s.imbalance()),
            format!("{:.2}", s.avg_compute_batch),
        ]);
    }
    t.print_traced("E14");
    println!(
        "\nworkload: {} (n={}, k=4, r=4, g=3); surplus = total − ceil(n/k).",
        dag.name(),
        dag.n()
    );
    rbp_bench::finish_trace();
}
