//! E21 — streaming scheduler tier at scale (`rbp-stream`).
//!
//! The paper's hardness result (MPP `OPT` is NP-hard) means DAGs at the
//! 10^5–10^7-node scale where red-blue I/O bounds actually bite are
//! heuristic-only territory. This experiment measures what that tier
//! delivers in practice, in three phases:
//!
//! 1. **Throughput** — every streaming scheduler over grids from 10^4
//!    to 10^6 nodes, each move verified online by the rule-enforcing
//!    [`rbp_stream::StreamSim`]; reports nodes/sec, CSR pass counts,
//!    and peak active-set size.
//! 2. **Memory** — the 10^6-node run re-done with the strategy
//!    streamed through a byte-counting JSONL sink, then the process
//!    peak RSS (`VmHWM` from `/proc/self/status`) compared against the
//!    serialized strategy size. Asserts peak RSS < strategy bytes:
//!    resident state is sublinear in the strategy, which would not fit
//!    an in-memory `Vec<MppMove>` pipeline.
//! 3. **Cost identity** — on overlap sizes both tiers accept,
//!    `topo-stream` / `wavefront-stream` must reproduce the exact
//!    totals of their in-memory twins (`TopoBaseline` / `Wavefront`).
//!    Asserted, not just reported.
//!
//! Writes `BENCH_scale.json`. Usage: `exp_scale [--quick]` (`--quick`
//! caps the sweep at 10^5 nodes and skips the RSS phase for CI).

use std::time::Instant;

use rbp_bench::{banner, Table};
use rbp_core::rbp_dag::{generators, Dag};
use rbp_core::{CostModel, MppInstance};
use rbp_schedulers::MppScheduler as _;
use rbp_stream::{
    all_stream_schedulers, JsonlSink, NullSink, StreamHeader, StreamRun, StreamScheduler as _,
};
use rbp_util::json::Json;

/// Grid shapes for the throughput sweep (rows × cols = n).
const SIZES: &[(usize, usize)] = &[(100, 100), (250, 400), (1000, 1000)];
const QUICK_SIZES: &[(usize, usize)] = &[(100, 100), (250, 400)];

/// The machine model for every run: modest parallelism, tight fast
/// memory, the paper's canonical g = 2 I/O weight.
const K: usize = 8;
const R: usize = 8;
const G: u64 = 2;

/// Process peak resident set in bytes (`VmHWM`), or `None` off-Linux.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line
        .trim_start_matches("VmHWM:")
        .trim()
        .trim_end_matches("kB")
        .trim()
        .parse()
        .ok()?;
    Some(kb * 1024)
}

fn run_row(dag: &Dag, run: &StreamRun, scheduler: &str) -> Json {
    let model = CostModel::mpp(G);
    Json::obj(vec![
        ("n", Json::from(dag.n())),
        ("scheduler", Json::from(scheduler)),
        ("total", Json::from(run.cost.total(model))),
        ("io_steps", Json::from(run.cost.io_steps())),
        ("moves", Json::from(run.moves)),
        ("passes", Json::from(run.passes)),
        ("peak_active_set", Json::from(run.peak_active_set)),
        ("nodes_per_sec", Json::from(run.nodes_per_sec())),
        ("elapsed_us", Json::from(run.elapsed.as_micros() as u64)),
    ])
}

/// Phase 1: nodes/sec for every streaming scheduler across the sweep.
fn throughput_phase(sizes: &[(usize, usize)]) -> Vec<Json> {
    banner("E21.1", "streaming scheduler throughput");
    let mut table = Table::new(&[
        "n",
        "scheduler",
        "total",
        "io_steps",
        "passes",
        "peak_active",
        "nodes/sec",
        "ms",
    ]);
    let mut rows = Vec::new();
    for &(r, c) in sizes {
        // Grid construction itself is streaming (`Dag::from_edge_stream`):
        // no intermediate adjacency duplication on the way to 10^6 nodes.
        let t0 = Instant::now();
        let dag = generators::grid(r, c);
        let build_ms = t0.elapsed().as_millis();
        println!("built {} ({} nodes) in {build_ms} ms", dag.name(), dag.n());
        for s in all_stream_schedulers() {
            let mut sink = NullSink::new();
            let run = s
                .schedule(&dag, K, R, &mut sink)
                .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), dag.name()));
            rbp_stream::trace_stream_run(&s.name(), &run);
            table.row(&[
                dag.n().to_string(),
                s.name(),
                run.cost.total(CostModel::mpp(G)).to_string(),
                run.cost.io_steps().to_string(),
                run.passes.to_string(),
                run.peak_active_set.to_string(),
                format!("{:.0}", run.nodes_per_sec()),
                format!("{}", run.elapsed.as_millis()),
            ]);
            rows.push(run_row(&dag, &run, &s.name()));
        }
    }
    table.print_traced("scale.throughput");
    rows
}

/// Phase 2: peak RSS vs. serialized strategy size at the largest n.
fn memory_phase(rows: usize, cols: usize) -> Json {
    banner("E21.2", "peak RSS vs. streamed strategy size");
    let dag = generators::grid(rows, cols);
    let header = StreamHeader {
        dag_name: dag.name().to_string(),
        n: dag.n(),
        k: K,
        r: R,
        g: G,
    };
    // A byte-counting sink over `io::sink()`: every move serializes
    // through the real JSONL encoder, nothing is retained.
    let mut sink = JsonlSink::new(std::io::sink(), &header).expect("sink never fails");
    let s = &all_stream_schedulers()[0]; // topo-stream: most moves, worst case
    let run = s
        .schedule(&dag, K, R, &mut sink)
        .unwrap_or_else(|e| panic!("{} on {}: {e}", s.name(), dag.name()));
    let strategy_bytes = run.bytes_emitted;
    let rss = peak_rss_bytes();
    let ratio = rss.map(|b| b as f64 / strategy_bytes as f64);
    println!(
        "n={}: strategy {} bytes streamed, peak RSS {} bytes (ratio {})",
        dag.n(),
        strategy_bytes,
        rss.map_or("unknown".into(), |b| b.to_string()),
        ratio.map_or("-".into(), |x| format!("{x:.2}")),
    );
    if let Some(rss) = rss {
        assert!(
            rss < strategy_bytes,
            "peak RSS ({rss} B) must stay below the serialized strategy \
             ({strategy_bytes} B): resident state is sublinear in the strategy"
        );
    }
    Json::obj(vec![
        ("n", Json::from(dag.n())),
        ("scheduler", Json::from(s.name().as_str())),
        ("strategy_bytes", Json::from(strategy_bytes)),
        ("moves", Json::from(run.moves)),
        ("peak_rss_bytes", rss.map_or(Json::Null, Json::from)),
        ("rss_over_strategy", ratio.map_or(Json::Null, Json::from)),
        (
            "sublinear",
            Json::from(rss.is_none_or(|b| b < strategy_bytes)),
        ),
    ])
}

/// Phase 3: streamed vs. in-memory cost identity on overlap sizes.
fn identity_phase() -> Vec<Json> {
    banner("E21.3", "streamed vs. in-memory cost identity");
    let mut rows = Vec::new();
    let mut table = Table::new(&["n", "pair", "streamed", "in_memory"]);
    for (r, c) in [(20, 20), (30, 30), (60, 60)] {
        let dag = generators::grid(r, c);
        let inst = MppInstance::new(&dag, K, R, G);
        let pairs: [(&str, StreamRun, u64); 2] = [
            (
                "topo",
                {
                    let mut sink = NullSink::new();
                    rbp_stream::TopoStream
                        .schedule(&dag, K, R, &mut sink)
                        .expect("topo-stream")
                },
                rbp_schedulers::TopoBaseline
                    .schedule(&inst)
                    .expect("topo-baseline")
                    .cost
                    .total(inst.model),
            ),
            (
                "wavefront",
                {
                    let mut sink = NullSink::new();
                    rbp_stream::WavefrontStream
                        .schedule(&dag, K, R, &mut sink)
                        .expect("wavefront-stream")
                },
                rbp_schedulers::Wavefront
                    .schedule(&inst)
                    .expect("wavefront")
                    .cost
                    .total(inst.model),
            ),
        ];
        for (pair, run, in_memory) in pairs {
            let streamed = run.cost.total(inst.model);
            assert_eq!(
                streamed,
                in_memory,
                "{pair} diverged on {} (streamed {streamed}, in-memory {in_memory})",
                dag.name()
            );
            table.row(&[
                dag.n().to_string(),
                pair.to_string(),
                streamed.to_string(),
                in_memory.to_string(),
            ]);
            rows.push(Json::obj(vec![
                ("n", Json::from(dag.n())),
                ("pair", Json::from(pair)),
                ("streamed", Json::from(streamed)),
                ("in_memory", Json::from(in_memory)),
                ("identical", Json::from(true)),
            ]));
        }
    }
    table.print_traced("scale.identity");
    rows
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    rbp_bench::init_trace("exp_scale", &[("quick", rbp_trace::Json::from(quick))]);
    banner("E21", "streaming scheduler tier at scale");
    let sizes = if quick { QUICK_SIZES } else { SIZES };

    let throughput = throughput_phase(sizes);
    let memory = if quick {
        println!("\n(--quick: skipping the 10^6-node RSS phase)");
        Json::Null
    } else {
        let &(r, c) = SIZES.last().expect("sizes non-empty");
        memory_phase(r, c)
    };
    let identity = identity_phase();

    let json = Json::obj(vec![
        ("suite", Json::from("scale")),
        ("quick", Json::from(quick)),
        ("k", Json::from(K)),
        ("r", Json::from(R)),
        ("g", Json::from(G)),
        ("throughput", Json::Arr(throughput)),
        ("memory", memory),
        ("identity", Json::Arr(identity)),
    ]);
    let path = "BENCH_scale.json";
    match std::fs::write(path, json.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    rbp_bench::finish_trace();
}
