//! E9 — §5 I/O counts: adding a processor makes I/O appear
//! (`OPT_IO(1)=0, OPT_IO(2)=Θ(n)`) or vanish
//! (`OPT_IO(1)=Θ(n), OPT_IO(2)=0`).

use rbp_bench::{banner, Table};
use rbp_core::{CostModel, MppInstance, SolveLimits};
use rbp_gadgets::{ImbalancedPair, SparseLadder};

fn main() {
    rbp_bench::init_trace("exp_io_tradeoff", &[]);
    banner(
        "E9a",
        "sparse ladder: I/O appears at k=2 because it wins (m > 2g)",
    );
    let mut t = Table::new(&["len", "m", "g", "cost k=1", "io k=1", "cost k=2", "io k=2"]);
    for (len, g) in [(60usize, 1u64), (60, 2), (120, 3)] {
        let m = 2 * g as usize + 2;
        let l = SparseLadder::build(len, m);
        let model = CostModel::mpp(g);
        let r1 = l.strategy_k1(g).unwrap();
        let r2 = l.strategy_k2(g).unwrap();
        assert!(r2.cost.total(model) < r1.cost.total(model));
        t.row(&[
            len.to_string(),
            m.to_string(),
            g.to_string(),
            r1.cost.total(model).to_string(),
            r1.cost.io_steps().to_string(),
            r2.cost.total(model).to_string(),
            r2.cost.io_steps().to_string(),
        ]);
    }
    t.print_traced("E9a");
    println!("\nk=1 optimum is I/O-free; the cheaper k=2 schedule communicates at\nevery rung: Θ(n/m) = Θ(n) I/O steps appear in the optimum.");

    println!("\n-- exact check on a tiny ladder (len=8, m=4, g=1) --");
    let l = SparseLadder::build(8, 4);
    let lim = SolveLimits::default();
    let o1 = rbp_core::solve_mpp(&MppInstance::new(&l.dag, 1, 4, 1), lim).unwrap();
    println!(
        "OPT(1) = {} with {} I/O steps (expected 0)",
        o1.total,
        o1.cost.io_steps()
    );
    match rbp_core::solve_mpp(
        &MppInstance::new(&l.dag, 2, 4, 1),
        SolveLimits::states(500_000),
    ) {
        Some(o2) => println!(
            "OPT(2) = {} with {} I/O steps",
            o2.total,
            o2.cost.io_steps()
        ),
        None => println!("OPT(2): exact out of budget; constructive strategy stands"),
    }

    banner(
        "E9b",
        "imbalanced pair: I/O vanishes at k=2 (recomputation + imbalance)",
    );
    let mut t2 = Table::new(&[
        "d",
        "n1",
        "n2",
        "g",
        "k=1 loads (total/io)",
        "k=1 recompute (total/io)",
        "k=2 recompute (total/io)",
    ]);
    for g in [2u64, 3, 5] {
        let damper = g as usize;
        let d = 2;
        let n1 = (d * (2 * g as usize + 1) + 4).max(8);
        let n2 = n1 * (damper + 2);
        let p = ImbalancedPair::build(d, n1, n2, damper);
        let model = CostModel::mpp(g);
        let k1l = p.strategy_k1_loads(g).unwrap().cost;
        let k1r = p.strategy_k1_recompute(g).unwrap().cost;
        let k2 = p.strategy_k2_recompute(g).unwrap().cost;
        assert!(k1l.total(model) < k1r.total(model), "loads win at k=1");
        assert!(k2.total(model) < k1l.total(model), "zero-I/O wins at k=2");
        assert_eq!(k2.io_steps(), 0);
        t2.row(&[
            d.to_string(),
            n1.to_string(),
            n2.to_string(),
            g.to_string(),
            format!("{}/{}", k1l.total(model), k1l.io_steps()),
            format!("{}/{}", k1r.total(model), k1r.io_steps()),
            format!("{}/{}", k2.total(model), k2.io_steps()),
        ]);
    }
    t2.print_traced("E9b");
    println!(
        "\nAt k=1 the Θ(n) load schedule is optimal among the three; at k=2 the\nzero-I/O schedule (heavy chain recomputes, light chain batches along)\nbeats it — the optimum's I/O count drops from Θ(n) to 0."
    );
    rbp_bench::finish_trace();
}
