//! E18 — load-testing the pebbling service (`rbp-serve`).
//!
//! Runs the HTTP server **in-process** on an ephemeral port and fires
//! real TCP traffic at it through the crate's own client, in three
//! phases:
//!
//! 1. **Cache** — the same portfolio request twice: the cold run pays
//!    the full racing budget, the warm run is answered from the
//!    content-addressed result cache. Asserts the warm hit is ≥ 10×
//!    faster and returns the identical cost.
//! 2. **Throughput** — several concurrent clients issuing a mixed
//!    workload (bounds / schedule / generate / solve, with repeats so
//!    the cache participates); reports requests-per-second and
//!    p50/p95/p99 latency.
//! 3. **Overload** — a deliberately tiny server (1 worker, 2 queue
//!    slots, no cache) under a concurrent burst; asserts every request
//!    is answered with either `200` or an explicit `503` + `Retry-After`
//!    (backpressure never drops work silently).
//!
//! E20 extends the harness to the persistent/fleet tier:
//!
//! 4. **Restart survival** — a server with `--store-dir` solves an
//!    instance, shuts down completely, and a fresh process over the
//!    same directory must answer the identical request as a warm
//!    cache **hit** (the warm-boot contract of docs/OPERATIONS.md).
//! 5. **Fleet** — the phase-2 mixed workload replayed through
//!    [`rbp_serve::FleetClient`]: persistent binary-protocol
//!    connections consistent-hash-routed over N in-process server
//!    instances. Asserts fleet throughput beats the single-process
//!    HTTP number measured in phase 2 of the same run.
//!
//! Writes `BENCH_serve.json`. Usage: `exp_serve [--quick]` (`--quick`
//! trims budgets and request counts for CI).

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rbp_bench::{banner, Table};
use rbp_serve::http::{self, ClientResponse};
use rbp_serve::{wire, FleetClient, ServeConfig, Server};
use rbp_util::json::Json;

const TIMEOUT: Duration = Duration::from_secs(30);

fn post(server: &Server, path: &str, body: &str) -> ClientResponse {
    http::request(server.addr(), "POST", path, Some(body), TIMEOUT).expect("request answered")
}

/// Percentile over raw latency samples (microseconds).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct CachePhase {
    cold_us: u64,
    warm_us: u64,
    speedup: f64,
    total: u64,
}

/// Phase 1: cold vs. warm on an identical instance.
fn cache_phase(budget_ms: u64) -> CachePhase {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let body = format!(
        r#"{{"generator":{{"family":"grid","params":[3,4]}},"k":2,"r":3,"g":2,"budget_ms":{budget_ms}}}"#
    );

    let t0 = Instant::now();
    let cold = post(&server, "/v1/portfolio", &body);
    let cold_us = t0.elapsed().as_micros() as u64;
    assert_eq!(cold.status, 200, "{}", cold.body);
    let cold_json = Json::parse(&cold.body).unwrap();
    assert_eq!(cold_json.get("cache").and_then(Json::as_str), Some("miss"));
    let total = cold_json
        .get("result")
        .and_then(|r| r.get("total"))
        .and_then(Json::as_u64)
        .expect("portfolio total");

    let t1 = Instant::now();
    let warm = post(&server, "/v1/portfolio", &body);
    let warm_us = (t1.elapsed().as_micros() as u64).max(1);
    assert_eq!(warm.status, 200, "{}", warm.body);
    let warm_json = Json::parse(&warm.body).unwrap();
    assert_eq!(warm_json.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(
        warm_json
            .get("result")
            .and_then(|r| r.get("total"))
            .and_then(Json::as_u64),
        Some(total),
        "cached result must be byte-identical in cost"
    );
    server.shutdown();

    let speedup = cold_us as f64 / warm_us as f64;
    assert!(
        speedup >= 10.0,
        "warm cache hit must be ≥ 10× faster than the cold solve \
         (cold {cold_us} µs, warm {warm_us} µs, {speedup:.1}×)"
    );
    CachePhase {
        cold_us,
        warm_us,
        speedup,
        total,
    }
}

struct ThroughputPhase {
    clients: usize,
    requests: usize,
    ok: usize,
    non_ok: usize,
    elapsed_us: u64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Phase 2: mixed concurrent workload against a healthy server.
fn throughput_phase(clients: usize, per_client: usize) -> ThroughputPhase {
    let server = Server::start(ServeConfig {
        workers: 4,
        queue_cap: 256,
        cache_cap: 256,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Mixed workload: cheap analysis endpoints over a small pool of
    // instances, so repeats exercise the cache like a real client
    // population would.
    let bodies: Vec<(&str, String)> = (0..8)
        .map(|i| {
            let (rows, cols) = (2 + i % 2, 2 + i % 3);
            let body = format!(
                r#"{{"generator":{{"family":"grid","params":[{rows},{cols}]}},"k":2,"r":3,"g":2}}"#
            );
            let path = match i % 4 {
                0 => "/v1/bounds",
                1 => "/v1/schedule",
                2 => "/v1/generate",
                _ => "/v1/bounds",
            };
            (path, body)
        })
        .collect();

    let ok = AtomicUsize::new(0);
    let non_ok = AtomicUsize::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let bodies = &bodies;
                let ok = &ok;
                let non_ok = &non_ok;
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let (path, body) = &bodies[(c + 3 * i) % bodies.len()];
                        let t = Instant::now();
                        let resp = http::request(addr, "POST", path, Some(body), TIMEOUT)
                            .expect("request answered");
                        lats.push(t.elapsed().as_micros() as u64);
                        if resp.status == 200 {
                            ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            non_ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed_us = (t0.elapsed().as_micros() as u64).max(1);
    latencies.sort_unstable();

    let stats = Json::parse(
        &http::request(addr, "GET", "/v1/stats", None, TIMEOUT)
            .expect("stats")
            .body,
    )
    .unwrap();
    let cache = stats.get("cache").unwrap();
    let cache_hits = cache.get("hits").and_then(Json::as_u64).unwrap_or(0);
    let cache_misses = cache.get("misses").and_then(Json::as_u64).unwrap_or(0);
    server.shutdown();

    let sent = clients * per_client;
    let okc = ok.load(Ordering::Relaxed);
    let nokc = non_ok.load(Ordering::Relaxed);
    assert_eq!(okc + nokc, sent, "every request answered");
    assert_eq!(nokc, 0, "healthy server refuses nothing at this load");
    ThroughputPhase {
        clients,
        requests: sent,
        ok: okc,
        non_ok: nokc,
        elapsed_us,
        rps: sent as f64 / (elapsed_us as f64 / 1e6),
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
        cache_hits,
        cache_misses,
    }
}

struct OverloadPhase {
    sent: usize,
    ok: usize,
    rejected: usize,
    rejection_rate: f64,
}

/// Phase 3: burst against a 1-worker / 2-slot server.
fn overload_phase(burst: usize, budget_ms: u64) -> OverloadPhase {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 2,
        cache_cap: 0,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let results: Vec<ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..burst)
            .map(|i| {
                scope.spawn(move || {
                    // Distinct seeds keep every request a distinct job.
                    let body = format!(
                        r#"{{"generator":{{"family":"grid","params":[2,4]}},"k":2,"r":3,"g":2,"budget_ms":{budget_ms},"seed":{i}}}"#
                    );
                    http::request(addr, "POST", "/v1/portfolio", Some(&body), TIMEOUT)
                        .expect("request answered even under overload")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    server.shutdown();

    let ok = results.iter().filter(|r| r.status == 200).count();
    let rejected: Vec<&ClientResponse> = results.iter().filter(|r| r.status == 503).collect();
    assert_eq!(
        ok + rejected.len(),
        burst,
        "every request answered with 200 or an explicit 503"
    );
    assert!(!rejected.is_empty(), "the burst must trigger backpressure");
    for r in &rejected {
        assert!(
            r.header("retry-after").is_some(),
            "503 must carry Retry-After: {}",
            r.body
        );
    }
    OverloadPhase {
        sent: burst,
        ok,
        rejected: rejected.len(),
        rejection_rate: rejected.len() as f64 / burst as f64,
    }
}

struct RestartPhase {
    cold_us: u64,
    warm_us: u64,
    speedup: f64,
    warm_hit: bool,
    store_entries: u64,
}

/// Phase 4 (E20): kill + reboot over a persistent store directory; the
/// reborn process must answer the old instance as a warm cache hit.
fn restart_phase(budget_ms: u64) -> RestartPhase {
    let dir: PathBuf = std::env::temp_dir().join(format!("rbp-e20-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = || ServeConfig {
        workers: 2,
        store_dir: Some(dir.display().to_string()),
        ..ServeConfig::default()
    };
    let body = format!(
        r#"{{"generator":{{"family":"grid","params":[3,4]}},"k":2,"r":3,"g":2,"budget_ms":{budget_ms}}}"#
    );

    // Generation 1: pay for the solve, persist it, die.
    let first = Server::start(cfg()).expect("bind with store");
    let t0 = Instant::now();
    let cold = post(&first, "/v1/portfolio", &body);
    let cold_us = t0.elapsed().as_micros() as u64;
    assert_eq!(cold.status, 200, "{}", cold.body);
    first.shutdown();

    // Generation 2: fresh process, same directory — warm from boot.
    let second = Server::start(cfg()).expect("rebind with store");
    let t1 = Instant::now();
    let warm = post(&second, "/v1/portfolio", &body);
    let warm_us = (t1.elapsed().as_micros() as u64).max(1);
    assert_eq!(warm.status, 200, "{}", warm.body);
    let warm_json = Json::parse(&warm.body).unwrap();
    let warm_hit = warm_json.get("cache").and_then(Json::as_str) == Some("hit");
    assert!(
        warm_hit,
        "restarted server must answer from the warmed cache: {}",
        warm.body
    );
    let stats = Json::parse(
        &http::request(second.addr(), "GET", "/v1/stats", None, TIMEOUT)
            .expect("stats")
            .body,
    )
    .unwrap();
    let store_entries = stats
        .get("store")
        .and_then(|s| s.get("entries"))
        .and_then(Json::as_u64)
        .unwrap_or(0);
    second.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    RestartPhase {
        cold_us,
        warm_us,
        speedup: cold_us as f64 / warm_us as f64,
        warm_hit,
        store_entries,
    }
}

struct FleetPhase {
    members: usize,
    clients: usize,
    requests: usize,
    elapsed_us: u64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    hits: usize,
    misses: usize,
    baseline_rps: f64,
    speedup_vs_single: f64,
}

/// Phase 5 (E20): the phase-2 mixed workload over persistent binary
/// connections consistent-hash-routed across N server instances.
fn fleet_phase(
    members_n: usize,
    clients: usize,
    per_client: usize,
    baseline_rps: f64,
) -> FleetPhase {
    let members: Vec<Server> = (0..members_n)
        .map(|_| {
            Server::start(ServeConfig {
                workers: 2,
                queue_cap: 256,
                cache_cap: 256,
                ..ServeConfig::default()
            })
            .expect("bind fleet member")
        })
        .collect();
    let addrs: Vec<_> = members.iter().map(Server::addr).collect();

    // The same instance mix as phase 2, expressed as binary endpoints.
    let bodies: Vec<(&str, String)> = (0..8)
        .map(|i| {
            let (rows, cols) = (2 + i % 2, 2 + i % 3);
            let body = format!(
                r#"{{"generator":{{"family":"grid","params":[{rows},{cols}]}},"k":2,"r":3,"g":2}}"#
            );
            let endpoint = match i % 4 {
                0 => "bounds",
                1 => "schedule",
                2 => "generate",
                _ => "bounds",
            };
            (endpoint, body)
        })
        .collect();

    let hits = AtomicUsize::new(0);
    let misses = AtomicUsize::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let bodies = &bodies;
                let addrs = &addrs;
                let hits = &hits;
                let misses = &misses;
                scope.spawn(move || {
                    // One persistent fleet client per load thread: the
                    // connections live for the whole run.
                    let mut fleet = FleetClient::new(addrs.clone(), TIMEOUT);
                    let mut lats = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let (endpoint, body) = &bodies[(c + 3 * i) % bodies.len()];
                        let t = Instant::now();
                        let resp = fleet.call(endpoint, body).expect("fleet request answered");
                        lats.push(t.elapsed().as_micros() as u64);
                        assert_eq!(resp.status, 200, "{}", resp.payload);
                        if resp.tag == wire::TAG_MISS {
                            misses.fetch_add(1, Ordering::Relaxed);
                        } else {
                            hits.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed_us = (t0.elapsed().as_micros() as u64).max(1);
    latencies.sort_unstable();
    for server in members {
        server.shutdown();
    }

    let requests = clients * per_client;
    let rps = requests as f64 / (elapsed_us as f64 / 1e6);
    assert!(
        rps > baseline_rps,
        "fleet over binary connections must beat the single-process HTTP \
         baseline ({rps:.0} vs {baseline_rps:.0} req/s)"
    );
    FleetPhase {
        members: members_n,
        clients,
        requests,
        elapsed_us,
        rps,
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
        hits: hits.load(Ordering::Relaxed),
        misses: misses.load(Ordering::Relaxed),
        baseline_rps,
        speedup_vs_single: rps / baseline_rps,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    rbp_bench::init_trace("exp_serve", &[("quick", rbp_trace::Json::from(quick))]);
    banner("E18+E20", "pebbling-as-a-service load harness");

    let (budget_ms, clients, per_client, burst) = if quick {
        (100, 4, 8, 6)
    } else {
        (250, 8, 25, 10)
    };

    let cache = cache_phase(budget_ms);
    let mut t = Table::new(&["phase 1: cache", "value"]);
    t.row(&["cold (miss) µs", &cache.cold_us.to_string()]);
    t.row(&["warm (hit) µs", &cache.warm_us.to_string()]);
    t.row(&["speedup", &format!("{:.1}×", cache.speedup)]);
    t.row(&["total (both)", &cache.total.to_string()]);
    t.print_traced("E18.cache");

    let tp = throughput_phase(clients, per_client);
    let mut t = Table::new(&["phase 2: throughput", "value"]);
    t.row(&["clients", &tp.clients.to_string()]);
    t.row(&["requests", &tp.requests.to_string()]);
    t.row(&["rps", &format!("{:.0}", tp.rps)]);
    t.row(&["p50 µs", &tp.p50_us.to_string()]);
    t.row(&["p95 µs", &tp.p95_us.to_string()]);
    t.row(&["p99 µs", &tp.p99_us.to_string()]);
    t.row(&["cache hits", &tp.cache_hits.to_string()]);
    t.row(&["cache misses", &tp.cache_misses.to_string()]);
    t.print_traced("E18.throughput");

    let ov = overload_phase(burst, budget_ms);
    let mut t = Table::new(&["phase 3: overload", "value"]);
    t.row(&["sent", &ov.sent.to_string()]);
    t.row(&["200 ok", &ov.ok.to_string()]);
    t.row(&["503 rejected", &ov.rejected.to_string()]);
    t.row(&[
        "rejection rate",
        &format!("{:.0}%", ov.rejection_rate * 100.0),
    ]);
    t.print_traced("E18.overload");

    let rs = restart_phase(budget_ms);
    let mut t = Table::new(&["phase 4: restart survival", "value"]);
    t.row(&["cold (gen 1) µs", &rs.cold_us.to_string()]);
    t.row(&["warm after reboot µs", &rs.warm_us.to_string()]);
    t.row(&["speedup", &format!("{:.1}×", rs.speedup)]);
    t.row(&["warm hit", &rs.warm_hit.to_string()]);
    t.row(&["store entries", &rs.store_entries.to_string()]);
    t.print_traced("E20.restart");

    let fleet_members = 3;
    let fl = fleet_phase(fleet_members, clients, per_client, tp.rps);
    let mut t = Table::new(&["phase 5: fleet (binary)", "value"]);
    t.row(&["members", &fl.members.to_string()]);
    t.row(&["clients", &fl.clients.to_string()]);
    t.row(&["requests", &fl.requests.to_string()]);
    t.row(&["rps", &format!("{:.0}", fl.rps)]);
    t.row(&["single-process rps", &format!("{:.0}", fl.baseline_rps)]);
    t.row(&[
        "speedup vs single",
        &format!("{:.2}×", fl.speedup_vs_single),
    ]);
    t.row(&["p50 µs", &fl.p50_us.to_string()]);
    t.row(&["p95 µs", &fl.p95_us.to_string()]);
    t.row(&["p99 µs", &fl.p99_us.to_string()]);
    t.row(&["cache hits", &fl.hits.to_string()]);
    t.row(&["cache misses", &fl.misses.to_string()]);
    t.print_traced("E20.fleet");

    println!(
        "\ncache hit speedup {:.1}× (≥ 10× required); overload answered {}/{} explicitly; \
         restart warm hit {:.1}× faster; fleet {:.0} req/s ({:.2}× the single process)",
        cache.speedup, ov.sent, ov.sent, rs.speedup, fl.rps, fl.speedup_vs_single
    );

    let json = Json::obj(vec![
        ("suite", Json::from("serve")),
        ("quick", Json::from(quick)),
        (
            "cache",
            Json::obj(vec![
                ("cold_us", Json::from(cache.cold_us)),
                ("warm_us", Json::from(cache.warm_us)),
                ("speedup", Json::from(cache.speedup)),
                ("total", Json::from(cache.total)),
            ]),
        ),
        (
            "throughput",
            Json::obj(vec![
                ("clients", Json::from(tp.clients)),
                ("requests", Json::from(tp.requests)),
                ("ok", Json::from(tp.ok)),
                ("non_ok", Json::from(tp.non_ok)),
                ("elapsed_us", Json::from(tp.elapsed_us)),
                ("rps", Json::from(tp.rps)),
                ("p50_us", Json::from(tp.p50_us)),
                ("p95_us", Json::from(tp.p95_us)),
                ("p99_us", Json::from(tp.p99_us)),
                ("cache_hits", Json::from(tp.cache_hits)),
                ("cache_misses", Json::from(tp.cache_misses)),
            ]),
        ),
        (
            "overload",
            Json::obj(vec![
                ("sent", Json::from(ov.sent)),
                ("ok", Json::from(ov.ok)),
                ("rejected", Json::from(ov.rejected)),
                ("rejection_rate", Json::from(ov.rejection_rate)),
            ]),
        ),
        (
            "restart",
            Json::obj(vec![
                ("cold_us", Json::from(rs.cold_us)),
                ("warm_us", Json::from(rs.warm_us)),
                ("speedup", Json::from(rs.speedup)),
                ("warm_hit", Json::from(rs.warm_hit)),
                ("store_entries", Json::from(rs.store_entries)),
            ]),
        ),
        (
            "fleet",
            Json::obj(vec![
                ("members", Json::from(fl.members)),
                ("clients", Json::from(fl.clients)),
                ("requests", Json::from(fl.requests)),
                ("elapsed_us", Json::from(fl.elapsed_us)),
                ("rps", Json::from(fl.rps)),
                ("p50_us", Json::from(fl.p50_us)),
                ("p95_us", Json::from(fl.p95_us)),
                ("p99_us", Json::from(fl.p99_us)),
                ("cache_hits", Json::from(fl.hits)),
                ("cache_misses", Json::from(fl.misses)),
                ("baseline_rps", Json::from(fl.baseline_rps)),
                ("speedup_vs_single", Json::from(fl.speedup_vs_single)),
            ]),
        ),
    ]);
    let path = "BENCH_serve.json";
    match std::fs::write(path, json.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    rbp_bench::finish_trace();
}
