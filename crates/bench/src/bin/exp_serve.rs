//! E18 — load-testing the pebbling service (`rbp-serve`).
//!
//! Runs the HTTP server **in-process** on an ephemeral port and fires
//! real TCP traffic at it through the crate's own client, in three
//! phases:
//!
//! 1. **Cache** — the same portfolio request twice: the cold run pays
//!    the full racing budget, the warm run is answered from the
//!    content-addressed result cache. Asserts the warm hit is ≥ 10×
//!    faster and returns the identical cost.
//! 2. **Throughput** — several concurrent clients issuing a mixed
//!    workload (bounds / schedule / generate / solve, with repeats so
//!    the cache participates); reports requests-per-second and
//!    p50/p95/p99 latency.
//! 3. **Overload** — a deliberately tiny server (1 worker, 2 queue
//!    slots, no cache) under a concurrent burst; asserts every request
//!    is answered with either `200` or an explicit `503` + `Retry-After`
//!    (backpressure never drops work silently).
//!
//! Writes `BENCH_serve.json`. Usage: `exp_serve [--quick]` (`--quick`
//! trims budgets and request counts for CI).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use rbp_bench::{banner, Table};
use rbp_serve::http::{self, ClientResponse};
use rbp_serve::{ServeConfig, Server};
use rbp_util::json::Json;

const TIMEOUT: Duration = Duration::from_secs(30);

fn post(server: &Server, path: &str, body: &str) -> ClientResponse {
    http::request(server.addr(), "POST", path, Some(body), TIMEOUT).expect("request answered")
}

/// Percentile over raw latency samples (microseconds).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

struct CachePhase {
    cold_us: u64,
    warm_us: u64,
    speedup: f64,
    total: u64,
}

/// Phase 1: cold vs. warm on an identical instance.
fn cache_phase(budget_ms: u64) -> CachePhase {
    let server = Server::start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind");
    let body = format!(
        r#"{{"generator":{{"family":"grid","params":[3,4]}},"k":2,"r":3,"g":2,"budget_ms":{budget_ms}}}"#
    );

    let t0 = Instant::now();
    let cold = post(&server, "/v1/portfolio", &body);
    let cold_us = t0.elapsed().as_micros() as u64;
    assert_eq!(cold.status, 200, "{}", cold.body);
    let cold_json = Json::parse(&cold.body).unwrap();
    assert_eq!(cold_json.get("cache").and_then(Json::as_str), Some("miss"));
    let total = cold_json
        .get("result")
        .and_then(|r| r.get("total"))
        .and_then(Json::as_u64)
        .expect("portfolio total");

    let t1 = Instant::now();
    let warm = post(&server, "/v1/portfolio", &body);
    let warm_us = (t1.elapsed().as_micros() as u64).max(1);
    assert_eq!(warm.status, 200, "{}", warm.body);
    let warm_json = Json::parse(&warm.body).unwrap();
    assert_eq!(warm_json.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(
        warm_json
            .get("result")
            .and_then(|r| r.get("total"))
            .and_then(Json::as_u64),
        Some(total),
        "cached result must be byte-identical in cost"
    );
    server.shutdown();

    let speedup = cold_us as f64 / warm_us as f64;
    assert!(
        speedup >= 10.0,
        "warm cache hit must be ≥ 10× faster than the cold solve \
         (cold {cold_us} µs, warm {warm_us} µs, {speedup:.1}×)"
    );
    CachePhase {
        cold_us,
        warm_us,
        speedup,
        total,
    }
}

struct ThroughputPhase {
    clients: usize,
    requests: usize,
    ok: usize,
    non_ok: usize,
    elapsed_us: u64,
    rps: f64,
    p50_us: u64,
    p95_us: u64,
    p99_us: u64,
    cache_hits: u64,
    cache_misses: u64,
}

/// Phase 2: mixed concurrent workload against a healthy server.
fn throughput_phase(clients: usize, per_client: usize) -> ThroughputPhase {
    let server = Server::start(ServeConfig {
        workers: 4,
        queue_cap: 256,
        cache_cap: 256,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    // Mixed workload: cheap analysis endpoints over a small pool of
    // instances, so repeats exercise the cache like a real client
    // population would.
    let bodies: Vec<(&str, String)> = (0..8)
        .map(|i| {
            let (rows, cols) = (2 + i % 2, 2 + i % 3);
            let body = format!(
                r#"{{"generator":{{"family":"grid","params":[{rows},{cols}]}},"k":2,"r":3,"g":2}}"#
            );
            let path = match i % 4 {
                0 => "/v1/bounds",
                1 => "/v1/schedule",
                2 => "/v1/generate",
                _ => "/v1/bounds",
            };
            (path, body)
        })
        .collect();

    let ok = AtomicUsize::new(0);
    let non_ok = AtomicUsize::new(0);
    let t0 = Instant::now();
    let mut latencies: Vec<u64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let bodies = &bodies;
                let ok = &ok;
                let non_ok = &non_ok;
                scope.spawn(move || {
                    let mut lats = Vec::with_capacity(per_client);
                    for i in 0..per_client {
                        let (path, body) = &bodies[(c + 3 * i) % bodies.len()];
                        let t = Instant::now();
                        let resp = http::request(addr, "POST", path, Some(body), TIMEOUT)
                            .expect("request answered");
                        lats.push(t.elapsed().as_micros() as u64);
                        if resp.status == 200 {
                            ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            non_ok.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    lats
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    let elapsed_us = (t0.elapsed().as_micros() as u64).max(1);
    latencies.sort_unstable();

    let stats = Json::parse(
        &http::request(addr, "GET", "/v1/stats", None, TIMEOUT)
            .expect("stats")
            .body,
    )
    .unwrap();
    let cache = stats.get("cache").unwrap();
    let cache_hits = cache.get("hits").and_then(Json::as_u64).unwrap_or(0);
    let cache_misses = cache.get("misses").and_then(Json::as_u64).unwrap_or(0);
    server.shutdown();

    let sent = clients * per_client;
    let okc = ok.load(Ordering::Relaxed);
    let nokc = non_ok.load(Ordering::Relaxed);
    assert_eq!(okc + nokc, sent, "every request answered");
    assert_eq!(nokc, 0, "healthy server refuses nothing at this load");
    ThroughputPhase {
        clients,
        requests: sent,
        ok: okc,
        non_ok: nokc,
        elapsed_us,
        rps: sent as f64 / (elapsed_us as f64 / 1e6),
        p50_us: percentile(&latencies, 50.0),
        p95_us: percentile(&latencies, 95.0),
        p99_us: percentile(&latencies, 99.0),
        cache_hits,
        cache_misses,
    }
}

struct OverloadPhase {
    sent: usize,
    ok: usize,
    rejected: usize,
    rejection_rate: f64,
}

/// Phase 3: burst against a 1-worker / 2-slot server.
fn overload_phase(burst: usize, budget_ms: u64) -> OverloadPhase {
    let server = Server::start(ServeConfig {
        workers: 1,
        queue_cap: 2,
        cache_cap: 0,
        ..ServeConfig::default()
    })
    .expect("bind");
    let addr = server.addr();

    let results: Vec<ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..burst)
            .map(|i| {
                scope.spawn(move || {
                    // Distinct seeds keep every request a distinct job.
                    let body = format!(
                        r#"{{"generator":{{"family":"grid","params":[2,4]}},"k":2,"r":3,"g":2,"budget_ms":{budget_ms},"seed":{i}}}"#
                    );
                    http::request(addr, "POST", "/v1/portfolio", Some(&body), TIMEOUT)
                        .expect("request answered even under overload")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    server.shutdown();

    let ok = results.iter().filter(|r| r.status == 200).count();
    let rejected: Vec<&ClientResponse> = results.iter().filter(|r| r.status == 503).collect();
    assert_eq!(
        ok + rejected.len(),
        burst,
        "every request answered with 200 or an explicit 503"
    );
    assert!(!rejected.is_empty(), "the burst must trigger backpressure");
    for r in &rejected {
        assert!(
            r.header("retry-after").is_some(),
            "503 must carry Retry-After: {}",
            r.body
        );
    }
    OverloadPhase {
        sent: burst,
        ok,
        rejected: rejected.len(),
        rejection_rate: rejected.len() as f64 / burst as f64,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    rbp_bench::init_trace("exp_serve", &[("quick", rbp_trace::Json::from(quick))]);
    banner("E18", "pebbling-as-a-service load harness");

    let (budget_ms, clients, per_client, burst) = if quick {
        (100, 4, 8, 6)
    } else {
        (250, 8, 25, 10)
    };

    let cache = cache_phase(budget_ms);
    let mut t = Table::new(&["phase 1: cache", "value"]);
    t.row(&["cold (miss) µs", &cache.cold_us.to_string()]);
    t.row(&["warm (hit) µs", &cache.warm_us.to_string()]);
    t.row(&["speedup", &format!("{:.1}×", cache.speedup)]);
    t.row(&["total (both)", &cache.total.to_string()]);
    t.print_traced("E18.cache");

    let tp = throughput_phase(clients, per_client);
    let mut t = Table::new(&["phase 2: throughput", "value"]);
    t.row(&["clients", &tp.clients.to_string()]);
    t.row(&["requests", &tp.requests.to_string()]);
    t.row(&["rps", &format!("{:.0}", tp.rps)]);
    t.row(&["p50 µs", &tp.p50_us.to_string()]);
    t.row(&["p95 µs", &tp.p95_us.to_string()]);
    t.row(&["p99 µs", &tp.p99_us.to_string()]);
    t.row(&["cache hits", &tp.cache_hits.to_string()]);
    t.row(&["cache misses", &tp.cache_misses.to_string()]);
    t.print_traced("E18.throughput");

    let ov = overload_phase(burst, budget_ms);
    let mut t = Table::new(&["phase 3: overload", "value"]);
    t.row(&["sent", &ov.sent.to_string()]);
    t.row(&["200 ok", &ov.ok.to_string()]);
    t.row(&["503 rejected", &ov.rejected.to_string()]);
    t.row(&[
        "rejection rate",
        &format!("{:.0}%", ov.rejection_rate * 100.0),
    ]);
    t.print_traced("E18.overload");

    println!(
        "\ncache hit speedup {:.1}× (≥ 10× required); overload answered {}/{} explicitly",
        cache.speedup, ov.sent, ov.sent
    );

    let json = Json::obj(vec![
        ("suite", Json::from("serve")),
        ("quick", Json::from(quick)),
        (
            "cache",
            Json::obj(vec![
                ("cold_us", Json::from(cache.cold_us)),
                ("warm_us", Json::from(cache.warm_us)),
                ("speedup", Json::from(cache.speedup)),
                ("total", Json::from(cache.total)),
            ]),
        ),
        (
            "throughput",
            Json::obj(vec![
                ("clients", Json::from(tp.clients)),
                ("requests", Json::from(tp.requests)),
                ("ok", Json::from(tp.ok)),
                ("non_ok", Json::from(tp.non_ok)),
                ("elapsed_us", Json::from(tp.elapsed_us)),
                ("rps", Json::from(tp.rps)),
                ("p50_us", Json::from(tp.p50_us)),
                ("p95_us", Json::from(tp.p95_us)),
                ("p99_us", Json::from(tp.p99_us)),
                ("cache_hits", Json::from(tp.cache_hits)),
                ("cache_misses", Json::from(tp.cache_misses)),
            ]),
        ),
        (
            "overload",
            Json::obj(vec![
                ("sent", Json::from(ov.sent)),
                ("ok", Json::from(ov.ok)),
                ("rejected", Json::from(ov.rejected)),
                ("rejection_rate", Json::from(ov.rejection_rate)),
            ]),
        ),
    ]);
    let path = "BENCH_serve.json";
    match std::fs::write(path, json.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    rbp_bench::finish_trace();
}
