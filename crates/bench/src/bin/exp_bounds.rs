//! E3 — Lemma 1: `n/k ≤ cost ≤ (g(Δin+1)+1)·n` for every scheduler over
//! a sweep of DAG families, plus the eviction-policy ablation.

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::rbp_dag::{generators, Dag, DagStats};
use rbp_core::MppInstance;
use rbp_schedulers::all_schedulers;
use rbp_util::env_seed;

fn main() {
    rbp_bench::init_trace("exp_bounds", &[]);
    banner(
        "E3",
        "Lemma 1 bounds: n/k ≤ cost ≤ (g(Δin+1)+1)n across schedulers",
    );
    let dags: Vec<(String, Dag)> = vec![
        ("fft(4)".into(), generators::fft(4)),
        ("tree(32)".into(), generators::binary_in_tree(32)),
        ("grid(6x6)".into(), generators::grid(6, 6)),
        (
            "layered(6,8,3)".into(),
            generators::layered_random(6, 8, 3, 7 + env_seed(0)),
        ),
        ("chains(4x16)".into(), generators::independent_chains(4, 16)),
    ];
    let (k, r, g) = (4usize, 4usize, 3u64);
    let mut t = Table::new(&[
        "dag",
        "scheduler",
        "cost",
        "lower n/k",
        "upper L1",
        "io",
        "computes",
    ]);
    for (name, dag) in &dags {
        let stats = DagStats::compute(dag);
        let inst = MppInstance::new(dag, k, r.max(stats.max_in_degree + 1), g);
        let rows = par_sweep(all_schedulers(), |s| {
            let run = s.schedule(&inst).expect("scheduler must succeed");
            (s.name(), run.cost)
        });
        let lower = rbp_bounds::trivial::lower(&inst);
        let upper = rbp_bounds::trivial::upper(&inst);
        for (sname, cost) in rows {
            let total = cost.total(inst.model);
            assert!(lower <= total && total <= upper, "Lemma 1 violated!");
            t.row(&[
                name.clone(),
                sname,
                total.to_string(),
                lower.to_string(),
                upper.to_string(),
                cost.io_steps().to_string(),
                cost.computes.to_string(),
            ]);
        }
    }
    t.print_traced("E3");
    println!("\nEvery scheduler lands inside the Lemma 1 bracket (asserted).");
    rbp_bench::finish_trace();
}
