//! E4 — Lemmas 3 & 4: the greedy class — worst-case guarantee and the
//! adversarial `Θ(g)` bait trap.
//!
//! Part 1 sweeps the trap's `g` and reports greedy/OPT ratios per greedy
//! configuration (count-affinity falls in, fraction-affinity escapes —
//! illustrating why Lemma 4 quantifies over the whole class).
//! Part 2 verifies the Lemma 3 ceiling `2(g(Δin+1)+1)` on random DAGs
//! against the exact optimum on small instances.

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::rbp_dag::generators;
use rbp_core::{solve_mpp, CostModel, MppInstance, SolveLimits};
use rbp_gadgets::GreedyTrap;
use rbp_schedulers::{Affinity, EvictionPolicy, Greedy, GreedyConfig, MppScheduler};
use rbp_util::env_seed;

fn main() {
    rbp_bench::init_trace("exp_greedy", &[]);
    banner(
        "E4",
        "greedy class: Lemma 4 adversarial ratios, Lemma 3 ceiling",
    );

    println!("-- bait trap (d=4, len=12, baits=16), greedy vs constructive OPT --\n");
    let trap = GreedyTrap::build(4, 12, 16);
    let configs: Vec<(&str, GreedyConfig)> = vec![
        ("count", GreedyConfig::default()),
        (
            "fraction",
            GreedyConfig {
                affinity: Affinity::Fraction,
                ..GreedyConfig::default()
            },
        ),
        (
            "count+lru",
            GreedyConfig {
                eviction: EvictionPolicy::Lru,
                ..GreedyConfig::default()
            },
        ),
        (
            "count+recompute",
            GreedyConfig {
                allow_recompute: true,
                ..GreedyConfig::default()
            },
        ),
    ];
    let mut t = Table::new(&["g", "config", "greedy", "OPT(constructive)", "ratio"]);
    for g in [1u64, 2, 4, 8, 16] {
        let inst = MppInstance::new(&trap.dag, 1, trap.r(), g);
        let opt = trap
            .strategy_optimal(g)
            .unwrap()
            .cost
            .total(CostModel::mpp(g));
        let rows = par_sweep(configs.clone(), |(cname, cfg)| {
            let run = Greedy::new(*cfg).schedule(&inst).expect("greedy runs");
            ((*cname).to_string(), run.cost.total(inst.model))
        });
        for (cname, total) in rows {
            t.row(&[
                g.to_string(),
                cname,
                total.to_string(),
                opt.to_string(),
                format!("{:.2}", total as f64 / opt as f64),
            ]);
        }
    }
    t.print_traced("E4.adversarial");

    println!("\n-- Lemma 3 ceiling 2(g(Δin+1)+1)·OPT on small random DAGs --\n");
    let mut t2 = Table::new(&["dag", "g", "greedy", "OPT(exact)", "ratio", "ceiling"]);
    for seed in [1, 2, 3].map(|s| s + env_seed(0)) {
        let dag = generators::layered_random(3, 3, 2, seed);
        for g in [1u64, 4] {
            let inst = MppInstance::new(&dag, 2, 3, g);
            let Some(opt) = solve_mpp(&inst, SolveLimits::default()) else {
                continue;
            };
            let run = Greedy::default().schedule(&inst).unwrap();
            let total = run.cost.total(inst.model);
            let ceiling = rbp_bounds::trivial::greedy_factor(&inst);
            let ratio = total as f64 / opt.total as f64;
            assert!(
                total <= ceiling * opt.total,
                "Lemma 3 ceiling violated on seed {seed}"
            );
            t2.row(&[
                format!("layered(seed={seed})"),
                g.to_string(),
                total.to_string(),
                opt.total.to_string(),
                format!("{ratio:.2}"),
                format!("{ceiling}x"),
            ]);
        }
    }
    t2.print_traced("E4.lemma3_ceiling");
    rbp_bench::finish_trace();
}
