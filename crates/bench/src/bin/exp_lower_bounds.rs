//! E5 + E13 — §4 lower bounds: Hong–Kung (FFT), Kwasniewski et al.
//! (matrix multiplication), the Lemma 5 / Corollary 1 translation, and
//! Lemma 6 tightness on independent chains.

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::rbp_dag::generators;
use rbp_core::{MppInstance, SolveLimits};
use rbp_schedulers::{Greedy, MppScheduler, Partition, Wavefront};

fn main() {
    rbp_bench::init_trace("exp_lower_bounds", &[]);
    banner("E5", "lower bounds vs achieved costs: FFT and matmul");

    println!("-- FFT(2^p): MPP bound (n/k)(g·log n/log(rk)+1) vs schedulers --\n");
    let mut t = Table::new(&[
        "p",
        "k",
        "r",
        "g",
        "bound",
        "greedy",
        "partition",
        "wavefront",
    ]);
    let mut inputs = Vec::new();
    for p in [3u32, 4, 5] {
        for k in [1usize, 2, 4] {
            inputs.push((p, k));
        }
    }
    let rows = par_sweep(inputs, |&(p, k)| {
        let (r, g) = (4usize, 2u64);
        let dag = generators::fft(p);
        let n_points = 1u64 << p;
        let bound = rbp_bounds::fft::mpp_total_lower(n_points, k as u64, r as u64, g);
        let inst = MppInstance::new(&dag, k, r, g);
        let gr = Greedy::default()
            .schedule(&inst)
            .unwrap()
            .cost
            .total(inst.model);
        let pa = Partition.schedule(&inst).unwrap().cost.total(inst.model);
        let wf = Wavefront.schedule(&inst).unwrap().cost.total(inst.model);
        (p, k, r, g, bound, gr, pa, wf)
    });
    for (p, k, r, g, bound, gr, pa, wf) in rows {
        t.row(&[
            p.to_string(),
            k.to_string(),
            r.to_string(),
            g.to_string(),
            bound.to_string(),
            gr.to_string(),
            pa.to_string(),
            wf.to_string(),
        ]);
    }
    t.print_traced("E5.fft");
    println!("\n(the bound is for the n-point butterfly; achieved costs sit above it\nand shrink with k — same shape as the paper's discussion)");

    println!("\n-- matmul(n): MPP bound (n/k)(g(2n²/√(rk)+n)+1) vs schedulers --\n");
    let mut t2 = Table::new(&["n", "k", "bound", "greedy", "partition"]);
    let mut inputs2 = Vec::new();
    for n in [2usize, 3, 4] {
        for k in [1usize, 2, 4] {
            inputs2.push((n, k));
        }
    }
    let rows2 = par_sweep(inputs2, |&(n, k)| {
        let (r, g) = (4usize, 2u64);
        let dag = generators::matmul(n);
        let bound = rbp_bounds::matmul::mpp_total_lower(n as u64, k as u64, r as u64, g);
        let inst = MppInstance::new(&dag, k, r, g);
        let gr = Greedy::default()
            .schedule(&inst)
            .unwrap()
            .cost
            .total(inst.model);
        let pa = Partition.schedule(&inst).unwrap().cost.total(inst.model);
        (n, k, bound, gr, pa)
    });
    for (n, k, bound, gr, pa) in rows2 {
        t2.row(&[
            n.to_string(),
            k.to_string(),
            bound.to_string(),
            gr.to_string(),
            pa.to_string(),
        ]);
    }
    t2.print_traced("E5.matmul");

    banner("E13", "Lemma 5/6: exact translation and tightness");
    println!("-- Corollary 1 bound (from exact SPP at k·r) vs exact MPP OPT --\n");
    let mut t3 = Table::new(&["dag", "k", "r", "g", "Cor.1 bound", "OPT(exact)"]);
    for (name, dag, k, r, g) in [
        (
            "tree(4)",
            generators::binary_in_tree(4),
            2usize,
            3usize,
            2u64,
        ),
        ("diamond(3)", generators::diamond(3), 2, 4, 3),
        ("chains(2x4)", generators::independent_chains(2, 4), 2, 3, 2),
        ("grid(3x3)", generators::grid(3, 3), 2, 3, 2),
    ] {
        let inst = MppInstance::new(&dag, k, r, g);
        let bound = rbp_bounds::translate::mpp_total_lower_exact(&inst, SolveLimits::default())
            .expect("SPP exact in range");
        let opt = rbp_core::solve_mpp(&inst, SolveLimits::default()).expect("MPP exact in range");
        assert!(bound <= opt.total, "Corollary 1 violated");
        t3.row(&[
            name.to_string(),
            k.to_string(),
            r.to_string(),
            g.to_string(),
            bound.to_string(),
            opt.total.to_string(),
        ]);
    }
    t3.print_traced("E13");
    println!(
        "\nLemma 6 tightness: on chains(2x4) the bound n/k is met exactly by the\nexact optimum (L = 0 case); gadget families with L > 0 stay within g·L/k + n/k + O(1)."
    );
    rbp_bench::finish_trace();
}
