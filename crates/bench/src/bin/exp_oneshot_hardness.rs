//! E10 — Theorem 2 / Figures 3–4: the zero-cost one-shot decision.
//!
//! Runs the layout reduction end to end on a family of small graphs:
//! brute-force `vsΔ` on one side, the zero-I/O pebbling decision
//! procedure on the generated DAG on the other — they must agree at
//! every threshold. Also reports tower footprint algebra (Fig. 3) and
//! the amplified-gap instance shapes.

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::zero_io_pebbling_exists;
use rbp_gadgets::levels::Tower;
use rbp_gadgets::{Graph, HardnessInstance};

fn main() {
    rbp_bench::init_trace("exp_oneshot_hardness", &[]);
    banner(
        "E10a",
        "Fig. 3 towers: transition peak = max consecutive level pair",
    );
    let mut t = Table::new(&["levels", "predicted peak", "exact peak"]);
    for sizes in [
        vec![5, 5],
        vec![5, 7],
        vec![5, 3],
        vec![1, 4, 2, 3],
        vec![3, 1, 5, 1],
    ] {
        let tower = Tower::build(&sizes);
        let exact = rbp_core::rbp_dag::min_peak_memory(&tower.dag, 64).unwrap();
        assert_eq!(exact, tower.predicted_peak());
        t.row(&[
            format!("{sizes:?}"),
            tower.predicted_peak().to_string(),
            exact.to_string(),
        ]);
    }
    t.print_traced("E10a");

    banner(
        "E10b",
        "Theorem 2 reduction: zero-cost one-shot pebbling ⟺ vsΔ(G') ≤ W",
    );
    let graphs: Vec<(String, Graph)> = vec![
        ("path3".into(), Graph::new(3, &[(0, 1), (1, 2)])),
        ("triangle".into(), Graph::new(3, &[(0, 1), (1, 2), (0, 2)])),
        (
            "C4".into(),
            Graph::new(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]),
        ),
        (
            "paw".into(),
            Graph::new(4, &[(0, 1), (1, 2), (0, 2), (2, 3)]),
        ),
    ];
    let mut t2 = Table::new(&[
        "graph",
        "vsΔ (brute force)",
        "W",
        "budget",
        "zero-cost pebbling?",
    ]);
    let rows = par_sweep(graphs, |(name, g)| {
        let vsd = g.transient_vertex_separation();
        let mut out = Vec::new();
        for w in (vsd.saturating_sub(1)).max(1)..=vsd + 1 {
            let inst = HardnessInstance::build(g, w);
            if inst.dag.n() > 64 {
                continue;
            }
            let dec = zero_io_pebbling_exists(&inst.dag, inst.budget).unwrap();
            assert_eq!(dec, vsd <= w, "reduction must agree with vsΔ");
            out.push((name.clone(), vsd, w, inst.budget, dec));
        }
        out
    });
    for (name, vsd, w, budget, dec) in rows.into_iter().flatten() {
        t2.row(&[
            name,
            vsd.to_string(),
            w.to_string(),
            budget.to_string(),
            dec.to_string(),
        ]);
    }
    t2.print_traced("E10b");

    banner(
        "E10c",
        "gap amplification: OPT = 0 vs OPT ≥ t (chained copies)",
    );
    let g = Graph::new(3, &[(0, 1), (1, 2)]);
    let vsd = g.transient_vertex_separation();
    let mut t3 = Table::new(&["copies t", "n", "budget", "zero-cost (YES at W=vsΔ)"]);
    for t_copies in [1usize, 2, 3] {
        let (dag, budget) = HardnessInstance::amplified(&g, vsd, t_copies);
        let dec = if dag.n() <= 64 {
            zero_io_pebbling_exists(&dag, budget).map_or("n/a".to_string(), |b| b.to_string())
        } else {
            "n>64".into()
        };
        t3.row(&[
            t_copies.to_string(),
            dag.n().to_string(),
            budget.to_string(),
            dec,
        ]);
    }
    t3.print_traced("E10c");
    println!(
        "\nA NO instance forces ≥ 1 I/O in every copy (copies cannot share\nbudget), so padding to t = n^(1−ε) copies yields the Theorem 2 gap:\nno finite-factor or additive n^(1−ε) approximation unless P = NP."
    );
    rbp_bench::finish_trace();
}
