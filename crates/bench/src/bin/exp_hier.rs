//! E22 — three-level hierarchy: where a cheap green mid tier provably
//! beats the best two-level strategy, and where it provably cannot.
//!
//! Two phases, both running exact solvers so every number is an
//! optimum, not a heuristic artifact:
//!
//! 1. **Divergence table** over the `HierSkip` separation family
//!    (`rbp_gadgets::HierSkip`): two triangle-capped chains joined at a
//!    sink, sized so at `r = 3` the part finishing second forces the
//!    other part's live output out of fast memory. The two-level
//!    optimum pays the spill over blue (`n + 2g`); one green slot
//!    converts it to mid-tier traffic (`n + 2·green`). Both closed
//!    forms are asserted against the solvers, and the vanilla optimum
//!    is computed twice — by `rbp_core::solve_mpp` *and* by the hier
//!    solver with `green_cap = 0` — as a cross-solver check.
//! 2. **Degenerate-equivalence summary** over seeded random instances:
//!    with `green_cap = 0` the hier solver must reproduce the vanilla
//!    optimum exactly, instance for instance.
//!
//! Writes `BENCH_hier.json`. Usage: `exp_hier [--quick]`.

use rbp_bench::{banner, Table};
use rbp_core::rbp_dag::{generators, Dag};
use rbp_core::{solve_mpp, MppInstance, SolveLimits};
use rbp_gadgets::HierSkip;
use rbp_hier::{solve_hier, GreenList, HierInstance, HierScheduler};
use rbp_util::json::Json;
use rbp_util::{env_seed, Rng};

fn limits() -> SolveLimits {
    SolveLimits::states(4_000_000)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    rbp_bench::init_trace("exp_hier", &[("quick", Json::from(quick))]);
    banner(
        "E22",
        "three-level hierarchy: exact vanilla-vs-green divergence",
    );

    let (g, green_cost) = (3u64, 1u64);
    let chain_lengths: &[usize] = if quick { &[1, 2] } else { &[1, 2, 3] };
    let mut t = Table::new(&[
        "gadget",
        "n",
        "OPT mpp",
        "OPT hier(cap=0)",
        "OPT hier(cap=1)",
        "saved",
        "green_io",
        "green-list",
    ]);
    let mut rows = Vec::new();
    let mut strict_wins = 0usize;
    for &c in chain_lengths {
        let gadget = HierSkip::build(c);
        let (k, r) = (1, gadget.tight_r());
        let mpp = MppInstance::new(&gadget.dag, k, r, g);
        let vanilla = solve_mpp(&mpp, limits()).expect("vanilla solve");
        let degenerate = solve_hier(&HierInstance::from_mpp(&mpp, 0, green_cost), limits())
            .expect("degenerate hier solve");
        let hier_inst = HierInstance::from_mpp(&mpp, 1, green_cost);
        let hier = solve_hier(&hier_inst, limits()).expect("hier solve");

        // Cross-solver check: two independent engines, one optimum.
        assert_eq!(
            vanilla.total, degenerate.total,
            "hier(cap=0) diverged from the vanilla solver on c={c}"
        );
        // Closed forms from the gadget's spill analysis.
        assert_eq!(vanilla.total, gadget.vanilla_total(g), "c={c}");
        assert_eq!(hier.total, gadget.hier_total(green_cost), "c={c}");
        assert!(
            hier.total < vanilla.total,
            "green tier failed to win strictly on c={c}"
        );
        strict_wins += 1;

        let sched = GreenList.schedule(&hier_inst).expect("green-list");
        let sched_total = sched.cost.total(hier_inst.model);
        let saved = vanilla.total - hier.total;
        t.row(&[
            gadget.dag.name().to_string(),
            gadget.n().to_string(),
            vanilla.total.to_string(),
            degenerate.total.to_string(),
            hier.total.to_string(),
            saved.to_string(),
            hier.cost.green_io_steps().to_string(),
            sched_total.to_string(),
        ]);
        rows.push(Json::obj(vec![
            ("gadget", Json::from(gadget.dag.name())),
            ("c", Json::from(c)),
            ("n", Json::from(gadget.n())),
            ("k", Json::from(k)),
            ("r", Json::from(r)),
            ("g", Json::from(g)),
            ("green_cost", Json::from(green_cost)),
            ("opt_mpp", Json::from(vanilla.total)),
            ("opt_hier_cap0", Json::from(degenerate.total)),
            ("opt_hier_cap1", Json::from(hier.total)),
            ("saved", Json::from(saved)),
            ("green_io_steps", Json::from(hier.cost.green_io_steps())),
            ("green_list_total", Json::from(sched_total)),
        ]));
    }
    t.print_traced("E22");
    assert!(
        strict_wins >= 1,
        "no gadget showed a strict three-level win"
    );
    println!(
        "\n{strict_wins}/{} gadgets: OPT(3-level) strictly beats OPT(2-level) \
         (both proven by exact solvers).",
        chain_lengths.len()
    );

    // Phase 2: the reduction sanity sweep — green_cap = 0 must be
    // byte-identical to vanilla MPP on random instances.
    let seed = 0x2207 + env_seed(0);
    let cases: usize = if quick { 10 } else { 25 };
    let mut rng = Rng::new(seed);
    let mut matched = 0usize;
    for case in 0..cases {
        let (dag, k, r, gg) = draw(&mut rng);
        let mpp = MppInstance::new(&dag, k, r, gg);
        let vanilla = solve_mpp(&mpp, limits()).expect("vanilla solve");
        let hier = solve_hier(&HierInstance::from_mpp(&mpp, 0, 1), limits()).expect("hier solve");
        assert_eq!(
            vanilla.total,
            hier.total,
            "case {case}: degenerate equivalence violated on {}",
            dag.name()
        );
        matched += 1;
    }
    println!("degenerate equivalence: {matched}/{cases} random instances matched exactly.");

    let json = Json::obj(vec![
        ("suite", Json::from("hier")),
        ("quick", Json::from(quick)),
        ("seed", Json::from(seed)),
        ("strict_wins", Json::from(strict_wins)),
        ("divergence", Json::Arr(rows)),
        (
            "equivalence",
            Json::obj(vec![
                ("cases", Json::from(cases)),
                ("matched", Json::from(matched)),
            ]),
        ),
    ]);
    let path = "BENCH_hier.json";
    match std::fs::write(path, json.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    rbp_bench::finish_trace();
}

/// Draws a small random instance cheap enough for two exact solves.
fn draw(rng: &mut Rng) -> (Dag, usize, usize, u64) {
    let dag = if rng.bool(0.5) {
        generators::layered_random(rng.range(2, 4), 2, 2, rng.next_u64())
    } else {
        generators::random_dag(rng.range(4, 7), 0.3, rng.next_u64())
    };
    let k = rng.range(1, 3);
    let r = dag.max_in_degree() + 1 + usize::from(rng.bool(0.25));
    let g = rng.range_u64(2, 6);
    (dag, k, r, g)
}
