//! E17 — the optimality gap before and after refinement.
//!
//! For every instance in a small/large grid this runs (a) every
//! registered scheduler (batchified, best-of), (b) the anytime portfolio
//! *without* the exact solver (schedulers + local-search refinement
//! only, so the measured gap is the local search's doing), and (c) on
//! solver-feasible sizes the exact optimum; larger instances fall back
//! to the Lemma 1 lower bound. It asserts the refinement sandwich
//! `OPT ≤ refined ≤ best-heuristic` on every instance, reports how often
//! refinement closes the gap entirely, and writes the gap table to
//! `BENCH_refine.json`.
//!
//! Usage: `exp_refine [--quick]` (`--quick` trims budgets and the grid
//! for CI). Honors `RBP_SEED` for the randomized pieces.

use rbp_bench::{banner, par_sweep, Table};
use rbp_bounds::trivial;
use rbp_core::rbp_dag::{generators, Dag};
use rbp_core::{batchify, solve_mpp, MppInstance, SolveLimits};
use rbp_refine::{race, PortfolioConfig};
use rbp_schedulers::all_schedulers;
use rbp_util::env_seed;
use rbp_util::json::Json;

struct Case {
    dag: Dag,
    family: &'static str,
    k: usize,
    r: usize,
    g: u64,
    /// Whether the exact solver is expected to finish on this instance.
    exact: bool,
}

struct Outcome {
    label: String,
    n: usize,
    k: usize,
    best_heuristic: u64,
    refined: u64,
    refined_by: String,
    /// `Ok(opt)` when the exact solver finished, `Err(lower)` otherwise.
    reference: Result<u64, u64>,
}

fn cases(quick: bool, seed: u64) -> Vec<Case> {
    let mut cases = Vec::new();
    let mut push = |dag: Dag, family: &'static str, k: usize, r: usize, g: u64, exact: bool| {
        cases.push(Case {
            dag,
            family,
            k,
            r,
            g,
            exact,
        });
    };
    // Solver-feasible tier: OPT is computable, so the gap is exact.
    push(generators::grid(2, 4), "grid2x4", 2, 3, 2, true);
    push(
        generators::independent_chains(2, 4),
        "chains2x4",
        2,
        2,
        2,
        true,
    );
    push(
        generators::independent_chains(2, 4),
        "chains2x4",
        2,
        3,
        2,
        true,
    );
    push(generators::binary_in_tree(4), "tree4", 2, 3, 2, true);
    push(generators::grid(3, 3), "grid3x3", 2, 3, 1, true);
    push(
        generators::layered_random(3, 3, 2, 7 + seed),
        "layered3x3",
        2,
        3,
        1,
        true,
    );
    if !quick {
        push(generators::grid(3, 3), "grid3x3", 2, 3, 2, true);
        push(generators::binary_in_tree(4), "tree4", 3, 3, 2, true);
        // Beyond-solver tier: only the Lemma 1 lower bound to compare to.
        push(generators::grid(4, 6), "grid4x6", 4, 4, 2, false);
        push(generators::fft(3), "fft3", 4, 4, 2, false);
        push(
            generators::layered_random(5, 6, 3, 7 + seed),
            "layered5x6",
            4,
            4,
            2,
            false,
        );
    }
    cases
}

fn run_case(case: &Case, budget_millis: u64, seed: u64) -> Outcome {
    let inst = MppInstance::new(&case.dag, case.k, case.r, case.g);
    let label = format!("{} k={} r={} g={}", case.family, case.k, case.r, case.g);

    // (a) Best registered heuristic, batchified.
    let best_heuristic = all_schedulers()
        .iter()
        .map(|s| {
            let run = s.schedule(&inst).expect("scheduler runs");
            batchify(&inst, &run.strategy)
                .validate(&inst)
                .expect("batchified strategy validates")
                .total(inst.model)
        })
        .min()
        .expect("scheduler registry is never empty");

    // (b) Portfolio *without* the exact solver: the refined cost.
    let cfg = PortfolioConfig {
        budget_millis,
        seed,
        use_exact: false,
        ..PortfolioConfig::default()
    };
    let out = race(&inst, &cfg).expect("portfolio runs");
    out.run
        .strategy
        .validate(&inst)
        .expect("portfolio winner validates");

    // (c) The reference: OPT where the solver reaches, Lemma 1 otherwise.
    let reference = if case.exact {
        let sol = solve_mpp(&inst, SolveLimits::default())
            .unwrap_or_else(|| panic!("{label}: exact tier did not solve"));
        Ok(sol.total)
    } else {
        Err(trivial::lower(&inst))
    };

    // The refinement sandwich, on every instance.
    assert!(
        out.total <= best_heuristic,
        "{label}: refined {} worse than best heuristic {}",
        out.total,
        best_heuristic
    );
    let floor = match reference {
        Ok(opt) => opt,
        Err(lower) => lower,
    };
    assert!(
        out.total >= floor,
        "{label}: refined {} beats the {} bound {} — a validator bug",
        out.total,
        if case.exact { "optimal" } else { "lower" },
        floor
    );

    Outcome {
        label,
        n: case.dag.n(),
        k: case.k,
        best_heuristic,
        refined: out.total,
        refined_by: out.provenance,
        reference,
    }
}

fn main() {
    rbp_bench::init_trace("exp_refine", &[]);
    let quick = std::env::args().any(|a| a == "--quick");
    let seed = env_seed(0);
    let budget_millis = if quick { 300 } else { 800 };
    banner("E17", "heuristic-to-OPT gap closed by anytime refinement");

    let all = cases(quick, seed);
    let results = par_sweep(all, |c| run_case(c, budget_millis, seed));

    let mut t = Table::new(&[
        "instance",
        "n",
        "best heur",
        "refined",
        "OPT",
        "lower",
        "gap",
        "winner",
    ]);
    let mut rows = Vec::new();
    let (mut exact_cases, mut exact_closed) = (0u64, 0u64);
    for o in &results {
        let (opt_cell, lower_cell, gap_cell) = match o.reference {
            Ok(opt) => {
                exact_cases += 1;
                if o.refined == opt {
                    exact_closed += 1;
                }
                (
                    opt.to_string(),
                    "-".to_string(),
                    (o.refined - opt).to_string(),
                )
            }
            Err(lower) => ("-".to_string(), lower.to_string(), "≤?".to_string()),
        };
        t.row(&[
            o.label.clone(),
            o.n.to_string(),
            o.best_heuristic.to_string(),
            o.refined.to_string(),
            opt_cell,
            lower_cell,
            gap_cell,
            o.refined_by.clone(),
        ]);
        rows.push(Json::obj(vec![
            ("instance", Json::from(o.label.as_str())),
            ("n", Json::from(o.n)),
            ("k", Json::from(o.k)),
            ("best_heuristic", Json::from(o.best_heuristic)),
            ("refined", Json::from(o.refined)),
            ("refined_by", Json::from(o.refined_by.as_str())),
            ("opt", o.reference.map_or(Json::Null, Json::from)),
            (
                "lower_bound",
                o.reference.map_or_else(Json::from, |_| Json::Null),
            ),
        ]));
    }
    t.print_traced("E17");

    let closed_fraction = exact_closed as f64 / exact_cases.max(1) as f64;
    println!(
        "\nsolver-feasible instances: {exact_closed}/{exact_cases} refined to OPT \
         ({:.0}% closed)",
        closed_fraction * 100.0
    );
    assert!(
        2 * exact_closed >= exact_cases,
        "refinement closed the gap on fewer than half the solver-feasible instances"
    );

    let json = Json::obj(vec![
        ("suite", Json::from("refine")),
        ("quick", Json::from(quick)),
        ("seed", Json::from(seed)),
        ("budget_millis", Json::from(budget_millis)),
        ("exact_cases", Json::from(exact_cases)),
        ("exact_closed", Json::from(exact_closed)),
        ("closed_fraction", Json::from(closed_fraction)),
        ("results", Json::Arr(rows)),
    ]);
    let path = "BENCH_refine.json";
    match std::fs::write(path, json.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    rbp_bench::finish_trace();
}
