//! E11 — Theorem 1 / Lemma 11: APX-hardness companion experiment.
//!
//! The paper's L-reduction makes part of the optimal SPP-with-compute
//! cost proportional to the minimum vertex cover. This experiment
//! measures that co-variation empirically: exact optimal pebbling cost
//! of incidence DAGs at tight memory vs brute-forced vertex cover, over
//! small graphs with equal vertex/edge counts where possible.

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::{solve_spp, SolveLimits, SppInstance};
use rbp_gadgets::vertex_cover::{cubic_circulant, incidence_dag, min_vertex_cover};
use rbp_gadgets::Graph;

fn main() {
    rbp_bench::init_trace("exp_vertex_cover", &[]);
    banner(
        "E11",
        "vertex cover vs optimal pebbling cost (SPP with compute costs)",
    );
    let graphs: Vec<(String, Graph)> = vec![
        ("path3 (VC 1)".into(), Graph::new(3, &[(0, 1), (1, 2)])),
        (
            "star3 (VC 1)".into(),
            Graph::new(4, &[(0, 1), (0, 2), (0, 3)]),
        ),
        (
            "path4 (VC 2)".into(),
            Graph::new(4, &[(0, 1), (1, 2), (2, 3)]),
        ),
        (
            "triangle (VC 2)".into(),
            Graph::new(3, &[(0, 1), (1, 2), (0, 2)]),
        ),
        (
            "C4 (VC 2)".into(),
            Graph::new(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]),
        ),
        ("K4 (VC 3)".into(), cubic_circulant(4)),
    ];
    let (r, g) = (3usize, 2u64);
    let rows = par_sweep(graphs, |(name, gr)| {
        let vc = min_vertex_cover(gr);
        let dag = incidence_dag(gr);
        let inst = SppInstance::with_compute(&dag, r, g);
        let sol = solve_spp(&inst, SolveLimits::states(4_000_000));
        (
            name.clone(),
            gr.n,
            gr.edges.len(),
            vc,
            sol.map(|s| (s.total, s.cost.io_steps())),
        )
    });
    let mut t = Table::new(&[
        "graph",
        "n",
        "m",
        "min VC",
        "OPT total",
        "OPT io",
        "surplus/edge",
    ]);
    for (name, n, m, vc, sol) in rows {
        match sol {
            Some((total, io)) => {
                let dag_n = (n + 2 * m) as u64; // vertices + edges + collector
                let surplus = total.saturating_sub(dag_n);
                t.row(&[
                    name,
                    n.to_string(),
                    m.to_string(),
                    vc.to_string(),
                    total.to_string(),
                    io.to_string(),
                    format!("{:.2}", surplus as f64 / m.max(1) as f64),
                ]);
            }
            None => t.row(&[
                name,
                n.to_string(),
                m.to_string(),
                vc.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    t.print_traced("E11");
    println!(
        "\nAt fixed (n, m) the surplus cost rises with the cover number (the\npaper's qualitative claim); the exact L-reduction constants need the\nfull-version gadgets — see DESIGN.md."
    );
    rbp_bench::finish_trace();
}
