//! E8 — Lemma 9: the optimum is non-monotone in `k` (fair comparison).
//!
//! Two independent zippers; fair memory series `r0 = 4(d+2)`. The three
//! constructive strategies are executed and validated; on a tiny
//! instance the `k ∈ {1, 2}` optima are verified exactly.

use rbp_bench::{banner, Table};
use rbp_core::{solve_mpp, CostModel, MppInstance, SolveLimits};
use rbp_gadgets::TwoZippers;

fn main() {
    rbp_bench::init_trace("exp_nonmonotone", &[]);
    banner(
        "E8",
        "Lemma 9: OPT(2) beats both OPT(1) and OPT(4) in the fair series",
    );
    let mut t = Table::new(&[
        "d", "n0", "g", "r(k=1)", "cost k=1", "r(k=2)", "cost k=2", "r(k=4)", "cost k=4",
    ]);
    for (d, n0, g) in [(2usize, 20usize, 2u64), (3, 30, 2), (4, 40, 4)] {
        let tz = TwoZippers::build(d, n0);
        let model = CostModel::mpp(g);
        let c1 = tz.strategy_k1(g).unwrap().cost.total(model);
        let c2 = tz.strategy_k2(g).unwrap().cost.total(model);
        let c4 = tz.strategy_k4(g).unwrap().cost.total(model);
        assert!(c2 < c1 && c2 < c4, "non-monotonicity must show");
        t.row(&[
            d.to_string(),
            n0.to_string(),
            g.to_string(),
            tz.fair_r(1).to_string(),
            c1.to_string(),
            tz.fair_r(2).to_string(),
            c2.to_string(),
            tz.fair_r(4).to_string(),
            c4.to_string(),
        ]);
    }
    t.print_traced("E8");

    println!("\n-- exact verification on the tiny instance (d=1, n0=2, g=3) --\n");
    let tz = TwoZippers::build(1, 2);
    let g = 3;
    let lim = SolveLimits::states(400_000);
    let o1 = solve_mpp(&MppInstance::new(&tz.dag, 1, tz.fair_r(1), g), lim).unwrap();
    let o2 = solve_mpp(&MppInstance::new(&tz.dag, 2, tz.fair_r(2), g), lim).unwrap();
    println!(
        "OPT(1) = {}   OPT(2) = {}   (OPT(2) < OPT(1): {})",
        o1.total,
        o2.total,
        o2.total < o1.total
    );
    match solve_mpp(
        &MppInstance::new(&tz.dag, 4, tz.fair_r(4), g),
        SolveLimits::states(40_000),
    ) {
        Some(o4) => println!(
            "OPT(4) = {}   (OPT(2) ≤ OPT(4): {})",
            o4.total,
            o2.total <= o4.total
        ),
        None => println!(
            "OPT(4): exact solve out of budget (k=4 batch space); constructive value above stands"
        ),
    }
    rbp_bench::finish_trace();
}
