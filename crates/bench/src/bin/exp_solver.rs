//! E-SOLVER — before/after sweep of the exact-solver optimizations.
//!
//! Runs the exact MPP solver over an `(n, k, r, g)` grid of DAG
//! families per instance as baseline (plain Dijkstra, no symmetry
//! reduction), optimized (processor-symmetry canonicalization +
//! admissible A\*), and a `--threads ∈ {2, 4}` × `--partition ∈ {hash,
//! bands, anchors}` sweep of the sharded parallel engine — checking all
//! optima agree — and reports per-instance wall time, settled-state
//! counts, packed-arena memory (peak bytes and bytes per interned
//! state, against a measured reconstruction of the legacy
//! `HashMap<Key, Entry>` closed-set layout), cross-shard traffic per
//! partition mode, and aggregate speedups.
//! Results land in `BENCH_solver.json` for commit-to-commit comparison;
//! the EXPERIMENTS speedup table is regenerated from this run. The
//! host's `hardware_threads` is recorded alongside a `sweep_valid`
//! flag: on a single-hardware-thread host the wall-clock side of the
//! thread sweep measures nothing but scheduling overhead, so the sweep
//! is **skipped entirely** (its table columns print `-`, the JSON
//! arrays stay empty), the flag goes `false`, and `rbp report` calls
//! the absence out. Cross-shard send counts are deterministic
//! properties of the partition, so re-running on a multi-core host
//! restores them with no schema change.
//!
//! Usage: `exp_solver [--quick]` (`--quick` trims the grid for CI).

use std::time::Instant;

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::rbp_dag::{generators, Dag};
use rbp_core::{solve_mpp_with, MppInstance, PartitionMode, SearchConfig, SearchStats};
use rbp_util::json::Json;
use rbp_util::{env_seed, FxHashMap};

struct Case {
    dag: Dag,
    family: &'static str,
    k: usize,
    r: usize,
    g: u64,
}

/// One parallel-engine run at a fixed thread count and partition mode.
struct SweepPoint {
    threads: usize,
    partition: PartitionMode,
    wall_ns: u64,
    stats: SearchStats,
}

struct Outcome {
    label: String,
    n: usize,
    k: usize,
    total: u64,
    base_ns: u64,
    base_stats: SearchStats,
    opt_ns: u64,
    opt_stats: SearchStats,
    /// Measured allocation of the pre-arena closed set for the same
    /// interned-state count (see [`legacy_closed_set_bytes`]).
    legacy_bytes: u64,
    sweep: Vec<SweepPoint>,
}

impl Outcome {
    /// The sweep point at `(threads, partition)`; every case runs the
    /// full cross product, so the lookup always succeeds.
    fn point(&self, threads: usize, partition: PartitionMode) -> &SweepPoint {
        self.sweep
            .iter()
            .find(|p| p.threads == threads && p.partition == partition)
            .expect("full threads x partition sweep")
    }
}

/// The pre-arena closed-set layout, reconstructed so its footprint can
/// be *measured* rather than modeled: `FxHashMap<Key, Entry<Key>>` with
/// `Key = {reds: [u64; 4], blue: u64}` (40 bytes regardless of `k`) and
/// `Entry = {dist, parent: Key, mv}` cloning the full key again as the
/// parent link (56 bytes padded).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct LegacyKey {
    reds: [u64; 4],
    blue: u64,
}

/// Never read back — the struct exists only to size the allocation.
#[allow(dead_code)]
struct LegacyEntry {
    dist: u64,
    parent: LegacyKey,
    mv: u32,
}

/// Allocated bytes of the pre-arena closed set for `states` stored
/// entries, measured by replaying that many distinct insertions into
/// the identical map type and reading back its real capacity. The
/// SwissTable behind `std::HashMap` stores the `(Key, Entry)` pair
/// inline per bucket plus one control byte, with power-of-two bucket
/// counts grown at 7/8 load — so the *allocated* bytes per state vary
/// with where the final size lands between doublings, exactly like the
/// packed arena's capacity-based figure it is compared against.
fn legacy_closed_set_bytes(states: u64) -> u64 {
    let mut map: FxHashMap<LegacyKey, LegacyEntry> = FxHashMap::default();
    for i in 0..states {
        let key = LegacyKey {
            reds: [i, 0, 0, 0],
            blue: !i,
        };
        let entry = LegacyEntry {
            dist: i,
            parent: key,
            mv: 0,
        };
        map.insert(key, entry);
    }
    // Usable capacity is 7/8 of the power-of-two bucket count.
    let buckets = (map.capacity() * 8 / 7).next_power_of_two();
    let pair = std::mem::size_of::<(LegacyKey, LegacyEntry)>();
    (buckets * (pair + 1)) as u64
}

fn grid_cases(quick: bool) -> Vec<Case> {
    let mut cases = Vec::new();
    let mut push = |dag: Dag, family: &'static str, k: usize, r: usize, g: u64| {
        cases.push(Case {
            dag,
            family,
            k,
            r,
            g,
        });
    };
    // k = 2 sweep on n ≥ 8 DAGs (the acceptance grid), plus k = 1 and
    // k = 3 spot checks. r stays close to Δin + 1 so fast memory is
    // tight and the search non-trivial; n stays ≤ ~9 because the
    // *baseline* must also finish within the state budget.
    for g in [1u64, 2] {
        push(generators::grid(2, 4), "grid2x4", 2, 3, g);
        push(generators::independent_chains(2, 4), "chains2x4", 2, 2, g);
    }
    push(generators::grid(3, 3), "grid3x3", 2, 3, 1);
    push(
        generators::layered_random(3, 3, 2, 7 + env_seed(0)),
        "layered3x3",
        2,
        3,
        1,
    );
    push(generators::grid(3, 3), "grid3x3", 1, 3, 2);
    if !quick {
        push(generators::grid(3, 3), "grid3x3", 2, 3, 2);
        push(generators::binary_in_tree(4), "tree4", 3, 3, 2);
        push(generators::binary_in_tree(4), "tree4", 2, 3, 1);
    }
    cases
}

fn run_case(case: &Case, do_sweep: bool) -> Outcome {
    let inst = MppInstance::new(&case.dag, case.k, case.r, case.g);
    let base_cfg = SearchConfig::baseline();
    let opt_cfg = SearchConfig::default();

    let t = Instant::now();
    let base = solve_mpp_with(&inst, &base_cfg);
    let base_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let t = Instant::now();
    let opt = solve_mpp_with(&inst, &opt_cfg);
    let opt_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let b = base.solution.expect("baseline solved");
    let o = opt.solution.expect("optimized solved");
    assert_eq!(
        b.total, o.total,
        "{} k={} r={} g={}: optimized solver changed the optimum",
        case.family, case.k, case.r, case.g
    );
    o.strategy
        .validate(&inst)
        .expect("optimized witness validates");

    // Threads × partition sweep of the sharded engine; every point must
    // prove the same optimum. Skipped wholesale on single-core hosts
    // (`do_sweep == false`) — time-sliced workers would only record
    // scheduling-overhead noise.
    let mut sweep = Vec::new();
    let thread_counts: &[usize] = if do_sweep { &[2, 4] } else { &[] };
    for &threads in thread_counts {
        for partition in PartitionMode::ALL {
            let cfg = opt_cfg.with_threads(threads).with_partition(partition);
            let t = Instant::now();
            let par = solve_mpp_with(&inst, &cfg);
            let wall_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
            let p = par.solution.expect("parallel solved");
            assert_eq!(
                p.total, o.total,
                "{} k={} r={} g={}: --threads {threads} --partition {partition} \
                 changed the optimum",
                case.family, case.k, case.r, case.g
            );
            sweep.push(SweepPoint {
                threads,
                partition,
                wall_ns,
                stats: par.stats,
            });
        }
    }

    Outcome {
        label: format!("{} k={} r={} g={}", case.family, case.k, case.r, case.g),
        n: case.dag.n(),
        k: case.k,
        total: o.total,
        base_ns,
        base_stats: base.stats,
        opt_ns,
        legacy_bytes: legacy_closed_set_bytes(opt.stats.arena_states),
        opt_stats: opt.stats,
        sweep,
    }
}

fn main() {
    rbp_bench::init_trace("exp_solver", &[]);
    let quick = std::env::args().any(|a| a == "--quick");
    banner(
        "E-SOLVER",
        "exact-solver ablation: Dijkstra vs symmetry-reduced A*",
    );
    let hardware_threads = std::thread::available_parallelism().map_or(0, usize::from);
    // On a single-hardware-thread host the sharded workers time-slice
    // one core, so the wall-clock side of the sweep is noise: skip it
    // entirely and flag the run rather than record fake scaling data.
    let sweep_valid = hardware_threads > 1;
    let cases = grid_cases(quick);
    let results = par_sweep(cases, |case| run_case(case, sweep_valid));

    let mut t = Table::new(&[
        "instance",
        "n",
        "OPT",
        "base ms",
        "opt ms",
        "base settled",
        "opt settled",
        "settled x",
        "wall x",
        "bytes/st",
        "mem x",
        "t2 ms",
        "t4 ms",
        "send redux",
    ]);
    let mut rows = Vec::new();
    let (mut k2_settled_base, mut k2_settled_opt) = (0u64, 0u64);
    let (mut k2_ns_base, mut k2_ns_opt) = (0u64, 0u64);
    let (mut k2_arena_bytes, mut k2_arena_states) = (0u64, 0u64);
    let mut k2_legacy_bytes = 0u64;
    let mut k2_thread_ns = [0u64; 2];
    // Per-partition t=4 traffic aggregates (indexed like PartitionMode::ALL).
    let mut k2_t4_sends = [0u64; 3];
    let mut k2_t4_settled = [0u64; 3];
    for o in &results {
        let settled_x = o.base_stats.settled as f64 / o.opt_stats.settled.max(1) as f64;
        let wall_x = o.base_ns as f64 / o.opt_ns.max(1) as f64;
        // The sweep columns collapse to `-` when the sweep was skipped
        // (single-hardware-thread host).
        let (t2_ms, t4_ms, send_redux) = if o.sweep.is_empty() {
            ("-".to_string(), "-".to_string(), "-".to_string())
        } else {
            let hash4 = o.point(4, PartitionMode::Hash);
            let anchors4 = o.point(4, PartitionMode::Anchors);
            // Sends-per-settled normalizes away the (mode-dependent)
            // amount of duplicated exploration before comparing traffic.
            let hash_sps = hash4.stats.cross_sends as f64 / hash4.stats.settled.max(1) as f64;
            let anchors_sps =
                anchors4.stats.cross_sends as f64 / anchors4.stats.settled.max(1) as f64;
            (
                format!(
                    "{:.2}",
                    o.point(2, PartitionMode::Hash).wall_ns as f64 / 1e6
                ),
                format!("{:.2}", hash4.wall_ns as f64 / 1e6),
                format!("{:.1}x", hash_sps / anchors_sps.max(1e-9)),
            )
        };
        t.row(&[
            o.label.clone(),
            o.n.to_string(),
            o.total.to_string(),
            format!("{:.2}", o.base_ns as f64 / 1e6),
            format!("{:.2}", o.opt_ns as f64 / 1e6),
            o.base_stats.settled.to_string(),
            o.opt_stats.settled.to_string(),
            format!("{settled_x:.1}x"),
            format!("{wall_x:.1}x"),
            format!("{:.1}", o.opt_stats.bytes_per_state()),
            format!(
                "{:.1}x",
                o.legacy_bytes as f64 / o.opt_stats.arena_peak_bytes.max(1) as f64
            ),
            t2_ms,
            t4_ms,
            send_redux,
        ]);
        if o.k >= 2 && o.n >= 8 {
            k2_settled_base += o.base_stats.settled;
            k2_settled_opt += o.opt_stats.settled;
            k2_ns_base += o.base_ns;
            k2_ns_opt += o.opt_ns;
            k2_arena_bytes += o.opt_stats.arena_peak_bytes;
            k2_arena_states += o.opt_stats.arena_states;
            k2_legacy_bytes += o.legacy_bytes;
            if !o.sweep.is_empty() {
                for (slot, threads) in k2_thread_ns.iter_mut().zip([2usize, 4]) {
                    *slot += o.point(threads, PartitionMode::Hash).wall_ns;
                }
                for (i, mode) in PartitionMode::ALL.into_iter().enumerate() {
                    let p = o.point(4, mode);
                    k2_t4_sends[i] += p.stats.cross_sends;
                    k2_t4_settled[i] += p.stats.settled;
                }
            }
        }
        let sweep_json: Vec<Json> = o
            .sweep
            .iter()
            .map(|p| {
                Json::obj(vec![
                    ("threads", Json::from(p.threads)),
                    ("partition", Json::from(p.partition.as_str())),
                    ("wall_ns", Json::from(p.wall_ns)),
                    ("settled", Json::from(p.stats.settled)),
                    ("cross_sends", Json::from(p.stats.cross_sends)),
                    ("send_blocks", Json::from(p.stats.send_blocks)),
                    ("foreign_expansions", Json::from(p.stats.foreign_expansions)),
                    ("locality_fraction", Json::from(p.stats.locality_fraction())),
                    ("arena_peak_bytes", Json::from(p.stats.arena_peak_bytes)),
                ])
            })
            .collect();
        rows.push(Json::obj(vec![
            ("instance", Json::from(o.label.as_str())),
            ("n", Json::from(o.n)),
            ("k", Json::from(o.k)),
            ("total", Json::from(o.total)),
            ("base_wall_ns", Json::from(o.base_ns)),
            ("opt_wall_ns", Json::from(o.opt_ns)),
            ("base_settled", Json::from(o.base_stats.settled)),
            ("opt_settled", Json::from(o.opt_stats.settled)),
            ("base_pushed", Json::from(o.base_stats.pushed)),
            ("opt_pushed", Json::from(o.opt_stats.pushed)),
            (
                "opt_arena_peak_bytes",
                Json::from(o.opt_stats.arena_peak_bytes),
            ),
            (
                "opt_bytes_per_state",
                Json::from(o.opt_stats.bytes_per_state()),
            ),
            ("legacy_bytes", Json::from(o.legacy_bytes)),
            ("sweep", Json::Arr(sweep_json)),
        ]));
    }
    t.print_traced("E-SOLVER");

    let settled_speedup = k2_settled_base as f64 / k2_settled_opt.max(1) as f64;
    let wall_speedup = k2_ns_base as f64 / k2_ns_opt.max(1) as f64;
    // Per *interned* state on both sides (each layout stores every
    // relaxed state, not just settled ones), allocation-measured on
    // both sides — see `legacy_closed_set_bytes`.
    let bytes_per_state = k2_arena_bytes as f64 / k2_arena_states.max(1) as f64;
    let legacy_per_state = k2_legacy_bytes as f64 / k2_arena_states.max(1) as f64;
    let bytes_reduction = k2_legacy_bytes as f64 / k2_arena_bytes.max(1) as f64;
    rbp_trace::gauge("exp_solver.sweep_valid", f64::from(u8::from(sweep_valid)));
    println!(
        "\naggregate over k>=2, n>=8: settled-state reduction {settled_speedup:.1}x, \
         wall-clock speedup {wall_speedup:.1}x"
    );
    println!(
        "memory: {bytes_per_state:.1} bytes/interned state packed vs \
         {legacy_per_state:.1} measured pre-arena layout ({bytes_reduction:.1}x smaller)"
    );
    let sends_per_settled = |i: usize| k2_t4_sends[i] as f64 / k2_t4_settled[i].max(1) as f64;
    if sweep_valid {
        for (i, threads) in [2usize, 4].into_iter().enumerate() {
            println!(
                "threads={threads}: wall {:.1}x vs opt t1 ({} hardware threads on this host)",
                k2_ns_opt as f64 / k2_thread_ns[i].max(1) as f64,
                hardware_threads
            );
        }
        let hash_sps = sends_per_settled(0);
        for (i, mode) in PartitionMode::ALL.into_iter().enumerate() {
            println!(
                "partition={mode} t=4: {:.3} cross-shard sends/settled ({:.1}x fewer than hash)",
                sends_per_settled(i),
                hash_sps / sends_per_settled(i).max(1e-9)
            );
        }
    } else {
        println!(
            "WARNING: sweep_valid=false — single hardware thread; the t>=2 sweep \
             was skipped (time-sliced workers would measure scheduling overhead, \
             not speedup); re-run on a multi-core host for scaling data"
        );
    }

    let (thread_aggregate, partition_aggregate): (Vec<Json>, Vec<Json>) = if sweep_valid {
        let hash_sps = sends_per_settled(0);
        (
            [2usize, 4]
                .into_iter()
                .zip(k2_thread_ns)
                .map(|(threads, ns)| {
                    Json::obj(vec![
                        ("threads", Json::from(threads)),
                        ("wall_ns", Json::from(ns)),
                        (
                            "speedup_vs_t1",
                            Json::from(k2_ns_opt as f64 / ns.max(1) as f64),
                        ),
                    ])
                })
                .collect(),
            PartitionMode::ALL
                .into_iter()
                .enumerate()
                .map(|(i, mode)| {
                    Json::obj(vec![
                        ("partition", Json::from(mode.as_str())),
                        ("threads", Json::from(4u64)),
                        ("cross_sends", Json::from(k2_t4_sends[i])),
                        ("settled", Json::from(k2_t4_settled[i])),
                        ("sends_per_settled", Json::from(sends_per_settled(i))),
                        (
                            "send_reduction_vs_hash",
                            Json::from(hash_sps / sends_per_settled(i).max(1e-9)),
                        ),
                    ])
                })
                .collect(),
        )
    } else {
        (Vec::new(), Vec::new())
    };
    let json = Json::obj(vec![
        ("suite", Json::from("solver")),
        ("quick", Json::from(quick)),
        ("hardware_threads", Json::from(hardware_threads)),
        ("sweep_valid", Json::from(sweep_valid)),
        (
            "aggregate_k2",
            Json::obj(vec![
                ("settled_speedup", Json::from(settled_speedup)),
                ("wall_speedup", Json::from(wall_speedup)),
                ("base_settled", Json::from(k2_settled_base)),
                ("opt_settled", Json::from(k2_settled_opt)),
                ("base_wall_ns", Json::from(k2_ns_base)),
                ("opt_wall_ns", Json::from(k2_ns_opt)),
                ("arena_peak_bytes", Json::from(k2_arena_bytes)),
                ("arena_states", Json::from(k2_arena_states)),
                ("legacy_bytes", Json::from(k2_legacy_bytes)),
                ("bytes_per_state", Json::from(bytes_per_state)),
                ("legacy_bytes_per_state", Json::from(legacy_per_state)),
                ("bytes_reduction", Json::from(bytes_reduction)),
                ("threads", Json::Arr(thread_aggregate)),
                ("partitions_t4", Json::Arr(partition_aggregate)),
            ]),
        ),
        ("results", Json::Arr(rows)),
    ]);
    let path = "BENCH_solver.json";
    match std::fs::write(path, json.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    rbp_bench::finish_trace();
}
