//! E-SOLVER — before/after sweep of the exact-solver optimizations.
//!
//! Runs the exact MPP solver over an `(n, k, r, g)` grid of DAG
//! families twice per instance — baseline (plain Dijkstra, no symmetry
//! reduction) and optimized (processor-symmetry canonicalization +
//! admissible A\*) — in parallel across scoped worker threads, checks
//! the optima agree, and reports per-instance wall time and
//! settled-state counts plus aggregate speedups. Results land in
//! `BENCH_solver.json` for commit-to-commit comparison; the EXPERIMENTS
//! speedup table is regenerated from this run.
//!
//! Usage: `exp_solver [--quick]` (`--quick` trims the grid for CI).

use std::time::Instant;

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::rbp_dag::{generators, Dag};
use rbp_core::{solve_mpp_with, MppInstance, SearchConfig, SearchStats};
use rbp_util::env_seed;
use rbp_util::json::Json;

struct Case {
    dag: Dag,
    family: &'static str,
    k: usize,
    r: usize,
    g: u64,
}

struct Outcome {
    label: String,
    n: usize,
    k: usize,
    total: u64,
    base_ns: u64,
    base_stats: SearchStats,
    opt_ns: u64,
    opt_stats: SearchStats,
}

fn grid_cases(quick: bool) -> Vec<Case> {
    let mut cases = Vec::new();
    let mut push = |dag: Dag, family: &'static str, k: usize, r: usize, g: u64| {
        cases.push(Case {
            dag,
            family,
            k,
            r,
            g,
        });
    };
    // k = 2 sweep on n ≥ 8 DAGs (the acceptance grid), plus k = 1 and
    // k = 3 spot checks. r stays close to Δin + 1 so fast memory is
    // tight and the search non-trivial; n stays ≤ ~9 because the
    // *baseline* must also finish within the state budget.
    for g in [1u64, 2] {
        push(generators::grid(2, 4), "grid2x4", 2, 3, g);
        push(generators::independent_chains(2, 4), "chains2x4", 2, 2, g);
    }
    push(generators::grid(3, 3), "grid3x3", 2, 3, 1);
    push(
        generators::layered_random(3, 3, 2, 7 + env_seed(0)),
        "layered3x3",
        2,
        3,
        1,
    );
    push(generators::grid(3, 3), "grid3x3", 1, 3, 2);
    if !quick {
        push(generators::grid(3, 3), "grid3x3", 2, 3, 2);
        push(generators::binary_in_tree(4), "tree4", 3, 3, 2);
        push(generators::binary_in_tree(4), "tree4", 2, 3, 1);
    }
    cases
}

fn run_case(case: &Case) -> Outcome {
    let inst = MppInstance::new(&case.dag, case.k, case.r, case.g);
    let base_cfg = SearchConfig::baseline();
    let opt_cfg = SearchConfig::default();

    let t = Instant::now();
    let base = solve_mpp_with(&inst, &base_cfg);
    let base_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let t = Instant::now();
    let opt = solve_mpp_with(&inst, &opt_cfg);
    let opt_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let b = base.solution.expect("baseline solved");
    let o = opt.solution.expect("optimized solved");
    assert_eq!(
        b.total, o.total,
        "{} k={} r={} g={}: optimized solver changed the optimum",
        case.family, case.k, case.r, case.g
    );
    o.strategy
        .validate(&inst)
        .expect("optimized witness validates");

    Outcome {
        label: format!("{} k={} r={} g={}", case.family, case.k, case.r, case.g),
        n: case.dag.n(),
        k: case.k,
        total: o.total,
        base_ns,
        base_stats: base.stats,
        opt_ns,
        opt_stats: opt.stats,
    }
}

fn main() {
    rbp_bench::init_trace("exp_solver", &[]);
    let quick = std::env::args().any(|a| a == "--quick");
    banner(
        "E-SOLVER",
        "exact-solver ablation: Dijkstra vs symmetry-reduced A*",
    );
    let cases = grid_cases(quick);
    let results = par_sweep(cases, run_case);

    let mut t = Table::new(&[
        "instance",
        "n",
        "OPT",
        "base ms",
        "opt ms",
        "base settled",
        "opt settled",
        "settled x",
        "wall x",
    ]);
    let mut rows = Vec::new();
    let (mut k2_settled_base, mut k2_settled_opt) = (0u64, 0u64);
    let (mut k2_ns_base, mut k2_ns_opt) = (0u64, 0u64);
    for o in &results {
        let settled_x = o.base_stats.settled as f64 / o.opt_stats.settled.max(1) as f64;
        let wall_x = o.base_ns as f64 / o.opt_ns.max(1) as f64;
        t.row(&[
            o.label.clone(),
            o.n.to_string(),
            o.total.to_string(),
            format!("{:.2}", o.base_ns as f64 / 1e6),
            format!("{:.2}", o.opt_ns as f64 / 1e6),
            o.base_stats.settled.to_string(),
            o.opt_stats.settled.to_string(),
            format!("{settled_x:.1}x"),
            format!("{wall_x:.1}x"),
        ]);
        if o.k >= 2 && o.n >= 8 {
            k2_settled_base += o.base_stats.settled;
            k2_settled_opt += o.opt_stats.settled;
            k2_ns_base += o.base_ns;
            k2_ns_opt += o.opt_ns;
        }
        rows.push(Json::obj(vec![
            ("instance", Json::from(o.label.as_str())),
            ("n", Json::from(o.n)),
            ("k", Json::from(o.k)),
            ("total", Json::from(o.total)),
            ("base_wall_ns", Json::from(o.base_ns)),
            ("opt_wall_ns", Json::from(o.opt_ns)),
            ("base_settled", Json::from(o.base_stats.settled)),
            ("opt_settled", Json::from(o.opt_stats.settled)),
            ("base_pushed", Json::from(o.base_stats.pushed)),
            ("opt_pushed", Json::from(o.opt_stats.pushed)),
        ]));
    }
    t.print_traced("E-SOLVER");

    let settled_speedup = k2_settled_base as f64 / k2_settled_opt.max(1) as f64;
    let wall_speedup = k2_ns_base as f64 / k2_ns_opt.max(1) as f64;
    println!(
        "\naggregate over k>=2, n>=8: settled-state reduction {settled_speedup:.1}x, \
         wall-clock speedup {wall_speedup:.1}x"
    );

    let json = Json::obj(vec![
        ("suite", Json::from("solver")),
        ("quick", Json::from(quick)),
        (
            "aggregate_k2",
            Json::obj(vec![
                ("settled_speedup", Json::from(settled_speedup)),
                ("wall_speedup", Json::from(wall_speedup)),
                ("base_settled", Json::from(k2_settled_base)),
                ("opt_settled", Json::from(k2_settled_opt)),
                ("base_wall_ns", Json::from(k2_ns_base)),
                ("opt_wall_ns", Json::from(k2_ns_opt)),
            ]),
        ),
        ("results", Json::Arr(rows)),
    ]);
    let path = "BENCH_solver.json";
    match std::fs::write(path, json.render_pretty()) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
    rbp_bench::finish_trace();
}
