//! E6 + E7 — §5 fair comparison: Lemma 7 (`OPT(k)/OPT(1) = 1/k` on
//! independent chains) and Lemma 8 (cost increase up to
//! `≈ (k−1)/k·g·(Δin−1)+1` on the rotating-groups chain).

use rbp_bench::{banner, par_sweep, Table};
use rbp_core::rbp_dag::generators;
use rbp_core::{solve_mpp, CostModel, MppInstance, SolveLimits};
use rbp_gadgets::RotatingChain;

fn main() {
    rbp_bench::init_trace("exp_fair", &[]);
    banner(
        "E6",
        "Lemma 7: fair case, k independent chains: OPT(k)/OPT(1) = 1/k",
    );
    let mut t = Table::new(&["k", "len", "OPT(1)", "OPT(k)", "ratio", "1/k"]);
    for k in [2usize, 3] {
        let len = 4;
        let dag = generators::independent_chains(k, len);
        // Fair memory: r0 = k+1 slots needed for 1 proc to retain the k
        // sink values plus chain workspace… use r0 = k + 2; split = r0/k
        // rounds to at least 2.
        let r0 = 2 * k;
        let o1 = solve_mpp(&MppInstance::new(&dag, 1, r0, 2), SolveLimits::default())
            .expect("k=1 exact");
        let ok = solve_mpp(
            &MppInstance::new(&dag, k, (r0 / k).max(2), 2),
            SolveLimits::states(2_000_000),
        );
        let Some(ok) = ok else {
            println!("(k={k}: exact solve out of budget, skipped)");
            continue;
        };
        t.row(&[
            k.to_string(),
            len.to_string(),
            o1.total.to_string(),
            ok.total.to_string(),
            format!("{:.3}", ok.total as f64 / o1.total as f64),
            format!("{:.3}", 1.0 / k as f64),
        ]);
    }
    t.print_traced("E6");

    banner(
        "E7",
        "Lemma 8: fair case cost increase on rotating-groups chain (m groups of c)",
    );
    let mut t2 = Table::new(&[
        "m",
        "c",
        "k",
        "r0",
        "r0/k",
        "cost/node (measured)",
        "cost/node (predicted)",
        "Lemma 8 ratio bound (k-1)/k·g·(Δin-1)+1",
    ]);
    let g = 4u64;
    let n0 = 60;
    let mut inputs = Vec::new();
    for (m, c) in [(4usize, 4usize), (6, 3), (8, 2)] {
        for k in [2usize, 3, 4] {
            inputs.push((m, c, k));
        }
    }
    let rows = par_sweep(inputs, |&(m, c, k)| {
        let rc = RotatingChain::build(m, c, n0);
        let r0 = rc.resident_r();
        let r_small = r0 / k;
        if r_small < c + 2 {
            return None; // infeasible split for this (m, c, k)
        }
        let run = rc.strategy_fair_split(g, r_small).unwrap();
        let per_node = run.cost.total(CostModel::mpp(g)) as f64 / n0 as f64;
        let predicted = rc.predicted_fair_cost_per_node(g, r_small);
        let lemma8 = (k as f64 - 1.0) / k as f64 * g as f64 * c as f64 + 1.0;
        Some((m, c, k, r0, r_small, per_node, predicted, lemma8))
    });
    for row in rows.into_iter().flatten() {
        let (m, c, k, r0, rs, per, pred, l8) = row;
        t2.row(&[
            m.to_string(),
            c.to_string(),
            k.to_string(),
            r0.to_string(),
            rs.to_string(),
            format!("{per:.2}"),
            format!("{pred:.2}"),
            format!("{l8:.2}"),
        ]);
    }
    t2.print_traced("E7");
    println!(
        "\nOPT(1)/n = 1 (resident strategy), so 'cost/node' IS the fair-case cost\nratio; it tracks the (k−1)/k·g·(Δin−1)+1 growth of Lemma 8."
    );
    rbp_bench::finish_trace();
}
