//! Regenerates the paper's figures as Graphviz DOT files under
//! `figures/` (render with `dot -Tpdf figures/fig2_zipper.dot`).

use rbp_core::rbp_dag::dag_from_edges;
use rbp_core::rbp_dag::dot::{to_dot, DotOptions};
use rbp_gadgets::levels::Tower;
use rbp_gadgets::{Graph, HardnessInstance, Zipper};

fn main() -> std::io::Result<()> {
    rbp_bench::init_trace("gen_figures", &[]);
    std::fs::create_dir_all("figures")?;
    let ranked = DotOptions {
        rank_by_level: true,
        node_attrs: vec![],
    };

    // Figure 1: the worked example DAG.
    let fig1 = dag_from_edges(
        7,
        &[
            (0, 2),
            (1, 2),
            (0, 3),
            (1, 3),
            (2, 4),
            (3, 4),
            (2, 5),
            (3, 5),
            (4, 6),
            (5, 6),
        ],
    );
    std::fs::write("figures/fig1_example.dot", to_dot(&fig1, &ranked))?;

    // Figure 2: the zipper gadget (with recomputation dampers, as in the
    // grey extension of the figure).
    let zipper = Zipper::build(3, 8, 4);
    std::fs::write("figures/fig2_zipper.dot", to_dot(&zipper.dag, &ranked))?;

    // Figure 3: consecutive levels of the three shapes.
    for (name, sizes) in [
        ("fig3_levels_5_5", vec![5usize, 5]),
        ("fig3_levels_5_7", vec![5, 7]),
        ("fig3_levels_5_3", vec![5, 3]),
    ] {
        let t = Tower::build(&sizes);
        std::fs::write(format!("figures/{name}.dot"), to_dot(&t.dag, &ranked))?;
    }

    // Figure 4 analogue: the Theorem 2 reduction instance for a triangle.
    let g = Graph::new(3, &[(0, 1), (1, 2), (0, 2)]);
    let inst = HardnessInstance::build_with_scale(&g, 2, 3);
    std::fs::write(
        "figures/fig4_reduction.dot",
        to_dot(&inst.dag, &DotOptions::default()),
    )?;

    println!("wrote 6 DOT files to figures/");
    rbp_trace::event(
        "figures_written",
        vec![("count", rbp_trace::Json::from(6u64))],
    );
    rbp_bench::finish_trace();
    Ok(())
}
