//! Minimal microbenchmark runner.
//!
//! The container has no external crates, so the `benches/` targets are
//! `harness = false` binaries built on this module instead of criterion.
//! Each benchmark runs a closure for a warmup phase and then a measured
//! phase, reports median/mean wall time per iteration, and the whole
//! suite is dumped as `BENCH_<name>.json` at the workspace root so runs
//! can be diffed across commits.

use std::hint::black_box;
use std::time::{Duration, Instant};

use rbp_trace::CounterSet;
use rbp_util::json::Json;

use crate::Table;

/// One benchmark's timing summary, in nanoseconds per iteration.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark label.
    pub name: String,
    /// Number of measured iterations.
    pub iters: u64,
    /// Median wall time per iteration.
    pub median_ns: u64,
    /// Mean wall time per iteration.
    pub mean_ns: u64,
    /// Minimum wall time per iteration.
    pub min_ns: u64,
    /// Extra counters recorded next to the timings (e.g. settled-state
    /// counts for solver benches) — the shared [`CounterSet`] from
    /// `rbp-trace`, not a bespoke key/value list.
    pub extra: CounterSet,
}

impl Measurement {
    fn to_json(&self) -> Json {
        let mut obj = vec![
            ("name".to_string(), Json::from(self.name.as_str())),
            ("iters".to_string(), Json::from(self.iters)),
            ("median_ns".to_string(), Json::from(self.median_ns)),
            ("mean_ns".to_string(), Json::from(self.mean_ns)),
            ("min_ns".to_string(), Json::from(self.min_ns)),
        ];
        for (k, v) in self.extra.iter() {
            obj.push((k.to_string(), Json::from(v)));
        }
        Json::Obj(obj)
    }
}

/// A benchmark suite: collects [`Measurement`]s, prints a table, and
/// writes `BENCH_<name>.json`.
#[derive(Debug)]
pub struct Bench {
    name: String,
    warmup: Duration,
    measure: Duration,
    max_iters: u64,
    results: Vec<Measurement>,
}

impl Bench {
    /// New suite; `name` determines the JSON file name.
    #[must_use]
    pub fn new(name: &str) -> Self {
        // Keep benches quick by default; RBP_BENCH_MS overrides the
        // per-case measurement window.
        let ms = std::env::var("RBP_BENCH_MS")
            .ok()
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap_or(200);
        Bench {
            name: name.to_string(),
            warmup: Duration::from_millis(ms / 4),
            measure: Duration::from_millis(ms),
            max_iters: 1_000_000,
            results: Vec::new(),
        }
    }

    /// Times `f` (warmup then measurement window) and records the result.
    /// The closure's return value is `black_box`ed so work is not
    /// optimized away.
    pub fn run<T, F: FnMut() -> T>(&mut self, label: &str, mut f: F) -> &mut Measurement {
        // Warmup: also estimates per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
            if warm_iters >= self.max_iters {
                break;
            }
        }
        let mut samples: Vec<u64> = Vec::new();
        let start = Instant::now();
        // Always take at least one sample so the stats below never divide
        // by zero, even when the measure window is zero.
        loop {
            let t = Instant::now();
            black_box(f());
            samples.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
            if start.elapsed() >= self.measure || (samples.len() as u64) >= self.max_iters {
                break;
            }
        }
        samples.sort_unstable();
        let iters = samples.len() as u64;
        let median_ns = samples[samples.len() / 2];
        let mean_ns = samples.iter().sum::<u64>() / iters;
        let min_ns = samples[0];
        self.results.push(Measurement {
            name: label.to_string(),
            iters,
            median_ns,
            mean_ns,
            min_ns,
            extra: CounterSet::new(),
        });
        self.results.last_mut().expect("just pushed")
    }

    /// All measurements so far.
    #[must_use]
    pub fn results(&self) -> &[Measurement] {
        &self.results
    }

    /// Prints the suite as a table.
    pub fn print(&self) {
        let mut t = Table::new(&["bench", "iters", "median", "mean", "min"]);
        for m in &self.results {
            t.row(&[
                m.name.clone(),
                m.iters.to_string(),
                fmt_ns(m.median_ns),
                fmt_ns(m.mean_ns),
                fmt_ns(m.min_ns),
            ]);
        }
        t.print();
    }

    /// Serializes the suite to pretty JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::Obj(vec![
            ("suite".to_string(), Json::from(self.name.as_str())),
            (
                "results".to_string(),
                Json::Arr(self.results.iter().map(Measurement::to_json).collect()),
            ),
        ])
        .render_pretty()
    }

    /// Prints the table and writes `BENCH_<name>.json` into the
    /// workspace root (or the current directory as a fallback).
    pub fn finish(&self) {
        self.print();
        let file = format!("BENCH_{}.json", self.name);
        let path = workspace_root().join(file);
        match std::fs::write(&path, self.to_json()) {
            Ok(()) => println!("\nwrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

/// Workspace root: walk up from the executable's cwd until a
/// `Cargo.toml` containing `[workspace]` is found.
pub(crate) fn workspace_root() -> std::path::PathBuf {
    let mut dir = std::env::current_dir().unwrap_or_else(|_| ".".into());
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return std::env::current_dir().unwrap_or_else(|_| ".".into());
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_serializes() {
        let mut b = Bench::new("unit_test");
        b.warmup = Duration::from_millis(1);
        b.measure = Duration::from_millis(5);
        let m = b.run("noop", || 1 + 1);
        m.extra.add("settled", 42);
        assert_eq!(b.results().len(), 1);
        assert!(b.results()[0].iters > 0);
        let json = b.to_json();
        assert!(json.contains("\"suite\": \"unit_test\""));
        assert!(json.contains("\"settled\": 42"));
    }

    #[test]
    fn zero_measure_window_takes_one_sample() {
        let mut b = Bench::new("unit_test_zero");
        b.warmup = Duration::from_millis(0);
        b.measure = Duration::from_millis(0);
        let m = b.run("noop", || 1 + 1);
        assert_eq!(m.iters, 1);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(500), "500ns");
        assert_eq!(fmt_ns(1_500), "1.50us");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }
}
