//! # rbp-bench — the experiment harness
//!
//! One binary per experiment (see `src/bin/exp_*.rs` and EXPERIMENTS.md
//! at the repository root); each regenerates the quantitative content of
//! a lemma, theorem, or figure of the paper as a plain-text table.
//!
//! This library holds the shared pieces: a fixed-width table printer, a
//! parallel parameter-sweep helper built on `std::thread::scope` (sweeps
//! are embarrassingly parallel; results are collected through a mutex
//! and re-ordered deterministically), and [`micro`], a dependency-free
//! microbenchmark runner used by the `benches/` targets (the container
//! has no criterion, so the harness is in-tree).

#![warn(missing_docs)]

pub mod micro;

pub use micro::{Bench, Measurement};

use std::sync::Mutex;

/// A fixed-width plain-text table printer.
///
/// ```
/// use rbp_bench::Table;
/// let mut t = Table::new(&["d", "speedup"]);
/// t.row(&["4", "2.02"]);
/// let s = t.render();
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must match the header count).
    pub fn row(&mut self, cells: &[impl AsRef<str>]) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows
            .push(cells.iter().map(|c| c.as_ref().to_string()).collect());
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |cells: &[String]| -> String {
            let mut s = String::new();
            for i in 0..cols {
                if i > 0 {
                    s.push_str("  ");
                }
                let cell = &cells[i];
                // Right-align numbers-ish, left-align first column.
                if i == 0 {
                    s.push_str(&format!("{cell:<width$}", width = widths[i]));
                } else {
                    s.push_str(&format!("{cell:>width$}", width = widths[i]));
                }
            }
            s
        };
        let mut out = line(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout and, when a trace sink is installed,
    /// also emits it as a `table` event named `name` so `rbp report`
    /// can reproduce it from the trace file alone.
    pub fn print_traced(&self, name: &str) {
        self.print();
        if rbp_trace::enabled() {
            rbp_trace::table(name, &self.headers, &self.rows);
        }
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Prints an experiment header banner and records it as a trace event
/// (`{"type":"event","name":"experiment", …}`) so reports can title
/// their sections.
pub fn banner(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===\n");
    if rbp_trace::enabled() {
        rbp_trace::event(
            "experiment",
            vec![
                ("id", rbp_trace::Json::from(id)),
                ("title", rbp_trace::Json::from(title)),
            ],
        );
    }
}

/// Installs the standard JSONL trace sink for an experiment binary.
///
/// The destination defaults to `TRACE_<tool>.jsonl` at the workspace
/// root (next to the `BENCH_*.json` artifacts). The `RBP_TRACE`
/// environment variable overrides it: a path redirects the trace, and
/// `0`, `off`, or an empty value disables tracing entirely. The
/// manifest header records the tool name and its command-line
/// arguments; pass extra identifying fields (seed, instance hash,
/// solver config) through `extra`.
pub fn init_trace(tool: &str, extra: &[(&str, rbp_trace::Json)]) {
    let path = match std::env::var("RBP_TRACE") {
        Ok(v) if v.is_empty() || v == "0" || v.eq_ignore_ascii_case("off") => return,
        Ok(v) => std::path::PathBuf::from(v),
        Err(_) => micro::workspace_root().join(format!("TRACE_{tool}.jsonl")),
    };
    let Ok(sink) = rbp_trace::JsonlSink::create(&path) else {
        eprintln!("warning: could not create trace file {}", path.display());
        return;
    };
    let args: Vec<rbp_trace::Json> = std::env::args()
        .skip(1)
        .map(|a| rbp_trace::Json::from(a.as_str()))
        .collect();
    let mut manifest = rbp_trace::Manifest::new(tool).field("args", rbp_trace::Json::Arr(args));
    if !extra.iter().any(|(k, _)| *k == "seed") {
        // Every experiment derives its randomness from RBP_SEED (see
        // rbp_util::env_seed); record the effective base seed so a trace
        // identifies the exact rerun command.
        manifest = manifest.field("seed", rbp_util::env_seed(0));
    }
    for (k, v) in extra {
        manifest = manifest.field(k, v.clone());
    }
    rbp_trace::install(Box::new(sink), manifest);
    println!("trace: {}", path.display());
}

/// Flushes and closes the trace sink installed by [`init_trace`]. Call
/// at the end of `main` — the global sink is not dropped on process
/// exit, so skipping this loses buffered lines.
pub fn finish_trace() {
    rbp_trace::uninstall();
}

/// Runs `f` over all `inputs` in parallel (scoped threads, one per input
/// up to `max_threads`), returning outputs in input order.
pub fn par_sweep<I, O, F>(inputs: Vec<I>, f: F) -> Vec<O>
where
    I: Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let n = inputs.len();
    let max_threads = std::thread::available_parallelism()
        .map(std::num::NonZero::get)
        .unwrap_or(4)
        .min(n.max(1));
    let results: Mutex<Vec<Option<O>>> = Mutex::new((0..n).map(|_| None).collect());
    let next: Mutex<usize> = Mutex::new(0);
    std::thread::scope(|scope| {
        for _ in 0..max_threads {
            scope.spawn(|| loop {
                let i = {
                    let mut guard = next.lock().unwrap();
                    let i = *guard;
                    if i >= n {
                        return;
                    }
                    *guard += 1;
                    i
                };
                let out = f(&inputs[i]);
                results.lock().unwrap()[i] = Some(out);
            });
        }
    });
    results
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|o| o.expect("worker completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["alpha", "1"]);
        t.row(&["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
        // All rows share the same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_row() {
        let mut t = Table::new(&["a", "b"]);
        t.row(&["only one"]);
    }

    #[test]
    fn sweep_preserves_order() {
        let inputs: Vec<u64> = (0..100).collect();
        let out = par_sweep(inputs.clone(), |&x| x * 2);
        assert_eq!(out, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_handles_empty() {
        let out: Vec<u64> = par_sweep(Vec::<u64>::new(), |&x| x);
        assert!(out.is_empty());
    }
}
