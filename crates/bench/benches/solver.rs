//! Exact solver scaling (SPP in n and r; MPP in k), plus the ablation
//! of the PR's two search optimizations: processor-symmetry
//! canonicalization and the admissible A\* heuristic. Each variant's
//! settled-state count lands in `BENCH_solver.json` next to wall time,
//! so before/after runs can be compared commit-to-commit.

use rbp_bench::Bench;
use rbp_core::mpp::exact::probe;
use rbp_core::rbp_dag::generators;
use rbp_core::{
    solve_mpp, solve_mpp_with, solve_spp, solve_spp_with, MppInstance, SearchConfig, SolveLimits,
    SppInstance,
};

fn main() {
    // The full before/after sweep (exp_solver) owns BENCH_solver.json;
    // this microbench suite writes BENCH_solver_micro.json.
    let mut b = Bench::new("solver_micro");

    for leaves in [4usize, 8] {
        let dag = generators::binary_in_tree(leaves);
        b.run(&format!("spp/tree{leaves}"), || {
            solve_spp(
                &SppInstance::with_compute(&dag, 3, 2),
                SolveLimits::default(),
            )
            .unwrap()
            .total
        });
    }
    for r in [3usize, 4] {
        let dag = generators::grid(3, 3);
        b.run(&format!("spp/grid3x3_r{r}"), || {
            solve_spp(
                &SppInstance::with_compute(&dag, r, 2),
                SolveLimits::default(),
            )
            .unwrap()
            .total
        });
    }
    for k in [1usize, 2] {
        let dag = generators::binary_in_tree(4);
        b.run(&format!("mpp/tree4_k{k}"), || {
            solve_mpp(&MppInstance::new(&dag, k, 3, 2), SolveLimits::default())
                .unwrap()
                .total
        });
    }

    // Ablation: symmetry × heuristic on a k=2 instance. All four
    // variants must agree on the optimum; they differ in states settled
    // and wall time.
    let dag = generators::grid(3, 3);
    let inst = MppInstance::new(&dag, 2, 3, 2);
    let mut totals = Vec::new();
    for (sym, heur) in [(false, false), (true, false), (false, true), (true, true)] {
        let cfg = SearchConfig {
            symmetry: sym,
            heuristic: heur,
            ..SearchConfig::default()
        };
        let label = format!(
            "mpp/grid3x3_k2[sym={}+heur={}]",
            u8::from(sym),
            u8::from(heur)
        );
        let outcome = solve_mpp_with(&inst, &cfg);
        totals.push(outcome.solution.as_ref().expect("solvable").total);
        let settled = outcome.stats.settled;
        let pushed = outcome.stats.pushed;
        let m = b.run(&label, || solve_mpp_with(&inst, &cfg).stats.settled);
        m.extra.add("settled", settled);
        m.extra.add("pushed", pushed);
    }
    assert!(
        totals.windows(2).all(|w| w[0] == w[1]),
        "ablation variants disagree: {totals:?}"
    );

    // Same ablation for SPP (no symmetry axis; heuristic only).
    let dag = generators::grid(3, 4);
    let inst = SppInstance::with_compute(&dag, 3, 2);
    for heur in [false, true] {
        let cfg = SearchConfig {
            symmetry: false,
            heuristic: heur,
            ..SearchConfig::default()
        };
        let outcome = solve_spp_with(&inst, &cfg);
        let settled = outcome.stats.settled;
        let m = b.run(&format!("spp/grid3x4[heur={}]", u8::from(heur)), || {
            solve_spp_with(&inst, &cfg).stats.settled
        });
        m.extra.add("settled", settled);
    }

    // Hot-path kernels (`solver_kernel` group), timed in isolation via
    // the solver's probe hooks: memoized processor-permutation
    // canonicalization, the incremental (delta) heuristic against the
    // from-scratch evaluation it replaces, and per-expansion successor
    // generation with dominance pruning off vs on. All walk-based
    // kernels share a fixed seed so before/after runs time identical
    // work; the returned checksums keep the work live.
    let dag = generators::grid(3, 3);
    let inst = MppInstance::new(&dag, 2, 3, 2);
    const KSEED: u64 = 0xbeb0;
    let m = b.run("solver_kernel/canonicalize_64k", || {
        probe::canon_kernel(64_000, KSEED)
    });
    m.extra.add("iters", 64_000u64);
    for (label, delta) in [
        ("solver_kernel/heur_scratch_8k", false),
        ("solver_kernel/heur_delta_8k", true),
    ] {
        let m = b.run(label, || probe::heur_kernel(&inst, 8_000, delta, KSEED));
        m.extra.add("evals", 8_000u64);
    }
    for (label, dominance) in [
        ("solver_kernel/expand_naive_2k", false),
        ("solver_kernel/expand_pruned_2k", true),
    ] {
        let emitted = probe::expand_kernel(&inst, 2_000, dominance, KSEED);
        let m = b.run(label, || {
            probe::expand_kernel(&inst, 2_000, dominance, KSEED)
        });
        m.extra.add("expansions", 2_000u64);
        m.extra.add("emitted", emitted);
    }

    // Send-path cost: one ring slot per state vs the driver's 8-state
    // blocks, producer/consumer interleaved on one thread so the
    // numbers are deterministic on any host. This walk exposes the
    // *copy* side of the trade-off (batching moves more bytes per
    // message: into the block, then the block through the ring) while
    // `ring_ops` records the synchronization side it buys — 8x fewer
    // atomic release/acquire pairs and shared-cache-line handoffs,
    // which is where the win lives under real cross-core traffic. The
    // checksum proves both transports deliver identical messages
    // before either is timed.
    const MSGS: u64 = 200_000;
    const BCAP: u64 = rbp_core::ringbench::BLOCK_CAP as u64;
    assert_eq!(
        rbp_core::ringbench::transfer_per_state(MSGS),
        rbp_core::ringbench::transfer_batched(MSGS),
        "transports must deliver identical payloads"
    );
    let m = b.run("ring/send_per_state_200k", || {
        rbp_core::ringbench::transfer_per_state(MSGS)
    });
    m.extra.add("msgs", MSGS);
    m.extra.add("ring_ops", MSGS);
    let m = b.run("ring/send_batched_200k", || {
        rbp_core::ringbench::transfer_batched(MSGS)
    });
    m.extra.add("msgs", MSGS);
    m.extra.add("ring_ops", MSGS.div_ceil(BCAP));
    m.extra.add("block_cap", BCAP);

    b.finish();
}
