//! Criterion: exact solver scaling (SPP in n and r; MPP in k), plus the
//! DESIGN.md ablation of the dominance/normalization choices is implicit
//! in the state counts — wall time is the proxy measured here.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbp_core::rbp_dag::generators;
use rbp_core::{solve_mpp, solve_spp, MppInstance, SolveLimits, SppInstance};

fn bench_spp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("spp_exact");
    group.sample_size(10);
    for leaves in [4usize, 8] {
        let dag = generators::binary_in_tree(leaves);
        group.bench_with_input(
            BenchmarkId::new("tree", leaves),
            &dag,
            |b, dag| {
                b.iter(|| {
                    solve_spp(
                        &SppInstance::with_compute(dag, 3, 2),
                        SolveLimits::default(),
                    )
                    .unwrap()
                    .total
                });
            },
        );
    }
    for r in [2usize, 3, 4] {
        let dag = generators::grid(3, 3);
        group.bench_with_input(BenchmarkId::new("grid3x3_r", r), &r, |b, &r| {
            b.iter(|| {
                solve_spp(
                    &SppInstance::with_compute(&dag, r, 2),
                    SolveLimits::default(),
                )
                .unwrap()
                .total
            });
        });
    }
    group.finish();
}

fn bench_mpp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("mpp_exact");
    group.sample_size(10);
    for k in [1usize, 2] {
        let dag = generators::binary_in_tree(4);
        group.bench_with_input(BenchmarkId::new("tree4_k", k), &k, |b, &k| {
            b.iter(|| {
                solve_mpp(&MppInstance::new(&dag, k, 3, 2), SolveLimits::default())
                    .unwrap()
                    .total
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spp_scaling, bench_mpp_scaling);
criterion_main!(benches);
