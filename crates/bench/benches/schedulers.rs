//! Criterion: scheduler throughput on large DAGs (nodes scheduled per
//! second), including the eviction-policy ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rbp_core::rbp_dag::generators;
use rbp_core::MppInstance;
use rbp_schedulers::{
    EvictionPolicy, Greedy, GreedyConfig, MppScheduler, Partition, TopoBaseline, Wavefront,
};

fn bench_schedulers(c: &mut Criterion) {
    let dag = generators::layered_random(20, 24, 3, 5);
    let inst = MppInstance::new(&dag, 4, 6, 3);
    let mut group = c.benchmark_group("schedulers");
    group.sample_size(10);
    group.throughput(Throughput::Elements(dag.n() as u64));
    let scheds: Vec<(&str, Box<dyn MppScheduler>)> = vec![
        ("topo-baseline", Box::new(TopoBaseline)),
        ("wavefront", Box::new(Wavefront)),
        ("partition", Box::new(Partition)),
        ("greedy", Box::new(Greedy::default())),
    ];
    for (name, s) in &scheds {
        group.bench_function(*name, |b| {
            b.iter(|| s.schedule(&inst).unwrap().cost);
        });
    }
    group.finish();

    // Eviction-policy ablation.
    let mut group = c.benchmark_group("greedy_eviction_ablation");
    group.sample_size(10);
    for (name, policy) in [
        ("furthest", EvictionPolicy::FurthestUse),
        ("lru", EvictionPolicy::Lru),
        ("fewest", EvictionPolicy::FewestUses),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &policy, |b, &policy| {
            let s = Greedy::new(GreedyConfig {
                eviction: policy,
                ..GreedyConfig::default()
            });
            b.iter(|| s.schedule(&inst).unwrap().cost);
        });
    }
    group.finish();
}

criterion_group!(benches, bench_schedulers);
criterion_main!(benches);
