//! Scheduler throughput on large DAGs (nodes scheduled per second),
//! including the eviction-policy ablation from DESIGN.md.

use rbp_bench::Bench;
use rbp_core::rbp_dag::generators;
use rbp_core::MppInstance;
use rbp_schedulers::{
    EvictionPolicy, Greedy, GreedyConfig, MppScheduler, Partition, TopoBaseline, Wavefront,
};

fn main() {
    let dag = generators::layered_random(20, 24, 3, 5);
    let inst = MppInstance::new(&dag, 4, 6, 3);
    let mut b = Bench::new("schedulers");

    let scheds: Vec<(&str, Box<dyn MppScheduler>)> = vec![
        ("topo-baseline", Box::new(TopoBaseline)),
        ("wavefront", Box::new(Wavefront)),
        ("partition", Box::new(Partition)),
        ("greedy", Box::new(Greedy::default())),
    ];
    for (name, s) in &scheds {
        let m = b.run(&format!("schedule/{name}"), || {
            s.schedule(&inst).unwrap().cost
        });
        m.extra.add("nodes", dag.n() as u64);
    }

    // Eviction-policy ablation.
    for (name, policy) in [
        ("furthest", EvictionPolicy::FurthestUse),
        ("lru", EvictionPolicy::Lru),
        ("fewest", EvictionPolicy::FewestUses),
    ] {
        let s = Greedy::new(GreedyConfig {
            eviction: policy,
            ..GreedyConfig::default()
        });
        b.run(&format!("greedy_eviction/{name}"), || {
            s.schedule(&inst).unwrap().cost
        });
    }

    b.finish();
}
