//! Bound computation, including the Lemma 5 strategy translation
//! (MPP → SPP simulation).

use rbp_bench::Bench;
use rbp_core::rbp_dag::generators;
use rbp_core::{mpp_to_spp, MppInstance};
use rbp_schedulers::{Greedy, MppScheduler};

fn main() {
    let mut b = Bench::new("bounds");
    b.run("fft_formula_sweep", || {
        let mut acc = 0u64;
        for p in 4..16u64 {
            acc += rbp_bounds::fft::mpp_total_lower(1 << p, 4, 8, 3);
        }
        acc
    });
    b.run("matmul_formula_sweep", || {
        let mut acc = 0u64;
        for n in 2..64u64 {
            acc += rbp_bounds::matmul::mpp_total_lower(n, 4, 8, 3);
        }
        acc
    });

    // Lemma 5 translation of a real strategy.
    let dag = generators::layered_random(10, 12, 3, 3);
    let inst = MppInstance::new(&dag, 4, 5, 2);
    let run = Greedy::default().schedule(&inst).unwrap();
    b.run("lemma5_translate", || {
        mpp_to_spp(&inst, &run.strategy).len()
    });

    let small = generators::binary_in_tree(4);
    b.run("corollary1_exact_small", || {
        rbp_bounds::translate::mpp_total_lower_exact(
            &MppInstance::new(&small, 2, 3, 2),
            rbp_core::SolveLimits::default(),
        )
        .unwrap()
    });

    // The new state-dependent bound (A* heuristic at the start state).
    let grid = generators::grid(3, 3);
    b.run("heuristic_initial_lower", || {
        rbp_bounds::heuristic::mpp_initial_lower(&MppInstance::new(&grid, 2, 3, 1)).unwrap()
    });

    b.finish();
}
