//! Criterion: bound computation, including the Lemma 5 strategy
//! translation (MPP → SPP simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use rbp_core::rbp_dag::generators;
use rbp_core::{mpp_to_spp, MppInstance};
use rbp_schedulers::{Greedy, MppScheduler};

fn bench_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounds");
    group.sample_size(20);
    group.bench_function("fft_formula_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for p in 4..16u64 {
                acc += rbp_bounds::fft::mpp_total_lower(1 << p, 4, 8, 3);
            }
            acc
        });
    });
    group.bench_function("matmul_formula_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for n in 2..64u64 {
                acc += rbp_bounds::matmul::mpp_total_lower(n, 4, 8, 3);
            }
            acc
        });
    });

    // Lemma 5 translation of a real strategy.
    let dag = generators::layered_random(10, 12, 3, 3);
    let inst = MppInstance::new(&dag, 4, 5, 2);
    let run = Greedy::default().schedule(&inst).unwrap();
    group.bench_function("lemma5_translate", |b| {
        b.iter(|| mpp_to_spp(&inst, &run.strategy).len());
    });

    let small = generators::binary_in_tree(4);
    group.bench_function("corollary1_exact_small", |b| {
        b.iter(|| {
            rbp_bounds::translate::mpp_total_lower_exact(
                &MppInstance::new(&small, 2, 3, 2),
                rbp_core::SolveLimits::default(),
            )
            .unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, bench_bounds);
criterion_main!(benches);
