//! Criterion: DAG and gadget generator cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbp_core::rbp_dag::generators;
use rbp_gadgets::{RotatingChain, Zipper};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("generators");
    group.sample_size(20);
    group.bench_function("fft(10)", |b| b.iter(|| generators::fft(10).n()));
    group.bench_function("matmul(8)", |b| b.iter(|| generators::matmul(8).n()));
    group.bench_function("grid(64x64)", |b| b.iter(|| generators::grid(64, 64).n()));
    for n in [1_000usize, 10_000] {
        group.bench_with_input(BenchmarkId::new("random_layered", n), &n, |b, &n| {
            b.iter(|| generators::layered_random(n / 100, 100, 3, 1).n());
        });
    }
    group.bench_function("zipper(d=32,n0=10000)", |b| {
        b.iter(|| Zipper::build(32, 10_000, 0).dag.n())
    });
    group.bench_function("rotating(m=8,c=8,n0=10000)", |b| {
        b.iter(|| RotatingChain::build(8, 8, 10_000).dag.n())
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
