//! DAG and gadget generator cost.

use rbp_bench::Bench;
use rbp_core::rbp_dag::generators;
use rbp_gadgets::{RotatingChain, Zipper};

fn main() {
    let mut b = Bench::new("generators");
    b.run("fft(10)", || generators::fft(10).n());
    b.run("matmul(8)", || generators::matmul(8).n());
    b.run("grid(64x64)", || generators::grid(64, 64).n());
    for n in [1_000usize, 10_000] {
        b.run(&format!("random_layered({n})"), || {
            generators::layered_random(n / 100, 100, 3, 1).n()
        });
    }
    b.run("zipper(d=32,n0=10000)", || {
        Zipper::build(32, 10_000, 0).dag.n()
    });
    b.run("rotating(m=8,c=8,n0=10000)", || {
        RotatingChain::build(8, 8, 10_000).dag.n()
    });
    b.finish();
}
