//! Theorem 2 decision procedure scaling (zero-I/O one-shot pebbling
//! feasibility) on towers and reduction instances.

use rbp_bench::Bench;
use rbp_core::zero_io_pebbling_exists;
use rbp_gadgets::levels::Tower;
use rbp_gadgets::{Graph, HardnessInstance};

fn main() {
    let mut b = Bench::new("oneshot");
    for levels in [4usize, 6, 8] {
        let sizes: Vec<usize> = (0..levels).map(|i| 3 + (i % 3)).collect();
        let tower = Tower::build(&sizes);
        let peak = tower.predicted_peak();
        b.run(&format!("tower_levels({levels})"), || {
            zero_io_pebbling_exists(&tower.dag, peak).unwrap()
        });
    }
    let path = Graph::new(4, &[(0, 1), (1, 2), (2, 3)]);
    let inst = HardnessInstance::build(&path, 2);
    b.run("reduction_path4_yes", || {
        zero_io_pebbling_exists(&inst.dag, inst.budget).unwrap()
    });
    let inst_no = HardnessInstance::build(&path, 1);
    b.run("reduction_path4_no", || {
        zero_io_pebbling_exists(&inst_no.dag, inst_no.budget).unwrap()
    });
    b.finish();
}
