//! Criterion: Theorem 2 decision procedure scaling (zero-I/O one-shot
//! pebbling feasibility) on towers and reduction instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rbp_core::zero_io_pebbling_exists;
use rbp_gadgets::levels::Tower;
use rbp_gadgets::{Graph, HardnessInstance};

fn bench_oneshot(c: &mut Criterion) {
    let mut group = c.benchmark_group("oneshot_decision");
    group.sample_size(10);
    for levels in [4usize, 6, 8] {
        let sizes: Vec<usize> = (0..levels).map(|i| 3 + (i % 3)).collect();
        let tower = Tower::build(&sizes);
        let peak = tower.predicted_peak();
        group.bench_with_input(
            BenchmarkId::new("tower_levels", levels),
            &tower,
            |b, tower| {
                b.iter(|| zero_io_pebbling_exists(&tower.dag, peak).unwrap());
            },
        );
    }
    let path = Graph::new(4, &[(0, 1), (1, 2), (2, 3)]);
    let inst = HardnessInstance::build(&path, 2);
    group.bench_function("reduction_path4_yes", |b| {
        b.iter(|| zero_io_pebbling_exists(&inst.dag, inst.budget).unwrap());
    });
    let inst_no = HardnessInstance::build(&path, 1);
    group.bench_function("reduction_path4_no", |b| {
        b.iter(|| zero_io_pebbling_exists(&inst_no.dag, inst_no.budget).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_oneshot);
criterion_main!(benches);
