//! # rbp-dag — computational DAG substrate for red-blue pebbling
//!
//! The pebbling games of the paper *Red-Blue Pebbling with Multiple
//! Processors* operate on arbitrary computational DAGs: nodes are single
//! operations, edges are data dependencies. This crate provides
//!
//! - [`Dag`], an immutable compressed-sparse-row DAG with fast
//!   predecessor/successor iteration, built via [`DagBuilder`];
//! - [`NodeSet`], the dense bitset the game states are made of;
//! - topological utilities ([`TopoInfo`], [`longest_path`]);
//! - reachability/closure queries ([`traversal`]);
//! - structural analyses used by lower bounds ([`analysis`], including the
//!   exact minimum peak-memory DP that powers the Theorem 2 machinery);
//! - generators for every DAG family the paper references
//!   ([`generators`]: chains, trees, grids, 2-layer DAGs, FFT, matrix
//!   multiplication, random DAGs);
//! - DOT export ([`dot`]) and a plain-text fixture format ([`io`]).
//!
//! ```
//! use rbp_dag::{generators, DagStats};
//! let dag = generators::fft(4); // 16-point FFT butterfly
//! let stats = DagStats::compute(&dag);
//! assert_eq!(stats.max_in_degree, 2);
//! ```

#![deny(missing_docs)]

pub mod analysis;
pub mod dot;
pub mod generators;
mod graph;
pub mod io;
mod nodeset;
mod topo;
pub mod traversal;

pub use analysis::{anchor_nodes, live_set, min_peak_memory, DagStats};
pub use graph::{dag_from_edges, Dag, DagBuilder, DagError, NodeId};
pub use nodeset::{HybridNodeSet, HybridNodeSetIter, NodeSet, NodeSetIter};
pub use topo::{longest_path, TopoInfo};
