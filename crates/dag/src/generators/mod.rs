//! Generators for DAG families used throughout the paper.
//!
//! Three groups:
//! - `basic`: chains, trees, diamonds, grids, 2-layer bipartite DAGs —
//!   the simple classes Lemma 2 and Section 5 reason about;
//! - `compute`: real computation DAGs (FFT butterfly, naive matrix
//!   multiplication, reduction trees) targeted by the Section 4 lower
//!   bounds;
//! - `random`: seeded random DAGs for sweeps and property tests.
//!
//! All generators are deterministic given their parameters (random ones
//! take an explicit seed) and record their provenance in [`Dag::name`].
//!
//! [`Dag::name`]: crate::Dag::name

mod basic;
mod compute;
mod pyramid;
mod random;

pub use basic::{
    binary_in_tree, binary_out_tree, chain, diamond, grid, independent_chains, two_layer_full,
    two_layer_regular,
};
pub use compute::{fft, matmul, reduction_tree};
pub use pyramid::{pyramid, r_pyramid, stencil_1d};
pub use random::{layered_random, random_dag};
