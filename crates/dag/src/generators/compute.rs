//! Computation DAGs targeted by the paper's lower-bound section:
//! the n-point FFT butterfly and naive matrix-matrix multiplication.

use crate::{Dag, DagBuilder, NodeId};

/// The `n`-point FFT butterfly DAG, `n = 2^log_n` inputs and `log_n`
/// butterfly stages. Every non-input node has in-degree 2; stage `s` node
/// `i` reads stage `s-1` nodes `i` and `i ^ 2^(s-1)`.
///
/// Hong–Kung derive the I/O lower bound `Ω(n log n / log r)` on this DAG;
/// see `rbp-bounds::fft`.
#[must_use]
pub fn fft(log_n: u32) -> Dag {
    let n = 1usize << log_n;
    // Stage s occupies ids [s·n, (s+1)·n); edges only point to the next
    // stage, so the stream is id-topological and the butterfly builds
    // through `Dag::from_edge_stream` with no intermediate edge list.
    Dag::from_edge_stream(n * (log_n as usize + 1), format!("fft(n={n})"), |sink| {
        for s in 0..log_n as usize {
            let stride = 1usize << s;
            let base = s * n;
            for i in 0..n {
                sink(NodeId::new(base + i), NodeId::new(base + n + i));
                sink(NodeId::new(base + (i ^ stride)), NodeId::new(base + n + i));
            }
        }
    })
    .expect("fft is a DAG")
}

/// Naive `n×n` matrix multiplication DAG `C = A·B`:
/// - `2n²` input nodes (entries of A and B);
/// - `n³` product nodes `A[i][k] * B[k][j]`, in-degree 2;
/// - per output entry, a chain of `n-1` addition nodes summing the `n`
///   products (first addition takes two products, later ones take the
///   running sum and the next product), for `n²(n-1)` additions.
///
/// Total `n = 2n² + n³ + n²(n-1)` nodes. Kwasniewski et al. prove the
/// `2n³/√r + n²` I/O lower bound on this DAG; see `rbp-bounds::matmul`.
#[must_use]
pub fn matmul(n: usize) -> Dag {
    assert!(n >= 1);
    let mut b = DagBuilder::new();
    let a: Vec<Vec<NodeId>> = (0..n).map(|_| b.add_nodes(n)).collect();
    let bm: Vec<Vec<NodeId>> = (0..n).map(|_| b.add_nodes(n)).collect();
    #[allow(clippy::needless_range_loop)] // i,j,k index three matrices
    for i in 0..n {
        for j in 0..n {
            let mut acc: Option<NodeId> = None;
            for k in 0..n {
                let prod = b.add_node();
                b.add_edge(a[i][k], prod);
                b.add_edge(bm[k][j], prod);
                acc = Some(match acc {
                    None => prod,
                    Some(prev) => {
                        let add = b.add_node();
                        b.add_edge(prev, add);
                        b.add_edge(prod, add);
                        add
                    }
                });
            }
        }
    }
    b.name(format!("matmul(n={n})"));
    b.build().expect("matmul is a DAG")
}

/// Balanced reduction tree of the given `arity` over `leaves` inputs
/// (`leaves` must be a power of `arity`). The generalization of
/// [`binary_in_tree`](super::binary_in_tree) used in Δ_in sweeps.
#[must_use]
pub fn reduction_tree(arity: usize, leaves: usize) -> Dag {
    assert!(arity >= 2);
    assert!(
        is_power_of(leaves, arity),
        "leaves must be a power of arity"
    );
    let mut b = DagBuilder::new();
    let mut current = b.add_nodes(leaves);
    while current.len() > 1 {
        let mut next = Vec::with_capacity(current.len() / arity);
        for group in current.chunks(arity) {
            let parent = b.add_node();
            for &c in group {
                b.add_edge(c, parent);
            }
            next.push(parent);
        }
        current = next;
    }
    b.name(format!("reduction_tree(arity={arity}, leaves={leaves})"));
    b.build().expect("tree is a DAG")
}

fn is_power_of(mut x: usize, base: usize) -> bool {
    if x == 0 {
        return false;
    }
    while x.is_multiple_of(base) {
        x /= base;
    }
    x == 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagStats;

    #[test]
    fn fft_shape() {
        let d = fft(3); // 8-point FFT
        let s = DagStats::compute(&d);
        assert_eq!(s.n, 8 * 4); // inputs + 3 stages
        assert_eq!(s.m, 2 * 8 * 3);
        assert_eq!(s.sources, 8);
        assert_eq!(s.sinks, 8);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.depth, 4);
    }

    #[test]
    fn fft_trivial() {
        let d = fft(0);
        assert_eq!(d.n(), 1);
        assert_eq!(d.m(), 0);
    }

    #[test]
    fn fft_butterfly_wiring() {
        let d = fft(1); // 2 inputs, 1 stage: both outputs read both inputs
        assert_eq!(d.n(), 4);
        assert_eq!(d.preds(crate::NodeId(2)).len(), 2);
        assert_eq!(d.preds(crate::NodeId(3)).len(), 2);
    }

    #[test]
    fn matmul_node_count() {
        for n in 1..=4 {
            let d = matmul(n);
            let expect = 2 * n * n + n * n * n + n * n * (n - 1);
            assert_eq!(d.n(), expect, "matmul({n})");
            let s = DagStats::compute(&d);
            assert_eq!(s.sources, 2 * n * n);
            assert_eq!(s.sinks, n * n);
            assert_eq!(s.max_in_degree, if n >= 1 { 2 } else { 0 });
        }
    }

    #[test]
    fn matmul_edge_count() {
        // Each product has 2 in-edges, each addition has 2 in-edges.
        let n = 3;
        let d = matmul(n);
        assert_eq!(d.m(), 2 * n * n * n + 2 * n * n * (n - 1));
    }

    #[test]
    fn matmul_1_is_products_only() {
        let d = matmul(1);
        // 2 inputs, 1 product, 0 additions.
        assert_eq!(d.n(), 3);
        assert_eq!(DagStats::compute(&d).sinks, 1);
    }

    #[test]
    fn reduction_tree_shapes() {
        let d = reduction_tree(3, 27);
        let s = DagStats::compute(&d);
        assert_eq!(s.n, 27 + 9 + 3 + 1);
        assert_eq!(s.max_in_degree, 3);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.depth, 4);
    }

    #[test]
    #[should_panic(expected = "power of arity")]
    fn reduction_tree_rejects_non_power() {
        let _ = reduction_tree(3, 10);
    }
}
