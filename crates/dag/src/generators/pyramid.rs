//! Pyramid and time-stepped stencil DAGs — classic pebbling substrates
//! (Ranjan–Savage–Zubair study I/O bounds for r-pyramids; stencils are
//! the standard iterated-dependency workload).

use crate::{Dag, DagBuilder, NodeId};

/// A 2-pyramid of the given `height`: row 0 (the base) has `height + 1`
/// nodes, each higher row has one fewer, every node reads its two lower
/// neighbours. The apex is the single sink. Total nodes
/// `(h+1)(h+2)/2`.
#[must_use]
pub fn pyramid(height: usize) -> Dag {
    let mut b = DagBuilder::new();
    let mut below: Vec<NodeId> = (0..=height)
        .map(|i| b.add_labeled_node(format!("p0_{i}")))
        .collect();
    for row in 1..=height {
        let current: Vec<NodeId> = (0..=height - row)
            .map(|i| {
                let v = b.add_labeled_node(format!("p{row}_{i}"));
                b.add_edge(below[i], v);
                b.add_edge(below[i + 1], v);
                v
            })
            .collect();
        below = current;
    }
    b.name(format!("pyramid(height={height})"));
    b.build().expect("pyramid is a DAG")
}

/// An `r`-pyramid: like [`pyramid`] but each node reads `r` consecutive
/// lower neighbours (rows shrink by `r − 1`). `width` is the base size;
/// construction stops when a row has fewer than `r` nodes (those become
/// extra sinks). `r = 2` with `width = h + 1` is the classic pyramid.
#[must_use]
pub fn r_pyramid(r: usize, width: usize) -> Dag {
    assert!(r >= 2 && width >= r);
    let mut b = DagBuilder::new();
    let mut below: Vec<NodeId> = (0..width)
        .map(|i| b.add_labeled_node(format!("q0_{i}")))
        .collect();
    let mut row = 0;
    while below.len() >= r {
        row += 1;
        let current: Vec<NodeId> = (0..=below.len() - r)
            .map(|i| {
                let v = b.add_labeled_node(format!("q{row}_{i}"));
                for j in 0..r {
                    b.add_edge(below[i + j], v);
                }
                v
            })
            .collect();
        below = current;
    }
    b.name(format!("r_pyramid(r={r}, width={width})"));
    b.build().expect("r-pyramid is a DAG")
}

/// A 1-D stencil iterated over time: `steps + 1` rows of `width` cells;
/// cell `(t, i)` reads `(t−1, i−1..=i+1)` clamped at the borders — the
/// dependency pattern of explicit PDE solvers, and a standard target
/// for communication-avoiding scheduling.
#[must_use]
pub fn stencil_1d(width: usize, steps: usize) -> Dag {
    assert!(width >= 1);
    let mut b = DagBuilder::new();
    let mut below: Vec<NodeId> = (0..width)
        .map(|i| b.add_labeled_node(format!("s0_{i}")))
        .collect();
    for t in 1..=steps {
        let current: Vec<NodeId> = (0..width)
            .map(|i| {
                let v = b.add_labeled_node(format!("s{t}_{i}"));
                let lo = i.saturating_sub(1);
                let hi = (i + 1).min(width - 1);
                for &u in &below[lo..=hi] {
                    b.add_edge(u, v);
                }
                v
            })
            .collect();
        below = current;
    }
    b.name(format!("stencil_1d(width={width}, steps={steps})"));
    b.build().expect("stencil is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagStats;

    #[test]
    fn pyramid_shape() {
        let d = pyramid(4);
        let s = DagStats::compute(&d);
        assert_eq!(s.n, 5 * 6 / 2);
        assert_eq!(s.sources, 5);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.depth, 5);
    }

    #[test]
    fn pyramid_degenerate() {
        let d = pyramid(0);
        assert_eq!(d.n(), 1);
        assert_eq!(d.m(), 0);
    }

    #[test]
    fn r_pyramid_generalizes_pyramid() {
        let a = pyramid(3);
        let b = r_pyramid(2, 4);
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
    }

    #[test]
    fn r_pyramid_shape() {
        let d = r_pyramid(3, 7);
        let s = DagStats::compute(&d);
        // Rows: 7, 5, 3, 1.
        assert_eq!(s.n, 7 + 5 + 3 + 1);
        assert_eq!(s.max_in_degree, 3);
        assert_eq!(s.sinks, 1);
    }

    #[test]
    fn stencil_shape() {
        let d = stencil_1d(5, 3);
        let s = DagStats::compute(&d);
        assert_eq!(s.n, 20);
        assert_eq!(s.sources, 5);
        assert_eq!(s.sinks, 5);
        assert_eq!(s.max_in_degree, 3);
        // Border cells have in-degree 2.
        let border = crate::NodeId::new(5); // (t=1, i=0)
        assert_eq!(d.in_degree(border), 2);
        assert_eq!(s.depth, 4);
    }

    #[test]
    fn stencil_single_column() {
        let d = stencil_1d(1, 4);
        assert_eq!(d.n(), 5);
        assert_eq!(d.max_in_degree(), 1);
    }
}
