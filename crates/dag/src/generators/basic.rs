//! Simple structured DAG families.

use crate::{Dag, DagBuilder, NodeId};

/// A chain `v0 -> v1 -> ... -> v(len-1)`. `len = 0` gives the empty DAG.
///
/// Built through [`Dag::from_edge_stream`], so arbitrarily long chains
/// (10^7 nodes and beyond) construct without an intermediate edge list.
#[must_use]
pub fn chain(len: usize) -> Dag {
    Dag::from_edge_stream(len, format!("chain(len={len})"), |sink| {
        for i in 1..len {
            sink(NodeId::new(i - 1), NodeId::new(i));
        }
    })
    .expect("chain is a DAG")
}

/// `k` independent chains of `len` nodes each — the Lemma 7 tightness
/// family: with `k` processors each chain runs on its own processor and
/// the optimum drops by exactly a factor `k`. Chain `c` occupies the id
/// range `[c·len, (c+1)·len)`. Streaming construction, like [`chain`].
#[must_use]
pub fn independent_chains(k: usize, len: usize) -> Dag {
    Dag::from_edge_stream(
        k * len,
        format!("independent_chains(k={k}, len={len})"),
        |sink| {
            for c in 0..k {
                for i in 1..len {
                    sink(NodeId::new(c * len + i - 1), NodeId::new(c * len + i));
                }
            }
        },
    )
    .expect("chains form a DAG")
}

/// Complete balanced binary in-tree with `leaves` leaf nodes (`leaves`
/// must be a power of two): leaves at the bottom, edges point toward the
/// single root/sink. Total nodes `2*leaves - 1`.
///
/// In-trees are one of the Lemma 2 NP-hard classes (every out-degree ≤ 1).
#[must_use]
pub fn binary_in_tree(leaves: usize) -> Dag {
    assert!(leaves.is_power_of_two(), "leaves must be a power of two");
    let mut b = DagBuilder::new();
    // Build level by level: leaves first.
    let mut current = b.add_nodes(leaves);
    while current.len() > 1 {
        let mut next = Vec::with_capacity(current.len() / 2);
        for pair in current.chunks(2) {
            let parent = b.add_node();
            b.add_edge(pair[0], parent);
            b.add_edge(pair[1], parent);
            next.push(parent);
        }
        current = next;
    }
    b.name(format!("binary_in_tree(leaves={leaves})"));
    b.build().expect("tree is a DAG")
}

/// Complete balanced binary out-tree: a root broadcasting to `leaves`
/// leaf sinks. Mirror of [`binary_in_tree`].
#[must_use]
pub fn binary_out_tree(leaves: usize) -> Dag {
    assert!(leaves.is_power_of_two(), "leaves must be a power of two");
    let mut b = DagBuilder::new();
    let root = b.add_node();
    let mut current = vec![root];
    while current.len() < leaves {
        let mut next = Vec::with_capacity(current.len() * 2);
        for &p in &current {
            let l = b.add_node();
            let r = b.add_node();
            b.add_edge(p, l);
            b.add_edge(p, r);
            next.push(l);
            next.push(r);
        }
        current = next;
    }
    b.name(format!("binary_out_tree(leaves={leaves})"));
    b.build().expect("tree is a DAG")
}

/// Diamond: one source fanning out to `width` middle nodes, all feeding
/// one sink. `n = width + 2`.
#[must_use]
pub fn diamond(width: usize) -> Dag {
    let mut b = DagBuilder::new();
    let src = b.add_node();
    let mids = b.add_nodes(width);
    let sink = b.add_node();
    for &m in &mids {
        b.add_edge(src, m);
        b.add_edge(m, sink);
    }
    b.name(format!("diamond(width={width})"));
    b.build().expect("diamond is a DAG")
}

/// `rows × cols` grid DAG with edges right and down (dynamic-programming
/// table / stencil dependency pattern). Node `(i, j)` has id `i*cols + j`.
///
/// Built through [`Dag::from_edge_stream`]: a `1000×1000` (10^6-node) or
/// larger grid allocates only its CSR arrays — this is the workhorse of
/// the streaming scheduler scale experiments (E21).
#[must_use]
pub fn grid(rows: usize, cols: usize) -> Dag {
    let id = |i: usize, j: usize| NodeId::new(i * cols + j);
    Dag::from_edge_stream(rows * cols, format!("grid({rows}x{cols})"), |sink| {
        for i in 0..rows {
            for j in 0..cols {
                if j + 1 < cols {
                    sink(id(i, j), id(i, j + 1));
                }
                if i + 1 < rows {
                    sink(id(i, j), id(i + 1, j));
                }
            }
        }
    })
    .expect("grid is a DAG")
}

/// Complete bipartite 2-layer DAG: `a` sources each feeding all `b` sinks.
/// 2-layer DAGs (longest path length 1) are the other Lemma 2 NP-hard
/// class.
#[must_use]
pub fn two_layer_full(a: usize, b_count: usize) -> Dag {
    let mut b = DagBuilder::new();
    let tops = b.add_nodes(a);
    let bots = b.add_nodes(b_count);
    for &t in &tops {
        for &s in &bots {
            b.add_edge(t, s);
        }
    }
    b.name(format!("two_layer_full({a}x{b_count})"));
    b.build().expect("bipartite is a DAG")
}

/// Regular 2-layer DAG: `b_count` sinks, each consuming `deg` sources
/// chosen round-robin from `a` sources (so in-degree is exactly `deg`,
/// `deg ≤ a`).
#[must_use]
pub fn two_layer_regular(a: usize, b_count: usize, deg: usize) -> Dag {
    assert!(deg <= a, "in-degree cannot exceed source count");
    let mut b = DagBuilder::new();
    let tops = b.add_nodes(a);
    let bots = b.add_nodes(b_count);
    for (i, &s) in bots.iter().enumerate() {
        for d in 0..deg {
            b.add_edge(tops[(i + d) % a], s);
        }
    }
    b.name(format!("two_layer_regular(a={a}, b={b_count}, deg={deg})"));
    b.build().expect("bipartite is a DAG")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagStats;

    #[test]
    fn chain_shape() {
        let d = chain(5);
        let s = DagStats::compute(&d);
        assert_eq!((s.n, s.m, s.sources, s.sinks), (5, 4, 1, 1));
        assert_eq!(s.depth, 5);
        assert_eq!(chain(0).n(), 0);
        assert_eq!(chain(1).n(), 1);
    }

    #[test]
    fn independent_chains_shape() {
        let d = independent_chains(3, 4);
        let s = DagStats::compute(&d);
        assert_eq!((s.n, s.m, s.sources, s.sinks), (12, 9, 3, 3));
        assert_eq!(s.max_in_degree, 1);
    }

    #[test]
    fn in_tree_shape() {
        let d = binary_in_tree(8);
        let s = DagStats::compute(&d);
        assert_eq!((s.n, s.m), (15, 14));
        assert_eq!(s.sources, 8);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.max_in_degree, 2);
        assert_eq!(s.max_out_degree, 1, "in-tree: out-degree ≤ 1");
        assert_eq!(s.depth, 4);
    }

    #[test]
    fn out_tree_shape() {
        let d = binary_out_tree(8);
        let s = DagStats::compute(&d);
        assert_eq!((s.n, s.m), (15, 14));
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 8);
        assert_eq!(s.max_in_degree, 1);
    }

    #[test]
    fn diamond_shape() {
        let d = diamond(6);
        let s = DagStats::compute(&d);
        assert_eq!((s.n, s.m), (8, 12));
        assert_eq!(s.max_in_degree, 6);
        assert_eq!(s.depth, 3);
    }

    #[test]
    fn grid_shape() {
        let d = grid(3, 4);
        let s = DagStats::compute(&d);
        assert_eq!(s.n, 12);
        assert_eq!(s.m, 3 * 3 + 2 * 4); // rights + downs
        assert_eq!(s.sources, 1);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.depth, 3 + 4 - 1);
        assert_eq!(s.max_in_degree, 2);
    }

    #[test]
    fn grid_degenerate_cases() {
        assert_eq!(grid(1, 1).n(), 1);
        let row = grid(1, 5);
        assert_eq!(DagStats::compute(&row).depth, 5);
    }

    #[test]
    fn two_layer_full_shape() {
        let d = two_layer_full(3, 4);
        let s = DagStats::compute(&d);
        assert_eq!((s.n, s.m), (7, 12));
        assert_eq!(s.depth, 2, "2-layer means longest path length 1");
        assert_eq!(s.max_in_degree, 3);
    }

    #[test]
    fn two_layer_regular_shape() {
        let d = two_layer_regular(5, 7, 3);
        let s = DagStats::compute(&d);
        assert_eq!(s.n, 12);
        assert_eq!(s.m, 21);
        assert_eq!(s.max_in_degree, 3);
        for v in d.nodes().filter(|&v| d.in_degree(v) > 0) {
            assert_eq!(d.in_degree(v), 3);
        }
    }

    #[test]
    #[should_panic(expected = "in-degree cannot exceed")]
    fn two_layer_regular_rejects_bad_degree() {
        let _ = two_layer_regular(2, 3, 5);
    }
}
