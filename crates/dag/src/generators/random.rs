//! Seeded random DAGs for sweeps and property tests.

use rbp_util::Rng;

use crate::{Dag, DagBuilder, NodeId};

/// Erdős–Rényi-style random DAG on `n` nodes: each pair `(i, j)` with
/// `i < j` becomes an edge with probability `p`. Deterministic given
/// `seed`.
#[must_use]
pub fn random_dag(n: usize, p: f64, seed: u64) -> Dag {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = Rng::new(seed);
    let mut b = DagBuilder::with_nodes(n);
    for i in 0..n {
        for j in (i + 1)..n {
            if rng.bool(p) {
                b.add_edge(NodeId::new(i), NodeId::new(j));
            }
        }
    }
    b.name(format!("random_dag(n={n}, p={p}, seed={seed})"));
    b.build().expect("forward edges cannot form a cycle")
}

/// Random layered DAG: `levels` layers of `width` nodes each; every node in
/// layer `l ≥ 1` draws `in_deg` distinct predecessors uniformly from layer
/// `l-1` (capped at `width`). Mimics neural-network / wavefront workloads.
#[must_use]
pub fn layered_random(levels: usize, width: usize, in_deg: usize, seed: u64) -> Dag {
    assert!(width >= 1);
    let in_deg = in_deg.min(width);
    let mut rng = Rng::new(seed);
    let mut b = DagBuilder::new();
    let mut prev: Vec<NodeId> = Vec::new();
    for l in 0..levels {
        let cur = b.add_nodes(width);
        if l > 0 {
            for &v in &cur {
                for pi in rng.sample_indices(width, in_deg) {
                    b.add_edge(prev[pi], v);
                }
            }
        }
        prev = cur;
    }
    b.name(format!(
        "layered_random(levels={levels}, width={width}, in_deg={in_deg}, seed={seed})"
    ));
    b.build().expect("layered edges cannot form a cycle")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DagStats;

    #[test]
    fn random_dag_is_deterministic_per_seed() {
        let a = random_dag(20, 0.3, 42);
        let b = random_dag(20, 0.3, 42);
        assert_eq!(a.edges().collect::<Vec<_>>(), b.edges().collect::<Vec<_>>());
        let c = random_dag(20, 0.3, 43);
        assert_ne!(
            a.edges().collect::<Vec<_>>(),
            c.edges().collect::<Vec<_>>(),
            "different seeds should (overwhelmingly) differ"
        );
    }

    #[test]
    fn random_dag_extremes() {
        let empty = random_dag(10, 0.0, 1);
        assert_eq!(empty.m(), 0);
        let full = random_dag(10, 1.0, 1);
        assert_eq!(full.m(), 45);
    }

    #[test]
    fn layered_random_shape() {
        let d = layered_random(4, 5, 2, 7);
        let s = DagStats::compute(&d);
        assert_eq!(s.n, 20);
        assert_eq!(s.m, 3 * 5 * 2);
        assert_eq!(s.depth, 4);
        assert_eq!(s.sources, 5);
        // Every non-source has in-degree exactly 2 and distinct preds.
        for v in d.nodes().filter(|&v| d.in_degree(v) > 0) {
            assert_eq!(d.in_degree(v), 2);
            let ps = d.preds(v);
            assert_ne!(ps[0], ps[1]);
        }
    }

    #[test]
    fn layered_random_caps_in_degree_at_width() {
        let d = layered_random(3, 2, 10, 3);
        assert_eq!(d.max_in_degree(), 2);
    }

    #[test]
    fn layered_random_single_level_has_no_edges() {
        let d = layered_random(1, 4, 2, 0);
        assert_eq!(d.m(), 0);
        assert_eq!(d.n(), 4);
    }
}
