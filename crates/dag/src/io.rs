//! Plain-text serialization of DAGs.
//!
//! A deliberately simple line format so experiment fixtures stay
//! hand-editable and diffable:
//!
//! ```text
//! # optional comment lines
//! dag <name>
//! nodes <n>
//! label <id> <text>      (optional, any number)
//! edge <u> <v>           (one per edge)
//! end
//! ```

use std::fmt::Write as _;

use crate::{Dag, DagBuilder, DagError, NodeId};

/// Errors from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A line could not be understood.
    Syntax {
        /// 1-based line number of the offending line.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// The edge list failed DAG validation.
    Invalid(DagError),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Syntax { line, msg } => write!(f, "line {line}: {msg}"),
            ParseError::Invalid(e) => write!(f, "invalid DAG: {e}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a DAG to the text format.
#[must_use]
pub fn to_text(dag: &Dag) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "dag {}", dag.name());
    let _ = writeln!(out, "nodes {}", dag.n());
    for v in dag.nodes() {
        let l = dag.label(v);
        if !l.is_empty() {
            let _ = writeln!(out, "label {} {}", v.0, l);
        }
    }
    for (u, v) in dag.edges() {
        let _ = writeln!(out, "edge {} {}", u.0, v.0);
    }
    out.push_str("end\n");
    out
}

/// Parses the text format back into a DAG.
pub fn parse(text: &str) -> Result<Dag, ParseError> {
    let mut name = String::new();
    let mut n: Option<usize> = None;
    let mut labels: Vec<(usize, String)> = Vec::new();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut saw_end = false;
    for (i, raw) in text.lines().enumerate() {
        let lineno = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if saw_end {
            return Err(ParseError::Syntax {
                line: lineno,
                msg: "content after 'end'".into(),
            });
        }
        let mut parts = line.splitn(2, ' ');
        let kw = parts.next().unwrap_or("");
        let rest = parts.next().unwrap_or("").trim();
        match kw {
            "dag" => name = rest.to_string(),
            "nodes" => {
                n = Some(rest.parse().map_err(|_| ParseError::Syntax {
                    line: lineno,
                    msg: format!("bad node count '{rest}'"),
                })?);
            }
            "label" => {
                let mut p = rest.splitn(2, ' ');
                let id: usize = p
                    .next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|_| ParseError::Syntax {
                        line: lineno,
                        msg: "bad label id".into(),
                    })?;
                labels.push((id, p.next().unwrap_or("").to_string()));
            }
            "edge" => {
                let nums: Vec<&str> = rest.split_whitespace().collect();
                if nums.len() != 2 {
                    return Err(ParseError::Syntax {
                        line: lineno,
                        msg: "edge needs two endpoints".into(),
                    });
                }
                let u = nums[0].parse().map_err(|_| ParseError::Syntax {
                    line: lineno,
                    msg: "bad edge source".into(),
                })?;
                let v = nums[1].parse().map_err(|_| ParseError::Syntax {
                    line: lineno,
                    msg: "bad edge target".into(),
                })?;
                edges.push((u, v));
            }
            "end" => saw_end = true,
            other => {
                return Err(ParseError::Syntax {
                    line: lineno,
                    msg: format!("unknown keyword '{other}'"),
                });
            }
        }
    }
    if !saw_end {
        return Err(ParseError::Syntax {
            line: text.lines().count(),
            msg: "missing 'end'".into(),
        });
    }
    let n = n.ok_or(ParseError::Syntax {
        line: 0,
        msg: "missing 'nodes' line".into(),
    })?;
    let mut b = DagBuilder::with_nodes(0);
    b.name(name);
    for i in 0..n {
        let lbl = labels
            .iter()
            .find(|(id, _)| *id == i)
            .map(|(_, l)| l.clone());
        match lbl {
            Some(l) => {
                b.add_labeled_node(l);
            }
            None => {
                b.add_node();
            }
        }
    }
    for (u, v) in edges {
        if u >= n || v >= n {
            return Err(ParseError::Invalid(DagError::NodeOutOfRange {
                node: NodeId::new(u.max(v)),
                n,
            }));
        }
        b.add_edge(NodeId::new(u), NodeId::new(v));
    }
    b.build().map_err(ParseError::Invalid)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::dag_from_edges;

    #[test]
    fn round_trip_plain() {
        let d = dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let text = to_text(&d);
        let d2 = parse(&text).unwrap();
        assert_eq!(d2.n(), 4);
        assert_eq!(d2.m(), 4);
        assert_eq!(
            d.edges().collect::<Vec<_>>(),
            d2.edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn round_trip_labels_and_name() {
        let mut b = DagBuilder::new();
        let a = b.add_labeled_node("alpha");
        let c = b.add_node();
        b.add_edge(a, c);
        b.name("zipper(d=2)");
        let d = b.build().unwrap();
        let d2 = parse(&to_text(&d)).unwrap();
        assert_eq!(d2.name(), "zipper(d=2)");
        assert_eq!(d2.label(a), "alpha");
        assert_eq!(d2.label(c), "");
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let text = "# header\n\ndag t\nnodes 2\n# mid\nedge 0 1\nend\n";
        let d = parse(text).unwrap();
        assert_eq!(d.n(), 2);
        assert_eq!(d.m(), 1);
    }

    #[test]
    fn rejects_missing_end() {
        let text = "dag t\nnodes 1\n";
        assert!(matches!(parse(text), Err(ParseError::Syntax { .. })));
    }

    #[test]
    fn rejects_unknown_keyword() {
        let text = "dag t\nnodes 1\nfrob 1\nend\n";
        assert!(matches!(parse(text), Err(ParseError::Syntax { .. })));
    }

    #[test]
    fn rejects_cycle_as_invalid() {
        let text = "nodes 2\nedge 0 1\nedge 1 0\nend\n";
        assert_eq!(
            parse(text).unwrap_err(),
            ParseError::Invalid(DagError::Cycle)
        );
    }

    #[test]
    fn rejects_out_of_range_edge() {
        let text = "nodes 2\nedge 0 5\nend\n";
        assert!(matches!(parse(text), Err(ParseError::Invalid(_))));
    }

    #[test]
    fn rejects_content_after_end() {
        let text = "nodes 1\nend\nedge 0 0\n";
        assert!(matches!(parse(text), Err(ParseError::Syntax { .. })));
    }
}
