//! The computational DAG: a compact, immutable CSR graph.
//!
//! Nodes model single operations; a directed edge `(u, v)` states that the
//! output of `u` is an input of `v`. The pebbling games and schedulers only
//! ever need fast iteration over predecessors/successors and degree
//! queries, so the graph is stored in compressed sparse row form for both
//! directions, built once via [`DagBuilder`] and immutable afterwards.

use std::fmt;

use crate::{NodeSet, TopoInfo};

/// Identifier of a DAG node. A thin `u32` newtype; convert with
/// [`NodeId::new`]/[`NodeId::index`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Creates a node id from an index.
    ///
    /// # Panics
    /// Panics if `i` does not fit in `u32`.
    #[inline]
    #[must_use]
    pub fn new(i: usize) -> Self {
        NodeId(u32::try_from(i).expect("node index exceeds u32"))
    }

    /// The index as `usize`.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// An immutable directed acyclic graph in CSR form.
///
/// Construct with [`DagBuilder`] (which checks acyclicity and rejects
/// duplicate edges and self-loops), or with the generator functions in
/// [`crate::generators`].
#[derive(Clone)]
pub struct Dag {
    /// CSR offsets/targets for successors.
    succ_offsets: Vec<u32>,
    succ_targets: Vec<NodeId>,
    /// CSR offsets/targets for predecessors.
    pred_offsets: Vec<u32>,
    pred_targets: Vec<NodeId>,
    /// Optional human-readable node labels (empty when unlabeled).
    labels: Vec<String>,
    /// Optional name of the DAG (gadget name, generator provenance).
    name: String,
}

impl Dag {
    /// Number of nodes.
    #[inline]
    #[must_use]
    pub fn n(&self) -> usize {
        self.succ_offsets.len() - 1
    }

    /// Number of edges.
    #[inline]
    #[must_use]
    pub fn m(&self) -> usize {
        self.succ_targets.len()
    }

    /// Iterator over all node ids `v0..v(n-1)`.
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + Clone + '_ {
        (0..self.n() as u32).map(NodeId)
    }

    /// The successors (out-neighbours) of `v`.
    #[inline]
    #[must_use]
    pub fn succs(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.succ_targets[self.succ_offsets[i] as usize..self.succ_offsets[i + 1] as usize]
    }

    /// The predecessors (in-neighbours) of `v`.
    #[inline]
    #[must_use]
    pub fn preds(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.pred_targets[self.pred_offsets[i] as usize..self.pred_offsets[i + 1] as usize]
    }

    /// In-degree of `v`.
    #[inline]
    #[must_use]
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.preds(v).len()
    }

    /// Out-degree of `v`.
    #[inline]
    #[must_use]
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.succs(v).len()
    }

    /// Maximum in-degree Δ_in over all nodes (0 for the empty DAG).
    #[must_use]
    pub fn max_in_degree(&self) -> usize {
        self.nodes().map(|v| self.in_degree(v)).max().unwrap_or(0)
    }

    /// Maximum out-degree over all nodes (0 for the empty DAG).
    #[must_use]
    pub fn max_out_degree(&self) -> usize {
        self.nodes().map(|v| self.out_degree(v)).max().unwrap_or(0)
    }

    /// All source nodes (in-degree 0), in id order.
    #[must_use]
    pub fn sources(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.in_degree(v) == 0).collect()
    }

    /// All sink nodes (out-degree 0), in id order.
    #[must_use]
    pub fn sinks(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// The sink nodes as a [`NodeSet`].
    #[must_use]
    pub fn sink_set(&self) -> NodeSet {
        NodeSet::from_iter(self.n(), self.sinks())
    }

    /// The source nodes as a [`NodeSet`].
    #[must_use]
    pub fn source_set(&self) -> NodeSet {
        NodeSet::from_iter(self.n(), self.sources())
    }

    /// Whether the edge `(u, v)` exists.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.succs(u).contains(&v)
    }

    /// An empty set sized to this DAG's node count.
    #[must_use]
    pub fn empty_set(&self) -> NodeSet {
        NodeSet::new(self.n())
    }

    /// Human-readable label of `v` (empty string when unlabeled).
    #[must_use]
    pub fn label(&self, v: NodeId) -> &str {
        self.labels.get(v.index()).map_or("", String::as_str)
    }

    /// Name of this DAG (e.g. `"zipper(d=4, n0=100)"`).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Computes topological information (order, ranks, levels); cached by
    /// callers, not by the DAG itself.
    #[must_use]
    pub fn topo(&self) -> TopoInfo {
        TopoInfo::compute(self)
    }

    /// Iterator over all edges `(u, v)`.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.succs(u).iter().map(move |&v| (u, v)))
    }

    /// Streaming two-pass CSR construction for **id-topological** edge
    /// streams (every edge must satisfy `u < v`, which also guarantees
    /// acyclicity without a Kahn pass).
    ///
    /// The `edges` closure is invoked exactly twice with an edge sink
    /// and must emit the same edge sequence both times: the first pass
    /// counts degrees, the second fills the CSR target arrays in place.
    /// Unlike [`DagBuilder`], no intermediate `Vec<(u, v)>` edge list is
    /// ever materialized and no sort over all edges runs, so building a
    /// 10^7-node DAG allocates only the four CSR arrays themselves.
    /// This is what the size-parameterized generators and the
    /// `rbp-stream` scheduler tier build million-node DAGs with.
    ///
    /// Adjacency runs are sorted per node afterwards, so the resulting
    /// DAG is indistinguishable from the same graph built through
    /// [`DagBuilder`].
    ///
    /// ```
    /// use rbp_dag::{Dag, NodeId};
    /// let path = Dag::from_edge_stream(3, "path", |sink| {
    ///     for i in 0..2 {
    ///         sink(NodeId::new(i), NodeId::new(i + 1));
    ///     }
    /// })
    /// .unwrap();
    /// assert_eq!(path.m(), 2);
    /// assert_eq!(path.succs(NodeId::new(0)), &[NodeId::new(1)]);
    /// ```
    ///
    /// # Errors
    /// [`DagError::NodeOutOfRange`] / [`DagError::SelfLoop`] /
    /// [`DagError::DuplicateEdge`] as in [`DagBuilder::build`], plus
    /// [`DagError::EdgeOrder`] when an edge has `u > v`.
    ///
    /// # Panics
    /// Panics if the closure emits a different edge sequence on the
    /// second pass, or if the edge count exceeds `u32::MAX`.
    pub fn from_edge_stream<F>(
        n: usize,
        name: impl Into<String>,
        mut edges: F,
    ) -> Result<Dag, DagError>
    where
        F: FnMut(&mut dyn FnMut(NodeId, NodeId)),
    {
        // Pass 1: validate and count degrees.
        let mut succ_offsets = vec![0u32; n + 1];
        let mut pred_offsets = vec![0u32; n + 1];
        let mut err: Option<DagError> = None;
        let mut m: usize = 0;
        edges(&mut |u: NodeId, v: NodeId| {
            if err.is_some() {
                return;
            }
            for w in [u, v] {
                if w.index() >= n {
                    err = Some(DagError::NodeOutOfRange { node: w, n });
                    return;
                }
            }
            if u == v {
                err = Some(DagError::SelfLoop(u));
                return;
            }
            if u > v {
                err = Some(DagError::EdgeOrder(u, v));
                return;
            }
            succ_offsets[u.index() + 1] += 1;
            pred_offsets[v.index() + 1] += 1;
            m += 1;
        });
        if let Some(e) = err {
            return Err(e);
        }
        assert!(
            u32::try_from(m).is_ok(),
            "edge count {m} exceeds CSR offset range"
        );
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
            pred_offsets[i + 1] += pred_offsets[i];
        }

        // Pass 2: fill the target arrays through per-node cursors. Any
        // divergence from the first pass is a caller bug and is caught
        // by the cursor bound checks or the final count comparison.
        let mut succ_cursor = succ_offsets.clone();
        let mut pred_cursor = pred_offsets.clone();
        let mut succ_targets = vec![NodeId(0); m];
        let mut pred_targets = vec![NodeId(0); m];
        let mut m2: usize = 0;
        edges(&mut |u: NodeId, v: NodeId| {
            m2 += 1;
            assert!(
                u.index() < n && v.index() < n && m2 <= m,
                "edge stream changed between passes"
            );
            let su = &mut succ_cursor[u.index()];
            assert!(
                *su < succ_offsets[u.index() + 1],
                "edge stream changed between passes"
            );
            succ_targets[*su as usize] = v;
            *su += 1;
            let pv = &mut pred_cursor[v.index()];
            assert!(
                *pv < pred_offsets[v.index() + 1],
                "edge stream changed between passes"
            );
            pred_targets[*pv as usize] = u;
            *pv += 1;
        });
        assert_eq!(m2, m, "edge stream changed between passes");

        // Sort each adjacency run (duplicate edges surface here) so the
        // result matches a DagBuilder-built graph exactly.
        for i in 0..n {
            let run = &mut succ_targets[succ_offsets[i] as usize..succ_offsets[i + 1] as usize];
            run.sort_unstable();
            if let Some(w) = run.windows(2).find(|w| w[0] == w[1]) {
                return Err(DagError::DuplicateEdge(NodeId::new(i), w[0]));
            }
            let run = &mut pred_targets[pred_offsets[i] as usize..pred_offsets[i + 1] as usize];
            run.sort_unstable();
        }

        Ok(Dag {
            succ_offsets,
            succ_targets,
            pred_offsets,
            pred_targets,
            labels: Vec::new(),
            name: name.into(),
        })
    }
}

impl fmt::Debug for Dag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Dag(\"{}\", n={}, m={})", self.name, self.n(), self.m())
    }
}

/// Errors from [`DagBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DagError {
    /// An edge references a node id `>= n`.
    NodeOutOfRange {
        /// The out-of-range endpoint.
        node: NodeId,
        /// The number of nodes in the builder.
        n: usize,
    },
    /// A self-loop `(v, v)` was added.
    SelfLoop(NodeId),
    /// The same edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// The edge set contains a directed cycle.
    Cycle,
    /// Streaming construction saw an edge `(u, v)` with `u > v`;
    /// [`Dag::from_edge_stream`] requires id-topological edge streams.
    EdgeOrder(NodeId, NodeId),
}

impl fmt::Display for DagError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DagError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            DagError::SelfLoop(v) => write!(f, "self-loop on {v}"),
            DagError::DuplicateEdge(u, v) => write!(f, "duplicate edge ({u}, {v})"),
            DagError::Cycle => write!(f, "edge set contains a directed cycle"),
            DagError::EdgeOrder(u, v) => write!(
                f,
                "edge ({u}, {v}) is not id-topological (streaming construction requires u < v)"
            ),
        }
    }
}

impl std::error::Error for DagError {}

/// Incremental builder for [`Dag`].
///
/// ```
/// use rbp_dag::{DagBuilder, NodeId};
/// let mut b = DagBuilder::new();
/// let a = b.add_node();
/// let c = b.add_node();
/// b.add_edge(a, c);
/// let dag = b.build().unwrap();
/// assert_eq!(dag.n(), 2);
/// assert_eq!(dag.succs(a), &[c]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct DagBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
    labels: Vec<String>,
    name: String,
}

impl DagBuilder {
    /// New empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder pre-sized with `n` unlabeled nodes.
    #[must_use]
    pub fn with_nodes(n: usize) -> Self {
        DagBuilder {
            n,
            edges: Vec::new(),
            labels: Vec::new(),
            name: String::new(),
        }
    }

    /// Sets the DAG name recorded for provenance.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.name = name.into();
        self
    }

    /// Adds one node, returning its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.n);
        self.n += 1;
        id
    }

    /// Adds one labeled node, returning its id.
    pub fn add_labeled_node(&mut self, label: impl Into<String>) -> NodeId {
        let id = self.add_node();
        self.labels.resize(self.n, String::new());
        self.labels[id.index()] = label.into();
        id
    }

    /// Adds `count` nodes, returning their ids.
    pub fn add_nodes(&mut self, count: usize) -> Vec<NodeId> {
        (0..count).map(|_| self.add_node()).collect()
    }

    /// Adds the edge `(u, v)` meaning "output of `u` feeds `v`".
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds a chain of edges `v0 -> v1 -> ... -> v(k-1)`.
    pub fn add_chain(&mut self, nodes: &[NodeId]) -> &mut Self {
        for w in nodes.windows(2) {
            self.add_edge(w[0], w[1]);
        }
        self
    }

    /// Current number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.n
    }

    /// Validates and freezes into a [`Dag`].
    pub fn build(mut self) -> Result<Dag, DagError> {
        let n = self.n;
        for &(u, v) in &self.edges {
            for w in [u, v] {
                if w.index() >= n {
                    return Err(DagError::NodeOutOfRange { node: w, n });
                }
            }
            if u == v {
                return Err(DagError::SelfLoop(u));
            }
        }
        self.edges.sort_unstable();
        if let Some(w) = self.edges.windows(2).find(|w| w[0] == w[1]) {
            return Err(DagError::DuplicateEdge(w[0].0, w[0].1));
        }

        // Build CSR for successors (edges already sorted by source).
        let mut succ_offsets = vec![0u32; n + 1];
        for &(u, _) in &self.edges {
            succ_offsets[u.index() + 1] += 1;
        }
        for i in 0..n {
            succ_offsets[i + 1] += succ_offsets[i];
        }
        let succ_targets: Vec<NodeId> = self.edges.iter().map(|&(_, v)| v).collect();

        // Build CSR for predecessors.
        let mut pred_offsets = vec![0u32; n + 1];
        for &(_, v) in &self.edges {
            pred_offsets[v.index() + 1] += 1;
        }
        for i in 0..n {
            pred_offsets[i + 1] += pred_offsets[i];
        }
        let mut cursor = pred_offsets.clone();
        let mut pred_targets = vec![NodeId(0); self.edges.len()];
        for &(u, v) in &self.edges {
            let c = &mut cursor[v.index()];
            pred_targets[*c as usize] = u;
            *c += 1;
        }

        if !self.labels.is_empty() {
            self.labels.resize(n, String::new());
        }
        let dag = Dag {
            succ_offsets,
            succ_targets,
            pred_offsets,
            pred_targets,
            labels: self.labels,
            name: self.name,
        };

        // Kahn's algorithm to reject cycles.
        let mut indeg: Vec<usize> = dag.nodes().map(|v| dag.in_degree(v)).collect();
        let mut queue: Vec<NodeId> = dag.nodes().filter(|v| indeg[v.index()] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &v in dag.succs(u) {
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    queue.push(v);
                }
            }
        }
        if seen != n {
            return Err(DagError::Cycle);
        }
        Ok(dag)
    }
}

/// Convenience: builds a DAG from an explicit node count and edge list.
///
/// # Panics
/// Panics on invalid input (out-of-range, duplicate, self-loop, cycle);
/// intended for tests and generators with known-good input.
#[must_use]
pub fn dag_from_edges(n: usize, edges: &[(usize, usize)]) -> Dag {
    let mut b = DagBuilder::with_nodes(n);
    for &(u, v) in edges {
        b.add_edge(NodeId::new(u), NodeId::new(v));
    }
    b.build().expect("invalid edge list")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_dag() {
        let d = DagBuilder::new().build().unwrap();
        assert_eq!(d.n(), 0);
        assert_eq!(d.m(), 0);
        assert!(d.sources().is_empty());
        assert_eq!(d.max_in_degree(), 0);
    }

    #[test]
    fn single_node() {
        let d = dag_from_edges(1, &[]);
        assert_eq!(d.sources(), vec![NodeId(0)]);
        assert_eq!(d.sinks(), vec![NodeId(0)]);
    }

    #[test]
    fn diamond_adjacency() {
        //   0
        //  / \
        // 1   2
        //  \ /
        //   3
        let d = dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(d.n(), 4);
        assert_eq!(d.m(), 4);
        assert_eq!(d.succs(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.preds(NodeId(3)), &[NodeId(1), NodeId(2)]);
        assert_eq!(d.in_degree(NodeId(3)), 2);
        assert_eq!(d.out_degree(NodeId(0)), 2);
        assert_eq!(d.max_in_degree(), 2);
        assert_eq!(d.sources(), vec![NodeId(0)]);
        assert_eq!(d.sinks(), vec![NodeId(3)]);
        assert!(d.has_edge(NodeId(0), NodeId(1)));
        assert!(!d.has_edge(NodeId(1), NodeId(0)));
    }

    #[test]
    fn edges_iterator_matches_m() {
        let d = dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let edges: Vec<_> = d.edges().collect();
        assert_eq!(edges.len(), d.m());
        assert!(edges.contains(&(NodeId(2), NodeId(3))));
    }

    #[test]
    fn rejects_cycle() {
        let mut b = DagBuilder::with_nodes(3);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(1), NodeId(2));
        b.add_edge(NodeId(2), NodeId(0));
        assert_eq!(b.build().unwrap_err(), DagError::Cycle);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = DagBuilder::with_nodes(1);
        b.add_edge(NodeId(0), NodeId(0));
        assert_eq!(b.build().unwrap_err(), DagError::SelfLoop(NodeId(0)));
    }

    #[test]
    fn rejects_duplicate_edge() {
        let mut b = DagBuilder::with_nodes(2);
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(1));
        assert_eq!(
            b.build().unwrap_err(),
            DagError::DuplicateEdge(NodeId(0), NodeId(1))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        let mut b = DagBuilder::with_nodes(2);
        b.add_edge(NodeId(0), NodeId(7));
        assert!(matches!(
            b.build().unwrap_err(),
            DagError::NodeOutOfRange { .. }
        ));
    }

    #[test]
    fn labels_and_name() {
        let mut b = DagBuilder::new();
        let a = b.add_labeled_node("input");
        let c = b.add_node();
        b.add_edge(a, c);
        b.name("test-dag");
        let d = b.build().unwrap();
        assert_eq!(d.label(a), "input");
        assert_eq!(d.label(c), "");
        assert_eq!(d.name(), "test-dag");
    }

    #[test]
    fn add_chain_builds_path() {
        let mut b = DagBuilder::new();
        let ns = b.add_nodes(4);
        b.add_chain(&ns);
        let d = b.build().unwrap();
        assert_eq!(d.m(), 3);
        assert_eq!(d.succs(ns[0]), &[ns[1]]);
        assert_eq!(d.succs(ns[3]), &[]);
    }

    #[test]
    fn debug_format_mentions_shape() {
        let d = dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(format!("{d:?}"), "Dag(\"\", n=4, m=4)");
    }

    /// Structural equality helper for comparing construction paths.
    fn same_graph(a: &Dag, b: &Dag) {
        assert_eq!(a.n(), b.n());
        assert_eq!(a.m(), b.m());
        for v in a.nodes() {
            assert_eq!(a.succs(v), b.succs(v), "succs of {v}");
            assert_eq!(a.preds(v), b.preds(v), "preds of {v}");
        }
    }

    #[test]
    fn edge_stream_matches_builder() {
        let edges = [(0usize, 1usize), (0, 2), (1, 3), (2, 3), (0, 3)];
        let built = dag_from_edges(4, &edges);
        let streamed = Dag::from_edge_stream(4, "", |sink| {
            // Emit out of (u, v) sort order to exercise the run sort.
            for &(u, v) in edges.iter().rev() {
                sink(NodeId::new(u), NodeId::new(v));
            }
        })
        .unwrap();
        same_graph(&built, &streamed);
    }

    #[test]
    fn edge_stream_rejects_non_topological_order() {
        let err = Dag::from_edge_stream(3, "", |sink| {
            sink(NodeId(2), NodeId(1));
        })
        .unwrap_err();
        assert_eq!(err, DagError::EdgeOrder(NodeId(2), NodeId(1)));
    }

    #[test]
    fn edge_stream_rejects_self_loop_and_out_of_range() {
        let err = Dag::from_edge_stream(3, "", |sink| sink(NodeId(1), NodeId(1))).unwrap_err();
        assert_eq!(err, DagError::SelfLoop(NodeId(1)));
        let err = Dag::from_edge_stream(3, "", |sink| sink(NodeId(0), NodeId(9))).unwrap_err();
        assert!(matches!(err, DagError::NodeOutOfRange { .. }));
    }

    #[test]
    fn edge_stream_rejects_duplicate_edge() {
        let err = Dag::from_edge_stream(3, "", |sink| {
            sink(NodeId(0), NodeId(2));
            sink(NodeId(0), NodeId(2));
        })
        .unwrap_err();
        assert_eq!(err, DagError::DuplicateEdge(NodeId(0), NodeId(2)));
    }

    #[test]
    fn edge_stream_empty_and_isolated_nodes() {
        let d = Dag::from_edge_stream(0, "", |_| {}).unwrap();
        assert_eq!(d.n(), 0);
        let d = Dag::from_edge_stream(5, "iso", |sink| sink(NodeId(1), NodeId(3))).unwrap();
        assert_eq!((d.n(), d.m()), (5, 1));
        assert_eq!(d.sources().len(), 4);
        assert_eq!(d.name(), "iso");
    }
}
