//! Topological structure: orders, ranks, levels, and longest paths.

use crate::{Dag, NodeId};

/// Precomputed topological data for a [`Dag`].
///
/// - `order[i]` is the i-th node in a deterministic topological order
///   (Kahn's algorithm with a min-id heap, so the order is stable across
///   runs and platforms);
/// - `rank[v]` is the position of `v` in `order`;
/// - `level[v]` is the length of the longest path from any source to `v`
///   (sources have level 0);
/// - `depth` is `1 + max level` (number of levels; 0 for the empty DAG).
#[derive(Debug, Clone)]
pub struct TopoInfo {
    order: Vec<NodeId>,
    rank: Vec<usize>,
    level: Vec<usize>,
    depth: usize,
}

impl TopoInfo {
    /// Computes topological info for `dag`.
    #[must_use]
    pub fn compute(dag: &Dag) -> Self {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let n = dag.n();
        let mut indeg: Vec<usize> = dag.nodes().map(|v| dag.in_degree(v)).collect();
        let mut heap: BinaryHeap<Reverse<NodeId>> = dag
            .nodes()
            .filter(|v| indeg[v.index()] == 0)
            .map(Reverse)
            .collect();
        let mut order = Vec::with_capacity(n);
        let mut level = vec![0usize; n];
        while let Some(Reverse(u)) = heap.pop() {
            order.push(u);
            for &v in dag.succs(u) {
                level[v.index()] = level[v.index()].max(level[u.index()] + 1);
                indeg[v.index()] -= 1;
                if indeg[v.index()] == 0 {
                    heap.push(Reverse(v));
                }
            }
        }
        assert_eq!(order.len(), n, "Dag invariant violated: cycle detected");
        let mut rank = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            rank[v.index()] = i;
        }
        let depth = level.iter().max().map_or(0, |&d| d + 1);
        TopoInfo {
            order,
            rank,
            level,
            depth,
        }
    }

    /// The deterministic topological order.
    #[must_use]
    pub fn order(&self) -> &[NodeId] {
        &self.order
    }

    /// Position of `v` in [`Self::order`].
    #[must_use]
    pub fn rank(&self, v: NodeId) -> usize {
        self.rank[v.index()]
    }

    /// Longest-path-from-source level of `v` (sources are level 0).
    #[must_use]
    pub fn level(&self, v: NodeId) -> usize {
        self.level[v.index()]
    }

    /// Number of levels (`1 + max level`; 0 for the empty DAG).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Nodes grouped by level, each group in id order.
    #[must_use]
    pub fn levels(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.depth];
        for &v in &self.order {
            out[self.level(v)].push(v);
        }
        out
    }

    /// Length (number of edges) of the longest path in the DAG.
    #[must_use]
    pub fn longest_path_len(&self) -> usize {
        self.depth.saturating_sub(1)
    }

    /// Maximum number of nodes on a single level — a cheap upper bound on
    /// how much per-level parallelism a wavefront schedule can exploit.
    #[must_use]
    pub fn max_level_width(&self) -> usize {
        let mut counts = vec![0usize; self.depth];
        for &l in &self.level {
            counts[l] += 1;
        }
        counts.into_iter().max().unwrap_or(0)
    }
}

/// One concrete longest path of the DAG (node sequence), empty for the
/// empty DAG. Ties broken deterministically by smallest id.
#[must_use]
pub fn longest_path(dag: &Dag) -> Vec<NodeId> {
    let topo = dag.topo();
    let n = dag.n();
    if n == 0 {
        return Vec::new();
    }
    // dist[v] = longest path length ending at v; walk back from the max.
    let mut dist = vec![0usize; n];
    let mut pred: Vec<Option<NodeId>> = vec![None; n];
    for &u in topo.order() {
        for &v in dag.succs(u) {
            if dist[u.index()] + 1 > dist[v.index()]
                || (dist[u.index()] + 1 == dist[v.index()]
                    && pred[v.index()].is_some_and(|p| u < p))
            {
                dist[v.index()] = dist[u.index()] + 1;
                pred[v.index()] = Some(u);
            }
        }
    }
    let mut end = dag
        .nodes()
        .max_by_key(|v| (dist[v.index()], std::cmp::Reverse(*v)))
        .expect("nonempty");
    let mut path = vec![end];
    while let Some(p) = pred[end.index()] {
        path.push(p);
        end = p;
    }
    path.reverse();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::dag_from_edges;

    #[test]
    fn chain_topology() {
        let d = dag_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let t = d.topo();
        assert_eq!(t.order(), &[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        assert_eq!(t.level(NodeId(0)), 0);
        assert_eq!(t.level(NodeId(3)), 3);
        assert_eq!(t.depth(), 4);
        assert_eq!(t.longest_path_len(), 3);
        assert_eq!(t.max_level_width(), 1);
    }

    #[test]
    fn diamond_levels() {
        let d = dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let t = d.topo();
        assert_eq!(t.level(NodeId(1)), 1);
        assert_eq!(t.level(NodeId(2)), 1);
        assert_eq!(t.level(NodeId(3)), 2);
        assert_eq!(t.levels()[1], vec![NodeId(1), NodeId(2)]);
        assert_eq!(t.max_level_width(), 2);
    }

    #[test]
    fn order_respects_edges() {
        let d = dag_from_edges(6, &[(5, 0), (0, 3), (3, 1), (5, 4), (4, 1), (2, 1)]);
        let t = d.topo();
        for (u, v) in d.edges() {
            assert!(t.rank(u) < t.rank(v), "edge ({u},{v}) out of order");
        }
    }

    #[test]
    fn deterministic_order_prefers_small_ids() {
        // Independent nodes come out in id order.
        let d = dag_from_edges(3, &[]);
        assert_eq!(d.topo().order(), &[NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_dag_topo() {
        let d = dag_from_edges(0, &[]);
        let t = d.topo();
        assert_eq!(t.depth(), 0);
        assert!(t.order().is_empty());
        assert_eq!(t.max_level_width(), 0);
        assert!(longest_path(&d).is_empty());
    }

    #[test]
    fn longest_path_of_chain_is_whole_chain() {
        let d = dag_from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(
            longest_path(&d),
            vec![NodeId(0), NodeId(1), NodeId(2), NodeId(3)]
        );
    }

    #[test]
    fn longest_path_in_dag_with_branches() {
        // 0->1->2->5, 0->3->5, path through 1,2 is longer.
        let d = dag_from_edges(6, &[(0, 1), (1, 2), (2, 5), (0, 3), (3, 5), (4, 5)]);
        let p = longest_path(&d);
        assert_eq!(p, vec![NodeId(0), NodeId(1), NodeId(2), NodeId(5)]);
    }
}
