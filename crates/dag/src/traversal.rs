//! Reachability and closure queries on DAGs.

use crate::{Dag, NodeId, NodeSet};

/// All nodes reachable from `start` by following successor edges,
/// including `start` itself.
#[must_use]
pub fn descendants(dag: &Dag, start: NodeId) -> NodeSet {
    closure(dag, &[start], Dag::succs)
}

/// All nodes from which `start` is reachable (its ancestors), including
/// `start` itself.
#[must_use]
pub fn ancestors(dag: &Dag, start: NodeId) -> NodeSet {
    closure(dag, &[start], Dag::preds)
}

/// Upward closure of a node set: the set plus all ancestors of its
/// members. A set `S` is *downward-closed* (computable prefix) iff
/// `ancestors_of_set(dag, S) == S`.
#[must_use]
pub fn ancestors_of_set(dag: &Dag, set: &NodeSet) -> NodeSet {
    let seeds: Vec<NodeId> = set.iter().collect();
    closure(dag, &seeds, Dag::preds)
}

/// Whether `set` is downward-closed: every predecessor of a member is a
/// member. Downward-closed sets are exactly the valid "computed so far"
/// states of a one-shot pebbling.
#[must_use]
pub fn is_downward_closed(dag: &Dag, set: &NodeSet) -> bool {
    set.iter()
        .all(|v| dag.preds(v).iter().all(|&p| set.contains(p)))
}

/// Whether `v` is reachable from `u` (u == v counts as reachable).
#[must_use]
pub fn reachable(dag: &Dag, u: NodeId, v: NodeId) -> bool {
    if u == v {
        return true;
    }
    let mut seen = dag.empty_set();
    let mut stack = vec![u];
    seen.insert(u);
    while let Some(x) = stack.pop() {
        for &s in dag.succs(x) {
            if s == v {
                return true;
            }
            if seen.insert(s) {
                stack.push(s);
            }
        }
    }
    false
}

fn closure<'d>(
    dag: &'d Dag,
    seeds: &[NodeId],
    step: impl Fn(&'d Dag, NodeId) -> &'d [NodeId],
) -> NodeSet {
    let mut seen = dag.empty_set();
    let mut stack: Vec<NodeId> = Vec::with_capacity(seeds.len());
    for &s in seeds {
        if seen.insert(s) {
            stack.push(s);
        }
    }
    while let Some(x) = stack.pop() {
        for &nx in step(dag, x) {
            if seen.insert(nx) {
                stack.push(nx);
            }
        }
    }
    seen
}

/// Number of weakly connected components.
#[must_use]
pub fn weakly_connected_components(dag: &Dag) -> usize {
    let n = dag.n();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0;
    for v in dag.nodes() {
        if comp[v.index()] != usize::MAX {
            continue;
        }
        let mut stack = vec![v];
        comp[v.index()] = count;
        while let Some(x) = stack.pop() {
            for &nx in dag.succs(x).iter().chain(dag.preds(x)) {
                if comp[nx.index()] == usize::MAX {
                    comp[nx.index()] = count;
                    stack.push(nx);
                }
            }
        }
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::dag_from_edges;

    fn diamond() -> Dag {
        dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn descendants_of_root_is_everything() {
        let d = diamond();
        assert_eq!(descendants(&d, NodeId(0)).len(), 4);
        assert_eq!(descendants(&d, NodeId(3)).len(), 1);
        assert_eq!(descendants(&d, NodeId(1)).len(), 2);
    }

    #[test]
    fn ancestors_of_sink_is_everything() {
        let d = diamond();
        assert_eq!(ancestors(&d, NodeId(3)).len(), 4);
        assert_eq!(ancestors(&d, NodeId(0)).len(), 1);
    }

    #[test]
    fn reachability() {
        let d = diamond();
        assert!(reachable(&d, NodeId(0), NodeId(3)));
        assert!(reachable(&d, NodeId(1), NodeId(3)));
        assert!(!reachable(&d, NodeId(1), NodeId(2)));
        assert!(reachable(&d, NodeId(2), NodeId(2)));
        assert!(!reachable(&d, NodeId(3), NodeId(0)));
    }

    #[test]
    fn downward_closed_detection() {
        let d = diamond();
        let s = NodeSet::from_iter(4, [NodeId(0), NodeId(1)]);
        assert!(is_downward_closed(&d, &s));
        let s2 = NodeSet::from_iter(4, [NodeId(1)]);
        assert!(!is_downward_closed(&d, &s2));
        assert!(is_downward_closed(&d, &d.empty_set()));
        assert!(is_downward_closed(&d, &NodeSet::full(4)));
    }

    #[test]
    fn closing_a_set_makes_it_downward_closed() {
        let d = diamond();
        let s = NodeSet::from_iter(4, [NodeId(3)]);
        let closed = ancestors_of_set(&d, &s);
        assert!(is_downward_closed(&d, &closed));
        assert_eq!(closed.len(), 4);
    }

    #[test]
    fn component_count() {
        let d = dag_from_edges(5, &[(0, 1), (2, 3)]);
        assert_eq!(weakly_connected_components(&d), 3);
        assert_eq!(weakly_connected_components(&diamond()), 1);
        assert_eq!(weakly_connected_components(&dag_from_edges(0, &[])), 0);
    }
}
