//! Structural analyses used by bounds and experiment reports.

use crate::{Dag, NodeId, NodeSet};

/// Summary statistics of a DAG, printed in experiment headers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagStats {
    /// Number of nodes.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Number of source nodes.
    pub sources: usize,
    /// Number of sink nodes.
    pub sinks: usize,
    /// Maximum in-degree Δ_in.
    pub max_in_degree: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Number of levels (longest path + 1).
    pub depth: usize,
    /// Maximum level width.
    pub max_level_width: usize,
}

impl DagStats {
    /// Computes all statistics for `dag`.
    #[must_use]
    pub fn compute(dag: &Dag) -> Self {
        let topo = dag.topo();
        DagStats {
            n: dag.n(),
            m: dag.m(),
            sources: dag.sources().len(),
            sinks: dag.sinks().len(),
            max_in_degree: dag.max_in_degree(),
            max_out_degree: dag.max_out_degree(),
            depth: topo.depth(),
            max_level_width: topo.max_level_width(),
        }
    }
}

impl std::fmt::Display for DagStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} sources={} sinks={} Δin={} Δout={} depth={} width={}",
            self.n,
            self.m,
            self.sources,
            self.sinks,
            self.max_in_degree,
            self.max_out_degree,
            self.depth,
            self.max_level_width
        )
    }
}

/// The *live set* of a downward-closed computed set `s`: members that still
/// have at least one uncomputed successor, plus computed sinks.
///
/// In a zero-I/O one-shot pebbling these are exactly the nodes that must
/// hold red pebbles once `s` has been computed: a value is dead only when
/// every consumer has been computed, and sink values must be retained as
/// outputs. This function drives the Theorem 2 decision procedure in
/// `rbp-core`.
#[must_use]
pub fn live_set(dag: &Dag, computed: &NodeSet) -> NodeSet {
    let mut live = dag.empty_set();
    for v in computed.iter() {
        let needed = dag.out_degree(v) == 0 || dag.succs(v).iter().any(|&s| !computed.contains(s));
        if needed {
            live.insert(v);
        }
    }
    live
}

/// Minimum possible peak size of the live set over all topological orders,
/// computed exactly by DP over downward-closed subsets.
///
/// This equals the minimum number of red pebbles needed to pebble the DAG
/// with compute and delete moves only (no I/O, no recomputation) — the
/// one-shot black-pebbling number. Exponential in `n`; intended for
/// `n ≤ ~22`.
///
/// Returns `None` if `n` exceeds `max_n` (guard against accidental blowup).
#[must_use]
pub fn min_peak_memory(dag: &Dag, max_n: usize) -> Option<usize> {
    let n = dag.n();
    if n > max_n || n > 30 {
        return None;
    }
    use std::collections::HashMap;
    // State: bitmask of computed nodes (downward-closed by construction).
    // Value: minimal achievable peak of |live ∪ {next}| over the remaining
    // completion. We search forward with Dijkstra-style best-first on the
    // bottleneck cost.
    let full: u64 = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
    let preds_mask: Vec<u64> = dag
        .nodes()
        .map(|v| {
            dag.preds(v)
                .iter()
                .fold(0u64, |m, p| m | (1u64 << p.index()))
        })
        .collect();
    let succs_mask: Vec<u64> = dag
        .nodes()
        .map(|v| {
            dag.succs(v)
                .iter()
                .fold(0u64, |m, p| m | (1u64 << p.index()))
        })
        .collect();
    let live_of = |mask: u64| -> u64 {
        let mut live = 0u64;
        let mut m = mask;
        while m != 0 {
            let i = m.trailing_zeros() as usize;
            m &= m - 1;
            // Live if sink or has uncomputed successor.
            if succs_mask[i] == 0 || succs_mask[i] & !mask != 0 {
                live |= 1u64 << i;
            }
        }
        live
    };

    // Best-first search over (bottleneck, mask).
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut best: HashMap<u64, usize> = HashMap::new();
    let mut heap: BinaryHeap<(Reverse<usize>, u64)> = BinaryHeap::new();
    best.insert(0, 0);
    heap.push((Reverse(0), 0));
    while let Some((Reverse(peak), mask)) = heap.pop() {
        if mask == full {
            return Some(peak);
        }
        if best.get(&mask).copied().unwrap_or(usize::MAX) < peak {
            continue;
        }
        let live = live_of(mask);
        // Try computing each ready node.
        for (i, &pm) in preds_mask.iter().enumerate() {
            let bit = 1u64 << i;
            if mask & bit != 0 || pm & !mask != 0 {
                continue;
            }
            let new_mask = mask | bit;
            // During the step, node i plus the still-needed values are
            // pebbled: peak candidate = |live ∪ {i}| (preds of i are in
            // live since i was uncomputed).
            let during = (live | bit).count_ones() as usize;
            let new_peak = peak.max(during);
            if best.get(&new_mask).is_none_or(|&b| new_peak < b) {
                best.insert(new_mask, new_peak);
                heap.push((Reverse(new_peak), new_mask));
            }
        }
    }
    // Dag is acyclic so completion is always possible.
    unreachable!("DAG must be completable")
}

/// A maximum antichain computed exactly for small DAGs via the
/// Mirsky/greedy fallback: here we return the maximum *level* width, which
/// is a lower bound on the true maximum antichain (all nodes on one level
/// are pairwise incomparable).
#[must_use]
pub fn level_antichain(dag: &Dag) -> Vec<NodeId> {
    let topo = dag.topo();
    let levels = topo.levels();
    levels.into_iter().max_by_key(Vec::len).unwrap_or_default()
}

/// Selects up to `count` **anchor nodes** for structure-aware state
/// partitioning (the `anchors` mode of the parallel exact solver).
///
/// Anchors are the nodes whose pebbling status best summarizes search
/// progress: per topological band the highest-total-degree node is
/// preferred (ties broken by node id), and bands are visited round-robin
/// so the chosen set spreads across the DAG's depth instead of
/// clustering in one layer. The selection is a pure function of the DAG
/// — deterministic across runs and platforms — because shard ownership
/// derived from it must be stable for the solver's distributed
/// termination proof.
///
/// Returns the anchors in ascending node-id order; fewer than `count`
/// only when the DAG has fewer than `count` nodes.
#[must_use]
pub fn anchor_nodes(dag: &Dag, count: usize) -> Vec<NodeId> {
    let count = count.min(dag.n());
    if count == 0 {
        return Vec::new();
    }
    let topo = dag.topo();
    let mut by_level = topo.levels();
    for level in &mut by_level {
        level.sort_by_key(|&v| (std::cmp::Reverse(dag.in_degree(v) + dag.out_degree(v)), v));
    }
    let mut out = Vec::with_capacity(count);
    let mut round = 0usize;
    'fill: loop {
        let mut picked_any = false;
        for level in &by_level {
            if let Some(&v) = level.get(round) {
                out.push(v);
                picked_any = true;
                if out.len() == count {
                    break 'fill;
                }
            }
        }
        if !picked_any {
            break;
        }
        round += 1;
    }
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::dag_from_edges;

    fn diamond() -> Dag {
        dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn stats_of_diamond() {
        let s = DagStats::compute(&diamond());
        assert_eq!(
            s,
            DagStats {
                n: 4,
                m: 4,
                sources: 1,
                sinks: 1,
                max_in_degree: 2,
                max_out_degree: 2,
                depth: 3,
                max_level_width: 2,
            }
        );
        assert!(s.to_string().contains("Δin=2"));
    }

    #[test]
    fn live_set_diamond() {
        let d = diamond();
        // After computing {0}: 0 is live (successors 1,2 uncomputed).
        let live = live_set(&d, &NodeSet::from_iter(4, [NodeId(0)]));
        assert_eq!(live.len(), 1);
        // After {0,1,2}: 0 dead, 1 and 2 live.
        let live = live_set(
            &d,
            &NodeSet::from_iter(4, [NodeId(0), NodeId(1), NodeId(2)]),
        );
        assert_eq!(live.iter().collect::<Vec<_>>(), vec![NodeId(1), NodeId(2)]);
        // Fully computed: only the sink is live (it is the output).
        let live = live_set(&d, &NodeSet::full(4));
        assert_eq!(live.iter().collect::<Vec<_>>(), vec![NodeId(3)]);
    }

    #[test]
    fn min_peak_memory_chain() {
        // A chain needs 2 pebbles: one on the current node, one on the next.
        let d = dag_from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(min_peak_memory(&d, 30), Some(2));
    }

    #[test]
    fn min_peak_memory_diamond() {
        // Diamond: computing 3 requires 1, 2, 3 pebbled simultaneously.
        assert_eq!(min_peak_memory(&diamond(), 30), Some(3));
    }

    #[test]
    fn min_peak_memory_single_node() {
        assert_eq!(min_peak_memory(&dag_from_edges(1, &[]), 30), Some(1));
    }

    #[test]
    fn min_peak_memory_binary_inner_tree() {
        // In-tree of 7 nodes (two levels of joins): computing the second
        // join requires {first join, both its leaves, itself} pebbled at
        // once — 4 pebbles (no "sliding" in rule R3).
        let d = dag_from_edges(7, &[(0, 4), (1, 4), (2, 5), (3, 5), (4, 6), (5, 6)]);
        assert_eq!(min_peak_memory(&d, 30), Some(4));
    }

    #[test]
    fn min_peak_memory_respects_guard() {
        let d = dag_from_edges(5, &[(0, 1)]);
        assert_eq!(min_peak_memory(&d, 3), None);
    }

    #[test]
    fn level_antichain_of_two_layer() {
        let d = dag_from_edges(5, &[(0, 4), (1, 4), (2, 4), (3, 4)]);
        assert_eq!(level_antichain(&d).len(), 4);
    }

    #[test]
    fn independent_nodes_peak_is_n() {
        // k independent sinks must all be retained: peak = n.
        let d = dag_from_edges(3, &[]);
        assert_eq!(min_peak_memory(&d, 30), Some(3));
    }
}
