//! Graphviz DOT export, used to regenerate the paper's figures.

use std::fmt::Write as _;

use crate::{Dag, NodeId};

/// Options for [`to_dot`].
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Rank nodes by topological level (`rankdir=BT` towers like Fig. 3/4).
    pub rank_by_level: bool,
    /// Extra per-node attributes, e.g. coloring by gadget role.
    pub node_attrs: Vec<(NodeId, String)>,
}

/// Renders the DAG in Graphviz DOT syntax.
///
/// Node names are `v<i>`; labels from the builder are used when present.
#[must_use]
pub fn to_dot(dag: &Dag, opts: &DotOptions) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(dag.name()));
    let _ = writeln!(out, "  node [shape=circle];");
    for v in dag.nodes() {
        let label = dag.label(v);
        let mut attrs = String::new();
        if !label.is_empty() {
            let _ = write!(attrs, "label=\"{}\"", escape(label));
        }
        for (node, extra) in &opts.node_attrs {
            if *node == v {
                if !attrs.is_empty() {
                    attrs.push_str(", ");
                }
                attrs.push_str(extra);
            }
        }
        if attrs.is_empty() {
            let _ = writeln!(out, "  v{};", v.0);
        } else {
            let _ = writeln!(out, "  v{} [{}];", v.0, attrs);
        }
    }
    for (u, v) in dag.edges() {
        let _ = writeln!(out, "  v{} -> v{};", u.0, v.0);
    }
    if opts.rank_by_level {
        let topo = dag.topo();
        for level in topo.levels() {
            let names: Vec<String> = level.iter().map(|v| format!("v{}", v.0)).collect();
            let _ = writeln!(out, "  {{ rank=same; {}; }}", names.join("; "));
        }
    }
    out.push_str("}\n");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::dag_from_edges;
    use crate::DagBuilder;

    #[test]
    fn dot_contains_all_edges() {
        let d = dag_from_edges(3, &[(0, 1), (1, 2)]);
        let dot = to_dot(&d, &DotOptions::default());
        assert!(dot.contains("v0 -> v1;"));
        assert!(dot.contains("v1 -> v2;"));
        assert!(dot.starts_with("digraph"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn dot_includes_labels_and_name() {
        let mut b = DagBuilder::new();
        let a = b.add_labeled_node("u\"1\"");
        let c = b.add_node();
        b.add_edge(a, c);
        b.name("fig1");
        let d = b.build().unwrap();
        let dot = to_dot(&d, &DotOptions::default());
        assert!(dot.contains("digraph \"fig1\""));
        assert!(dot.contains("label=\"u\\\"1\\\"\""));
    }

    #[test]
    fn rank_by_level_emits_rank_groups() {
        let d = dag_from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let dot = to_dot(
            &d,
            &DotOptions {
                rank_by_level: true,
                node_attrs: vec![],
            },
        );
        assert!(dot.contains("rank=same; v1; v2;"));
    }

    #[test]
    fn node_attrs_are_emitted() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let dot = to_dot(
            &d,
            &DotOptions {
                rank_by_level: false,
                node_attrs: vec![(crate::NodeId(1), "color=red".into())],
            },
        );
        assert!(dot.contains("v1 [color=red];"));
    }
}
