//! Dense bitset over node ids.
//!
//! Pebbling solvers manipulate sets of nodes (red pebbles per processor,
//! blue pebbles, computed sets) millions of times; `NodeSet` is a compact
//! `u64`-block bitset sized to the DAG it belongs to, with the operations
//! those solvers need: insert/remove/contains, subset/superset tests,
//! union/intersection/difference, iteration, and hashing (so whole game
//! configurations can key hash maps).

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::NodeId;

const BITS: usize = 64;

/// A dense set of [`NodeId`]s backed by `u64` blocks.
///
/// All sets participating in an operation must have been created with the
/// same universe size (the number of nodes of one DAG); mixing sizes is a
/// logic error and panics in debug builds.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct NodeSet {
    blocks: Vec<u64>,
    /// Number of valid bits (the universe size).
    universe: usize,
}

impl NodeSet {
    /// Creates an empty set over a universe of `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        NodeSet {
            blocks: vec![0; n.div_ceil(BITS)],
            universe: n,
        }
    }

    /// Creates a set containing every node of the `n`-node universe.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut s = Self::new(n);
        for (i, b) in s.blocks.iter_mut().enumerate() {
            let lo = i * BITS;
            let hi = (lo + BITS).min(n);
            if hi > lo {
                *b = if hi - lo == BITS {
                    u64::MAX
                } else {
                    (1u64 << (hi - lo)) - 1
                };
            }
        }
        s
    }

    /// Builds a set from an iterator of node ids.
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(n: usize, iter: I) -> Self {
        let mut s = Self::new(n);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// The universe size this set was created with.
    #[inline]
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of elements in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Inserts `v`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let (blk, bit) = Self::slot(v);
        debug_assert!((v.index()) < self.universe, "node {v:?} outside universe");
        let had = self.blocks[blk] & bit != 0;
        self.blocks[blk] |= bit;
        !had
    }

    /// Removes `v`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let (blk, bit) = Self::slot(v);
        debug_assert!((v.index()) < self.universe, "node {v:?} outside universe");
        let had = self.blocks[blk] & bit != 0;
        self.blocks[blk] &= !bit;
        had
    }

    /// Membership test.
    #[inline]
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        let (blk, bit) = Self::slot(v);
        debug_assert!((v.index()) < self.universe, "node {v:?} outside universe");
        self.blocks[blk] & bit != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// `self ⊇ other`.
    #[must_use]
    pub fn is_superset(&self, other: &NodeSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the two sets share no element.
    #[must_use]
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    #[must_use]
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    #[must_use]
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other` as a new set.
    #[must_use]
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Number of elements in `self ∩ other` without materializing it.
    #[must_use]
    pub fn intersection_len(&self, other: &NodeSet) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates the elements in increasing id order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// The smallest element, if any.
    #[must_use]
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    #[inline]
    fn slot(v: NodeId) -> (usize, u64) {
        let i = v.index();
        (i / BITS, 1u64 << (i % BITS))
    }
}

impl Hash for NodeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Universe is fixed per DAG, so hashing blocks suffices.
        self.blocks.hash(state);
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|v| v.index()))
            .finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Collects into a set whose universe is the max id + 1.
    ///
    /// Prefer [`NodeSet::from_iter`] with an explicit universe when the set
    /// will be combined with sets of a known DAG.
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let n = ids.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        NodeSet::from_iter(n, ids)
    }
}

/// Iterator over the elements of a [`NodeSet`].
pub struct NodeSetIter<'a> {
    set: &'a NodeSet,
    block: usize,
    bits: u64,
}

impl Iterator for NodeSetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(NodeId::new(self.block * BITS + tz));
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = NodeSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[usize]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn empty_set_basics() {
        let s = NodeSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.universe(), 10);
        assert!(!s.contains(NodeId::new(3)));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(100);
        assert!(s.insert(NodeId::new(5)));
        assert!(!s.insert(NodeId::new(5)));
        assert!(s.insert(NodeId::new(64)));
        assert!(s.insert(NodeId::new(99)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId::new(64)));
        assert!(s.remove(NodeId::new(64)));
        assert!(!s.remove(NodeId::new(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_set() {
        for n in [0, 1, 63, 64, 65, 128, 130] {
            let s = NodeSet::full(n);
            assert_eq!(s.len(), n, "full({n})");
            assert_eq!(s.iter().count(), n);
        }
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = NodeSet::from_iter(200, ids(&[199, 0, 63, 64, 65, 128]));
        let got: Vec<usize> = s.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_iter(70, ids(&[1, 2, 3, 65]));
        let b = NodeSet::from_iter(70, ids(&[2, 3, 4, 66]));
        assert_eq!(
            a.union(&b).iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 65, 66]
        );
        assert_eq!(
            a.intersection(&b)
                .iter()
                .map(|v| v.index())
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(
            a.difference(&b)
                .iter()
                .map(|v| v.index())
                .collect::<Vec<_>>(),
            vec![1, 65]
        );
        assert_eq!(a.intersection_len(&b), 2);
    }

    #[test]
    fn subset_superset_disjoint() {
        let a = NodeSet::from_iter(80, ids(&[1, 2]));
        let b = NodeSet::from_iter(80, ids(&[1, 2, 70]));
        let c = NodeSet::from_iter(80, ids(&[3, 71]));
        assert!(a.is_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn clear_resets() {
        let mut s = NodeSet::from_iter(10, ids(&[1, 9]));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn first_returns_minimum() {
        let s = NodeSet::from_iter(128, ids(&[100, 64, 127]));
        assert_eq!(s.first(), Some(NodeId::new(64)));
        assert_eq!(NodeSet::new(5).first(), None);
    }

    #[test]
    fn eq_and_hash_agree() {
        use std::collections::hash_map::DefaultHasher;
        let a = NodeSet::from_iter(90, ids(&[5, 80]));
        let b = NodeSet::from_iter(90, ids(&[80, 5]));
        assert_eq!(a, b);
        let h = |s: &NodeSet| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn collect_from_iterator() {
        let s: NodeSet = ids(&[0, 2, 4]).into_iter().collect();
        assert_eq!(s.universe(), 5);
        assert_eq!(s.len(), 3);
    }
}
