//! Dense bitset over node ids.
//!
//! Pebbling solvers manipulate sets of nodes (red pebbles per processor,
//! blue pebbles, computed sets) millions of times; `NodeSet` is a compact
//! `u64`-block bitset sized to the DAG it belongs to, with the operations
//! those solvers need: insert/remove/contains, subset/superset tests,
//! union/intersection/difference, iteration, and hashing (so whole game
//! configurations can key hash maps).

use std::fmt;
use std::hash::{Hash, Hasher};

use crate::NodeId;

const BITS: usize = 64;

/// A dense set of [`NodeId`]s backed by `u64` blocks.
///
/// All sets participating in an operation must have been created with the
/// same universe size (the number of nodes of one DAG); mixing sizes is a
/// logic error and panics in debug builds.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct NodeSet {
    blocks: Vec<u64>,
    /// Number of valid bits (the universe size).
    universe: usize,
}

impl NodeSet {
    /// Creates an empty set over a universe of `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        NodeSet {
            blocks: vec![0; n.div_ceil(BITS)],
            universe: n,
        }
    }

    /// Creates a set containing every node of the `n`-node universe.
    #[must_use]
    pub fn full(n: usize) -> Self {
        let mut s = Self::new(n);
        for (i, b) in s.blocks.iter_mut().enumerate() {
            let lo = i * BITS;
            let hi = (lo + BITS).min(n);
            if hi > lo {
                *b = if hi - lo == BITS {
                    u64::MAX
                } else {
                    (1u64 << (hi - lo)) - 1
                };
            }
        }
        s
    }

    /// Builds a set from an iterator of node ids.
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(n: usize, iter: I) -> Self {
        let mut s = Self::new(n);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// The universe size this set was created with.
    #[inline]
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Number of elements in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Inserts `v`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, v: NodeId) -> bool {
        let (blk, bit) = Self::slot(v);
        debug_assert!((v.index()) < self.universe, "node {v:?} outside universe");
        let had = self.blocks[blk] & bit != 0;
        self.blocks[blk] |= bit;
        !had
    }

    /// Removes `v`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, v: NodeId) -> bool {
        let (blk, bit) = Self::slot(v);
        debug_assert!((v.index()) < self.universe, "node {v:?} outside universe");
        let had = self.blocks[blk] & bit != 0;
        self.blocks[blk] &= !bit;
        had
    }

    /// Membership test.
    #[inline]
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        let (blk, bit) = Self::slot(v);
        debug_assert!((v.index()) < self.universe, "node {v:?} outside universe");
        self.blocks[blk] & bit != 0
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// `self ⊆ other`.
    #[must_use]
    pub fn is_subset(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & !b == 0)
    }

    /// `self ⊇ other`.
    #[must_use]
    pub fn is_superset(&self, other: &NodeSet) -> bool {
        other.is_subset(self)
    }

    /// Whether the two sets share no element.
    #[must_use]
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .all(|(a, b)| a & b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= b;
        }
    }

    /// In-place difference (`self \ other`).
    pub fn difference_with(&mut self, other: &NodeSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, b) in self.blocks.iter_mut().zip(&other.blocks) {
            *a &= !b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    #[must_use]
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    #[must_use]
    pub fn intersection(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other` as a new set.
    #[must_use]
    pub fn difference(&self, other: &NodeSet) -> NodeSet {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Number of elements in `self ∩ other` without materializing it.
    #[must_use]
    pub fn intersection_len(&self, other: &NodeSet) -> usize {
        debug_assert_eq!(self.universe, other.universe);
        self.blocks
            .iter()
            .zip(&other.blocks)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Iterates the elements in increasing id order.
    pub fn iter(&self) -> NodeSetIter<'_> {
        NodeSetIter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// The smallest element, if any.
    #[must_use]
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    #[inline]
    fn slot(v: NodeId) -> (usize, u64) {
        let i = v.index();
        (i / BITS, 1u64 << (i % BITS))
    }
}

impl Hash for NodeSet {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Universe is fixed per DAG, so hashing blocks suffices.
        self.blocks.hash(state);
    }
}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|v| v.index()))
            .finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    /// Collects into a set whose universe is the max id + 1.
    ///
    /// Prefer [`NodeSet::from_iter`] with an explicit universe when the set
    /// will be combined with sets of a known DAG.
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        let ids: Vec<NodeId> = iter.into_iter().collect();
        let n = ids.iter().map(|v| v.index() + 1).max().unwrap_or(0);
        NodeSet::from_iter(n, ids)
    }
}

/// Iterator over the elements of a [`NodeSet`].
pub struct NodeSetIter<'a> {
    set: &'a NodeSet,
    block: usize,
    bits: u64,
}

impl Iterator for NodeSetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        loop {
            if self.bits != 0 {
                let tz = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(NodeId::new(self.block * BITS + tz));
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

impl<'a> IntoIterator for &'a NodeSet {
    type Item = NodeId;
    type IntoIter = NodeSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

/// A set of [`NodeId`]s that switches representation by density.
///
/// Small sets over a large universe are kept as a sorted `u32` vector
/// (4 bytes per element); once the set grows past roughly one element
/// per 32 universe slots it is promoted to a dense [`NodeSet`] bitset
/// (universe/8 bytes regardless of population). Demotion back to sparse
/// happens at half the promotion threshold, so a set oscillating around
/// the boundary does not thrash between representations.
///
/// The streaming scheduler tier ([`rbp-stream`]) keeps one of these per
/// processor for the red pebbles: red sets are bounded by the memory
/// parameter `r`, so on a million-node DAG they stay sparse and cost
/// `O(r)` bytes instead of `O(n/8)`.
///
/// Unlike [`NodeSet`], equality and hashing are defined over the
/// *elements*, so a sparse set equals a dense set holding the same ids.
/// Both representations iterate in increasing id order.
///
/// [`rbp-stream`]: https://docs.rs/rbp-stream
#[derive(Clone)]
pub struct HybridNodeSet {
    universe: usize,
    repr: HybridRepr,
}

#[derive(Clone)]
enum HybridRepr {
    /// Sorted, duplicate-free element vector.
    Sparse(Vec<u32>),
    Dense(NodeSet),
}

impl HybridNodeSet {
    /// Creates an empty (sparse) set over a universe of `n` nodes.
    #[must_use]
    pub fn new(n: usize) -> Self {
        HybridNodeSet {
            universe: n,
            repr: HybridRepr::Sparse(Vec::new()),
        }
    }

    /// Builds a set from an iterator of node ids.
    pub fn from_iter<I: IntoIterator<Item = NodeId>>(n: usize, iter: I) -> Self {
        let mut s = Self::new(n);
        for v in iter {
            s.insert(v);
        }
        s
    }

    /// Elements per universe slot above which the set goes dense: one
    /// element per 32 slots (sparse storage would exceed the bitset).
    #[inline]
    fn promote_at(&self) -> usize {
        self.universe / 32 + 1
    }

    /// The universe size this set was created with.
    #[inline]
    #[must_use]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Whether the set currently uses the dense bitset representation
    /// (exposed for the promotion/demotion boundary tests).
    #[must_use]
    pub fn is_dense(&self) -> bool {
        matches!(self.repr, HybridRepr::Dense(_))
    }

    /// Number of elements in the set.
    #[must_use]
    pub fn len(&self) -> usize {
        match &self.repr {
            HybridRepr::Sparse(v) => v.len(),
            HybridRepr::Dense(s) => s.len(),
        }
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        match &self.repr {
            HybridRepr::Sparse(v) => v.is_empty(),
            HybridRepr::Dense(s) => s.is_empty(),
        }
    }

    /// Inserts `v`; returns `true` if it was not already present.
    pub fn insert(&mut self, v: NodeId) -> bool {
        debug_assert!(v.index() < self.universe, "node {v:?} outside universe");
        let inserted = match &mut self.repr {
            HybridRepr::Sparse(xs) => match xs.binary_search(&v.0) {
                Ok(_) => false,
                Err(pos) => {
                    xs.insert(pos, v.0);
                    true
                }
            },
            HybridRepr::Dense(s) => s.insert(v),
        };
        if inserted {
            self.maybe_promote();
        }
        inserted
    }

    /// Removes `v`; returns `true` if it was present.
    pub fn remove(&mut self, v: NodeId) -> bool {
        debug_assert!(v.index() < self.universe, "node {v:?} outside universe");
        let removed = match &mut self.repr {
            HybridRepr::Sparse(xs) => match xs.binary_search(&v.0) {
                Ok(pos) => {
                    xs.remove(pos);
                    true
                }
                Err(_) => false,
            },
            HybridRepr::Dense(s) => s.remove(v),
        };
        if removed {
            self.maybe_demote();
        }
        removed
    }

    /// Membership test.
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        match &self.repr {
            HybridRepr::Sparse(xs) => xs.binary_search(&v.0).is_ok(),
            HybridRepr::Dense(s) => s.contains(v),
        }
    }

    /// Removes all elements (and returns to the sparse representation,
    /// releasing the bitset).
    pub fn clear(&mut self) {
        self.repr = HybridRepr::Sparse(Vec::new());
    }

    /// Iterates the elements in increasing id order (both
    /// representations).
    pub fn iter(&self) -> HybridNodeSetIter<'_> {
        match &self.repr {
            HybridRepr::Sparse(xs) => HybridNodeSetIter::Sparse(xs.iter()),
            HybridRepr::Dense(s) => HybridNodeSetIter::Dense(s.iter()),
        }
    }

    /// The smallest element, if any.
    #[must_use]
    pub fn first(&self) -> Option<NodeId> {
        self.iter().next()
    }

    /// Copies into a dense [`NodeSet`] of the same universe.
    #[must_use]
    pub fn to_dense(&self) -> NodeSet {
        match &self.repr {
            HybridRepr::Sparse(xs) => {
                NodeSet::from_iter(self.universe, xs.iter().map(|&x| NodeId(x)))
            }
            HybridRepr::Dense(s) => s.clone(),
        }
    }

    fn maybe_promote(&mut self) {
        if let HybridRepr::Sparse(xs) = &self.repr {
            if xs.len() > self.promote_at() {
                let dense = NodeSet::from_iter(self.universe, xs.iter().map(|&x| NodeId(x)));
                self.repr = HybridRepr::Dense(dense);
            }
        }
    }

    fn maybe_demote(&mut self) {
        if let HybridRepr::Dense(s) = &self.repr {
            if s.len() <= self.promote_at() / 2 {
                let xs: Vec<u32> = s.iter().map(|v| v.0).collect();
                self.repr = HybridRepr::Sparse(xs);
            }
        }
    }
}

impl PartialEq for HybridNodeSet {
    /// Element-wise equality: representations may differ.
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().eq(other.iter())
    }
}

impl Eq for HybridNodeSet {}

impl Hash for HybridNodeSet {
    /// Hashes the element sequence, so equal sets hash equal regardless
    /// of representation.
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.len().hash(state);
        for v in self.iter() {
            v.0.hash(state);
        }
    }
}

impl fmt::Debug for HybridNodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set()
            .entries(self.iter().map(|v| v.index()))
            .finish()
    }
}

/// Iterator over the elements of a [`HybridNodeSet`].
pub enum HybridNodeSetIter<'a> {
    /// Iterating the sorted sparse vector.
    Sparse(std::slice::Iter<'a, u32>),
    /// Iterating the dense bitset.
    Dense(NodeSetIter<'a>),
}

impl Iterator for HybridNodeSetIter<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        match self {
            HybridNodeSetIter::Sparse(it) => it.next().map(|&x| NodeId(x)),
            HybridNodeSetIter::Dense(it) => it.next(),
        }
    }
}

impl<'a> IntoIterator for &'a HybridNodeSet {
    type Item = NodeId;
    type IntoIter = HybridNodeSetIter<'a>;

    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(xs: &[usize]) -> Vec<NodeId> {
        xs.iter().copied().map(NodeId::new).collect()
    }

    #[test]
    fn empty_set_basics() {
        let s = NodeSet::new(10);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.universe(), 10);
        assert!(!s.contains(NodeId::new(3)));
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = NodeSet::new(100);
        assert!(s.insert(NodeId::new(5)));
        assert!(!s.insert(NodeId::new(5)));
        assert!(s.insert(NodeId::new(64)));
        assert!(s.insert(NodeId::new(99)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId::new(64)));
        assert!(s.remove(NodeId::new(64)));
        assert!(!s.remove(NodeId::new(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_set() {
        for n in [0, 1, 63, 64, 65, 128, 130] {
            let s = NodeSet::full(n);
            assert_eq!(s.len(), n, "full({n})");
            assert_eq!(s.iter().count(), n);
        }
    }

    #[test]
    fn iteration_order_is_increasing() {
        let s = NodeSet::from_iter(200, ids(&[199, 0, 63, 64, 65, 128]));
        let got: Vec<usize> = s.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 128, 199]);
    }

    #[test]
    fn set_algebra() {
        let a = NodeSet::from_iter(70, ids(&[1, 2, 3, 65]));
        let b = NodeSet::from_iter(70, ids(&[2, 3, 4, 66]));
        assert_eq!(
            a.union(&b).iter().map(|v| v.index()).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 65, 66]
        );
        assert_eq!(
            a.intersection(&b)
                .iter()
                .map(|v| v.index())
                .collect::<Vec<_>>(),
            vec![2, 3]
        );
        assert_eq!(
            a.difference(&b)
                .iter()
                .map(|v| v.index())
                .collect::<Vec<_>>(),
            vec![1, 65]
        );
        assert_eq!(a.intersection_len(&b), 2);
    }

    #[test]
    fn subset_superset_disjoint() {
        let a = NodeSet::from_iter(80, ids(&[1, 2]));
        let b = NodeSet::from_iter(80, ids(&[1, 2, 70]));
        let c = NodeSet::from_iter(80, ids(&[3, 71]));
        assert!(a.is_subset(&b));
        assert!(b.is_superset(&a));
        assert!(!b.is_subset(&a));
        assert!(a.is_disjoint(&c));
        assert!(!a.is_disjoint(&b));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn clear_resets() {
        let mut s = NodeSet::from_iter(10, ids(&[1, 9]));
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn first_returns_minimum() {
        let s = NodeSet::from_iter(128, ids(&[100, 64, 127]));
        assert_eq!(s.first(), Some(NodeId::new(64)));
        assert_eq!(NodeSet::new(5).first(), None);
    }

    #[test]
    fn eq_and_hash_agree() {
        use std::collections::hash_map::DefaultHasher;
        let a = NodeSet::from_iter(90, ids(&[5, 80]));
        let b = NodeSet::from_iter(90, ids(&[80, 5]));
        assert_eq!(a, b);
        let h = |s: &NodeSet| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&a), h(&b));
    }

    #[test]
    fn collect_from_iterator() {
        let s: NodeSet = ids(&[0, 2, 4]).into_iter().collect();
        assert_eq!(s.universe(), 5);
        assert_eq!(s.len(), 3);
    }

    // ---- HybridNodeSet ----

    #[test]
    fn hybrid_basics() {
        let mut s = HybridNodeSet::new(1000);
        assert!(s.is_empty());
        assert!(!s.is_dense());
        assert!(s.insert(NodeId::new(7)));
        assert!(!s.insert(NodeId::new(7)));
        assert!(s.contains(NodeId::new(7)));
        assert!(!s.contains(NodeId::new(8)));
        assert_eq!(s.len(), 1);
        assert!(s.remove(NodeId::new(7)));
        assert!(!s.remove(NodeId::new(7)));
        assert!(s.is_empty());
        assert_eq!(s.first(), None);
    }

    #[test]
    fn hybrid_promotes_and_demotes_at_density_boundaries() {
        let n = 6400; // promote_at = 201
        let mut s = HybridNodeSet::new(n);
        let promote = n / 32 + 1;
        for i in 0..promote {
            s.insert(NodeId::new(i * 3));
            assert!(!s.is_dense(), "still sparse at {} elements", i + 1);
        }
        s.insert(NodeId::new(promote * 3));
        assert!(s.is_dense(), "promoted past {promote} elements");
        // Remove down to the demotion boundary (half the promotion one).
        while s.len() > promote / 2 {
            let v = s.first().unwrap();
            s.remove(v);
            if s.len() > promote / 2 {
                assert!(s.is_dense(), "no demotion until len ≤ {}", promote / 2);
            }
        }
        assert!(!s.is_dense(), "demoted at len {}", s.len());
        // Contents survived both transitions.
        assert_eq!(s.len(), promote / 2);
    }

    #[test]
    fn hybrid_iteration_order_is_increasing_in_both_representations() {
        let mut sparse = HybridNodeSet::new(10_000);
        for &i in &[9999usize, 0, 63, 64, 65, 128] {
            sparse.insert(NodeId::new(i));
        }
        assert!(!sparse.is_dense());
        let got: Vec<usize> = sparse.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![0, 63, 64, 65, 128, 9999]);

        let dense = HybridNodeSet::from_iter(64, ids(&[63, 0, 5, 7, 9, 11, 13]));
        assert!(dense.is_dense(), "64/32+1 = 3 < 7 elements");
        let got: Vec<usize> = dense.iter().map(|v| v.index()).collect();
        assert_eq!(got, vec![0, 5, 7, 9, 11, 13, 63]);
    }

    #[test]
    fn hybrid_equality_and_hash_across_representations() {
        use std::collections::hash_map::DefaultHasher;
        // Same elements, one sparse (huge universe) vs one dense (tiny).
        let mut a = HybridNodeSet::new(100);
        let mut b = HybridNodeSet::new(100);
        for &i in &[1usize, 2, 3] {
            a.insert(NodeId::new(i));
        }
        assert!(!a.is_dense(), "3 elements over universe 100 stay sparse");
        // Force b dense by filling then draining (demotion needs len ≤ 2).
        for i in 0..50 {
            b.insert(NodeId::new(i));
        }
        assert!(b.is_dense());
        for i in 0..50 {
            if ![1, 2, 3].contains(&i) {
                b.remove(NodeId::new(i));
            }
        }
        assert!(b.is_dense(), "len 3 is above the demotion boundary");
        assert_eq!(a.len(), b.len());
        assert_eq!(a, b, "sparse == dense with identical elements");
        let h = |s: &HybridNodeSet| {
            let mut hasher = DefaultHasher::new();
            s.hash(&mut hasher);
            hasher.finish()
        };
        assert_eq!(h(&a), h(&b));
        b.insert(NodeId::new(99));
        assert_ne!(a, b);
    }

    #[test]
    fn hybrid_clear_returns_to_sparse() {
        let mut s = HybridNodeSet::from_iter(64, (0..64).map(NodeId::new));
        assert!(s.is_dense());
        s.clear();
        assert!(s.is_empty());
        assert!(!s.is_dense());
        assert_eq!(s.universe(), 64);
    }

    #[test]
    fn hybrid_to_dense_matches() {
        let s = HybridNodeSet::from_iter(300, ids(&[0, 7, 256]));
        let d = s.to_dense();
        assert_eq!(d.universe(), 300);
        assert_eq!(d.iter().collect::<Vec<_>>(), s.iter().collect::<Vec<_>>());
    }

    /// Seeded randomized differential test: a HybridNodeSet and the
    /// dense NodeSet driven by the same operation stream must agree on
    /// every observable after every step.
    #[test]
    fn hybrid_differential_against_dense() {
        // xorshift64* — deterministic, no external RNG.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut rng = move || {
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D)
        };
        for &n in &[1usize, 31, 32, 33, 64, 100, 1000] {
            let mut hybrid = HybridNodeSet::new(n);
            let mut dense = NodeSet::new(n);
            for step in 0..2000 {
                let x = rng();
                let v = NodeId::new((x >> 8) as usize % n);
                match x % 4 {
                    0 | 1 => assert_eq!(hybrid.insert(v), dense.insert(v), "insert {v} (n={n})"),
                    2 => assert_eq!(hybrid.remove(v), dense.remove(v), "remove {v} (n={n})"),
                    _ => assert_eq!(hybrid.contains(v), dense.contains(v), "contains {v}"),
                }
                assert_eq!(hybrid.len(), dense.len(), "len after step {step} (n={n})");
                if step % 97 == 0 {
                    assert!(hybrid.iter().eq(dense.iter()), "iteration diverged (n={n})");
                    assert_eq!(hybrid.to_dense(), dense);
                }
            }
        }
    }
}
