//! The §5 I/O-count phenomena: adding a processor can make I/O appear
//! out of nowhere — or vanish entirely.
//!
//! **Appear** ([`SparseLadder`], `OPT_IO(1) = 0` but `OPT_IO(2) = Θ(n)`):
//! two parallel chains with cross edges ("rungs") every `m` levels. One
//! processor interleaves both chains in 4 pebbles with zero I/O. Two
//! processors run one chain each and must exchange values at every rung
//! (2 I/O steps per rung); for `m > 2g` the exchange is worth it, so the
//! *optimal* 2-processor pebbling performs `Θ(n/m) = Θ(n)` I/O steps.
//!
//! **Vanish** ([`ImbalancedPair`], `OPT_IO(1) = Θ(n)` but
//! `OPT_IO(2) = 0`): a *heavy* chain whose node `i` additionally reads a
//! rotating source `a_{i mod d}` hidden behind a damper chain of length
//! `g` (recomputing it costs `g+1`, loading it costs `g` — loads win by
//! exactly 1), next to an independent *light* chain sized to the heavy
//! chain's recompute-only work. One processor prefers `Θ(n)` loads. Two
//! processors split the work in the only (very imbalanced) way possible —
//! heavy on one, light on the other — and the heavy processor now
//! *recomputes*: its extra computes batch with the light chain's for
//! free, so zero I/O beats every I/O-using schedule.

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};
use rbp_core::{MppError, MppInstance, MppRun, MppSimulator};

/// Two chains with cross edges every `m` levels.
#[derive(Debug, Clone)]
pub struct SparseLadder {
    /// The DAG.
    pub dag: Dag,
    /// Chain A nodes.
    pub a: Vec<NodeId>,
    /// Chain B nodes.
    pub b: Vec<NodeId>,
    /// Rung spacing.
    pub m: usize,
}

impl SparseLadder {
    /// Builds two chains of `len` nodes with cross edges
    /// `a_i → b_{i+1}` and `b_i → a_{i+1}` whenever `(i+1) % m == 0`.
    #[must_use]
    pub fn build(len: usize, m: usize) -> Self {
        assert!(len >= 2 && m >= 2);
        let mut bld = DagBuilder::new();
        let a: Vec<NodeId> = (0..len)
            .map(|i| bld.add_labeled_node(format!("a{i}")))
            .collect();
        let b: Vec<NodeId> = (0..len)
            .map(|i| bld.add_labeled_node(format!("b{i}")))
            .collect();
        for i in 0..len - 1 {
            bld.add_edge(a[i], a[i + 1]);
            bld.add_edge(b[i], b[i + 1]);
            if (i + 1) % m == 0 {
                bld.add_edge(a[i], b[i + 1]);
                bld.add_edge(b[i], a[i + 1]);
            }
        }
        bld.name(format!("sparse_ladder(len={len}, m={m})"));
        SparseLadder {
            dag: bld.build().expect("ladder is a DAG"),
            a,
            b,
            m,
        }
    }

    /// One processor, `r = 4`: interleave the chains, zero I/O, cost `n`.
    pub fn strategy_k1(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 1, 4, g);
        let mut sim = MppSimulator::new(inst);
        for i in 0..self.a.len() {
            sim.compute(vec![(0, self.a[i])])?;
            sim.compute(vec![(0, self.b[i])])?;
            if i > 0 {
                sim.remove_red(0, self.a[i - 1])?;
                sim.remove_red(0, self.b[i - 1])?;
            }
        }
        sim.finish()
    }

    /// Two processors, `r = 4`: one chain each, batched computes, and an
    /// exchange of both rung values (`2` batched I/O steps) every `m`
    /// levels. Cost `≈ n/2 + 2g·(n/2m)` — cheaper than the zero-I/O
    /// `k = 1` schedule whenever `m > 2g`.
    pub fn strategy_k2(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 2, 4, g);
        let mut sim = MppSimulator::new(inst);
        let len = self.a.len();
        for i in 0..len {
            sim.compute(vec![(0, self.a[i]), (1, self.b[i])])?;
            if i > 0 {
                sim.remove_red(0, self.a[i - 1])?;
                sim.remove_red(1, self.b[i - 1])?;
                // Drop cross values loaded for this rung level.
                if i % self.m == 0 {
                    sim.remove_red(0, self.b[i - 1])?;
                    sim.remove_red(1, self.a[i - 1])?;
                }
            }
            // Exchange ahead of a rung: the *next* nodes need both.
            if (i + 1) % self.m == 0 && i + 1 < len {
                sim.store(vec![(0, self.a[i]), (1, self.b[i])])?;
                sim.load(vec![(0, self.b[i]), (1, self.a[i])])?;
            }
        }
        sim.finish()
    }
}

/// The heavy-chain / light-chain pair where I/O vanishes at `k = 2`.
#[derive(Debug, Clone)]
pub struct ImbalancedPair {
    /// The DAG.
    pub dag: Dag,
    /// Rotating sources `a_0 … a_{d−1}` (tail of their damper chains).
    pub sources: Vec<NodeId>,
    /// Damper chains, one per source (each of length `g`, excluding the
    /// source itself).
    pub dampers: Vec<Vec<NodeId>>,
    /// The heavy chain (length `n1`).
    pub heavy: Vec<NodeId>,
    /// The light chain (length `n2`).
    pub light: Vec<NodeId>,
    /// Number of rotating sources.
    pub d: usize,
    /// Damper length = `g` of the intended cost model.
    pub damper_len: usize,
}

impl ImbalancedPair {
    /// Builds the gadget: `d` rotating sources behind dampers of length
    /// `damper_len` (use `damper_len = g`), a heavy chain of `n1` nodes
    /// (node `i` reads `heavy_{i−1}` and `a_{i mod d}`), and an
    /// independent light chain of `n2` nodes.
    ///
    /// For the Lemma-style behaviour choose
    /// `n2 ≈ n1·(damper_len + 2)` so the two halves balance at `k = 2`.
    #[must_use]
    pub fn build(d: usize, n1: usize, n2: usize, damper_len: usize) -> Self {
        assert!(d >= 2 && n1 >= 1 && n2 >= 1);
        let mut b = DagBuilder::new();
        let mut dampers = Vec::with_capacity(d);
        let sources: Vec<NodeId> = (0..d)
            .map(|i| {
                let mut chain = Vec::with_capacity(damper_len);
                let mut prev: Option<NodeId> = None;
                for j in 0..damper_len {
                    let c = b.add_labeled_node(format!("a{i}_damp{j}"));
                    if let Some(p) = prev {
                        b.add_edge(p, c);
                    }
                    prev = Some(c);
                    chain.push(c);
                }
                let u = b.add_labeled_node(format!("a{i}"));
                if let Some(p) = prev {
                    b.add_edge(p, u);
                }
                dampers.push(chain);
                u
            })
            .collect();
        let mut heavy = Vec::with_capacity(n1);
        let mut prev: Option<NodeId> = None;
        for i in 0..n1 {
            let v = b.add_labeled_node(format!("h{i}"));
            b.add_edge(sources[i % d], v);
            if let Some(p) = prev {
                b.add_edge(p, v);
            }
            prev = Some(v);
            heavy.push(v);
        }
        let mut light = Vec::with_capacity(n2);
        let mut prev: Option<NodeId> = None;
        for i in 0..n2 {
            let v = b.add_labeled_node(format!("l{i}"));
            if let Some(p) = prev {
                b.add_edge(p, v);
            }
            prev = Some(v);
            light.push(v);
        }
        b.name(format!(
            "imbalanced_pair(d={d}, n1={n1}, n2={n2}, damper={damper_len})"
        ));
        ImbalancedPair {
            dag: b.build().expect("imbalanced pair is a DAG"),
            sources,
            dampers,
            heavy,
            light,
            d,
            damper_len,
        }
    }

    /// Memory used by all strategies: `r = 4` (chain prev + current +
    /// one source slot + one damper-transient slot).
    #[must_use]
    pub fn r(&self) -> usize {
        4
    }

    /// `k = 1` with loads: compute each source once (store it), then the
    /// heavy chain loading its source every node, then the light chain.
    /// I/O = `d` stores + `n1` loads = `Θ(n1)`.
    pub fn strategy_k1_loads(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 1, self.r(), g);
        let mut sim = MppSimulator::new(inst);
        // Compute sources via their dampers; store and drop each.
        for (i, &src) in self.sources.iter().enumerate() {
            let mut prev: Option<NodeId> = None;
            for &c in self.dampers[i].iter().chain(std::iter::once(&src)) {
                sim.compute(vec![(0, c)])?;
                if let Some(p) = prev {
                    sim.remove_red(0, p)?;
                }
                prev = Some(c);
            }
            sim.store(vec![(0, src)])?;
            sim.remove_red(0, src)?;
        }
        // Heavy chain with one load per node.
        let mut prev: Option<NodeId> = None;
        for (i, &v) in self.heavy.iter().enumerate() {
            let src = self.sources[i % self.d];
            sim.load(vec![(0, src)])?;
            sim.compute(vec![(0, v)])?;
            sim.remove_red(0, src)?;
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        // Light chain.
        let mut prev: Option<NodeId> = None;
        for &v in &self.light {
            sim.compute(vec![(0, v)])?;
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        sim.finish()
    }

    /// `k = 1` without I/O: recompute the rotating source (damper chain
    /// and all, `damper_len + 1` computes) before every heavy node.
    /// Zero I/O but `≈ n1·(damper_len + 2) + n2` compute steps.
    pub fn strategy_k1_recompute(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 1, self.r(), g);
        let mut sim = MppSimulator::new(inst);
        let mut prev: Option<NodeId> = None;
        for (i, &v) in self.heavy.iter().enumerate() {
            let si = i % self.d;
            self.recompute_source(&mut sim, 0, si, None)?;
            sim.compute(vec![(0, v)])?;
            sim.remove_red(0, self.sources[si])?;
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        let mut prev: Option<NodeId> = None;
        for &v in &self.light {
            sim.compute(vec![(0, v)])?;
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        sim.finish()
    }

    /// `k = 2`, zero I/O: processor 0 runs the heavy chain recomputing
    /// its sources; processor 1 runs the light chain. Every step is a
    /// batched compute, so the cost is `max` of the two workloads instead
    /// of their sum — with `n2 ≈ n1·(damper_len+2)` this beats every
    /// I/O-using schedule.
    pub fn strategy_k2_recompute(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 2, self.r(), g);
        let mut sim = MppSimulator::new(inst);
        // Interleave: build the per-proc op lists, then zip them into
        // batched compute steps.
        let heavy_ops = self.heavy_recompute_ops();
        let light_ops: Vec<NodeId> = self.light.clone();
        let steps = heavy_ops.len().max(light_ops.len());
        // Removal bookkeeping mirrors the k=1 strategies.
        let mut h_prev_chain: Option<NodeId> = None;
        let mut h_prev_damper: Option<NodeId> = None;
        let mut l_prev: Option<NodeId> = None;
        for s in 0..steps {
            let mut batch = Vec::new();
            if let Some(&hv) = heavy_ops.get(s) {
                batch.push((0usize, hv));
            }
            if let Some(&lv) = light_ops.get(s) {
                batch.push((1usize, lv));
            }
            sim.compute(batch)?;
            // Post-step cleanup for proc 0.
            if let Some(&hv) = heavy_ops.get(s) {
                if self.heavy.contains(&hv) {
                    // Chain node computed: drop the source and the old
                    // chain value.
                    let idx = self.heavy.iter().position(|&x| x == hv).unwrap();
                    sim.remove_red(0, self.sources[idx % self.d])?;
                    if let Some(p) = h_prev_chain {
                        sim.remove_red(0, p)?;
                    }
                    h_prev_chain = Some(hv);
                    h_prev_damper = None;
                } else {
                    // Damper/source node: drop its predecessor damper.
                    if let Some(p) = h_prev_damper {
                        sim.remove_red(0, p)?;
                    }
                    h_prev_damper = if self.sources.contains(&hv) {
                        None
                    } else {
                        Some(hv)
                    };
                }
            }
            if let Some(&lv) = light_ops.get(s) {
                if let Some(p) = l_prev {
                    sim.remove_red(1, p)?;
                }
                l_prev = Some(lv);
            }
        }
        let _ = g;
        sim.finish()
    }

    /// Flat list of proc-0 compute ops for the recompute strategy:
    /// for each heavy node, its source's damper chain, the source, then
    /// the node itself.
    fn heavy_recompute_ops(&self) -> Vec<NodeId> {
        let mut ops = Vec::new();
        for (i, &v) in self.heavy.iter().enumerate() {
            let si = i % self.d;
            ops.extend(self.dampers[si].iter().copied());
            ops.push(self.sources[si]);
            ops.push(v);
        }
        ops
    }

    fn recompute_source(
        &self,
        sim: &mut MppSimulator,
        proc: usize,
        si: usize,
        _protect: Option<NodeId>,
    ) -> Result<(), MppError> {
        let mut prev: Option<NodeId> = None;
        for &c in self.dampers[si]
            .iter()
            .chain(std::iter::once(&self.sources[si]))
        {
            sim.compute(vec![(proc, c)])?;
            if let Some(p) = prev {
                sim.remove_red(proc, p)?;
            }
            prev = Some(c);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::CostModel;

    #[test]
    fn ladder_shape() {
        let l = SparseLadder::build(12, 4);
        assert_eq!(l.dag.n(), 24);
        assert_eq!(l.dag.max_in_degree(), 2);
        // 2×11 chain edges + 2 rungs at i+1 ∈ {4, 8} … and 12 — only
        // i+1 < len: rungs at 4 and 8: 2 edges each.
        assert_eq!(l.dag.m(), 22 + 2 * 2);
    }

    #[test]
    fn ladder_k1_is_io_free() {
        let l = SparseLadder::build(16, 5);
        let run = l.strategy_k1(3).unwrap();
        assert_eq!(run.cost.io_steps(), 0);
        assert_eq!(run.cost.computes, 32);
    }

    #[test]
    fn ladder_k2_exchanges_at_rungs_and_wins_for_large_m() {
        let len = 40;
        let g = 2;
        let m = 2 * g as usize + 2; // m > 2g → parallel wins
        let l = SparseLadder::build(len, m);
        let k1 = l.strategy_k1(g).unwrap().cost.total(CostModel::mpp(g));
        let run2 = l.strategy_k2(g).unwrap();
        let k2 = run2.cost.total(CostModel::mpp(g));
        assert!(run2.cost.io_steps() > 0, "rungs require communication");
        assert!(k2 < k1, "k2={k2} k1={k1}: I/O appears *because* it wins");
        // Θ(n) I/O: one exchange (2 steps) per m levels.
        let expected_rungs = (len - 1) / m;
        assert_eq!(run2.cost.io_steps() as usize, 2 * expected_rungs);
    }

    #[test]
    fn ladder_strategies_validate() {
        let l = SparseLadder::build(10, 3);
        for (run, k) in [
            (l.strategy_k1(2).unwrap(), 1),
            (l.strategy_k2(2).unwrap(), 2),
        ] {
            let inst = MppInstance::new(&l.dag, k, 4, 2);
            assert_eq!(run.strategy.validate(&inst).unwrap(), run.cost, "k={k}");
        }
    }

    #[test]
    fn imbalanced_shape() {
        let g = 3;
        let p = ImbalancedPair::build(2, 6, 30, g as usize);
        assert_eq!(p.dag.n(), 2 * (g as usize + 1) + 6 + 30);
        assert_eq!(p.dag.max_in_degree(), 2);
    }

    #[test]
    fn imbalanced_k1_prefers_loads_k2_prefers_recompute() {
        let g: u64 = 3;
        let damper = g as usize; // recompute = g+1 vs load = g
        let d = 2;
        // Loads beat recomputation for k=1 once the per-node saving of 1
        // amortizes the source setup: n1 > d·(2g+1).
        let n1 = 20;
        let n2 = n1 * (damper + 2); // balance the two halves
        let p = ImbalancedPair::build(d, n1, n2, damper);
        let model = CostModel::mpp(g);

        let k1_loads = p.strategy_k1_loads(g).unwrap();
        let k1_rec = p.strategy_k1_recompute(g).unwrap();
        assert!(k1_loads.cost.io_steps() > 0);
        assert_eq!(k1_rec.cost.io_steps(), 0);
        // For k=1 the I/O strategy wins → OPT_IO(1) > 0 territory.
        assert!(
            k1_loads.cost.total(model) < k1_rec.cost.total(model),
            "loads {} vs recompute {}",
            k1_loads.cost.total(model),
            k1_rec.cost.total(model)
        );

        let k2 = p.strategy_k2_recompute(g).unwrap();
        assert_eq!(k2.cost.io_steps(), 0);
        // For k=2 the zero-I/O schedule beats even the k=1 I/O winner —
        // I/O vanished.
        assert!(
            k2.cost.total(model) < k1_loads.cost.total(model),
            "k2 {} vs k1-loads {}",
            k2.cost.total(model),
            k1_loads.cost.total(model)
        );
    }

    #[test]
    fn imbalanced_strategies_validate() {
        let g = 2;
        let p = ImbalancedPair::build(2, 4, 16, g as usize);
        for (run, k) in [
            (p.strategy_k1_loads(g).unwrap(), 1),
            (p.strategy_k1_recompute(g).unwrap(), 1),
            (p.strategy_k2_recompute(g).unwrap(), 2),
        ] {
            let inst = MppInstance::new(&p.dag, k, p.r(), g);
            assert_eq!(run.strategy.validate(&inst).unwrap(), run.cost);
        }
    }
}
