//! The zipper gadget (Figure 2) and its canonical strategies.
//!
//! Two input groups `S1`, `S2` of `d` source nodes each, and a main chain
//! `v1 … v_{n0}`. Odd chain nodes additionally read all of `S1`, even
//! ones all of `S2` (plus the chain edge), so `Δ_in = d + 1`.
//!
//! The gadget concentrates most of the paper's phenomena:
//! - with `r = 2d + 2` a single processor keeps both groups resident and
//!   pebbles the chain with **zero I/O**;
//! - with `r = d + 2` a single processor must swap the `d` off-group
//!   values for every chain node: ≈ `d·g + 1` per node (or recompute the
//!   sources at `d` per node when that is cheaper — the recomputation
//!   trade-off of §4);
//! - with `k = 2` and `r = d + 2`, each processor pins one group and the
//!   processors exchange only chain values: ≈ `2g + 1` per node — the
//!   superlinear speedup of Lemma 10 (`OPT(1)/OPT(2) → (Δ_in−1)/2`).
//!
//! The optional *dampers* (a chain of `2g` nodes in front of each input)
//! make recomputing an input cost `2g + 1 > 2g`, i.e. strictly worse
//! than one store + one load, exactly as the paper uses them to rule out
//! recomputation in proofs.

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};
use rbp_core::{MppError, MppInstance, MppRun, MppSimulator};

/// A generated zipper instance with handles to its parts.
#[derive(Debug, Clone)]
pub struct Zipper {
    /// The DAG.
    pub dag: Dag,
    /// Input group `S1` (feeds odd chain nodes `v1, v3, …`).
    pub s1: Vec<NodeId>,
    /// Input group `S2` (feeds even chain nodes `v2, v4, …`).
    pub s2: Vec<NodeId>,
    /// The main chain `v1 … v_{n0}`.
    pub chain: Vec<NodeId>,
    /// Group size `d`.
    pub d: usize,
    /// Damper length (0 = no dampers).
    pub damper: usize,
}

impl Zipper {
    /// Builds a zipper with groups of size `d`, a main chain of `n0`
    /// nodes, and dampers of `damper` extra nodes before each input
    /// (pass `2g` to discourage recomputation as in the paper; `0` for
    /// the plain gadget).
    #[must_use]
    pub fn build(d: usize, n0: usize, damper: usize) -> Self {
        assert!(d >= 1 && n0 >= 1);
        let mut b = DagBuilder::new();
        let mut make_group = |tag: &str| -> Vec<NodeId> {
            (0..d)
                .map(|i| {
                    let mut prev: Option<NodeId> = None;
                    for j in 0..damper {
                        let c = b.add_labeled_node(format!("{tag}{i}_damp{j}"));
                        if let Some(p) = prev {
                            b.add_edge(p, c);
                        }
                        prev = Some(c);
                    }
                    let u = b.add_labeled_node(format!("{tag}{i}"));
                    if let Some(p) = prev {
                        b.add_edge(p, u);
                    }
                    u
                })
                .collect()
        };
        let s1 = make_group("u");
        let s2 = make_group("w");
        let mut chain = Vec::with_capacity(n0);
        let mut prev: Option<NodeId> = None;
        for i in 1..=n0 {
            let v = b.add_labeled_node(format!("v{i}"));
            let group = if i % 2 == 1 { &s1 } else { &s2 };
            for &u in group {
                b.add_edge(u, v);
            }
            if let Some(p) = prev {
                b.add_edge(p, v);
            }
            prev = Some(v);
            chain.push(v);
        }
        b.name(format!("zipper(d={d}, n0={n0}, damper={damper})"));
        Zipper {
            dag: b.build().expect("zipper is a DAG"),
            s1,
            s2,
            chain,
            d,
            damper,
        }
    }

    /// `Δ_in` of the gadget (`d + 1` for `n0 ≥ 2`).
    #[must_use]
    pub fn delta_in(&self) -> usize {
        self.dag.max_in_degree()
    }

    /// The paper's comfortable single-processor strategy (`r ≥ 2d + 2`
    /// plus damper workspace): compute both groups, keep them resident,
    /// walk the chain. Zero I/O.
    pub fn strategy_1proc_resident(&self, g: u64) -> Result<MppRun, MppError> {
        let r = 2 * self.d + 2;
        let inst = MppInstance::new(&self.dag, 1, r, g);
        let mut sim = MppSimulator::new(inst);
        self.compute_group(&mut sim, 0, &self.s1)?;
        self.compute_group(&mut sim, 0, &self.s2)?;
        let mut prev: Option<NodeId> = None;
        for (i, &v) in self.chain.iter().enumerate() {
            sim.compute(vec![(0, v)])?;
            if let Some(p) = prev {
                // Free the chain slot that is no longer needed (keep the
                // one just computed and the current one only).
                let _ = i;
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        sim.finish()
    }

    /// The paper's thrashing single-processor strategy for `r = d + 2`:
    /// compute and store both groups once, then per chain node evict the
    /// off group and load the on group (`d` loads ≈ `d·g` per node).
    pub fn strategy_1proc_swapping(&self, g: u64) -> Result<MppRun, MppError> {
        assert_eq!(self.damper, 0, "swapping strategy assumes no dampers");
        let r = self.d + 2;
        let inst = MppInstance::new(&self.dag, 1, r, g);
        let mut sim = MppSimulator::new(inst);
        // Compute S1, store it; compute S2, store it; keep S2 resident to
        // start from an even-favoring state, then swap per node.
        self.compute_group(&mut sim, 0, &self.s1)?;
        for &u in &self.s1 {
            sim.store(vec![(0, u)])?;
            sim.remove_red(0, u)?;
        }
        self.compute_group(&mut sim, 0, &self.s2)?;
        for &u in &self.s2 {
            sim.store(vec![(0, u)])?;
        }
        let mut resident: &Vec<NodeId> = &self.s2; // currently red group
        let mut prev: Option<NodeId> = None;
        for (i, &v) in self.chain.iter().enumerate() {
            let want: &Vec<NodeId> = if i % 2 == 0 { &self.s1 } else { &self.s2 };
            if !std::ptr::eq(resident, want) {
                for (&out, &inn) in resident.iter().zip(want) {
                    sim.remove_red(0, out)?;
                    sim.load(vec![(0, inn)])?;
                }
                resident = want;
            }
            sim.compute(vec![(0, v)])?;
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        sim.finish()
    }

    /// The paper's two-processor strategy for `r = d + 2` (§1, Lemma 10):
    /// processor 0 pins `S1` and computes odd chain nodes, processor 1
    /// pins `S2` and computes even ones; each chain value crosses via one
    /// store + one load (`2g + 1` per node).
    pub fn strategy_2proc(&self, g: u64) -> Result<MppRun, MppError> {
        assert_eq!(self.damper, 0, "2-proc strategy assumes no dampers");
        let r = self.d + 2;
        let inst = MppInstance::new(&self.dag, 2, r, g);
        let mut sim = MppSimulator::new(inst);
        // Both groups computed in parallel, element by element.
        for (&a, &b2) in self.s1.iter().zip(&self.s2) {
            sim.compute(vec![(0, a), (1, b2)])?;
        }
        let mut prev: Option<(usize, NodeId)> = None; // (owner, node)
        for (i, &v) in self.chain.iter().enumerate() {
            let p = i % 2; // owner of v
            if let Some((q, pv)) = prev {
                debug_assert_ne!(q, p);
                // Hand the previous chain value across.
                sim.store(vec![(q, pv)])?;
                sim.load(vec![(p, pv)])?;
                sim.remove_red(q, pv)?;
                sim.compute(vec![(p, v)])?;
                sim.remove_red(p, pv)?;
            } else {
                sim.compute(vec![(p, v)])?;
            }
            prev = Some((p, v));
        }
        sim.finish()
    }

    /// Computes a whole group (dampers first when present) on `proc`,
    /// leaving exactly the group's inputs red.
    fn compute_group(
        &self,
        sim: &mut MppSimulator,
        proc: usize,
        group: &[NodeId],
    ) -> Result<(), MppError> {
        let dag = &self.dag;
        for &u in group {
            // Walk the damper chain backwards to its source.
            let mut path = vec![u];
            let mut cur = u;
            while let Some(&p) = dag.preds(cur).first() {
                path.push(p);
                cur = p;
            }
            path.reverse();
            let mut prev: Option<NodeId> = None;
            for &c in &path {
                sim.compute(vec![(proc, c)])?;
                if let Some(p) = prev {
                    sim.remove_red(proc, p)?;
                }
                prev = Some(c);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::DagStats;
    use rbp_core::MppRunStats;

    #[test]
    fn shape_without_dampers() {
        let z = Zipper::build(3, 10, 0);
        let s = DagStats::compute(&z.dag);
        assert_eq!(s.n, 2 * 3 + 10);
        assert_eq!(s.max_in_degree, 4, "Δin = d + 1");
        assert_eq!(s.sources, 6);
        assert_eq!(s.sinks, 1);
        // Chain edges + group edges.
        assert_eq!(s.m, 9 + 10 * 3);
    }

    #[test]
    fn shape_with_dampers() {
        let g = 2;
        let z = Zipper::build(2, 6, 2 * g);
        let s = DagStats::compute(&z.dag);
        assert_eq!(s.n, 2 * 2 * (2 * g + 1) + 6);
        // Recomputing an input now takes 2g+1 = 5 computes.
        assert_eq!(z.damper, 4);
        assert_eq!(s.sources, 4, "one damper source per input");
    }

    #[test]
    fn resident_strategy_has_zero_io() {
        let z = Zipper::build(4, 12, 0);
        let run = z.strategy_1proc_resident(5).unwrap();
        assert_eq!(run.cost.io_steps(), 0);
        assert_eq!(run.cost.computes as usize, 2 * 4 + 12);
    }

    #[test]
    fn resident_strategy_works_with_dampers() {
        let z = Zipper::build(2, 8, 6);
        let run = z.strategy_1proc_resident(3).unwrap();
        assert_eq!(run.cost.io_steps(), 0);
        assert_eq!(run.cost.computes as usize, z.dag.n());
    }

    #[test]
    fn swapping_strategy_costs_dg_per_node() {
        let d = 4;
        let n0 = 10;
        let g = 3;
        let z = Zipper::build(d, n0, 0);
        let run = z.strategy_1proc_swapping(g).unwrap();
        // Initial: 2d stores. Then (n0 - 1) swaps of d loads each
        // (first node already has S1? No: S2 resident → n0 swaps… count
        // exactly: node 1 wants S1 → swap; node 2 wants S2 → swap; …
        // every node swaps: n0·d loads).
        assert_eq!(run.cost.stores as usize, 2 * d);
        assert_eq!(run.cost.loads as usize, n0 * d);
        assert_eq!(run.cost.computes as usize, 2 * d + n0);
        // Per-node asymptotic cost ≈ d·g + 1.
        let per_node = run.cost.total(rbp_core::CostModel::mpp(g)) as f64 / n0 as f64;
        assert!(per_node >= (d as u64 * g) as f64);
    }

    #[test]
    fn two_proc_strategy_costs_2g_per_node() {
        let d = 4;
        let n0 = 10;
        let g = 3;
        let z = Zipper::build(d, n0, 0);
        let run = z.strategy_2proc(g).unwrap();
        // Each chain node after the first: store + load.
        assert_eq!(run.cost.io_steps() as usize, 2 * (n0 - 1));
        // Groups in parallel (d steps) + chain (n0 steps).
        assert_eq!(run.cost.computes as usize, d + n0);
    }

    #[test]
    fn lemma10_superlinear_speedup_emerges() {
        // Speedup OPT(1)/OPT(2) ≈ (dg+1)/(2g+1) grows with d beyond 2.
        let n0 = 40;
        let g = 4;
        for d in [4, 8, 12] {
            let z = Zipper::build(d, n0, 0);
            let c1 = z
                .strategy_1proc_swapping(g)
                .unwrap()
                .cost
                .total(rbp_core::CostModel::mpp(g));
            let c2 = z
                .strategy_2proc(g)
                .unwrap()
                .cost
                .total(rbp_core::CostModel::mpp(g));
            let speedup = c1 as f64 / c2 as f64;
            let predicted = (d as f64 * g as f64 + 1.0) / (2.0 * g as f64 + 1.0);
            assert!(
                (speedup - predicted).abs() / predicted < 0.35,
                "d={d}: speedup {speedup:.2} vs predicted {predicted:.2}"
            );
            if d >= 8 {
                assert!(speedup > 2.0, "superlinear for k=2 at d={d}: {speedup:.2}");
            }
        }
    }

    #[test]
    fn strategies_validate_independently() {
        let z = Zipper::build(3, 8, 0);
        for (run, k, r) in [
            (z.strategy_1proc_resident(2).unwrap(), 1, 2 * 3 + 2),
            (z.strategy_1proc_swapping(2).unwrap(), 1, 3 + 2),
            (z.strategy_2proc(2).unwrap(), 2, 3 + 2),
        ] {
            let inst = MppInstance::new(&z.dag, k, r, 2);
            let cost = run.strategy.validate(&inst).unwrap();
            assert_eq!(cost, run.cost);
            let stats = MppRunStats::analyze(&inst, &run.strategy);
            assert_eq!(stats.recomputations, 0);
        }
    }
}
