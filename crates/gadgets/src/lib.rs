//! # rbp-gadgets — the paper's proof constructions, executable
//!
//! Every construction used in *Red-Blue Pebbling with Multiple
//! Processors* as a generator that returns both the DAG and, where the
//! proof describes one, the explicit pebbling strategy (validated by the
//! `rbp-core` rules engine):
//!
//! - [`zipper`] — Figure 2: input groups + main chain; the paper's three
//!   canonical strategies (resident / swapping / 2-processor) and the
//!   Lemma 10 superlinear speedup.
//! - [`rotating`] — the Lemma 8 fair-comparison construction (zipper
//!   generalized to `m` rotating groups).
//! - [`working_set`] — the maximally memory-hungry chain.
//! - [`nonmonotone`] — Lemma 9: two zippers where `OPT(2)` beats both
//!   `OPT(1)` and `OPT(4)` in the fair series.
//! - [`io_tradeoff`] — §5: the sparse ladder (I/O appears at `k = 2`)
//!   and the imbalanced pair (I/O vanishes at `k = 2`).
//! - [`levels`] — Figure 3 level gadgets / towers and their footprint
//!   algebra.
//! - [`oneshot_hardness`] — Theorem 2: the zero-cost one-shot decision
//!   reduction (layout-hardness) and its gap amplification.
//! - [`vertex_cover`] — Lemma 11 substrate: incidence DAGs + exact
//!   vertex cover for the APX-hardness experiment.
//! - [`greedy_adversarial`] — Lemma 4: the bait trap defeating the
//!   count-affinity greedy by a `Θ(g)` factor.
//! - [`hardness_simple`] — Lemma 2 instance families (2-layer DAGs,
//!   caterpillar in-trees).
//! - [`hier_cache`] — the three-level separation gadget for `rbp-hier`:
//!   a forced spill whose round-trip a cheap green mid tier absorbs.

#![warn(missing_docs)]

pub mod greedy_adversarial;
pub mod hardness_simple;
pub mod hier_cache;
pub mod io_tradeoff;
pub mod levels;
pub mod nonmonotone;
pub mod oneshot_hardness;
pub mod rotating;
pub mod vertex_cover;
pub mod working_set;
pub mod zipper;

pub use greedy_adversarial::GreedyTrap;
pub use hier_cache::HierSkip;
pub use io_tradeoff::{ImbalancedPair, SparseLadder};
pub use levels::Tower;
pub use nonmonotone::TwoZippers;
pub use oneshot_hardness::{Graph, HardnessInstance};
pub use rotating::RotatingChain;
pub use working_set::WorkingSetChain;
pub use zipper::Zipper;
