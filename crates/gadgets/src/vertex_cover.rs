//! Lemma 11 / Theorem 1 companion: vertex-cover-flavored pebbling
//! instances for the APX-hardness experiment.
//!
//! The paper's APX-hardness proof (Lemma 11) reduces vertex cover on
//! 3-regular graphs to SPP *with computation costs* via constant-size
//! node gadgets; the exact gadgets live in the full version. This module
//! provides the experiment substrate: the incidence DAG of a graph (one
//! source per vertex, one depth-1 node per edge, a fixed-order collector
//! chain) plus a brute-force minimum vertex cover, so `exp_vertex_cover`
//! can measure how the optimal pebbling cost co-varies with the cover
//! number across small 3-regular graphs — the qualitative heart of the
//! L-reduction ("a specific part of the I/O cost is proportional to the
//! size of a vertex cover").

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};

pub use crate::oneshot_hardness::Graph;

/// The incidence DAG of `graph`: vertex sources, edge nodes
/// (in-degree 2), and a collector chain consuming the edge nodes in the
/// given order so edge values die as the collector passes.
#[must_use]
pub fn incidence_dag(graph: &Graph) -> Dag {
    let mut b = DagBuilder::new();
    let vs: Vec<NodeId> = (0..graph.n)
        .map(|v| b.add_labeled_node(format!("V{v}")))
        .collect();
    let es: Vec<NodeId> = graph
        .edges
        .iter()
        .map(|&(u, v)| {
            let e = b.add_labeled_node(format!("E{u}_{v}"));
            b.add_edge(vs[u], e);
            b.add_edge(vs[v], e);
            e
        })
        .collect();
    let mut prev: Option<NodeId> = None;
    for (i, &e) in es.iter().enumerate() {
        let c = b.add_labeled_node(format!("C{i}"));
        b.add_edge(e, c);
        if let Some(p) = prev {
            b.add_edge(p, c);
        }
        prev = Some(c);
    }
    b.name(format!("incidence(n={}, m={})", graph.n, graph.edges.len()));
    b.build().expect("incidence DAG")
}

/// Brute-force minimum vertex cover size (exponential; `n ≤ 20`).
#[must_use]
pub fn min_vertex_cover(graph: &Graph) -> usize {
    let n = graph.n;
    assert!(n <= 20, "brute force; n too large");
    let mut best = n;
    for mask in 0u32..(1 << n) {
        let size = mask.count_ones() as usize;
        if size >= best {
            continue;
        }
        let covers = graph
            .edges
            .iter()
            .all(|&(u, v)| mask & (1 << u) != 0 || mask & (1 << v) != 0);
        if covers {
            best = size;
        }
    }
    best
}

/// A deterministic small 3-regular graph family for the experiment:
/// the Möbius–Kantor-style circulant `C_n(1, n/2)` (n even, n ≥ 4) —
/// every vertex has neighbours `±1` and the antipode.
#[must_use]
pub fn cubic_circulant(n: usize) -> Graph {
    assert!(n >= 4 && n.is_multiple_of(2), "need even n ≥ 4");
    let mut edges = Vec::new();
    for i in 0..n {
        edges.push((i, (i + 1) % n));
        if i < n / 2 {
            edges.push((i, i + n / 2));
        }
    }
    Graph::new(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::DagStats;

    #[test]
    fn incidence_shape() {
        let g = Graph::new(3, &[(0, 1), (1, 2), (0, 2)]);
        let d = incidence_dag(&g);
        let s = DagStats::compute(&d);
        assert_eq!(s.n, 3 + 3 + 3);
        assert_eq!(s.sources, 3);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.max_in_degree, 2);
    }

    #[test]
    fn vertex_cover_known_values() {
        let triangle = Graph::new(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(min_vertex_cover(&triangle), 2);
        let path = Graph::new(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(min_vertex_cover(&path), 2);
        let star = Graph::new(4, &[(0, 1), (0, 2), (0, 3)]);
        assert_eq!(min_vertex_cover(&star), 1);
        assert_eq!(min_vertex_cover(&Graph::new(3, &[])), 0);
    }

    #[test]
    fn cubic_circulant_is_3_regular() {
        for n in [4usize, 6, 8] {
            let g = cubic_circulant(n);
            let mut deg = vec![0usize; n];
            for &(u, v) in &g.edges {
                deg[u] += 1;
                deg[v] += 1;
            }
            assert!(deg.iter().all(|&d| d == 3), "n={n}: {deg:?}");
            assert_eq!(g.edges.len(), 3 * n / 2);
        }
    }

    #[test]
    fn pebbling_cost_rises_with_cover_number() {
        use rbp_core::{solve_spp, SolveLimits, SppInstance};
        // Same vertex set: the triangle (VC 2) strictly dominates the
        // path (VC 1 lower) in optimal pebbling cost at tight memory.
        let p3 = Graph::new(3, &[(0, 1), (1, 2)]);
        let tri = Graph::new(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(min_vertex_cover(&p3), 1);
        assert_eq!(min_vertex_cover(&tri), 2);
        let lim = SolveLimits::default();
        let g = 2;
        let r = 3;
        let cost = |gr: &Graph| {
            let d = incidence_dag(gr);
            solve_spp(&SppInstance::with_compute(&d, r, g), lim)
                .unwrap()
                .total
        };
        assert!(cost(&tri) > cost(&p3));
    }
}
