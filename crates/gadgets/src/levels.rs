//! Level gadgets and towers (Figure 3).
//!
//! A *tower* is a sequence of levels of chosen sizes; every node of level
//! `i+1` depends on every node of level `i`. In a zero-cost one-shot
//! pebbling a tower behaves like a single entity at one level at a time:
//!
//! - advancing from level `i` (size `ℓ`) to level `i+1` (size `ℓ′`)
//!   transiently needs `ℓ + ℓ′` pebbles (all of level `i` stays live
//!   until the whole of level `i+1` is computed),
//! - afterwards the footprint is `ℓ′` — levels can *grow* (5 → 7) to
//!   consume budget or *shrink* (5 → 3) to release it, exactly the
//!   mechanism the Theorem 2 construction uses to meter free pebbles.
//!
//! The announcement defers the precise level wiring to the full version;
//! we use the complete-bipartite wiring, which realizes the same
//! "one level at a time" semantics (see DESIGN.md).

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};

/// A tower: its DAG and the nodes of each level.
#[derive(Debug, Clone)]
pub struct Tower {
    /// The DAG.
    pub dag: Dag,
    /// `levels[i]` = the nodes of level `i` (level 0 = sources).
    pub levels: Vec<Vec<NodeId>>,
}

impl Tower {
    /// Builds a tower with the given level sizes.
    #[must_use]
    pub fn build(sizes: &[usize]) -> Self {
        assert!(!sizes.is_empty() && sizes.iter().all(|&s| s >= 1));
        let mut b = DagBuilder::new();
        let mut levels: Vec<Vec<NodeId>> = Vec::with_capacity(sizes.len());
        for (li, &s) in sizes.iter().enumerate() {
            let level: Vec<NodeId> = (0..s)
                .map(|i| b.add_labeled_node(format!("L{li}_{i}")))
                .collect();
            if let Some(prev) = levels.last() {
                for &p in prev {
                    for &c in &level {
                        b.add_edge(p, c);
                    }
                }
            }
            levels.push(level);
        }
        b.name(format!("tower({sizes:?})"));
        Tower {
            dag: b.build().expect("tower is a DAG"),
            levels,
        }
    }

    /// The predicted minimum peak memory of a zero-cost one-shot
    /// pebbling: `max_i (ℓ_i + min(ℓ_{i+1}, …transient))` — precisely,
    /// `max(ℓ_0, max_i (ℓ_i + ℓ_{i+1}))` except that the final level's
    /// nodes accumulate one by one on top of the previous level.
    ///
    /// For a single tower the transition peak is
    /// `max over consecutive pairs of (ℓ_i + ℓ_{i+1})`, and `ℓ_0` when
    /// the tower is a single level.
    #[must_use]
    pub fn predicted_peak(&self) -> usize {
        let sizes: Vec<usize> = self.levels.iter().map(Vec::len).collect();
        if sizes.len() == 1 {
            return sizes[0];
        }
        sizes.windows(2).map(|w| w[0] + w[1]).max().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::min_peak_memory;
    use rbp_core::zero_io_pebbling_exists;

    #[test]
    fn shape() {
        let t = Tower::build(&[5, 5]);
        assert_eq!(t.dag.n(), 10);
        assert_eq!(t.dag.m(), 25);
        assert_eq!(t.dag.max_in_degree(), 5);
    }

    #[test]
    fn fig3_level_transitions_match_prediction() {
        // The three Figure 3 shapes: 5→5, 5→7, 5→3.
        for sizes in [vec![5, 5], vec![5, 7], vec![5, 3]] {
            let t = Tower::build(&sizes);
            let peak = min_peak_memory(&t.dag, 64).unwrap();
            assert_eq!(peak, t.predicted_peak(), "{sizes:?}");
        }
    }

    #[test]
    fn multi_level_tower_peak_is_max_consecutive_pair() {
        for sizes in [vec![1, 4, 2, 3], vec![2, 2, 2], vec![3, 1, 5, 1]] {
            let t = Tower::build(&sizes);
            let peak = min_peak_memory(&t.dag, 64).unwrap();
            assert_eq!(peak, t.predicted_peak(), "{sizes:?}");
        }
    }

    #[test]
    fn single_level_tower() {
        let t = Tower::build(&[4]);
        assert_eq!(min_peak_memory(&t.dag, 64), Some(4));
        assert_eq!(t.predicted_peak(), 4);
    }

    #[test]
    fn budget_threshold_is_sharp() {
        let t = Tower::build(&[4, 3, 2]);
        let peak = t.predicted_peak(); // 7
        assert_eq!(zero_io_pebbling_exists(&t.dag, peak), Some(true));
        assert_eq!(zero_io_pebbling_exists(&t.dag, peak - 1), Some(false));
    }

    #[test]
    fn shrinking_levels_release_budget() {
        // A tower that shrinks: after the 5→3 transition the footprint
        // is only 3, so a second tower can use the released budget.
        let t = Tower::build(&[5, 3, 1]);
        assert_eq!(t.predicted_peak(), 8);
        assert_eq!(min_peak_memory(&t.dag, 64), Some(8));
    }
}
