//! Working-set chain: the maximally memory-hungry sequential workload.
//!
//! `w` source nodes form a working set `W`; a main chain of `n0` nodes
//! each reads **all** of `W` plus the previous chain node, so
//! `Δ_in = w + 1` and any valid pebbling needs `r ≥ w + 2`. At exactly
//! `r = w + 2` the working set stays resident and the chain is I/O-free
//! (`strategy_resident`); `strategy_pinned` models richer surroundings
//! where only part of `W` can stay resident between nodes and the rest
//! must be reloaded every node (cost `≈ (w − pin)·g + 1` per node).
//!
//! For the paper's *fair comparison* (Lemma 8), where the per-processor
//! memory shrinks below `Δ_in + 1`, see
//! [`rotating`](crate::rotating::RotatingChain) — there the in-degree
//! stays small while the *effective* working set stays large, so reduced
//! memory degrades cost instead of killing feasibility.

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};
use rbp_core::{MppError, MppInstance, MppRun, MppSimulator};

/// A generated working-set chain.
#[derive(Debug, Clone)]
pub struct WorkingSetChain {
    /// The DAG.
    pub dag: Dag,
    /// The working set `W` (sources).
    pub w_set: Vec<NodeId>,
    /// The main chain.
    pub chain: Vec<NodeId>,
    /// `|W|`.
    pub w: usize,
}

impl WorkingSetChain {
    /// Builds the gadget with `|W| = w` and a chain of `n0` nodes.
    #[must_use]
    pub fn build(w: usize, n0: usize) -> Self {
        assert!(w >= 1 && n0 >= 1);
        let mut b = DagBuilder::new();
        let w_set: Vec<NodeId> = (0..w)
            .map(|i| b.add_labeled_node(format!("w{i}")))
            .collect();
        let mut chain = Vec::with_capacity(n0);
        let mut prev: Option<NodeId> = None;
        for i in 1..=n0 {
            let v = b.add_labeled_node(format!("v{i}"));
            for &u in &w_set {
                b.add_edge(u, v);
            }
            if let Some(p) = prev {
                b.add_edge(p, v);
            }
            prev = Some(v);
            chain.push(v);
        }
        b.name(format!("working_set_chain(w={w}, n0={n0})"));
        WorkingSetChain {
            dag: b.build().expect("working-set chain is a DAG"),
            w_set,
            chain,
            w,
        }
    }

    /// The comfortable memory size: `w + 2`.
    #[must_use]
    pub fn resident_r(&self) -> usize {
        self.w + 2
    }

    /// Single processor, `r = w + 2`: working set stays resident, zero
    /// I/O, cost `n`.
    pub fn strategy_resident(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 1, self.resident_r(), g);
        let mut sim = MppSimulator::new(inst);
        for &u in &self.w_set {
            sim.compute(vec![(0, u)])?;
        }
        let mut prev: Option<NodeId> = None;
        for &v in &self.chain {
            sim.compute(vec![(0, v)])?;
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        sim.finish()
    }

    /// Single processor, `r = w + 2`, but with only `pin ≤ w` working-set
    /// values kept resident *between* chain nodes: the other `w − pin`
    /// are stored once and reloaded for every node (cost
    /// `≈ (w − pin)·g + 1` per node). Models surroundings where part of
    /// the fast memory is owed to other state.
    pub fn strategy_pinned(&self, g: u64, pin: usize) -> Result<MppRun, MppError> {
        assert!(pin <= self.w);
        let inst = MppInstance::new(&self.dag, 1, self.resident_r(), g);
        let mut sim = MppSimulator::new(inst);
        // Compute all of W once and store the un-pinned part.
        for &u in &self.w_set {
            sim.compute(vec![(0, u)])?;
        }
        let (pinned, floating) = self.w_set.split_at(pin);
        let _ = pinned;
        for &u in floating {
            sim.store(vec![(0, u)])?;
            sim.remove_red(0, u)?;
        }
        let mut prev: Option<NodeId> = None;
        for &v in &self.chain {
            // Load floating values, compute, evict them again.
            for &u in floating {
                sim.load(vec![(0, u)])?;
            }
            sim.compute(vec![(0, v)])?;
            for &u in floating {
                sim.remove_red(0, u)?;
            }
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::DagStats;
    use rbp_core::CostModel;

    #[test]
    fn shape() {
        let ws = WorkingSetChain::build(4, 10);
        let s = DagStats::compute(&ws.dag);
        assert_eq!(s.n, 14);
        assert_eq!(s.max_in_degree, 5);
        assert_eq!(s.sources, 4);
        assert_eq!(s.sinks, 1);
        assert_eq!(s.m, 4 * 10 + 9);
    }

    #[test]
    fn resident_strategy_is_io_free() {
        let ws = WorkingSetChain::build(5, 20);
        let run = ws.strategy_resident(7).unwrap();
        assert_eq!(run.cost.io_steps(), 0);
        assert_eq!(run.cost.computes as usize, 25);
    }

    #[test]
    fn pinned_strategy_pays_per_missing_value() {
        let w = 6;
        let n0 = 10;
        let g = 3;
        let ws = WorkingSetChain::build(w, n0);
        for pin in [0, 2, 4, 6] {
            let run = ws.strategy_pinned(g, pin).unwrap();
            let missing = (w - pin) as u64;
            assert_eq!(run.cost.loads, missing * n0 as u64, "pin={pin}");
            assert_eq!(run.cost.stores, missing, "pin={pin}");
            // Per-node cost ≈ missing·g + 1.
            let per_node = run.cost.total(CostModel::mpp(g)) as f64 / n0 as f64;
            assert!(per_node >= (missing * g) as f64, "pin={pin}");
        }
    }

    #[test]
    fn pinned_with_full_pin_equals_resident_plus_nothing() {
        let ws = WorkingSetChain::build(3, 8);
        let run = ws.strategy_pinned(2, 3).unwrap();
        assert_eq!(run.cost.io_steps(), 0);
    }

    #[test]
    fn strategies_validate() {
        let ws = WorkingSetChain::build(4, 6);
        let inst = MppInstance::new(&ws.dag, 1, ws.resident_r(), 2);
        for run in [
            ws.strategy_resident(2).unwrap(),
            ws.strategy_pinned(2, 1).unwrap(),
        ] {
            assert_eq!(run.strategy.validate(&inst).unwrap(), run.cost);
        }
    }
}
