//! The hierarchy-separation gadget: a forced spill that a cheap mid
//! tier absorbs.
//!
//! Two *triangle-capped chains* joined at a sink. Each part is a prefix
//! chain `p0 → … → p_{c-1}` capped by a triangle: `u` reads `p_{c-1}`,
//! and the part's output `w` reads both `p_{c-1}` and `u`. The sink `t`
//! reads the two outputs `w_A`, `w_B`.
//!
//! At `k = 1` and the minimum feasible memory `r = 3` (`Δ_in = 2`),
//! computing a triangle's `w` needs all three red slots (`p_{c-1}`,
//! `u`, `w`). Whichever part finishes second therefore forces the other
//! part's live output out of fast memory — and recomputing it instead
//! hits the same three-slot wall, so in the two-level game the spill
//! must round-trip through blue: `OPT = n + 2g`. A three-level
//! hierarchy with even a single green slot (`green_cap ≥ 1`) parks the
//! output in the mid tier instead: `OPT = n + 2·green`. The separation
//! `2(g − green)` is exactly the cost gap between the memory levels,
//! which is what experiment E22 measures with both exact solvers.

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};
use rbp_core::{MppError, MppInstance, MppRun, MppSimulator};

/// A generated hierarchy-separation gadget.
#[derive(Debug, Clone)]
pub struct HierSkip {
    /// The DAG (`n = 2c + 5` nodes).
    pub dag: Dag,
    /// Output `w_A` of the first part.
    pub out_a: NodeId,
    /// Output `w_B` of the second part.
    pub out_b: NodeId,
    /// The sink `t`.
    pub sink: NodeId,
    /// Prefix chain length of each part.
    pub c: usize,
    /// Nodes of part A in topological order (`p0..p_{c-1}, u, w`).
    pub part_a: Vec<NodeId>,
    /// Nodes of part B in topological order.
    pub part_b: Vec<NodeId>,
}

impl HierSkip {
    /// Builds the gadget with prefix chains of length `c ≥ 1`.
    #[must_use]
    pub fn build(c: usize) -> Self {
        assert!(c >= 1, "prefix chain must be non-empty");
        let mut b = DagBuilder::new();
        let part = |b: &mut DagBuilder, tag: &str| -> Vec<NodeId> {
            let mut nodes = Vec::with_capacity(c + 2);
            let mut prev: Option<NodeId> = None;
            for i in 0..c {
                let p = b.add_labeled_node(format!("{tag}p{i}"));
                if let Some(q) = prev {
                    b.add_edge(q, p);
                }
                prev = Some(p);
                nodes.push(p);
            }
            let last = prev.expect("c >= 1");
            let u = b.add_labeled_node(format!("{tag}u"));
            b.add_edge(last, u);
            let w = b.add_labeled_node(format!("{tag}w"));
            b.add_edge(last, w);
            b.add_edge(u, w);
            nodes.push(u);
            nodes.push(w);
            nodes
        };
        let part_a = part(&mut b, "a");
        let part_b = part(&mut b, "b");
        let (out_a, out_b) = (part_a[c + 1], part_b[c + 1]);
        let sink = b.add_labeled_node("t");
        b.add_edge(out_a, sink);
        b.add_edge(out_b, sink);
        b.name(format!("hier_skip(c={c})"));
        HierSkip {
            dag: b.build().expect("hier_skip is a DAG"),
            out_a,
            out_b,
            sink,
            c,
            part_a,
            part_b,
        }
    }

    /// Number of nodes, `2c + 5`.
    #[must_use]
    pub fn n(&self) -> usize {
        2 * self.c + 5
    }

    /// The minimum feasible memory, `Δ_in + 1 = 3` — the regime where
    /// the separation appears.
    #[must_use]
    pub fn tight_r(&self) -> usize {
        3
    }

    /// The conjectured two-level optimum at `k = 1`, `r = 3`:
    /// `n + 2g` (one forced blue round-trip). Certified as an upper
    /// bound by [`strategy_spill`](Self::strategy_spill) and confirmed
    /// exactly by the solver cross-checks in `rbp-hier` and E22.
    #[must_use]
    pub fn vanilla_total(&self, g: u64) -> u64 {
        self.n() as u64 + 2 * g
    }

    /// The conjectured three-level optimum at `k = 1`, `r = 3`,
    /// `green_cap ≥ 1`, `green ≤ g`: `n + 2·green` (the round-trip
    /// rides the mid tier).
    #[must_use]
    pub fn hier_total(&self, green: u64) -> u64 {
        self.n() as u64 + 2 * green
    }

    /// The explicit two-level witness achieving `n + 2g` at `k = 1`,
    /// `r = 3`: part A, spill `w_A` to blue, part B, reload, sink.
    pub fn strategy_spill(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 1, self.tight_r(), g);
        let mut sim = MppSimulator::new(inst);
        let run_part = |sim: &mut MppSimulator, nodes: &[NodeId]| -> Result<(), MppError> {
            // Chain: keep only the newest value red.
            let mut prev: Option<NodeId> = None;
            for &p in &nodes[..self.c] {
                sim.compute(vec![(0, p)])?;
                if let Some(q) = prev {
                    sim.remove_red(0, q)?;
                }
                prev = Some(p);
            }
            let last = nodes[self.c - 1];
            let (u, w) = (nodes[self.c], nodes[self.c + 1]);
            sim.compute(vec![(0, u)])?; // {last, u}
            sim.compute(vec![(0, w)])?; // {last, u, w} — all three slots
            sim.remove_red(0, last)?;
            sim.remove_red(0, u)?;
            Ok(())
        };
        run_part(&mut sim, &self.part_a)?; // red: {w_A}
        sim.store(vec![(0, self.out_a)])?; // the forced spill
        sim.remove_red(0, self.out_a)?;
        run_part(&mut sim, &self.part_b)?; // red: {w_B}
        sim.load(vec![(0, self.out_a)])?; // red: {w_B, w_A}
        sim.compute(vec![(0, self.sink)])?;
        sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_and_degrees() {
        for c in [1usize, 2, 4] {
            let gadget = HierSkip::build(c);
            assert_eq!(gadget.dag.n(), 2 * c + 5);
            assert_eq!(gadget.dag.max_in_degree(), 2);
            assert_eq!(gadget.dag.sinks(), vec![gadget.sink]);
            assert_eq!(gadget.dag.preds(gadget.sink), &[gadget.out_a, gadget.out_b]);
        }
    }

    #[test]
    fn spill_witness_matches_closed_form() {
        for (c, g) in [(1usize, 3u64), (2, 5), (3, 2)] {
            let gadget = HierSkip::build(c);
            let run = gadget.strategy_spill(g).unwrap();
            assert_eq!(
                run.cost.total(rbp_core::CostModel::mpp(g)),
                gadget.vanilla_total(g),
                "c={c} g={g}"
            );
            assert_eq!(run.cost.io_steps(), 2);
        }
    }

    #[test]
    fn two_level_optimum_is_the_spill_cost() {
        // The exact solver agrees with the closed form at small sizes:
        // the blue round-trip is unavoidable in the two-level game.
        let gadget = HierSkip::build(1);
        let inst = MppInstance::new(&gadget.dag, 1, 3, 3);
        let sol = rbp_core::solve_mpp(&inst, rbp_core::SolveLimits::states(2_000_000)).unwrap();
        assert_eq!(sol.total, gadget.vanilla_total(3));
    }
}
