//! Adversarial DAGs for the greedy class (Lemma 4).
//!
//! Lemma 4 shows DAGs on which *any* affinity-greedy pebbling loses a
//! `Θ(Δ_in)` or `Θ(g)` factor against the optimum. We implement the
//! `Θ(g)` *bait trap*: `W` bait nodes read the whole resident group `A`,
//! but their consumers `f_j` are chained behind the end of the real
//! chain. After the chain finishes, every greedy in the class prefers
//! the high-affinity baits (d red inputs each) over the next consumer
//! `f_j` (1–2 red inputs), so all `W` baits are computed before any can
//! be consumed — they overflow fast memory and each one costs a spill
//! plus a reload, `≈ 2g` extra per bait. The optimum interleaves
//! bait/consumer pairs so every bait dies immediately: zero I/O.
//!
//! The trap defeats every configuration in `rbp-schedulers`' greedy
//! class (count and fraction affinity, all tie-breaks and eviction
//! policies — see `exp_greedy`), realizing the `Θ(g)` separation of
//! Lemma 4's second bullet. The stronger `Δ_in/5 − 1` construction of
//! the first bullet relies on gadgets in the paper's full version.

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};
use rbp_core::{MppError, MppInstance, MppRun, MppSimulator};

/// The bait-trap instance.
#[derive(Debug, Clone)]
pub struct GreedyTrap {
    /// The DAG.
    pub dag: Dag,
    /// Shared source group `A` (size `d`).
    pub group: Vec<NodeId>,
    /// The real chain (first node reads `d − 1` of `A`, later ones also
    /// the previous chain node).
    pub chain: Vec<NodeId>,
    /// The baits (each reads all of `A`).
    pub baits: Vec<NodeId>,
    /// Consumers: `f_j` reads `bait_j` and the previous consumer (the
    /// first reads the chain end), so baits die only after the chain.
    pub consumers: Vec<NodeId>,
    /// Group size `d`.
    pub d: usize,
}

impl GreedyTrap {
    /// Builds the trap with group size `d ≥ 2`, chain length `len`, and
    /// `w` baits. Fast memory `r = d + 2` fits the group, one chain/bait
    /// slot and one consumer slot.
    #[must_use]
    pub fn build(d: usize, len: usize, w: usize) -> Self {
        assert!(d >= 2 && len >= 1 && w >= 1);
        let mut b = DagBuilder::new();
        let group: Vec<NodeId> = (0..d)
            .map(|i| b.add_labeled_node(format!("A{i}")))
            .collect();
        let mut chain = Vec::with_capacity(len);
        let mut prev: Option<NodeId> = None;
        for i in 0..len {
            let c = b.add_labeled_node(format!("c{i}"));
            for &a in &group[..d - 1] {
                b.add_edge(a, c);
            }
            if let Some(p) = prev {
                b.add_edge(p, c);
            }
            prev = Some(c);
            chain.push(c);
        }
        let baits: Vec<NodeId> = (0..w)
            .map(|j| {
                let t = b.add_labeled_node(format!("bait{j}"));
                for &a in &group {
                    b.add_edge(a, t);
                }
                t
            })
            .collect();
        let mut consumers = Vec::with_capacity(w);
        let mut prev = *chain.last().expect("len >= 1");
        for (j, &t) in baits.iter().enumerate() {
            let f = b.add_labeled_node(format!("f{j}"));
            b.add_edge(t, f);
            b.add_edge(prev, f);
            prev = f;
            consumers.push(f);
        }
        b.name(format!("greedy_trap(d={d}, len={len}, w={w})"));
        GreedyTrap {
            dag: b.build().expect("trap is a DAG"),
            group,
            chain,
            baits,
            consumers,
            d,
        }
    }

    /// The intended memory: `r = d + 2`.
    #[must_use]
    pub fn r(&self) -> usize {
        self.d + 2
    }

    /// The optimal play: group, chain, then bait/consumer pairs — each
    /// bait dies immediately. Zero I/O.
    pub fn strategy_optimal(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 1, self.r(), g);
        let mut sim = MppSimulator::new(inst);
        for &a in &self.group {
            sim.compute(vec![(0, a)])?;
        }
        let mut prev: Option<NodeId> = None;
        for &c in &self.chain {
            sim.compute(vec![(0, c)])?;
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(c);
        }
        let mut carry = prev.expect("chain nonempty");
        for (j, (&t, &f)) in self.baits.iter().zip(&self.consumers).enumerate() {
            sim.compute(vec![(0, t)])?;
            // Memory: group d + carry + t = d + 2 = r; computing f needs
            // one more slot — drop a group value no longer needed? The
            // group is still needed by later baits, so spill nothing:
            // instead note f's preds are only {t, carry}: drop one group
            // value... it IS needed later. Use the free slot trick: the
            // chain's last node `carry` is consumed by f — compute f by
            // first dropping the group value only when this is the last
            // bait; otherwise temporarily drop + recompute? No: keep the
            // accounting honest by removing `carry` after f, and making
            // room for f by dropping the *oldest* group value only at
            // the final bait. Simplest valid plan: drop one group source
            // and recompute it right after (sources are free to
            // recompute at cost 1, cheaper than any I/O).
            let victim = self.group[j % self.d];
            sim.remove_red(0, victim)?;
            sim.compute(vec![(0, f)])?;
            sim.remove_red(0, t)?;
            sim.remove_red(0, carry)?;
            carry = f;
            if j + 1 < self.baits.len() {
                sim.compute(vec![(0, victim)])?;
            }
        }
        sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::CostModel;
    use rbp_schedulers::{Greedy, GreedyConfig, MppScheduler};

    #[test]
    fn shape() {
        let t = GreedyTrap::build(3, 5, 4);
        assert_eq!(t.dag.n(), 3 + 5 + 4 + 4);
        assert_eq!(t.dag.max_in_degree(), 3);
        assert_eq!(t.dag.sinks().len(), 1);
    }

    #[test]
    fn optimal_strategy_is_io_free() {
        let t = GreedyTrap::build(4, 6, 5);
        let run = t.strategy_optimal(3).unwrap();
        assert_eq!(run.cost.io_steps(), 0);
        let inst = MppInstance::new(&t.dag, 1, t.r(), 3);
        assert_eq!(run.strategy.validate(&inst).unwrap(), run.cost);
    }

    #[test]
    fn count_greedy_falls_for_the_bait() {
        let g = 4;
        let t = GreedyTrap::build(4, 10, 8);
        let inst = MppInstance::new(&t.dag, 1, t.r(), g);
        let greedy = Greedy::new(GreedyConfig::default())
            .schedule(&inst)
            .unwrap();
        let opt = t.strategy_optimal(g).unwrap();
        let model = CostModel::mpp(g);
        assert!(greedy.cost.io_steps() > 0, "greedy must thrash");
        assert!(
            greedy.cost.total(model) > opt.cost.total(model),
            "greedy {} vs opt {}",
            greedy.cost.total(model),
            opt.cost.total(model)
        );
    }

    #[test]
    fn greedy_gap_grows_with_g() {
        // The Lemma 4 Θ(g) separation: the trap's greedy/OPT ratio grows
        // linearly in g.
        let t = GreedyTrap::build(4, 10, 12);
        let mut prev_ratio = 0.0;
        for g in [2u64, 6, 12] {
            let inst = MppInstance::new(&t.dag, 1, t.r(), g);
            let greedy = Greedy::new(GreedyConfig::default())
                .schedule(&inst)
                .unwrap();
            let opt = t.strategy_optimal(g).unwrap();
            let model = CostModel::mpp(g);
            let ratio = greedy.cost.total(model) as f64 / opt.cost.total(model) as f64;
            assert!(ratio > prev_ratio, "g={g}: ratio {ratio:.2}");
            prev_ratio = ratio;
        }
        assert!(prev_ratio > 1.5, "final ratio {prev_ratio:.2}");
    }
}
