//! Lemma 2 instance families: MPP is NP-hard already on 2-layer DAGs and
//! on in-trees.
//!
//! The hardness proofs adapt BSP-scheduling reductions from
//! Papp–Anegg–Yzelman; the families below are the *instance shapes* those
//! reductions emit, exposed as generators so experiments can probe how
//! optimal cost reacts to the embedded combinatorial structure
//! (partition balance for 2-layer DAGs, chain lengths for in-trees) and
//! how far heuristics drift from the exact optimum on them.

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};

/// A 2-layer (depth-1) DAG encoding a multiway-partition flavor: sink
/// `j` consumes a contiguous run of sources whose lengths are the
/// `items`; balancing sink work across processors is the scheduling
/// decision the Lemma 2 reduction makes NP-hard.
///
/// Sources are shared between neighbouring sinks (the last source of
/// run `j` is also the first of run `j+1`), which is what couples the
/// assignment decisions.
#[must_use]
pub fn two_layer_partition(items: &[usize]) -> Dag {
    assert!(!items.is_empty() && items.iter().all(|&s| s >= 1));
    let mut b = DagBuilder::new();
    // Run j has items[j] + 1 sources, overlapping the next run by one:
    // total = Σ items + 1.
    let total: usize = items.iter().sum::<usize>() + 1;
    let sources: Vec<NodeId> = (0..total)
        .map(|i| b.add_labeled_node(format!("s{i}")))
        .collect();
    let mut start = 0usize;
    for (j, &len) in items.iter().enumerate() {
        let sink = b.add_labeled_node(format!("t{j}"));
        for &s in &sources[start..start + len + 1] {
            b.add_edge(s, sink);
        }
        start += len;
    }
    b.name(format!("two_layer_partition({items:?})"));
    b.build().expect("2-layer DAG")
}

/// A caterpillar in-tree: a spine of length `spine`, where spine node
/// `i` additionally absorbs `legs[i % legs.len()]` leaf sources. Every
/// out-degree is ≤ 1 (the in-tree condition of Lemma 2).
#[must_use]
pub fn caterpillar_in_tree(spine: usize, legs: &[usize]) -> Dag {
    assert!(spine >= 1 && !legs.is_empty());
    let mut b = DagBuilder::new();
    let mut prev: Option<NodeId> = None;
    for i in 0..spine {
        let s = b.add_labeled_node(format!("sp{i}"));
        for l in 0..legs[i % legs.len()] {
            let leaf = b.add_labeled_node(format!("leaf{i}_{l}"));
            b.add_edge(leaf, s);
        }
        if let Some(p) = prev {
            b.add_edge(p, s);
        }
        prev = Some(s);
    }
    b.name(format!("caterpillar_in_tree(spine={spine}, legs={legs:?})"));
    b.build().expect("in-tree")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::DagStats;
    use rbp_core::{solve_mpp, MppInstance, SolveLimits};

    #[test]
    fn two_layer_shape() {
        let d = two_layer_partition(&[2, 3, 2]);
        let s = DagStats::compute(&d);
        assert_eq!(s.depth, 2, "2-layer = longest path length 1");
        assert_eq!(s.sinks, 3);
        assert_eq!(s.sources, 2 + 3 + 2 + 1);
        // In-degrees are item length + 1.
        assert_eq!(s.max_in_degree, 4);
    }

    #[test]
    fn caterpillar_is_an_in_tree() {
        let d = caterpillar_in_tree(5, &[2, 3]);
        assert!(d.nodes().all(|v| d.out_degree(v) <= 1), "in-tree condition");
        assert_eq!(DagStats::compute(&d).sinks, 1);
    }

    #[test]
    fn two_layer_exact_optimum_prefers_shared_sources_on_one_proc() {
        // Tiny instance: two sinks sharing one source. Exact OPT on k=2
        // vs k=1: the shared source forces either communication or
        // recomputation; the solver decides which is cheaper.
        let d = two_layer_partition(&[1, 1]);
        // 3 sources; runs: sink0 ← {s0, s1}, sink1 ← {s1, s2}.
        let lim = SolveLimits::states(300_000);
        let o1 = solve_mpp(&MppInstance::new(&d, 1, 3, 3), lim).unwrap();
        let o2 = solve_mpp(&MppInstance::new(&d, 2, 3, 3), lim).unwrap();
        assert!(o2.total <= o1.total, "more processors never hurt");
        // k=1, r=3: no zero-I/O order exists (holding one finished sink
        // plus the other sink's two inputs overflows), so OPT(1) pays one
        // store: 5 computes + g. k=2: both sinks in parallel, the shared
        // source recomputed on the second shade (cost 1 < g): 3 batched
        // compute steps, zero I/O.
        assert_eq!(o1.total, 5 + 3);
        assert_eq!(o2.total, 3);
    }

    #[test]
    fn caterpillar_exact_vs_memory() {
        // Spine node i ≥ 1 has in-degree legs + 1 (its leaves plus the
        // previous spine value), so Δin = 2 with one leg per spine node:
        // r = 4 is roomy (I/O-free), r = 3 is the feasibility minimum.
        let d = caterpillar_in_tree(3, &[1]);
        let lim = SolveLimits::default();
        let roomy = solve_mpp(&MppInstance::new(&d, 1, 4, 5), lim).unwrap();
        assert_eq!(roomy.cost.io_steps(), 0);
        let tight = solve_mpp(&MppInstance::new(&d, 1, 3, 5), lim).unwrap();
        assert!(tight.total >= roomy.total);
    }
}
