//! Rotating-groups chain: the Lemma 8 fair-comparison construction.
//!
//! The working set `W` is split into `m` groups of `c` source nodes;
//! chain node `v_i` reads group `i mod m` plus `v_{i−1}`, so
//! `Δ_in = c + 1` stays small while the *effective* working set is the
//! whole `W` (`m·c` values cycle through every window of `m` nodes).
//! The zipper (Figure 2) is the special case `m = 2`.
//!
//! - One processor with `r0 = m·c + 2` keeps all groups resident: zero
//!   I/O, cost `n`.
//! - In the **fair comparison**, `k` processors get `r = r0/k` each:
//!   extra processors cannot accelerate the sequential chain, and a
//!   processor can pin only `≈ r0/k − 2 ≈ m·c/k` values, so per chain
//!   node `≈ c·(k−1)/k` group values must be reloaded:
//!   cost/node `≈ (k−1)/k · g · c + 1 = (k−1)/k · g · (Δ_in − 1) + 1` —
//!   exactly the Lemma 8 ratio against `OPT^(1) = n`.

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};
use rbp_core::{MppError, MppInstance, MppRun, MppSimulator};

/// A generated rotating-groups chain.
#[derive(Debug, Clone)]
pub struct RotatingChain {
    /// The DAG.
    pub dag: Dag,
    /// The `m` groups, each of `c` source nodes.
    pub groups: Vec<Vec<NodeId>>,
    /// The main chain.
    pub chain: Vec<NodeId>,
    /// Group size `c` (`Δ_in = c + 1`).
    pub c: usize,
}

impl RotatingChain {
    /// Builds the gadget with `m` groups of `c` sources and a chain of
    /// `n0` nodes.
    #[must_use]
    pub fn build(m: usize, c: usize, n0: usize) -> Self {
        assert!(m >= 2 && c >= 1 && n0 >= 1);
        let mut b = DagBuilder::new();
        let groups: Vec<Vec<NodeId>> = (0..m)
            .map(|gidx| {
                (0..c)
                    .map(|i| b.add_labeled_node(format!("g{gidx}_{i}")))
                    .collect()
            })
            .collect();
        let mut chain = Vec::with_capacity(n0);
        let mut prev: Option<NodeId> = None;
        for i in 0..n0 {
            let v = b.add_labeled_node(format!("v{}", i + 1));
            for &u in &groups[i % m] {
                b.add_edge(u, v);
            }
            if let Some(p) = prev {
                b.add_edge(p, v);
            }
            prev = Some(v);
            chain.push(v);
        }
        b.name(format!("rotating_chain(m={m}, c={c}, n0={n0})"));
        RotatingChain {
            dag: b.build().expect("rotating chain is a DAG"),
            groups,
            chain,
            c,
        }
    }

    /// The comfortable memory size `r0 = m·c + 2`.
    #[must_use]
    pub fn resident_r(&self) -> usize {
        self.groups.len() * self.c + 2
    }

    /// One processor with `r0`: everything resident, zero I/O.
    pub fn strategy_resident(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 1, self.resident_r(), g);
        let mut sim = MppSimulator::new(inst);
        for grp in &self.groups {
            for &u in grp {
                sim.compute(vec![(0, u)])?;
            }
        }
        let mut prev: Option<NodeId> = None;
        for &v in &self.chain {
            sim.compute(vec![(0, v)])?;
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        sim.finish()
    }

    /// The fair-split strategy: one processor with `r = r0/k` (the other
    /// `k−1` processors cannot help the sequential chain). Pins whole
    /// groups while they fit and reloads the active group's missing
    /// values per node.
    ///
    /// `r_small` must satisfy `c + 2 ≤ r_small` (feasibility).
    pub fn strategy_fair_split(&self, g: u64, r_small: usize) -> Result<MppRun, MppError> {
        assert!(r_small >= self.c + 2, "infeasible split");
        let m = self.groups.len();
        let inst = MppInstance::new(&self.dag, 1, r_small, g);
        let mut sim = MppSimulator::new(inst);
        // How many whole groups can stay pinned? If everything fits, pin
        // all of them (no staging area needed); otherwise reserve a
        // c-slot staging area for the active floating group.
        let pinned_groups = if (r_small - 2) / self.c >= m {
            m
        } else {
            (r_small - 2).saturating_sub(self.c) / self.c
        };
        // Compute pinned groups and keep them.
        for grp in &self.groups[..pinned_groups] {
            for &u in grp {
                sim.compute(vec![(0, u)])?;
            }
        }
        // Compute floating groups, store them, drop them.
        for grp in &self.groups[pinned_groups..] {
            for &u in grp {
                sim.compute(vec![(0, u)])?;
                sim.store(vec![(0, u)])?;
                sim.remove_red(0, u)?;
            }
        }
        let mut staged: Option<usize> = None; // floating group currently red
        let mut prev: Option<NodeId> = None;
        for (i, &v) in self.chain.iter().enumerate() {
            let gi = i % m;
            if gi >= pinned_groups && staged != Some(gi) {
                // Swap the staged floating group for the needed one.
                if let Some(old) = staged {
                    for &u in &self.groups[old] {
                        sim.remove_red(0, u)?;
                    }
                }
                for &u in &self.groups[gi] {
                    sim.load(vec![(0, u)])?;
                }
                staged = Some(gi);
            }
            sim.compute(vec![(0, v)])?;
            if let Some(p) = prev {
                sim.remove_red(0, p)?;
            }
            prev = Some(v);
        }
        sim.finish()
    }

    /// Predicted asymptotic per-node cost of [`Self::strategy_fair_split`]:
    /// fraction of groups not pinned × `c` loads × `g`, plus the compute.
    #[must_use]
    pub fn predicted_fair_cost_per_node(&self, g: u64, r_small: usize) -> f64 {
        let m = self.groups.len();
        let pinned = if (r_small - 2) / self.c >= m {
            m
        } else {
            (r_small - 2).saturating_sub(self.c) / self.c
        };
        let miss_fraction = (m - pinned) as f64 / m as f64;
        miss_fraction * (self.c as u64 * g) as f64 + 1.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::DagStats;
    use rbp_core::CostModel;

    #[test]
    fn shape() {
        let rc = RotatingChain::build(4, 3, 12);
        let s = DagStats::compute(&rc.dag);
        assert_eq!(s.n, 4 * 3 + 12);
        assert_eq!(s.max_in_degree, 4, "Δin = c + 1");
        assert_eq!(s.sources, 12);
        assert_eq!(s.sinks, 1);
    }

    #[test]
    fn zipper_is_the_m2_case() {
        let rc = RotatingChain::build(2, 3, 10);
        let z = crate::zipper::Zipper::build(3, 10, 0);
        assert_eq!(rc.dag.n(), z.dag.n());
        assert_eq!(rc.dag.m(), z.dag.m());
    }

    #[test]
    fn resident_is_io_free() {
        let rc = RotatingChain::build(3, 4, 15);
        let run = rc.strategy_resident(5).unwrap();
        assert_eq!(run.cost.io_steps(), 0);
        assert_eq!(run.cost.computes as usize, rc.dag.n());
    }

    #[test]
    fn fair_split_cost_tracks_lemma8_prediction() {
        // m=4 groups of c=4: r0 = 18. Fair split over k=2 → r=9
        // (pins 1 group + stages 1), k=4 → r=4+2=6? 6 ≥ c+2=6 ✓ pins 0.
        let m = 4;
        let c = 4;
        let n0 = 40;
        let g = 5;
        let rc = RotatingChain::build(m, c, n0);
        let r0 = rc.resident_r();
        assert_eq!(r0, 18);
        for k in [2usize, 3] {
            let r_small = r0 / k;
            let run = rc.strategy_fair_split(g, r_small).unwrap();
            let per_node = run.cost.total(CostModel::mpp(g)) as f64 / n0 as f64;
            let predicted = rc.predicted_fair_cost_per_node(g, r_small);
            assert!(
                (per_node - predicted).abs() / predicted < 0.45,
                "k={k}: per-node {per_node:.2} vs predicted {predicted:.2}"
            );
            // The Lemma 8 lower-bound shape: ratio ≥ (k−1)/k·g·(Δin−1)·α
            // for a constant α (here the achievable constant is c·g·(m−pin)/m).
            assert!(per_node > 1.0, "fair split must cost I/O");
        }
    }

    #[test]
    fn fair_split_with_full_memory_is_io_free() {
        let rc = RotatingChain::build(3, 2, 10);
        let run = rc.strategy_fair_split(4, rc.resident_r()).unwrap();
        assert_eq!(run.cost.io_steps(), 0);
    }

    #[test]
    #[should_panic(expected = "infeasible split")]
    fn too_small_split_rejected() {
        let rc = RotatingChain::build(3, 4, 5);
        let _ = rc.strategy_fair_split(2, 5);
    }

    #[test]
    fn strategies_validate() {
        let rc = RotatingChain::build(3, 3, 8);
        let resident = rc.strategy_resident(2).unwrap();
        let inst = MppInstance::new(&rc.dag, 1, rc.resident_r(), 2);
        assert_eq!(resident.strategy.validate(&inst).unwrap(), resident.cost);
        let split = rc.strategy_fair_split(2, 6).unwrap();
        let inst2 = MppInstance::new(&rc.dag, 1, 6, 2);
        assert_eq!(split.strategy.validate(&inst2).unwrap(), split.cost);
    }
}
