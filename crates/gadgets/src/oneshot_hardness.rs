//! The Theorem 2 reduction: deciding whether one-shot SPP has a
//! **zero-cost** pebbling is NP-hard, and the optimum cannot be
//! approximated to any finite factor (or additive `n^{1−ε}`).
//!
//! The paper reduces from *clique* using towers of level gadgets whose
//! exact wiring lives only in the full version. We realize the same
//! theorem with a reduction we can prove correct end to end inside this
//! codebase, from a linear-layout problem (the classical companion of
//! one-shot pebbling):
//!
//! **Transient vertex separation** `vsΔ(G')`: the minimum over vertex
//! orders `σ` of `max_i |∂(i−1) ∪ {v_i}|`, where `∂(j)` is the set of
//! placed vertices that still have an unplaced neighbour. It sandwiches
//! the vertex separation number (= pathwidth): `vs ≤ vsΔ ≤ vs + 1`.
//!
//! Reduction: for each vertex `v` a *group* of `b` source nodes; for
//! each edge `e = (u,v)` a node `B_e` reading both full groups. In a
//! zero-cost one-shot pebbling a completed group stays live exactly
//! while some incident edge node is uncomputed — the vertex's layout
//! interval — and completing group `v_i` costs `b·|∂(i−1) ∪ {v_i}|`
//! pebbles, while all additive noise (edge sinks, partial groups) is
//! `< b`. Hence with budget `r = b·W + b − 1` (and `b = 2(M+2)+1`):
//!
//! > a zero-cost pebbling exists **iff** `vsΔ(G') ≤ W`.
//!
//! [`HardnessInstance::amplified`] chains `t` independent copies so a NO
//! instance forces I/O in every copy — the optimum is either `0` or
//! grows with `t`, which padded to `t = n^{1−ε}` gives the Theorem 2
//! inapproximability gap.

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};

/// An undirected graph for reduction inputs (simple edge list).
#[derive(Debug, Clone)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Edge list (unordered pairs, stored as `u < v`, deduplicated).
    pub edges: Vec<(usize, usize)>,
}

impl Graph {
    /// Creates a graph after normalizing and validating edges.
    #[must_use]
    pub fn new(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut norm: Vec<(usize, usize)> = edges
            .iter()
            .map(|&(u, v)| {
                assert!(u != v && u < n && v < n, "bad edge ({u},{v})");
                (u.min(v), u.max(v))
            })
            .collect();
        norm.sort_unstable();
        norm.dedup();
        Graph { n, edges: norm }
    }

    /// Whether some vertex has no incident edge (the reduction requires
    /// none: an isolated group would be a permanent sink block).
    #[must_use]
    pub fn has_isolated_vertex(&self) -> bool {
        let mut seen = vec![false; self.n];
        for &(u, v) in &self.edges {
            seen[u] = true;
            seen[v] = true;
        }
        seen.iter().any(|&s| !s)
    }

    fn adjacency_masks(&self) -> Vec<u32> {
        let mut a = vec![0u32; self.n];
        for &(u, v) in &self.edges {
            a[u] |= 1 << v;
            a[v] |= 1 << u;
        }
        a
    }

    /// The classical vertex separation number (= pathwidth):
    /// `min_σ max_i |∂(i)|`. Exponential DP over subsets; `n ≤ 20`.
    #[must_use]
    pub fn vertex_separation(&self) -> usize {
        self.layout_bottleneck(false)
    }

    /// The transient vertex separation `vsΔ`:
    /// `min_σ max_i |∂(i−1) ∪ {v_i}|`. Exponential DP; `n ≤ 20`.
    #[must_use]
    pub fn transient_vertex_separation(&self) -> usize {
        self.layout_bottleneck(true)
    }

    fn layout_bottleneck(&self, transient: bool) -> usize {
        let n = self.n;
        assert!(n <= 20, "layout DP is exponential; n too large");
        if n == 0 {
            return 0;
        }
        let adj = self.adjacency_masks();
        let full = (1u32 << n) - 1;
        let boundary = |mask: u32| -> u32 {
            let mut count = 0;
            let mut m = mask;
            while m != 0 {
                let v = m.trailing_zeros() as usize;
                m &= m - 1;
                if adj[v] & !mask != 0 {
                    count += 1;
                }
            }
            count
        };
        use std::cmp::Reverse;
        use std::collections::{BinaryHeap, HashMap};
        let mut best: HashMap<u32, u32> = HashMap::new();
        let mut heap = BinaryHeap::new();
        best.insert(0, 0);
        heap.push((Reverse(0u32), 0u32));
        while let Some((Reverse(peak), mask)) = heap.pop() {
            if best.get(&mask).copied() != Some(peak) {
                continue;
            }
            if mask == full {
                return peak as usize;
            }
            let before = boundary(mask);
            for v in 0..n {
                let bit = 1u32 << v;
                if mask & bit != 0 {
                    continue;
                }
                let nm = mask | bit;
                let step_cost = if transient {
                    // |∂(i−1) ∪ {v_i}| = |∂(i−1)| + 1 (v_i is unplaced,
                    // hence not in ∂(i−1)).
                    before + 1
                } else {
                    boundary(nm)
                };
                let np = peak.max(step_cost).max(boundary(nm));
                if best.get(&nm).is_none_or(|&p| np < p) {
                    best.insert(nm, np);
                    heap.push((Reverse(np), nm));
                }
            }
        }
        unreachable!("all vertices placeable")
    }
}

/// A generated hardness instance.
#[derive(Debug, Clone)]
pub struct HardnessInstance {
    /// The reduction DAG.
    pub dag: Dag,
    /// The decision budget: a zero-cost one-shot pebbling with
    /// `r = budget` exists iff `vsΔ(G') ≤ W`.
    pub budget: usize,
    /// Scaling factor used.
    pub b: usize,
    /// Vertex groups (`b` source nodes each).
    pub groups: Vec<Vec<NodeId>>,
    /// Edge nodes in input order.
    pub edge_nodes: Vec<NodeId>,
}

impl HardnessInstance {
    /// Builds the reduction DAG for deciding `vsΔ(graph) ≤ w` with the
    /// default scale `b = 2(M+2)+1`.
    ///
    /// # Panics
    /// Panics if the graph has an isolated vertex (add a pendant edge
    /// first) or `w == 0` while edges exist.
    #[must_use]
    pub fn build(graph: &Graph, w: usize) -> Self {
        let m = graph.edges.len();
        Self::build_with_scale(graph, w, 2 * (m + 2) + 1)
    }

    /// Builds the reduction DAG with an explicit scale `b`. The
    /// zero-cost ⟺ `vsΔ ≤ w` guarantee requires `b ≥ M + 3`; smaller
    /// scales are useful only to keep exact-solver experiments tiny.
    ///
    /// Note that for `w = 1` the budget `2b − 1` is below `Δ_in + 1 =
    /// 2b + 1`, i.e. the game is infeasible outright — consistent with
    /// the decision (no zero-cost pebbling) but without any valid
    /// pebbling at all; gap experiments should use `w ≥ 2`.
    #[must_use]
    pub fn build_with_scale(graph: &Graph, w: usize, b: usize) -> Self {
        assert!(
            !graph.has_isolated_vertex(),
            "isolated vertices unsupported"
        );
        assert!(w >= 1 || graph.edges.is_empty());
        assert!(b >= 1);
        let m = graph.edges.len();
        let mut bld = DagBuilder::new();
        // Each group is a *chain* of b nodes (not b independent sources):
        // the liveness accounting is identical — all b nodes feed every
        // incident edge node, so a completed group holds b live pebbles
        // until its last incident edge is computed — but the exact
        // solver's state space stays polynomial in b (prefix positions
        // instead of arbitrary subsets).
        let groups: Vec<Vec<NodeId>> = (0..graph.n)
            .map(|v| {
                let nodes: Vec<NodeId> = (0..b)
                    .map(|i| bld.add_labeled_node(format!("A{v}_{i}")))
                    .collect();
                for pair in nodes.windows(2) {
                    bld.add_edge(pair[0], pair[1]);
                }
                nodes
            })
            .collect();
        let edge_nodes: Vec<NodeId> = graph
            .edges
            .iter()
            .map(|&(u, v)| {
                let e = bld.add_labeled_node(format!("B{u}_{v}"));
                for &a in groups[u].iter().chain(&groups[v]) {
                    bld.add_edge(a, e);
                }
                e
            })
            .collect();
        bld.name(format!(
            "oneshot_hardness(n={}, m={m}, w={w}, b={b})",
            graph.n
        ));
        HardnessInstance {
            dag: bld.build().expect("reduction is a DAG"),
            budget: b * w + b - 1,
            b,
            groups,
            edge_nodes,
        }
    }

    /// Chains `t` independent copies of the reduction DAG (each copy's
    /// last edge node feeds one source of the next copy) so a NO
    /// instance forces I/O in every copy, while a YES instance still
    /// pebbles at zero cost with `budget + 1` (one live relay value).
    #[must_use]
    pub fn amplified(graph: &Graph, w: usize, t: usize) -> (Dag, usize) {
        assert!(t >= 1);
        assert!(!graph.edges.is_empty(), "amplification needs an edge");
        let m = graph.edges.len();
        let b = 2 * (m + 2) + 1;
        let mut bld = DagBuilder::new();
        let mut prev_last: Option<NodeId> = None;
        for copy in 0..t {
            let groups: Vec<Vec<NodeId>> = (0..graph.n)
                .map(|v| {
                    let nodes: Vec<NodeId> = (0..b)
                        .map(|i| bld.add_labeled_node(format!("c{copy}_A{v}_{i}")))
                        .collect();
                    for pair in nodes.windows(2) {
                        bld.add_edge(pair[0], pair[1]);
                    }
                    nodes
                })
                .collect();
            if let Some(relay) = prev_last {
                bld.add_edge(relay, groups[0][0]);
            }
            let mut last = None;
            for &(u, v) in &graph.edges {
                let e = bld.add_labeled_node(format!("c{copy}_B{u}_{v}"));
                for &a in groups[u].iter().chain(&groups[v]) {
                    bld.add_edge(a, e);
                }
                last = Some(e);
            }
            prev_last = last;
        }
        bld.name(format!(
            "oneshot_hardness_amplified(n={}, m={m}, w={w}, t={t})",
            graph.n
        ));
        (
            bld.build().expect("amplified reduction is a DAG"),
            b * w + b - 1 + 1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::zero_io_pebbling_exists;

    fn path3() -> Graph {
        Graph::new(3, &[(0, 1), (1, 2)])
    }

    fn triangle() -> Graph {
        Graph::new(3, &[(0, 1), (1, 2), (0, 2)])
    }

    fn k4() -> Graph {
        Graph::new(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    fn cycle(n: usize) -> Graph {
        let edges: Vec<(usize, usize)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        Graph::new(n, &edges)
    }

    #[test]
    fn vertex_separation_known_values() {
        assert_eq!(path3().vertex_separation(), 1);
        assert_eq!(triangle().vertex_separation(), 2);
        assert_eq!(k4().vertex_separation(), 3);
        assert_eq!(cycle(5).vertex_separation(), 2);
        assert_eq!(Graph::new(4, &[]).vertex_separation(), 0);
    }

    #[test]
    fn transient_vs_known_values() {
        assert_eq!(path3().transient_vertex_separation(), 2);
        assert_eq!(triangle().transient_vertex_separation(), 3);
        assert_eq!(k4().transient_vertex_separation(), 4);
        assert_eq!(cycle(4).transient_vertex_separation(), 3);
        assert_eq!(cycle(5).transient_vertex_separation(), 3);
    }

    #[test]
    fn sandwich_property() {
        for g in [path3(), triangle(), k4(), cycle(4), cycle(5), cycle(6)] {
            let vs = g.vertex_separation();
            let vsd = g.transient_vertex_separation();
            assert!(vsd == vs || vsd == vs + 1, "vs={vs} vsΔ={vsd}");
        }
    }

    #[test]
    fn graph_normalizes_edges() {
        let g = Graph::new(3, &[(2, 0), (0, 2), (1, 0)]);
        assert_eq!(g.edges, vec![(0, 1), (0, 2)]);
        assert!(Graph::new(3, &[(0, 1)]).has_isolated_vertex());
        assert!(!path3().has_isolated_vertex());
    }

    #[test]
    fn reduction_soundness_and_completeness() {
        // Zero-cost one-shot pebbling exists iff vsΔ(G') ≤ W — the
        // executable heart of Theorem 2.
        for g in [path3(), triangle(), cycle(4)] {
            let vsd = g.transient_vertex_separation();
            for w in (vsd - 1).max(1)..=vsd + 1 {
                let inst = HardnessInstance::build(&g, w);
                assert!(inst.dag.n() <= 64, "test instance too big");
                let feasible =
                    zero_io_pebbling_exists(&inst.dag, inst.budget).expect("within solver limits");
                assert_eq!(
                    feasible,
                    vsd <= w,
                    "graph n={} m={} vsΔ={vsd} w={w}",
                    g.n,
                    g.edges.len()
                );
            }
        }
    }

    #[test]
    fn amplified_yes_instance_still_zero_cost() {
        let g = path3();
        let vsd = g.transient_vertex_separation();
        let (dag, budget) = HardnessInstance::amplified(&g, vsd, 2);
        assert!(dag.n() <= 64);
        assert_eq!(zero_io_pebbling_exists(&dag, budget), Some(true));
    }

    #[test]
    fn no_instance_forces_io() {
        // Triangle with W = 2 < vsΔ = 3 at a small explicit scale: the
        // game is *feasible* (budget ≥ Δ_in + 1) yet no zero-cost
        // pebbling exists — so the optimal one-shot pebbling must
        // perform I/O. (b = 4 is below the YES-side guarantee scale, but
        // the NO-side lower bound peak ≥ b·vsΔ = 12 > budget = 11 holds
        // for any b; zero-I/O one-shot strategies are exactly compute
        // orders, which is what the decision procedure enumerates.)
        let g = triangle();
        let b = 4;
        let inst = HardnessInstance::build_with_scale(&g, 2, b);
        let delta_in = inst.dag.max_in_degree();
        assert!(inst.budget > delta_in, "game must stay feasible");
        assert_eq!(
            rbp_core::zero_io_pebbling_exists(&inst.dag, inst.budget),
            Some(false)
        );
    }

    #[test]
    fn amplified_structure() {
        let g = triangle();
        let (dag, _budget) = HardnessInstance::amplified(&g, 1, 3);
        let b = 2 * (3 + 2) + 1;
        assert_eq!(dag.n(), 3 * (3 * b + 3));
        let relay_edges = dag
            .edges()
            .filter(|&(u, v)| dag.label(u).contains("_B") && dag.label(v).contains("_A"))
            .count();
        assert_eq!(relay_edges, 2);
    }
}
