//! The Lemma 9 construction: in the fair comparison the optimum is
//! **non-monotone** in the number of processors.
//!
//! The DAG is two independent zippers with groups of size `d`. The fair
//! memory series is `r0 = 4(d+2)`:
//!
//! - `k = 1`, `r = 4(d+2)`: one processor holds both zippers' groups
//!   (`4d + 2 < r`) and pebbles everything sequentially with zero I/O —
//!   cost `n`.
//! - `k = 2`, `r = 2(d+2) ≥ 2d+2`: one zipper per processor, each fully
//!   resident, all compute steps batched pairwise — cost `≈ n/2`.
//!   **Better than both neighbours.**
//! - `k = 4`, `r = d+2 < 2d+2`: no processor can hold a whole zipper's
//!   working set. The best constructive play is the paper's pairs
//!   strategy (two processors per zipper, one group each, chain values
//!   handed over via shared memory): `≈ 2g + 1` per chain node even with
//!   perfect cross-zipper batching of the I/O steps — worse than `k = 2`
//!   whenever `g ≥ 1`.

use rbp_core::rbp_dag::{Dag, DagBuilder, NodeId};
use rbp_core::{MppError, MppInstance, MppRun, MppSimulator};

/// Two independent zippers plus the fair memory series.
#[derive(Debug, Clone)]
pub struct TwoZippers {
    /// The DAG (zipper A then zipper B).
    pub dag: Dag,
    /// Groups `[A.S1, A.S2, B.S1, B.S2]`.
    pub groups: [Vec<NodeId>; 4],
    /// Chains `[A.chain, B.chain]`.
    pub chains: [Vec<NodeId>; 2],
    /// Group size `d`.
    pub d: usize,
}

impl TwoZippers {
    /// Builds two independent zippers with group size `d` and chains of
    /// `n0` nodes.
    #[must_use]
    pub fn build(d: usize, n0: usize) -> Self {
        let mut b = DagBuilder::new();
        let mut make_zipper = |tag: &str| -> (Vec<NodeId>, Vec<NodeId>, Vec<NodeId>) {
            let s1: Vec<NodeId> = (0..d)
                .map(|i| b.add_labeled_node(format!("{tag}u{i}")))
                .collect();
            let s2: Vec<NodeId> = (0..d)
                .map(|i| b.add_labeled_node(format!("{tag}w{i}")))
                .collect();
            let mut chain = Vec::with_capacity(n0);
            let mut prev: Option<NodeId> = None;
            for i in 1..=n0 {
                let v = b.add_labeled_node(format!("{tag}v{i}"));
                let grp = if i % 2 == 1 { &s1 } else { &s2 };
                for &u in grp {
                    b.add_edge(u, v);
                }
                if let Some(p) = prev {
                    b.add_edge(p, v);
                }
                prev = Some(v);
                chain.push(v);
            }
            (s1, s2, chain)
        };
        let (a1, a2, ca) = make_zipper("A");
        let (b1, b2, cb) = make_zipper("B");
        b.name(format!("two_zippers(d={d}, n0={n0})"));
        TwoZippers {
            dag: b.build().expect("two zippers form a DAG"),
            groups: [a1, a2, b1, b2],
            chains: [ca, cb],
            d,
        }
    }

    /// The fair memory for `k` processors: `r0/k` with `r0 = 4(d+2)`.
    #[must_use]
    pub fn fair_r(&self, k: usize) -> usize {
        4 * (self.d + 2) / k
    }

    /// `k = 1`: everything resident, zero I/O, cost `n`.
    pub fn strategy_k1(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 1, self.fair_r(1), g);
        let mut sim = MppSimulator::new(inst);
        for grp in &self.groups {
            for &u in grp {
                sim.compute(vec![(0, u)])?;
            }
        }
        for chain in &self.chains {
            let mut prev: Option<NodeId> = None;
            for &v in chain {
                sim.compute(vec![(0, v)])?;
                if let Some(p) = prev {
                    sim.remove_red(0, p)?;
                }
                prev = Some(v);
            }
        }
        sim.finish()
    }

    /// `k = 2`: one zipper per processor, fully resident, compute steps
    /// batched across the two zippers. Zero I/O, cost `≈ n/2`.
    pub fn strategy_k2(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 2, self.fair_r(2), g);
        let mut sim = MppSimulator::new(inst);
        // Groups: proc 0 owns zipper A (groups 0,1), proc 1 owns B (2,3).
        for i in 0..self.d {
            sim.compute(vec![(0, self.groups[0][i]), (1, self.groups[2][i])])?;
        }
        for i in 0..self.d {
            sim.compute(vec![(0, self.groups[1][i]), (1, self.groups[3][i])])?;
        }
        let mut prev: [Option<NodeId>; 2] = [None, None];
        for i in 0..self.chains[0].len() {
            let va = self.chains[0][i];
            let vb = self.chains[1][i];
            sim.compute(vec![(0, va), (1, vb)])?;
            for (p, pv) in prev.iter_mut().enumerate() {
                if let Some(x) = *pv {
                    sim.remove_red(p, x)?;
                }
            }
            prev = [Some(va), Some(vb)];
        }
        sim.finish()
    }

    /// `k = 4`: two processors per zipper (one group each), chain values
    /// handed across via shared memory; I/O steps batched across the two
    /// zippers. Cost `≈ (2g + 1)·n0`.
    pub fn strategy_k4(&self, g: u64) -> Result<MppRun, MppError> {
        let inst = MppInstance::new(&self.dag, 4, self.fair_r(4), g);
        let mut sim = MppSimulator::new(inst);
        // Procs 0,1 drive zipper A (S1 on 0, S2 on 1); procs 2,3 drive B.
        for i in 0..self.d {
            sim.compute(vec![
                (0, self.groups[0][i]),
                (1, self.groups[1][i]),
                (2, self.groups[2][i]),
                (3, self.groups[3][i]),
            ])?;
        }
        let n0 = self.chains[0].len();
        let mut prev: Option<(usize, NodeId, usize, NodeId)> = None;
        for i in 0..n0 {
            let va = self.chains[0][i];
            let vb = self.chains[1][i];
            let pa = i % 2; // owner of va among {0, 1}
            let pb = 2 + i % 2; // owner of vb among {2, 3}
            if let Some((qa, pva, qb, pvb)) = prev {
                // Hand both previous chain values over in batched steps.
                sim.store(vec![(qa, pva), (qb, pvb)])?;
                sim.load(vec![(pa, pva), (pb, pvb)])?;
                sim.remove_red(qa, pva)?;
                sim.remove_red(qb, pvb)?;
                sim.compute(vec![(pa, va), (pb, vb)])?;
                sim.remove_red(pa, pva)?;
                sim.remove_red(pb, pvb)?;
            } else {
                sim.compute(vec![(pa, va), (pb, vb)])?;
            }
            prev = Some((pa, va, pb, vb));
        }
        sim.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::CostModel;

    #[test]
    fn shape() {
        let tz = TwoZippers::build(3, 8);
        assert_eq!(tz.dag.n(), 2 * (6 + 8));
        assert_eq!(tz.dag.max_in_degree(), 4);
        assert_eq!(tz.fair_r(1), 20);
        assert_eq!(tz.fair_r(2), 10);
        assert_eq!(tz.fair_r(4), 5);
    }

    #[test]
    fn lemma9_nonmonotonicity() {
        let d = 3;
        let n0 = 30;
        let g = 2;
        let tz = TwoZippers::build(d, n0);
        let model = CostModel::mpp(g);
        let c1 = tz.strategy_k1(g).unwrap().cost.total(model);
        let c2 = tz.strategy_k2(g).unwrap().cost.total(model);
        let c4 = tz.strategy_k4(g).unwrap().cost.total(model);
        // k=2 beats k=1 (halved compute) and k=4 (no communication).
        assert!(c2 < c1, "c2={c2} c1={c1}");
        assert!(c2 < c4, "c2={c2} c4={c4}");
        // And the k=1 strategy is optimal for k=1 (cost = n = Lemma 1
        // lower bound with k=1), so OPT(2) < OPT(1) rigorously.
        assert_eq!(c1, tz.dag.n() as u64);
        assert_eq!(c2, (tz.dag.n() / 2) as u64);
    }

    #[test]
    fn strategies_validate() {
        let tz = TwoZippers::build(2, 6);
        let g = 3;
        for (run, k) in [
            (tz.strategy_k1(g).unwrap(), 1),
            (tz.strategy_k2(g).unwrap(), 2),
            (tz.strategy_k4(g).unwrap(), 4),
        ] {
            let inst = MppInstance::new(&tz.dag, k, tz.fair_r(k), g);
            assert_eq!(run.strategy.validate(&inst).unwrap(), run.cost, "k={k}");
        }
    }

    #[test]
    fn k4_io_is_batched_across_zippers() {
        let tz = TwoZippers::build(2, 10);
        let run = tz.strategy_k4(1).unwrap();
        // 2 I/O steps per chain round (store batch + load batch), not 4.
        assert_eq!(run.cost.io_steps() as usize, 2 * (10 - 1));
    }

    #[test]
    fn exact_solver_confirms_strict_nonmonotonicity_on_tiny_instance() {
        use rbp_core::{solve_mpp, SolveLimits};
        // d=1, n0=2: n=8. Fair series r0=12 → r: 12, 6, 3.
        let tz = TwoZippers::build(1, 2);
        let g = 3;
        let lim = SolveLimits::states(400_000);
        let o1 = solve_mpp(&MppInstance::new(&tz.dag, 1, tz.fair_r(1), g), lim).expect("k=1 exact");
        let o2 = solve_mpp(&MppInstance::new(&tz.dag, 2, tz.fair_r(2), g), lim).expect("k=2 exact");
        assert!(
            o2.total < o1.total,
            "OPT(2)={} OPT(1)={}",
            o2.total,
            o1.total
        );
        // k=4 exact explodes combinatorially (batch enumeration over 4
        // processors); cap it tightly and treat exhaustion as a skip.
        let tight = SolveLimits::states(40_000);
        if let Some(o4) = solve_mpp(&MppInstance::new(&tz.dag, 4, tz.fair_r(4), g), tight) {
            assert!(
                o2.total <= o4.total,
                "OPT(2)={} OPT(4)={}",
                o2.total,
                o4.total
            );
        }
    }
}
