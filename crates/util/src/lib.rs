//! # rbp-util — zero-dependency support utilities
//!
//! The build environment is fully offline, so the few external crates
//! the workspace would normally pull (a fast hasher, a seeded RNG, a
//! JSON serializer) are vendored here as small, well-understood
//! implementations:
//!
//! - [`fx`]: the FxHash algorithm (rustc's hasher) plus `HashMap`/
//!   `HashSet` aliases — the exact-solver hot path hashes millions of
//!   small fixed-size keys, where SipHash's per-call overhead dominates;
//! - [`rng`]: a SplitMix64 generator with the handful of sampling
//!   helpers the DAG generators and randomized tests need;
//! - [`json`]: a minimal JSON document builder and parser for
//!   `BENCH_*.json` experiment artifacts and `TRACE_*.jsonl` traces.

#![warn(missing_docs)]

pub mod fx;
pub mod json;
pub mod rng;

pub use fx::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use json::Json;
pub use rng::{env_seed, Rng};
