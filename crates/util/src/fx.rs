//! FxHash: the multiply-rotate hash used by rustc (`rustc-hash`),
//! vendored because the registry is unreachable at build time.
//!
//! Not DoS-resistant — do not use on attacker-controlled keys. The
//! solvers hash packed pebbling configurations (`u64` masks), where Fx
//! is both faster than SipHash and diffuses the low-entropy mask bits
//! well enough in practice.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc implementation
/// (`0x9e3779b9` golden-ratio derived, widened to 64 bits).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
/// `BuildHasher` producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// The FxHash streaming hasher state.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut rest = bytes;
        while rest.len() >= 8 {
            let (chunk, tail) = rest.split_at(8);
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
            rest = tail;
        }
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hash_of<T: std::hash::Hash>(t: &T) -> u64 {
        let mut h = FxHasher::default();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&[1u64, 2]), hash_of(&[2u64, 1]));
    }

    #[test]
    fn map_and_set_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(1, "one");
        m.insert(2, "two");
        assert_eq!(m.get(&1), Some(&"one"));
        let s: FxHashSet<u32> = (0..100).collect();
        assert_eq!(s.len(), 100);
        assert!(s.contains(&99));
    }

    #[test]
    fn byte_stream_matches_unaligned_tail() {
        // 9 bytes: one full word + 1-byte tail; must not panic and must
        // differ from the 8-byte prefix.
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn mask_keys_spread_across_buckets() {
        // Sanity: 4096 packed-configuration-style keys produce at least
        // 90% distinct hashes in the low 12 bits (no catastrophic
        // clustering for the solver's key shape).
        let mut low_bits: FxHashSet<u64> = FxHashSet::default();
        for reds in 0..64u64 {
            for blue in 0..64u64 {
                let h = hash_of(&([reds << 3, reds], blue << 1));
                low_bits.insert(h & 0xfff);
            }
        }
        assert!(low_bits.len() > 2400, "only {} buckets", low_bits.len());
    }
}
