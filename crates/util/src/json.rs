//! A minimal JSON document builder and parser for experiment artifacts
//! (`BENCH_*.json`, `TRACE_*.jsonl`). The harness emits records through
//! the builder; [`Json::parse`] is the reading side used by `rbp report`
//! to re-render trace files. Object key order is preserved (insertion
//! order) so emitted files diff cleanly across runs and a
//! parse→render round trip is stable.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (non-finite values are emitted as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    #[must_use]
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation (for human-diffed
    /// artifacts).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

/// An error from [`Json::parse`]: a message plus the byte offset where
/// parsing failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset into the input.
    pub at: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.msg, self.at)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Parses a JSON document. Accepts exactly one value (surrounded by
    /// optional whitespace); trailing garbage is an error.
    ///
    /// Numbers without a `.`/`e` parse to [`Json::UInt`] or
    /// [`Json::Int`]; everything else numeric becomes [`Json::Float`].
    ///
    /// ```
    /// use rbp_util::json::Json;
    /// let doc = Json::parse(r#"{"a": [1, -2, 3.5], "b": "x\n"}"#).unwrap();
    /// assert_eq!(doc.get("b"), Some(&Json::Str("x\n".into())));
    /// assert!(Json::parse("[1, 2,]").is_err());
    /// ```
    pub fn parse(input: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON value"));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a [`Json::Str`].
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64` ([`Json::UInt`] or non-negative [`Json::Int`]).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The value as an `f64` (any numeric variant).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(x) => Some(*x),
            Json::Int(i) => Some(*i as f64),
            Json::UInt(u) => Some(*u as f64),
            _ => None,
        }
    }

    /// The array items, if this is a [`Json::Arr`].
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            msg: msg.to_string(),
            at: self.pos,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str, val: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(val)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.eat_lit("null", Json::Null),
            Some(b't') => self.eat_lit("true", Json::Bool(true)),
            Some(b'f') => self.eat_lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by `\u` + low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.eat(b'\\').is_err() || self.eat(b'u').is_err() {
                                    return Err(self.err("lone high surrogate"));
                                }
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid unicode escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("bad number"))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Self {
        Json::UInt(u)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Self {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(-3i64).render(), "-3");
        assert_eq!(Json::from(7u64).render(), "7");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn containers_and_order() {
        let doc = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::arr([Json::from("x"), Json::Null])),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":["x",null]}"#);
    }

    #[test]
    fn escaping() {
        let s = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(s.render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn parse_round_trips_render() {
        let doc = Json::obj([
            ("b", Json::from(1u64)),
            ("neg", Json::from(-7i64)),
            ("x", Json::from(2.5)),
            ("s", Json::from("a\"b\\c\nd")),
            ("arr", Json::arr([Json::Null, Json::from(true)])),
            ("empty", Json::obj(Vec::<(&str, Json)>::new())),
        ]);
        let text = doc.render();
        assert_eq!(Json::parse(&text).unwrap(), doc);
        // Pretty output parses back to the same document too.
        assert_eq!(Json::parse(&doc.render_pretty()).unwrap(), doc);
    }

    #[test]
    fn parse_numbers() {
        assert_eq!(Json::parse("42").unwrap(), Json::UInt(42));
        assert_eq!(Json::parse("-3").unwrap(), Json::Int(-3));
        assert_eq!(Json::parse("1.5e2").unwrap(), Json::Float(150.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
        assert!(Json::parse("1.2.3").is_err());
    }

    #[test]
    fn parse_unicode_escapes() {
        assert_eq!(Json::parse(r#""Aé""#).unwrap(), Json::Str("Aé".into()));
        // Surrogate pair: U+1F600.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".into()));
        assert!(Json::parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "", "{", "[1,]", "{\"a\":}", "tru", "\"abc", "1 2", "{'a':1}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"n": 3, "s": "x", "xs": [1.5]}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(
            doc.get("xs").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(
            doc.get("xs").unwrap().as_arr().unwrap()[0].as_f64(),
            Some(1.5)
        );
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::Null.get("n"), None);
    }

    #[test]
    fn pretty_round_shape() {
        let doc = Json::obj([("xs", Json::arr([Json::from(1u64), Json::from(2u64)]))]);
        let p = doc.render_pretty();
        assert!(p.contains("\"xs\": [\n"));
        assert!(p.ends_with("}\n"));
        assert_eq!(Json::arr([]).render_pretty(), "[]\n");
    }
}
