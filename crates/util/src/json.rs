//! A minimal JSON document builder for experiment artifacts
//! (`BENCH_*.json`). Write-only: the harness emits records, it never
//! parses them. Object key order is preserved (insertion order) so
//! emitted files diff cleanly across runs.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (emitted without a decimal point).
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (non-finite values are emitted as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn obj<K: Into<String>>(pairs: impl IntoIterator<Item = (K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array.
    #[must_use]
    pub fn arr(items: impl IntoIterator<Item = Json>) -> Json {
        Json::Arr(items.into_iter().collect())
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation (for human-diffed
    /// artifacts).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Self {
        Json::Bool(b)
    }
}
impl From<i64> for Json {
    fn from(i: i64) -> Self {
        Json::Int(i)
    }
}
impl From<u64> for Json {
    fn from(u: u64) -> Self {
        Json::UInt(u)
    }
}
impl From<usize> for Json {
    fn from(u: usize) -> Self {
        Json::UInt(u as u64)
    }
}
impl From<f64> for Json {
    fn from(x: f64) -> Self {
        Json::Float(x)
    }
}
impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<String> for Json {
    fn from(s: String) -> Self {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::from(true).render(), "true");
        assert_eq!(Json::from(-3i64).render(), "-3");
        assert_eq!(Json::from(7u64).render(), "7");
        assert_eq!(Json::from(1.5).render(), "1.5");
        assert_eq!(Json::Float(f64::NAN).render(), "null");
    }

    #[test]
    fn containers_and_order() {
        let doc = Json::obj([
            ("b", Json::from(1u64)),
            ("a", Json::arr([Json::from("x"), Json::Null])),
        ]);
        assert_eq!(doc.render(), r#"{"b":1,"a":["x",null]}"#);
    }

    #[test]
    fn escaping() {
        let s = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(s.render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn pretty_round_shape() {
        let doc = Json::obj([("xs", Json::arr([Json::from(1u64), Json::from(2u64)]))]);
        let p = doc.render_pretty();
        assert!(p.contains("\"xs\": [\n"));
        assert!(p.ends_with("}\n"));
        assert_eq!(Json::arr([]).render_pretty(), "[]\n");
    }
}
