//! A seeded SplitMix64 RNG with the sampling helpers the workspace
//! needs (vendored; the build cannot fetch the `rand` crate).
//!
//! SplitMix64 passes BigCrush, has a full 2^64 period over its state
//! increment, and is two multiplies and three xor-shifts per draw —
//! more than enough quality for workload generation and randomized
//! tests, all of which only need determinism per seed.

/// The environment variable every randomized tool in the workspace reads
/// its base seed from (see [`env_seed`]).
pub const SEED_ENV: &str = "RBP_SEED";

/// Reads the workspace-wide base seed from the `RBP_SEED` environment
/// variable, falling back to `default` when it is unset or unparsable.
///
/// Every `exp_*` experiment binary and the `rbp` CLI derive all of their
/// randomness (generator seeds, refinement RNG streams) from this single
/// value, so a whole sweep reruns bit-identically under `RBP_SEED=<n>`
/// and the default (unset) behaviour matches `RBP_SEED=0`.
#[must_use]
pub fn env_seed(default: u64) -> u64 {
    match std::env::var(SEED_ENV) {
        Ok(v) => v.trim().parse().unwrap_or(default),
        Err(_) => default,
    }
}

/// A deterministic pseudo-random generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's multiply-shift
    /// (bias negligible for the bounds used here; `bound > 0`).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform index in `[0, n)`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.next_below(n as u64) as usize
    }

    /// Uniform `usize` in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.index(hi - lo)
    }

    /// Uniform `u64` in `[lo, hi)`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn bool(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Samples `m` distinct indices from `[0, n)` (partial Fisher–Yates;
    /// `m` is capped at `n`).
    pub fn sample_indices(&mut self, n: usize, m: usize) -> Vec<usize> {
        let m = m.min(n);
        let mut pool: Vec<usize> = (0..n).collect();
        for i in 0..m {
            let j = self.range(i, n);
            pool.swap(i, j);
        }
        pool.truncate(m);
        pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        let mut c = Rng::new(8);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn bounds_respected() {
        let mut r = Rng::new(1);
        for _ in 0..10_000 {
            assert!(r.index(7) < 7);
            let x = r.range(3, 9);
            assert!((3..9).contains(&x));
            let f = r.f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.index(1), 0);
    }

    #[test]
    fn uniformish() {
        let mut r = Rng::new(123);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.index(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "badly skewed: {counts:?}");
        }
    }

    #[test]
    fn bernoulli_extremes() {
        let mut r = Rng::new(5);
        assert!(!(0..100).any(|_| r.bool(0.0)));
        assert!((0..100).all(|_| r.bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(9);
        let mut xs: Vec<usize> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng::new(2);
        let s = r.sample_indices(10, 4);
        assert_eq!(s.len(), 4);
        let set: std::collections::BTreeSet<_> = s.iter().collect();
        assert_eq!(set.len(), 4);
        assert_eq!(r.sample_indices(3, 10).len(), 3);
    }
}
