//! Property test: `render → parse → render` is a fixpoint.
//!
//! Random `Json` values (nested arrays/objects, unicode and
//! control-character strings, extreme integers, awkward floats) are
//! rendered, reparsed, and re-rendered. After at most one normalizing
//! roundtrip the string representation must be stable:
//!
//! - roundtrip 1 may normalize (`Float(1.0)` renders as `"1"` and
//!   reparses as `UInt(1)`; NaN/∞ render as `null`),
//! - but `parse(render(x))` must always succeed, and
//! - `render(parse(s))` must equal `s` for any `s` already produced by
//!   `render` — the fixpoint the trace/report pipeline relies on when
//!   it hashes and diffs rendered artifacts.
//!
//! Deterministic per seed; set `RBP_SEED` to reproduce a failure.

use rbp_util::json::Json;
use rbp_util::{env_seed, Rng};

/// Interesting integer corner cases, mixed in alongside random ones.
const INT_CORNERS: &[i64] = &[0, -1, 1, i64::MIN, i64::MAX, -999_999_999_999];
const UINT_CORNERS: &[u64] = &[0, 1, u64::MAX, 1 << 53, (1 << 53) + 1];
const FLOAT_CORNERS: &[f64] = &[
    0.0,
    -0.0,
    1.0,
    -1.5,
    0.1,
    1e-300,
    1e300,
    f64::NAN,
    f64::INFINITY,
    f64::NEG_INFINITY,
    f64::MIN_POSITIVE,
    std::f64::consts::PI,
];
const STR_CORNERS: &[&str] = &[
    "",
    "plain",
    "with \"quotes\" and \\backslashes\\",
    "newline\nand\ttab\rand\u{0}null",
    "unicode: λ→∞ 🦀 日本語",
    "\u{1b}escape\u{7f}",
    "ends with backslash \\",
];

fn random_string(rng: &mut Rng) -> String {
    if rng.bool(0.5) {
        return STR_CORNERS[rng.index(STR_CORNERS.len())].to_string();
    }
    let len = rng.index(12);
    (0..len)
        .map(|_| {
            // Bias toward characters that stress the escaper: controls,
            // quotes, backslashes, non-ASCII.
            match rng.index(6) {
                0 => char::from(rng.index(0x20) as u8 & 0x1f), // control
                1 => '"',
                2 => '\\',
                3 => char::from_u32(0x80 + rng.index(0x2000) as u32).unwrap_or('□'),
                _ => char::from(0x20 + rng.index(0x5f) as u8), // printable ASCII
            }
        })
        .collect()
}

fn random_json(rng: &mut Rng, depth: usize) -> Json {
    let scalar_only = depth == 0;
    match rng.index(if scalar_only { 7 } else { 9 }) {
        0 => Json::Null,
        1 => Json::Bool(rng.bool(0.5)),
        2 => Json::Int(if rng.bool(0.5) {
            INT_CORNERS[rng.index(INT_CORNERS.len())]
        } else {
            rng.next_u64() as i64
        }),
        3 => Json::UInt(if rng.bool(0.5) {
            UINT_CORNERS[rng.index(UINT_CORNERS.len())]
        } else {
            rng.next_u64()
        }),
        4 => Json::Float(if rng.bool(0.5) {
            FLOAT_CORNERS[rng.index(FLOAT_CORNERS.len())]
        } else {
            f64::from_bits(rng.next_u64())
        }),
        5 | 6 => Json::Str(random_string(rng)),
        7 => {
            let n = rng.index(5);
            Json::Arr((0..n).map(|_| random_json(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.index(5);
            Json::Obj(
                (0..n)
                    .map(|i| {
                        (
                            format!("{}_{i}", random_string(rng)),
                            random_json(rng, depth - 1),
                        )
                    })
                    .collect(),
            )
        }
    }
}

#[test]
fn render_parse_render_is_a_fixpoint() {
    let seed = env_seed(0x150_0e5d);
    let mut rng = Rng::new(seed);
    for case in 0..2000 {
        let value = random_json(&mut rng, 4);
        let s1 = value.render();
        // Everything render produces must reparse.
        let back = Json::parse(&s1).unwrap_or_else(|e| {
            panic!("seed {seed} case {case}: render produced unparseable JSON ({e}): {s1}")
        });
        let s2 = back.render();
        // One normalizing roundtrip later, the representation is stable.
        let back2 = Json::parse(&s2)
            .unwrap_or_else(|e| panic!("seed {seed} case {case}: reparse failed ({e}): {s2}"));
        let s3 = back2.render();
        assert_eq!(
            s2, s3,
            "seed {seed} case {case}: render∘parse not a fixpoint\n  original: {s1}"
        );
    }
}

#[test]
fn pretty_rendering_roundtrips_to_the_same_value() {
    let seed = env_seed(0x150_0e5d);
    let mut rng = Rng::new(seed.wrapping_add(1));
    for case in 0..500 {
        let value = random_json(&mut rng, 3);
        // Normalize twice so the comparison is between stable values:
        // pass 1 collapses floats to ints and NaN to null, pass 2
        // settles the variant (`Float(-0.0)` → `"-0"` → `Int(0)` →
        // `"0"` → `UInt(0)`).
        let once = Json::parse(&value.render()).unwrap();
        let normal = Json::parse(&once.render()).unwrap();
        let pretty = normal.render_pretty();
        let reparsed = Json::parse(&pretty).unwrap_or_else(|e| {
            panic!("seed {seed} case {case}: pretty unparseable ({e}):\n{pretty}")
        });
        assert_eq!(
            reparsed,
            normal,
            "seed {seed} case {case}: pretty printing changed the value\n  compact: {}\n  pretty: {pretty}",
            normal.render()
        );
        // And compact-rendering the reparsed value matches the
        // compact rendering of the normalized value: pretty is pure
        // whitespace.
        assert_eq!(reparsed.render(), normal.render());
    }
}
