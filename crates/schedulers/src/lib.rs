//! # rbp-schedulers — heuristic pebbling strategies
//!
//! Polynomial-time schedulers that produce **valid** MPP strategies on
//! arbitrary DAGs (every move goes through the rule-enforcing
//! [`rbp_core::MppSimulator`], so an illegal schedule is a bug that
//! surfaces immediately, not a silently wrong cost).
//!
//! - [`TopoBaseline`] — the Lemma 1 upper-bound strategy: per node, load
//!   inputs / compute / store / evict. Cost ≤ `(g(Δin+1)+1)·n`.
//! - [`Greedy`] — the paper's greedy class (§4, Lemmas 3–4): each
//!   processor repeatedly picks the ready node with the largest number
//!   (or fraction) of inputs it already holds; pluggable tie-breaking,
//!   eviction policies, optional recomputation.
//! - [`Wavefront`] — level-synchronous scheduling, round-robin within a
//!   topological level, everything communicated through slow memory.
//! - [`Partition`] — owner-computes partitioning (most-inputs-local,
//!   least-loaded tie-break) with round-based parallel execution.
//! - [`spp_belady()`] — a single-processor reference scheduler with
//!   Belady-style eviction, producing SPP strategies.
//!
//! All schedulers implement [`MppScheduler`]; [`all_schedulers`] returns
//! a registry used by the experiment sweeps.

#![warn(missing_docs)]

pub mod eviction;
pub mod greedy;
pub mod partition;
pub mod spp_belady;
pub mod topo_baseline;
pub mod wavefront;

pub use eviction::EvictionPolicy;
pub use greedy::{Affinity, Greedy, GreedyConfig, TieBreak};
pub use partition::Partition;
pub use spp_belady::spp_belady;
pub use topo_baseline::TopoBaseline;
pub use wavefront::Wavefront;

use rbp_core::{MppError, MppInstance, MppRun, MppRunStats};

/// Emits one span-scoped snapshot of a finished run to the global
/// tracer: the run's total cost plus the full [`MppRunStats`] counter
/// set (steps, I/O transition classes, evictions, recomputation work)
/// under the `scheduler.<name>.*` prefix. No-op when tracing is off —
/// the stats pass over the strategy is only paid for traced runs.
pub(crate) fn trace_run(name: &str, instance: &MppInstance, run: &MppRun) {
    if !rbp_trace::enabled() {
        return;
    }
    let stats = MppRunStats::analyze(instance, &run.strategy);
    stats.trace(&format!("scheduler.{name}"));
}

/// A scheduler producing a valid MPP strategy for any feasible instance.
///
/// Schedulers are stateless configuration holders, so they are `Send +
/// Sync` by design — experiment sweeps run them from worker threads.
pub trait MppScheduler: Send + Sync {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> String;

    /// Builds and returns a validated run for `instance`.
    ///
    /// Implementations must only emit moves through [`rbp_core::MppSimulator`]
    /// so rule violations surface as errors instead of wrong costs.
    fn schedule(&self, instance: &MppInstance) -> Result<MppRun, MppError>;
}

/// The default scheduler registry used by sweeps: baseline, wavefront,
/// partition, and a representative set of greedy configurations.
#[must_use]
pub fn all_schedulers() -> Vec<Box<dyn MppScheduler>> {
    vec![
        Box::new(TopoBaseline),
        Box::new(Wavefront),
        Box::new(Partition),
        Box::new(Greedy::new(GreedyConfig::default())),
        Box::new(Greedy::new(GreedyConfig {
            affinity: Affinity::Fraction,
            ..GreedyConfig::default()
        })),
        Box::new(Greedy::new(GreedyConfig {
            eviction: EvictionPolicy::Lru,
            ..GreedyConfig::default()
        })),
        Box::new(Greedy::new(GreedyConfig {
            allow_recompute: true,
            ..GreedyConfig::default()
        })),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::generators;

    #[test]
    fn registry_runs_everything_on_a_generic_dag() {
        let dag = generators::layered_random(4, 4, 2, 11);
        let inst = MppInstance::new(&dag, 2, 4, 2);
        for s in all_schedulers() {
            let run = s
                .schedule(&inst)
                .unwrap_or_else(|e| panic!("{} failed: {e}", s.name()));
            // Cross-check with the independent validator.
            let cost = run.strategy.validate(&inst).unwrap();
            assert_eq!(cost, run.cost, "{}", s.name());
        }
    }

    #[test]
    fn registry_names_are_distinct() {
        let names: Vec<String> = all_schedulers().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }
}
