//! Single-processor reference scheduler with Belady-style eviction.
//!
//! Computes the nodes in the deterministic topological order; when fast
//! memory fills up, evicts the value whose next use in that order is
//! furthest away (the Belady/MIN choice, optimal for fixed orders in
//! classical caching), storing it first when it will still be needed.
//! Produces a valid SPP strategy; the `k = 1` yardstick for experiments
//! and the paper's "fair comparison" baselines.

use rbp_core::rbp_dag::{Dag, NodeId, NodeSet};
use rbp_core::spp::strategy::validate;
use rbp_core::{Cost, SppInstance, SppMove, SppStrategy};

/// Runs the Belady scheduler; returns the strategy and its cost tally.
///
/// # Panics
/// Panics if the instance is infeasible (`r ≤ Δ_in`) — callers check
/// [`SppInstance::is_feasible`] first.
#[must_use]
pub fn spp_belady(instance: &SppInstance) -> (SppStrategy, Cost) {
    let dag = instance.dag;
    let r = instance.r;
    assert!(instance.is_feasible(), "infeasible instance");
    let _span = rbp_trace::span_with(
        "scheduler.schedule",
        vec![
            ("scheduler", rbp_trace::Json::from("spp-belady")),
            ("n", rbp_trace::Json::from(dag.n() as u64)),
            ("r", rbp_trace::Json::from(r as u64)),
        ],
    );

    let topo = dag.topo();
    let order = topo.order();
    let mut moves: Vec<SppMove> = Vec::new();
    let mut red = dag.empty_set();
    let mut blue = dag.empty_set();
    let mut computed = dag.empty_set();

    // next_use[v] = ranks of v's consumers; we pop as they compute.
    let position: Vec<usize> = {
        let mut pos = vec![0usize; dag.n()];
        for (i, &v) in order.iter().enumerate() {
            pos[v.index()] = i;
        }
        pos
    };

    let next_use = |v: NodeId, from: usize, computed: &NodeSet| -> usize {
        dag.succs(v)
            .iter()
            .filter(|&&s| !computed.contains(s) && position[s.index()] >= from)
            .map(|&s| position[s.index()])
            .min()
            .unwrap_or(usize::MAX)
    };

    for (step, &v) in order.iter().enumerate() {
        // Fetch missing inputs.
        let missing: Vec<NodeId> = dag
            .preds(v)
            .iter()
            .copied()
            .filter(|&u| !red.contains(u))
            .collect();
        let mut protected: NodeSet = dag.empty_set();
        for &u in dag.preds(v) {
            protected.insert(u);
        }
        for u in missing {
            debug_assert!(blue.contains(u), "value {u} lost");
            evict_if_full(
                dag, r, &mut red, &mut blue, &computed, &protected, &mut moves, step, &next_use,
            );
            moves.push(SppMove::Load(u));
            red.insert(u);
        }
        evict_if_full(
            dag, r, &mut red, &mut blue, &computed, &protected, &mut moves, step, &next_use,
        );
        moves.push(SppMove::Compute(v));
        red.insert(v);
        computed.insert(v);
    }

    let strategy = SppStrategy::from_moves(moves);
    let cost = validate(instance, &strategy.moves).expect("belady produced invalid strategy");
    if rbp_trace::enabled() {
        let mut c = rbp_trace::CounterSet::new();
        c.add("scheduler.spp-belady.steps", strategy.moves.len() as u64);
        for m in &strategy.moves {
            let key = match m {
                SppMove::Load(_) => "scheduler.spp-belady.io.loads",
                SppMove::Store(_) => "scheduler.spp-belady.io.stores",
                SppMove::Compute(_) => "scheduler.spp-belady.computes",
                SppMove::RemoveRed(_) | SppMove::RemoveBlue(_) => "scheduler.spp-belady.evictions",
            };
            c.add(key, 1);
        }
        c.add(
            "scheduler.spp-belady.cost.total",
            cost.total(instance.model),
        );
        c.emit("");
    }
    (strategy, cost)
}

#[allow(clippy::too_many_arguments)]
fn evict_if_full(
    dag: &Dag,
    r: usize,
    red: &mut NodeSet,
    blue: &mut NodeSet,
    computed: &NodeSet,
    protected: &NodeSet,
    moves: &mut Vec<SppMove>,
    step: usize,
    next_use: &dyn Fn(NodeId, usize, &NodeSet) -> usize,
) {
    if red.len() < r {
        return;
    }
    // Victim: furthest next use; dead values (next use = MAX, not a sink)
    // naturally sort last -- but sinks must be saved, so rank sinks as
    // "used at the very end".
    let victim = red
        .iter()
        .filter(|&w| !protected.contains(w))
        .max_by_key(|&w| {
            let nu = next_use(w, step, computed);
            let is_sink = dag.out_degree(w) == 0;
            // Prefer evicting dead non-sinks (free), then furthest use.
            (if nu == usize::MAX && !is_sink { 1 } else { 0 }, nu, w)
        })
        .expect("r > Δ_in guarantees an unprotected pebble");
    let needed =
        dag.out_degree(victim) == 0 || dag.succs(victim).iter().any(|&s| !computed.contains(s));
    if needed && !blue.contains(victim) {
        moves.push(SppMove::Store(victim));
        blue.insert(victim);
    }
    moves.push(SppMove::RemoveRed(victim));
    red.remove(victim);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::generators;
    use rbp_core::{solve_spp, SolveLimits};

    #[test]
    fn valid_on_standard_dags() {
        for (dag, r, g) in [
            (generators::chain(20), 2, 3),
            (generators::binary_in_tree(16), 3, 1),
            (generators::fft(4), 3, 2),
            (generators::grid(5, 5), 4, 5),
            (generators::diamond(5), 6, 1),
        ] {
            let inst = SppInstance::with_compute(&dag, r, g);
            let (strategy, cost) = spp_belady(&inst);
            let check = strategy.validate(&inst).unwrap();
            assert_eq!(check, cost, "{}", dag.name());
        }
    }

    #[test]
    fn chain_is_io_free() {
        let dag = generators::chain(50);
        let inst = SppInstance::with_compute(&dag, 2, 10);
        let (_, cost) = spp_belady(&inst);
        assert_eq!(cost.io_steps(), 0);
        assert_eq!(cost.computes, 50);
    }

    #[test]
    fn near_optimal_on_small_trees() {
        // Belady on the fixed topo order is not globally optimal, but on
        // small trees it should be within a small factor of OPT.
        let dag = generators::binary_in_tree(8);
        for r in 4..=6 {
            let inst = SppInstance::with_compute(&dag, r, 2);
            let (_, cost) = spp_belady(&inst);
            let opt = solve_spp(&inst, SolveLimits::default()).unwrap();
            assert!(
                cost.total(inst.model) <= 3 * opt.total,
                "r={r}: belady {} vs opt {}",
                cost.total(inst.model),
                opt.total
            );
        }
    }

    #[test]
    fn ample_memory_means_no_io() {
        let dag = generators::fft(3);
        let inst = SppInstance::with_compute(&dag, dag.n(), 2);
        let (_, cost) = spp_belady(&inst);
        assert_eq!(cost.io_steps(), 0);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn infeasible_instance_panics() {
        let dag = generators::diamond(4);
        let inst = SppInstance::with_compute(&dag, 3, 1);
        let _ = spp_belady(&inst);
    }
}
