//! The Lemma 1 upper-bound strategy.
//!
//! Process the nodes in topological order. For each node `v`, pick a
//! processor round-robin, load `v`'s already-stored inputs from slow
//! memory (≤ Δ_in·g), compute `v` (cost 1), store `v` (cost g), and drop
//! the red pebbles. Total cost ≤ `(g·(Δ_in + 1) + 1)·n`, which is the
//! Lemma 1 upper bound. Deliberately naive — it is the yardstick every
//! other scheduler must beat.

use rbp_core::{MppError, MppInstance, MppRun, MppSimulator};

use crate::MppScheduler;

/// The Lemma 1 baseline scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoBaseline;

impl MppScheduler for TopoBaseline {
    fn name(&self) -> String {
        "topo-baseline".into()
    }

    fn schedule(&self, instance: &MppInstance) -> Result<MppRun, MppError> {
        let _span = rbp_trace::span_with(
            "scheduler.schedule",
            vec![
                ("scheduler", rbp_trace::Json::from("topo-baseline")),
                ("n", rbp_trace::Json::from(instance.dag.n() as u64)),
                ("k", rbp_trace::Json::from(instance.k as u64)),
            ],
        );
        let dag = instance.dag;
        let topo = dag.topo();
        let mut sim = MppSimulator::new(*instance);
        for (i, &v) in topo.order().iter().enumerate() {
            let p = i % instance.k;
            // Load inputs (every non-source value was stored when computed).
            for &u in dag.preds(v) {
                sim.load(vec![(p, u)])?;
            }
            sim.compute(vec![(p, v)])?;
            sim.store(vec![(p, v)])?;
            // Drop everything red on p again.
            for &u in dag.preds(v) {
                sim.remove_red(p, u)?;
            }
            sim.remove_red(p, v)?;
        }
        let run = sim.finish()?;
        crate::trace_run(&self.name(), instance, &run);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::{generators, DagStats};

    #[test]
    fn respects_lemma1_upper_bound() {
        for (dag, k, r, g) in [
            (generators::binary_in_tree(8), 2, 3, 3),
            (generators::grid(3, 4), 3, 3, 2),
            (generators::fft(3), 2, 3, 5),
            (generators::layered_random(5, 4, 3, 9), 4, 4, 4),
        ] {
            let inst = MppInstance::new(&dag, k, r, g);
            let run = TopoBaseline.schedule(&inst).unwrap();
            let stats = DagStats::compute(&dag);
            let bound = (g * (stats.max_in_degree as u64 + 1) + 1) * stats.n as u64;
            assert!(
                run.cost.total(inst.model) <= bound,
                "cost {} > bound {bound} on {}",
                run.cost.total(inst.model),
                dag.name()
            );
        }
    }

    #[test]
    fn works_at_minimum_feasible_memory() {
        let dag = generators::diamond(6); // Δin = 6
        let inst = MppInstance::new(&dag, 2, 7, 2);
        let run = TopoBaseline.schedule(&inst).unwrap();
        run.strategy.validate(&inst).unwrap();
    }

    #[test]
    fn single_processor_works() {
        let dag = generators::chain(10);
        let inst = MppInstance::new(&dag, 1, 2, 1);
        let run = TopoBaseline.schedule(&inst).unwrap();
        // Chain: each node loads 1 input, computes, stores.
        assert_eq!(run.cost.computes, 10);
        assert_eq!(run.cost.stores, 10);
        assert_eq!(run.cost.loads, 9);
    }

    #[test]
    fn empty_dag_costs_nothing() {
        let dag = rbp_core::rbp_dag::dag_from_edges(0, &[]);
        let inst = MppInstance::new(&dag, 2, 1, 1);
        let run = TopoBaseline.schedule(&inst).unwrap();
        assert_eq!(run.cost.total(inst.model), 0);
    }
}
