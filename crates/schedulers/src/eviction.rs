//! Eviction policies: which red pebble to sacrifice when fast memory is
//! full.
//!
//! Policies only *rank* candidates; the schedulers decide which pebbles
//! are protected (inputs of an in-flight compute) and handle the store-
//! before-drop bookkeeping that keeps last copies safe.

use rbp_core::rbp_dag::{Dag, NodeId, NodeSet};

/// Strategy for choosing an eviction victim among unprotected red pebbles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EvictionPolicy {
    /// Evict the value whose next use (smallest topological rank among
    /// uncomputed successors) is furthest in the future — the Belady-style
    /// choice under the scheduler's topological processing order.
    #[default]
    FurthestUse,
    /// Evict the least-recently-touched value.
    Lru,
    /// Evict the value with the fewest remaining uncomputed successors.
    FewestUses,
}

/// Context a policy needs to rank candidates.
pub struct EvictionContext<'a> {
    /// The DAG being pebbled.
    pub dag: &'a Dag,
    /// Topological rank of every node (processing order proxy).
    pub topo_rank: &'a [usize],
    /// Globally computed nodes (used to find *uncomputed* successors).
    pub computed: &'a NodeSet,
    /// Last tick each node was touched on this processor (LRU).
    pub last_touch: &'a [u64],
}

impl EvictionPolicy {
    /// Short stable name used in trace counter keys and experiment
    /// tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EvictionPolicy::FurthestUse => "furthest-use",
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::FewestUses => "fewest-uses",
        }
    }

    /// Picks a victim among `candidates` (must be non-empty).
    ///
    /// Dead values — nodes that are neither sinks nor have uncomputed
    /// successors — are always preferred regardless of policy: evicting
    /// them never costs a store or a reload.
    #[must_use]
    pub fn pick(self, ctx: &EvictionContext, candidates: &[NodeId]) -> NodeId {
        assert!(!candidates.is_empty(), "no eviction candidates");
        // One counter line per eviction decision, attributed to the
        // policy; trace consumers sum the deltas. Off the hot path when
        // no sink is installed.
        if rbp_trace::enabled() {
            rbp_trace::counter(&format!("eviction.{}.picks", self.name()), 1);
        }
        // Dead first.
        if let Some(&dead) = candidates.iter().find(|&&v| {
            ctx.dag.out_degree(v) > 0 && ctx.dag.succs(v).iter().all(|&s| ctx.computed.contains(s))
        }) {
            return dead;
        }
        match self {
            EvictionPolicy::FurthestUse => *candidates
                .iter()
                .max_by_key(|&&v| (next_use_rank(ctx, v), v))
                .unwrap(),
            EvictionPolicy::Lru => *candidates
                .iter()
                .min_by_key(|&&v| (ctx.last_touch[v.index()], v))
                .unwrap(),
            EvictionPolicy::FewestUses => *candidates
                .iter()
                .min_by_key(|&&v| {
                    let uses = ctx
                        .dag
                        .succs(v)
                        .iter()
                        .filter(|&&s| !ctx.computed.contains(s))
                        .count();
                    (uses, v)
                })
                .unwrap(),
        }
    }
}

/// Smallest topological rank among uncomputed successors of `v`
/// (`usize::MAX` when all successors are computed — or `v` is a sink).
fn next_use_rank(ctx: &EvictionContext, v: NodeId) -> usize {
    ctx.dag
        .succs(v)
        .iter()
        .filter(|&&s| !ctx.computed.contains(s))
        .map(|&s| ctx.topo_rank[s.index()])
        .min()
        .unwrap_or(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::{dag_from_edges, NodeSet};

    /// 0 -> 2, 1 -> 3 (2 before 3 topologically).
    fn ctx_dag() -> rbp_core::rbp_dag::Dag {
        dag_from_edges(4, &[(0, 2), (1, 3)])
    }

    #[test]
    fn dead_values_always_preferred() {
        let d = ctx_dag();
        let rank: Vec<usize> = (0..4).collect();
        // 2 computed → 0 is dead.
        let computed = NodeSet::from_iter(4, [NodeId(0), NodeId(1), NodeId(2)]);
        let touch = vec![0; 4];
        let ctx = EvictionContext {
            dag: &d,
            topo_rank: &rank,
            computed: &computed,
            last_touch: &touch,
        };
        for policy in [
            EvictionPolicy::FurthestUse,
            EvictionPolicy::Lru,
            EvictionPolicy::FewestUses,
        ] {
            assert_eq!(policy.pick(&ctx, &[NodeId(1), NodeId(0)]), NodeId(0));
        }
    }

    #[test]
    fn furthest_use_prefers_later_consumer() {
        let d = ctx_dag();
        let rank: Vec<usize> = (0..4).collect();
        let computed = NodeSet::from_iter(4, [NodeId(0), NodeId(1)]);
        let touch = vec![0; 4];
        let ctx = EvictionContext {
            dag: &d,
            topo_rank: &rank,
            computed: &computed,
            last_touch: &touch,
        };
        // 0 is next used at rank 2, 1 at rank 3 → evict 1.
        assert_eq!(
            EvictionPolicy::FurthestUse.pick(&ctx, &[NodeId(0), NodeId(1)]),
            NodeId(1)
        );
    }

    #[test]
    fn lru_prefers_oldest_touch() {
        let d = ctx_dag();
        let rank: Vec<usize> = (0..4).collect();
        let computed = NodeSet::from_iter(4, [NodeId(0), NodeId(1)]);
        let touch = vec![5, 2, 0, 0];
        let ctx = EvictionContext {
            dag: &d,
            topo_rank: &rank,
            computed: &computed,
            last_touch: &touch,
        };
        assert_eq!(
            EvictionPolicy::Lru.pick(&ctx, &[NodeId(0), NodeId(1)]),
            NodeId(1)
        );
    }

    #[test]
    fn fewest_uses_prefers_nearly_dead() {
        // 0 feeds two uncomputed nodes, 1 feeds one.
        let d = dag_from_edges(5, &[(0, 2), (0, 3), (1, 4)]);
        let rank: Vec<usize> = (0..5).collect();
        let computed = NodeSet::from_iter(5, [NodeId(0), NodeId(1)]);
        let touch = vec![0; 5];
        let ctx = EvictionContext {
            dag: &d,
            topo_rank: &rank,
            computed: &computed,
            last_touch: &touch,
        };
        assert_eq!(
            EvictionPolicy::FewestUses.pick(&ctx, &[NodeId(0), NodeId(1)]),
            NodeId(1)
        );
    }

    #[test]
    #[should_panic(expected = "no eviction candidates")]
    fn empty_candidates_panic() {
        let d = ctx_dag();
        let rank: Vec<usize> = (0..4).collect();
        let computed = NodeSet::new(4);
        let touch = vec![0; 4];
        let ctx = EvictionContext {
            dag: &d,
            topo_rank: &rank,
            computed: &computed,
            last_touch: &touch,
        };
        let _ = EvictionPolicy::Lru.pick(&ctx, &[]);
    }
}
