//! Owner-computes partitioned scheduling.
//!
//! Every node is assigned an owner processor up front (most-inputs-local
//! affinity, least-loaded tie-break, in topological order). Execution is
//! round-based: each round, every processor tries to compute its next
//! owned node in topological order; inputs owned by other processors are
//! fetched through slow memory (the owner stores a value as soon as it is
//! computed if any consumer lives elsewhere). Rounds batch the computes
//! of all ready processors, so embarrassingly parallel partitions run at
//! full width while cross-partition chains serialize naturally.

use rbp_core::rbp_dag::{NodeId, NodeSet};
use rbp_core::{MppError, MppInstance, MppRun, MppSimulator, ProcId};

use crate::eviction::{EvictionContext, EvictionPolicy};
use crate::MppScheduler;

/// The owner-computes partition scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Partition;

impl Partition {
    /// Computes the owner assignment: in topological order, each node goes
    /// to the processor holding most of its inputs; ties to the least
    /// loaded processor.
    #[must_use]
    pub fn assign(instance: &MppInstance) -> Vec<ProcId> {
        let dag = instance.dag;
        let k = instance.k;
        let topo = dag.topo();
        let mut owner = vec![0usize; dag.n()];
        let mut load = vec![0usize; k];
        for &v in topo.order() {
            let mut counts = vec![0usize; k];
            for &u in dag.preds(v) {
                counts[owner[u.index()]] += 1;
            }
            let best = (0..k)
                .max_by_key(|&p| (counts[p], std::cmp::Reverse(load[p])))
                .unwrap_or(0);
            owner[v.index()] = best;
            load[best] += 1;
        }
        owner
    }
}

impl MppScheduler for Partition {
    fn name(&self) -> String {
        "partition".into()
    }

    fn schedule(&self, instance: &MppInstance) -> Result<MppRun, MppError> {
        let _span = rbp_trace::span_with(
            "scheduler.schedule",
            vec![
                ("scheduler", rbp_trace::Json::from("partition")),
                ("n", rbp_trace::Json::from(instance.dag.n() as u64)),
                ("k", rbp_trace::Json::from(instance.k as u64)),
            ],
        );
        let dag = instance.dag;
        let k = instance.k;
        let r = instance.r;
        let topo = dag.topo();
        let owner = Self::assign(instance);
        let topo_rank: Vec<usize> = (0..dag.n()).map(|i| topo.rank(NodeId::new(i))).collect();

        // Per-processor work queues in topological order.
        let mut queues: Vec<std::collections::VecDeque<NodeId>> =
            vec![std::collections::VecDeque::new(); k];
        for &v in topo.order() {
            queues[owner[v.index()]].push_back(v);
        }

        let mut sim = MppSimulator::new(*instance);
        let last_touch = vec![0u64; dag.n()];
        let max_rounds = 4 * dag.n() + 16;
        for _ in 0..max_rounds {
            if queues.iter().all(std::collections::VecDeque::is_empty) {
                break;
            }
            // Which processors can compute their queue head this round?
            let mut batch: Vec<(ProcId, NodeId)> = Vec::new();
            #[allow(clippy::needless_range_loop)] // queues is popped below
            for p in 0..k {
                let Some(&v) = queues[p].front() else {
                    continue;
                };
                // v is ready iff all inputs are computed (then they are
                // red on p already or fetchable from blue).
                let ready = dag
                    .preds(v)
                    .iter()
                    .all(|&u| sim.config().computed.contains(u));
                if !ready {
                    continue;
                }
                // Fetch missing inputs from slow memory.
                let missing: Vec<NodeId> = dag
                    .preds(v)
                    .iter()
                    .copied()
                    .filter(|&u| !sim.config().reds[p].contains(u))
                    .collect();
                let mut protected = NodeSet::new(dag.n());
                for &u in dag.preds(v) {
                    if sim.config().reds[p].contains(u) {
                        protected.insert(u);
                    }
                }
                for u in missing {
                    // Cross-owner values were stored at compute time; an
                    // evicted local value was stored on eviction.
                    debug_assert!(sim.config().blue.contains(u), "value {u} lost");
                    make_room(&mut sim, p, r, &protected, &topo_rank, &last_touch)?;
                    sim.load(vec![(p, u)])?;
                    protected.insert(u);
                }
                make_room(&mut sim, p, r, &protected, &topo_rank, &last_touch)?;
                batch.push((p, v));
                queues[p].pop_front();
            }
            if batch.is_empty() {
                // All heads blocked: progress requires a store of some
                // already-computed dependency — but computed values are
                // always stored eagerly below, so this means deadlock.
                break;
            }
            sim.compute(batch.clone())?;
            // Eager store of values with remote consumers (or sink
            // outputs), so consumers never stall on us later.
            for &(p, v) in &batch {
                let needed_remotely =
                    dag.succs(v).iter().any(|&s| owner[s.index()] != p) || dag.out_degree(v) == 0;
                if needed_remotely && !sim.config().blue.contains(v) {
                    sim.store(vec![(p, v)])?;
                }
            }
        }
        let run = sim.finish()?;
        crate::trace_run(&self.name(), instance, &run);
        Ok(run)
    }
}

/// Evicts (storing first when it is the last copy of a needed value)
/// until processor `p` has a free slot.
fn make_room(
    sim: &mut MppSimulator,
    p: ProcId,
    r: usize,
    protected: &NodeSet,
    topo_rank: &[usize],
    last_touch: &[u64],
) -> Result<(), MppError> {
    if sim.config().reds[p].len() < r {
        return Ok(());
    }
    let dag = sim.instance().dag;
    let candidates: Vec<NodeId> = sim.config().reds[p]
        .iter()
        .filter(|&w| !protected.contains(w))
        .collect();
    let ctx = EvictionContext {
        dag,
        topo_rank,
        computed: &sim.config().computed,
        last_touch,
    };
    let victim = EvictionPolicy::FurthestUse.pick(&ctx, &candidates);
    let needed = dag.out_degree(victim) == 0
        || dag
            .succs(victim)
            .iter()
            .any(|&s| !sim.config().computed.contains(s));
    if needed && !sim.config().blue.contains(victim) {
        sim.store(vec![(p, victim)])?;
    }
    sim.remove_red(p, victim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::generators;
    use rbp_core::MppRunStats;

    #[test]
    fn valid_on_standard_dags() {
        for (dag, k, r, g) in [
            (generators::independent_chains(4, 8), 4, 2, 3),
            (generators::fft(3), 2, 3, 2),
            (generators::binary_in_tree(16), 3, 3, 1),
            (generators::grid(4, 4), 2, 4, 5),
            (generators::layered_random(5, 6, 2, 21), 3, 3, 2),
        ] {
            let inst = MppInstance::new(&dag, k, r, g);
            let run = Partition.schedule(&inst).unwrap();
            let cost = run.strategy.validate(&inst).unwrap();
            assert_eq!(cost, run.cost, "{}", dag.name());
        }
    }

    #[test]
    fn independent_chains_need_no_io() {
        // Perfect partition: each chain on its own processor, zero I/O
        // except nothing — chain sinks stay red.
        let dag = generators::independent_chains(3, 10);
        let inst = MppInstance::new(&dag, 3, 2, 5);
        let run = Partition.schedule(&inst).unwrap();
        assert_eq!(run.cost.computes, 10, "chains run in lockstep");
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        assert_eq!(stats.communication_transfers(), 0);
    }

    #[test]
    fn assignment_balances_independent_work() {
        let dag = generators::independent_chains(4, 5);
        let inst = MppInstance::new(&dag, 4, 2, 1);
        let owner = Partition::assign(&inst);
        let mut per_proc = vec![0; 4];
        for &o in &owner {
            per_proc[o] += 1;
        }
        assert_eq!(per_proc, vec![5, 5, 5, 5]);
    }

    #[test]
    fn affinity_keeps_chains_on_one_processor() {
        let dag = generators::independent_chains(2, 6);
        let inst = MppInstance::new(&dag, 2, 2, 1);
        let owner = Partition::assign(&inst);
        // Nodes 0..6 are chain A, 6..12 chain B: each chain single-owner.
        for c in 0..2 {
            let owners: Vec<_> = (c * 6..(c + 1) * 6).map(|i| owner[i]).collect();
            assert!(owners.windows(2).all(|w| w[0] == w[1]), "{owners:?}");
        }
    }
}
