//! The paper's greedy scheduler class (§4, Lemmas 3–4).
//!
//! Each round, every processor `p` picks the *ready* uncomputed node with
//! the largest number (or fraction) of in-neighbours currently holding a
//! red pebble of `p`'s shade, fetches the missing inputs through slow
//! memory (store by the owner, load by `p`), and all chosen nodes are
//! computed in one batched R3-M step. How ties are broken, how fast
//! memory is evicted, and whether cheap recomputation replaces I/O are
//! configuration knobs — Lemma 4's lower bound holds for the *whole*
//! class, so the experiments sweep these knobs.
//!
//! Invariant maintained throughout: the last copy of a value that is a
//! sink or still has uncomputed successors is never destroyed (it is
//! stored to slow memory first), so fetches always succeed and the final
//! configuration is terminal.

use rbp_core::rbp_dag::{NodeId, NodeSet};
use rbp_core::{MppError, MppErrorKind, MppInstance, MppRun, MppSimulator, ProcId};

use crate::eviction::{EvictionContext, EvictionPolicy};
use crate::MppScheduler;

/// Affinity metric: how a processor scores candidate nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Affinity {
    /// Largest number of in-neighbours with a red pebble of this shade.
    #[default]
    Count,
    /// Largest fraction of in-neighbours with a red pebble of this shade.
    Fraction,
}

/// Tie-breaking among equally attractive candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TieBreak {
    /// Earliest in the deterministic topological order.
    #[default]
    SmallestRank,
    /// Smallest node id.
    SmallestId,
    /// Most successors (unlocks the most future work).
    MostSuccessors,
}

/// Configuration of a greedy scheduler instance.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyConfig {
    /// Candidate scoring.
    pub affinity: Affinity,
    /// Tie-breaking rule.
    pub tie_break: TieBreak,
    /// Eviction policy for full fast memories.
    pub eviction: EvictionPolicy,
    /// Recompute an input on the spot when that is cheaper than I/O
    /// (§3.3/§4 recomputation trade-off).
    pub allow_recompute: bool,
}

/// The greedy scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Greedy {
    config: GreedyConfig,
}

impl Greedy {
    /// Creates a greedy scheduler with the given knobs.
    #[must_use]
    pub fn new(config: GreedyConfig) -> Self {
        Greedy { config }
    }
}

impl MppScheduler for Greedy {
    fn name(&self) -> String {
        let c = &self.config;
        format!(
            "greedy({}{}, {:?}, {:?})",
            match c.affinity {
                Affinity::Count => "count",
                Affinity::Fraction => "fraction",
            },
            if c.allow_recompute { "+recompute" } else { "" },
            c.tie_break,
            c.eviction,
        )
    }

    fn schedule(&self, instance: &MppInstance) -> Result<MppRun, MppError> {
        let name = self.name();
        let _span = rbp_trace::span_with(
            "scheduler.schedule",
            vec![
                ("scheduler", rbp_trace::Json::from(name.as_str())),
                ("n", rbp_trace::Json::from(instance.dag.n() as u64)),
                ("k", rbp_trace::Json::from(instance.k as u64)),
            ],
        );
        let run = GreedyRun::new(*instance, self.config).run()?;
        crate::trace_run(&name, instance, &run);
        Ok(run)
    }
}

struct GreedyRun<'a> {
    sim: MppSimulator<'a>,
    cfg: GreedyConfig,
    k: usize,
    r: usize,
    topo_rank: Vec<usize>,
    /// last_touch[p][v]: tick of last access by processor p.
    last_touch: Vec<Vec<u64>>,
    tick: u64,
}

impl<'a> GreedyRun<'a> {
    fn new(instance: MppInstance<'a>, cfg: GreedyConfig) -> Self {
        let topo = instance.dag.topo();
        let n = instance.dag.n();
        let topo_rank: Vec<usize> = (0..n).map(|i| topo.rank(NodeId::new(i))).collect();
        GreedyRun {
            k: instance.k,
            r: instance.r,
            sim: MppSimulator::new(instance),
            cfg,
            topo_rank,
            last_touch: vec![vec![0; n]; instance.k],
            tick: 0,
        }
    }

    fn run(mut self) -> Result<MppRun, MppError> {
        let dag = self.sim.instance().dag;
        let n = dag.n();
        let max_rounds = 20 * n + 100;
        for _round in 0..max_rounds {
            if self.sim.config().computed.len() == n {
                break;
            }
            self.tick += 1;
            let targets = self.claim_targets();
            if targets.is_empty() {
                // Should be impossible: ready nodes exist while any node
                // is uncomputed.
                return Err(MppError {
                    step: self.sim.steps(),
                    kind: MppErrorKind::EmptySelection,
                });
            }
            // Fetch inputs per processor.
            for &(p, v) in &targets {
                self.fetch_inputs(p, v)?;
            }
            // One batched compute step for all targets.
            let batch: Vec<(ProcId, NodeId)> = targets.clone();
            for &(p, v) in &batch {
                self.make_room(p, &self.protected_for(p, v))?;
                self.touch(p, v);
                for &u in dag.preds(v) {
                    self.touch(p, u);
                }
            }
            self.sim.compute(batch)?;
        }
        self.sim.finish()
    }

    /// Ready nodes: uncomputed, all predecessors computed.
    fn ready_nodes(&self) -> Vec<NodeId> {
        let dag = self.sim.instance().dag;
        let computed = &self.sim.config().computed;
        dag.nodes()
            .filter(|&v| {
                !computed.contains(v) && dag.preds(v).iter().all(|&u| computed.contains(u))
            })
            .collect()
    }

    /// Each processor claims its best unclaimed ready node.
    fn claim_targets(&self) -> Vec<(ProcId, NodeId)> {
        let dag = self.sim.instance().dag;
        let ready = self.ready_nodes();
        let mut claimed = NodeSet::new(dag.n());
        let mut out = Vec::new();
        for p in 0..self.k {
            let reds = &self.sim.config().reds[p];
            let best = ready
                .iter()
                .copied()
                .filter(|&v| !claimed.contains(v))
                .max_by(|&a, &b| {
                    self.score(p, a, reds)
                        .partial_cmp(&self.score(p, b, reds))
                        .unwrap()
                        .then_with(|| self.tie_key(b).cmp(&self.tie_key(a)))
                });
            if let Some(v) = best {
                claimed.insert(v);
                out.push((p, v));
            }
        }
        out
    }

    fn score(&self, p: ProcId, v: NodeId, reds: &NodeSet) -> f64 {
        let dag = self.sim.instance().dag;
        let have = dag.preds(v).iter().filter(|&&u| reds.contains(u)).count() as f64;
        let _ = p;
        match self.cfg.affinity {
            Affinity::Count => have,
            Affinity::Fraction => have / (dag.preds(v).len().max(1) as f64),
        }
    }

    /// Smaller key = preferred on ties.
    fn tie_key(&self, v: NodeId) -> (usize, usize) {
        let dag = self.sim.instance().dag;
        match self.cfg.tie_break {
            TieBreak::SmallestRank => (self.topo_rank[v.index()], v.index()),
            TieBreak::SmallestId => (v.index(), 0),
            TieBreak::MostSuccessors => (usize::MAX - dag.out_degree(v), v.index()),
        }
    }

    /// Brings every input of `v` into `p`'s fast memory.
    fn fetch_inputs(&mut self, p: ProcId, v: NodeId) -> Result<(), MppError> {
        let dag = self.sim.instance().dag;
        let missing: Vec<NodeId> = dag
            .preds(v)
            .iter()
            .copied()
            .filter(|&u| !self.sim.config().reds[p].contains(u))
            .collect();
        for u in missing {
            if self.sim.config().reds[p].contains(u) {
                continue; // may have been recomputed as a side effect
            }
            let protected = self.protected_for(p, v);
            if self.cfg.allow_recompute && self.recompute_beneficial(p, u) {
                // Recomputing u must not evict u's own inputs.
                let mut prot = protected.clone();
                for &w in dag.preds(u) {
                    if self.sim.config().reds[p].contains(w) {
                        prot.insert(w);
                    }
                }
                if self.try_make_room(p, &prot)? {
                    self.touch(p, u);
                    self.sim.compute(vec![(p, u)])?;
                    continue;
                }
                // No evictable slot with the larger protected set; fall
                // through to the I/O path.
            }
            // Ensure a blue copy exists.
            if !self.sim.config().blue.contains(u) {
                let owner = (0..self.k)
                    .find(|&q| self.sim.config().reds[q].contains(u))
                    .expect("last-copy invariant violated: value lost");
                self.sim.store(vec![(owner, u)])?;
            }
            self.make_room(p, &protected)?;
            self.touch(p, u);
            self.sim.load(vec![(p, u)])?;
        }
        Ok(())
    }

    /// Inputs of `v` must not be evicted while fetching/computing `v`.
    fn protected_for(&self, p: ProcId, v: NodeId) -> NodeSet {
        let dag = self.sim.instance().dag;
        let mut prot = NodeSet::new(dag.n());
        for &u in dag.preds(v) {
            if self.sim.config().reds[p].contains(u) {
                prot.insert(u);
            }
        }
        prot
    }

    /// Recomputing `u` on `p` is legal now and cheaper than fetching it.
    fn recompute_beneficial(&self, p: ProcId, u: NodeId) -> bool {
        let inst = self.sim.instance();
        let dag = inst.dag;
        let reds = &self.sim.config().reds[p];
        if !dag.preds(u).iter().all(|&w| reds.contains(w)) {
            return false;
        }
        let fetch_cost = if self.sim.config().blue.contains(u) {
            inst.model.g
        } else {
            2 * inst.model.g
        };
        inst.model.compute < fetch_cost
    }

    /// Frees one slot in `p`'s fast memory if it is full.
    ///
    /// # Panics
    /// Panics if the memory is full and every pebble is protected; callers
    /// keep `|protected| ≤ Δ_in < r` so this cannot happen. Use
    /// [`Self::try_make_room`] when the protected set may be larger.
    fn make_room(&mut self, p: ProcId, protected: &NodeSet) -> Result<(), MppError> {
        let ok = self.try_make_room(p, protected)?;
        assert!(ok, "no evictable pebble on processor {p}");
        Ok(())
    }

    /// Frees one slot if full; returns `Ok(false)` when full but every
    /// pebble is protected.
    fn try_make_room(&mut self, p: ProcId, protected: &NodeSet) -> Result<bool, MppError> {
        if self.sim.config().reds[p].len() < self.r {
            return Ok(true);
        }
        let dag = self.sim.instance().dag;
        let candidates: Vec<NodeId> = self.sim.config().reds[p]
            .iter()
            .filter(|&w| !protected.contains(w))
            .collect();
        if candidates.is_empty() {
            return Ok(false);
        }
        let ctx = EvictionContext {
            dag,
            topo_rank: &self.topo_rank,
            computed: &self.sim.config().computed,
            last_touch: &self.last_touch[p],
        };
        let victim = self.cfg.eviction.pick(&ctx, &candidates);
        // Store-before-drop when this is the last copy of a needed value.
        let needed = dag.out_degree(victim) == 0
            || dag
                .succs(victim)
                .iter()
                .any(|&s| !self.sim.config().computed.contains(s));
        let other_copy = self.sim.config().blue.contains(victim)
            || (0..self.k).any(|q| q != p && self.sim.config().reds[q].contains(victim));
        if needed && !other_copy {
            self.sim.store(vec![(p, victim)])?;
        }
        self.sim.remove_red(p, victim)?;
        Ok(true)
    }

    fn touch(&mut self, p: ProcId, v: NodeId) {
        self.last_touch[p][v.index()] = self.tick;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::{dag_from_edges, generators, DagStats};
    use rbp_core::MppRunStats;

    fn run_all_configs(dag: &rbp_core::rbp_dag::Dag, k: usize, r: usize, g: u64) {
        let inst = MppInstance::new(dag, k, r, g);
        for affinity in [Affinity::Count, Affinity::Fraction] {
            for tie in [
                TieBreak::SmallestRank,
                TieBreak::SmallestId,
                TieBreak::MostSuccessors,
            ] {
                for ev in [
                    EvictionPolicy::FurthestUse,
                    EvictionPolicy::Lru,
                    EvictionPolicy::FewestUses,
                ] {
                    for rec in [false, true] {
                        let s = Greedy::new(GreedyConfig {
                            affinity,
                            tie_break: tie,
                            eviction: ev,
                            allow_recompute: rec,
                        });
                        let run = s
                            .schedule(&inst)
                            .unwrap_or_else(|e| panic!("{} failed: {e}", s.name()));
                        let cost = run.strategy.validate(&inst).unwrap();
                        assert_eq!(cost, run.cost, "{}", s.name());
                    }
                }
            }
        }
    }

    #[test]
    fn all_configs_valid_on_tree() {
        run_all_configs(&generators::binary_in_tree(8), 2, 3, 3);
    }

    #[test]
    fn all_configs_valid_on_fft() {
        run_all_configs(&generators::fft(3), 3, 3, 2);
    }

    #[test]
    fn all_configs_valid_on_tight_memory_grid() {
        run_all_configs(&generators::grid(4, 4), 2, 3, 5);
    }

    #[test]
    fn all_configs_valid_on_random_layered() {
        run_all_configs(&generators::layered_random(5, 6, 3, 3), 4, 4, 2);
    }

    #[test]
    fn chain_on_one_processor_is_optimal() {
        // A chain has no parallelism or memory pressure: greedy should
        // find the I/O-free schedule.
        let dag = generators::chain(20);
        let inst = MppInstance::new(&dag, 1, 2, 10);
        let run = Greedy::default().schedule(&inst).unwrap();
        assert_eq!(run.cost.io_steps(), 0);
        assert_eq!(run.cost.computes, 20);
    }

    #[test]
    fn parallel_chains_use_batched_computes() {
        let dag = generators::independent_chains(2, 10);
        let inst = MppInstance::new(&dag, 2, 3, 5);
        let run = Greedy::default().schedule(&inst).unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        assert!(
            stats.avg_compute_batch > 1.5,
            "expected parallel batches, got {}",
            stats.avg_compute_batch
        );
        assert_eq!(run.cost.computes, 10, "chains advance in lockstep");
    }

    #[test]
    fn respects_lemma3_worst_case_bound() {
        // Greedy is never worse than 2(g(Δin+1)+1)·OPT ≥ the Lemma 1
        // bound; sanity-check against the absolute Lemma 1 ceiling.
        let dag = generators::layered_random(4, 5, 2, 17);
        let stats = DagStats::compute(&dag);
        let inst = MppInstance::new(&dag, 2, 4, 3);
        let run = Greedy::default().schedule(&inst).unwrap();
        let ceiling = (3 * (stats.max_in_degree as u64 + 1) + 1) * stats.n as u64;
        assert!(run.cost.total(inst.model) <= ceiling);
    }

    #[test]
    fn recompute_config_avoids_io_on_zipper_shape() {
        // Two source groups feeding a chain: with tight memory the
        // recompute-enabled greedy should spend computes instead of I/O
        // for the cheap sources when g is large.
        let dag = dag_from_edges(
            8,
            &[
                (0, 2),
                (1, 2),
                (0, 3),
                (1, 3),
                (0, 4),
                (1, 4),
                (2, 5),
                (3, 6),
                (5, 6),
                (4, 7),
                (6, 7),
            ],
        );
        let inst = MppInstance::new(&dag, 1, 3, 10);
        let no_rec = Greedy::new(GreedyConfig::default())
            .schedule(&inst)
            .unwrap();
        let with_rec = Greedy::new(GreedyConfig {
            allow_recompute: true,
            ..GreedyConfig::default()
        })
        .schedule(&inst)
        .unwrap();
        assert!(
            with_rec.cost.total(inst.model) <= no_rec.cost.total(inst.model),
            "recompute {} vs plain {}",
            with_rec.cost.total(inst.model),
            no_rec.cost.total(inst.model)
        );
    }

    #[test]
    fn minimum_feasible_memory_works() {
        let dag = generators::diamond(4); // Δin = 4
        let inst = MppInstance::new(&dag, 2, 5, 2);
        let run = Greedy::default().schedule(&inst).unwrap();
        run.strategy.validate(&inst).unwrap();
    }
}
