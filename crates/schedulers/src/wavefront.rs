//! Level-synchronous ("wavefront") scheduling.
//!
//! Nodes are processed one topological level at a time; within a level
//! they are dealt round-robin to the `k` processors and computed in
//! batched R3-M steps of up to `k` nodes. Every computed value is stored
//! to slow memory immediately and inputs are always (re)loaded from slow
//! memory, so the strategy is valid for any feasible `r` at the price of
//! heavy I/O — the classic BSP-style superstep execution that MPP's cost
//! function lets us compare against smarter locality-aware schedules.

use rbp_core::rbp_dag::NodeId;
use rbp_core::{MppError, MppInstance, MppRun, MppSimulator, ProcId};

use crate::MppScheduler;

/// The level-synchronous scheduler.
#[derive(Debug, Clone, Copy, Default)]
pub struct Wavefront;

impl MppScheduler for Wavefront {
    fn name(&self) -> String {
        "wavefront".into()
    }

    fn schedule(&self, instance: &MppInstance) -> Result<MppRun, MppError> {
        let _span = rbp_trace::span_with(
            "scheduler.schedule",
            vec![
                ("scheduler", rbp_trace::Json::from("wavefront")),
                ("n", rbp_trace::Json::from(instance.dag.n() as u64)),
                ("k", rbp_trace::Json::from(instance.k as u64)),
            ],
        );
        let dag = instance.dag;
        let k = instance.k;
        let topo = dag.topo();
        let mut sim = MppSimulator::new(*instance);
        for level in topo.levels() {
            // Waves of ≤ k nodes within the level.
            for wave in level.chunks(k) {
                let assignment: Vec<(ProcId, NodeId)> =
                    wave.iter().enumerate().map(|(i, &v)| (i, v)).collect();
                // Load phase: fetch each node's inputs; batch loads where
                // vertices are distinct across processors.
                let mut pending: Vec<Vec<NodeId>> = assignment
                    .iter()
                    .map(|&(p, v)| {
                        dag.preds(v)
                            .iter()
                            .copied()
                            .filter(|&u| !sim.config().reds[p].contains(u))
                            .collect()
                    })
                    .collect();
                loop {
                    let mut batch: Vec<(ProcId, NodeId)> = Vec::new();
                    let mut used = dag.empty_set();
                    for (i, &(p, _)) in assignment.iter().enumerate() {
                        // Pop the first pending input not already claimed
                        // by another processor this step.
                        if let Some(pos) = pending[i].iter().position(|&u| !used.contains(u)) {
                            let u = pending[i].remove(pos);
                            used.insert(u);
                            batch.push((p, u));
                        }
                    }
                    if batch.is_empty() {
                        break;
                    }
                    sim.load(batch)?;
                }
                // Compute phase: one batched step for the whole wave.
                sim.compute(assignment.clone())?;
                // Store phase: one batched step (vertices distinct).
                sim.store(assignment.clone())?;
                // Drop all red pebbles again.
                for &(p, v) in &assignment {
                    for &u in dag.preds(v) {
                        if sim.config().reds[p].contains(u) {
                            sim.remove_red(p, u)?;
                        }
                    }
                    sim.remove_red(p, v)?;
                }
            }
        }
        let run = sim.finish()?;
        crate::trace_run(&self.name(), instance, &run);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::rbp_dag::generators;
    use rbp_core::MppRunStats;

    #[test]
    fn valid_on_standard_dags() {
        for (dag, k, r, g) in [
            (generators::fft(3), 4, 3, 2),
            (generators::binary_in_tree(16), 2, 3, 1),
            (generators::grid(4, 5), 3, 3, 3),
            (generators::layered_random(6, 8, 2, 5), 4, 3, 2),
        ] {
            let inst = MppInstance::new(&dag, k, r, g);
            let run = Wavefront.schedule(&inst).unwrap();
            let cost = run.strategy.validate(&inst).unwrap();
            assert_eq!(cost, run.cost, "{}", dag.name());
        }
    }

    #[test]
    fn wide_levels_fill_batches() {
        let dag = generators::fft(3); // width 8 every level
        let inst = MppInstance::new(&dag, 4, 3, 1);
        let run = Wavefront.schedule(&inst).unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        assert!(stats.avg_compute_batch > 3.0);
        // 8-wide levels on 4 procs: 2 compute steps per level, 4 levels.
        assert_eq!(run.cost.computes, 8);
    }

    #[test]
    fn stores_every_node_once() {
        let dag = generators::grid(3, 3);
        let inst = MppInstance::new(&dag, 2, 3, 1);
        let run = Wavefront.schedule(&inst).unwrap();
        let stats = MppRunStats::analyze(&inst, &run.strategy);
        // Each node stored exactly once → total stored pebbles = n.
        let stored: u64 = stats.io_transfers.iter().map(|(_, v)| v).sum::<u64>();
        assert!(stored >= dag.n() as u64);
        assert_eq!(stats.recomputations, 0);
    }

    #[test]
    fn single_processor_degenerates_gracefully() {
        let dag = generators::chain(6);
        let inst = MppInstance::new(&dag, 1, 2, 2);
        let run = Wavefront.schedule(&inst).unwrap();
        assert_eq!(run.cost.computes, 6);
    }
}
