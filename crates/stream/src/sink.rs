//! Incremental strategy emission: the [`StrategySink`] trait and its
//! standard implementations.
//!
//! The in-memory scheduler tier buffers every move in an
//! [`MppStrategy`] vector; at 10^6 nodes a strategy is tens of millions
//! of moves and does not fit in RAM comfortably. Streaming schedulers
//! instead push each move into a sink the moment it is decided:
//!
//! - [`VecSink`] keeps the classic in-memory vector (small instances,
//!   tests, replay validation);
//! - [`JsonlSink`] writes the exact strategy JSONL format of
//!   `rbp_refine::persist` (format version 1, documented in
//!   `docs/SCHEMAS.md`) through any [`Write`], buffered, so a
//!   million-step strategy streams to disk without ever living in
//!   memory — and is later re-loadable by `rbp improve --in`;
//! - [`NullSink`] discards moves and only counts them (pure
//!   cost/throughput measurement).

use std::io::{self, BufWriter, Write};

use rbp_core::{MppMove, MppStrategy, Pebble};
use rbp_util::json::Json;

/// Receives strategy moves one at a time, in execution order.
pub trait StrategySink {
    /// Accepts the next move.
    fn emit(&mut self, mv: &MppMove) -> io::Result<()>;

    /// Flushes buffered output; called once after the final move.
    fn finish(&mut self) -> io::Result<()> {
        Ok(())
    }

    /// Bytes of serialized output produced so far (0 for in-memory
    /// sinks).
    fn bytes_emitted(&self) -> u64 {
        0
    }
}

/// The in-memory sink: collects moves into an [`MppStrategy`].
#[derive(Debug, Default, Clone)]
pub struct VecSink {
    strategy: MppStrategy,
}

impl VecSink {
    /// New empty sink.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected strategy.
    #[must_use]
    pub fn into_strategy(self) -> MppStrategy {
        self.strategy
    }

    /// Borrow of the collected strategy.
    #[must_use]
    pub fn strategy(&self) -> &MppStrategy {
        &self.strategy
    }
}

impl StrategySink for VecSink {
    fn emit(&mut self, mv: &MppMove) -> io::Result<()> {
        self.strategy.push(mv.clone());
        Ok(())
    }
}

/// A sink that discards moves, keeping only the count — used when only
/// the cost/throughput of a schedule matters, not the strategy itself.
#[derive(Debug, Default, Clone)]
pub struct NullSink {
    moves: u64,
}

impl NullSink {
    /// New sink with a zero count.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of moves received.
    #[must_use]
    pub fn moves(&self) -> u64 {
        self.moves
    }
}

impl StrategySink for NullSink {
    fn emit(&mut self, _mv: &MppMove) -> io::Result<()> {
        self.moves += 1;
        Ok(())
    }
}

/// Instance parameters recorded in a strategy JSONL header.
#[derive(Debug, Clone)]
pub struct StreamHeader {
    /// DAG name (informational provenance).
    pub dag_name: String,
    /// Node count of the DAG.
    pub n: usize,
    /// Number of processors.
    pub k: usize,
    /// Fast-memory capacity per processor.
    pub r: usize,
    /// I/O cost `g`.
    pub g: u64,
}

/// Buffered JSONL writer emitting the strategy persistence format
/// (version 1) of `rbp_refine::persist` — byte-compatible, so the
/// output re-parses with `strategy_from_jsonl` and feeds
/// `rbp improve --in`.
pub struct JsonlSink<W: Write> {
    out: BufWriter<W>,
    bytes: u64,
}

impl<W: Write> JsonlSink<W> {
    /// Creates the sink and writes the strategy header line.
    ///
    /// # Errors
    /// Propagates write failures.
    pub fn new(writer: W, header: &StreamHeader) -> io::Result<Self> {
        let mut sink = JsonlSink {
            out: BufWriter::new(writer),
            bytes: 0,
        };
        let line = Json::obj([
            ("type", Json::from("mpp_strategy")),
            ("version", Json::from(1u64)),
            ("dag", Json::from(header.dag_name.as_str())),
            ("n", Json::from(header.n)),
            ("k", Json::from(header.k)),
            ("r", Json::from(header.r)),
            ("g", Json::from(header.g)),
        ])
        .render();
        sink.write_line(&line)?;
        Ok(sink)
    }

    fn write_line(&mut self, line: &str) -> io::Result<()> {
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.bytes += line.len() as u64 + 1;
        Ok(())
    }

    /// Unwraps the inner writer after flushing.
    ///
    /// # Errors
    /// Propagates the flush failure.
    pub fn into_inner(self) -> io::Result<W> {
        self.out
            .into_inner()
            .map_err(|e| io::Error::other(e.to_string()))
    }
}

fn sel_json(batch: &[(usize, rbp_dag::NodeId)]) -> Json {
    Json::arr(
        batch
            .iter()
            .map(|&(p, v)| Json::arr([Json::from(p), Json::from(v.index())])),
    )
}

/// Renders one move as its persistence-format JSON object (identical
/// field order to `rbp_refine::persist`).
fn move_json(mv: &MppMove) -> Json {
    match mv {
        MppMove::Store(b) => Json::obj([("op", Json::from("store")), ("sel", sel_json(b))]),
        MppMove::Load(b) => Json::obj([("op", Json::from("load")), ("sel", sel_json(b))]),
        MppMove::Compute(b) => Json::obj([("op", Json::from("compute")), ("sel", sel_json(b))]),
        MppMove::Remove(Pebble::Red(p, v)) => Json::obj([
            ("op", Json::from("remove")),
            ("proc", Json::from(*p)),
            ("node", Json::from(v.index())),
        ]),
        MppMove::Remove(Pebble::Blue(v)) => Json::obj([
            ("op", Json::from("remove")),
            ("node", Json::from(v.index())),
        ]),
    }
}

impl<W: Write> StrategySink for JsonlSink<W> {
    fn emit(&mut self, mv: &MppMove) -> io::Result<()> {
        let line = move_json(mv).render();
        self.write_line(&line)
    }

    fn finish(&mut self) -> io::Result<()> {
        self.out.flush()
    }

    fn bytes_emitted(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::NodeId;

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecSink::new();
        sink.emit(&MppMove::compute1(0, NodeId(0))).unwrap();
        sink.emit(&MppMove::store1(0, NodeId(0))).unwrap();
        let s = sink.into_strategy();
        assert_eq!(s.len(), 2);
        assert_eq!(s.moves[1], MppMove::store1(0, NodeId(0)));
    }

    #[test]
    fn null_sink_counts() {
        let mut sink = NullSink::new();
        for _ in 0..5 {
            sink.emit(&MppMove::compute1(0, NodeId(0))).unwrap();
        }
        assert_eq!(sink.moves(), 5);
        assert_eq!(sink.bytes_emitted(), 0);
    }

    #[test]
    fn jsonl_sink_writes_header_and_moves() {
        let header = StreamHeader {
            dag_name: "t".into(),
            n: 2,
            k: 1,
            r: 2,
            g: 3,
        };
        let mut sink = JsonlSink::new(Vec::new(), &header).unwrap();
        sink.emit(&MppMove::compute1(0, NodeId(0))).unwrap();
        sink.emit(&MppMove::Remove(Pebble::Blue(NodeId(1))))
            .unwrap();
        sink.finish().unwrap();
        let bytes_reported = sink.bytes_emitted();
        let out = sink.into_inner().unwrap();
        assert_eq!(out.len() as u64, bytes_reported);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"mpp_strategy\""));
        assert!(lines[1].contains("\"compute\""));
        assert!(lines[2].contains("\"node\""));
    }
}
