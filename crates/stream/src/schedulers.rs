//! The streaming schedulers: bounded-pass re-implementations of the
//! in-memory scheduler tier.
//!
//! Each scheduler makes a bounded number of passes over the CSR (the
//! exact count is reported in [`StreamRun::passes`]) and keeps only
//! `O(active-set)` scheduler state resident — per-processor red sets
//! bounded by `r`, per-wave scratch bounded by `k·Δ_in`, and (for
//! level/order bookkeeping) flat `O(n)` word arrays, which at 10^6
//! nodes are megabytes while the strategy being emitted is hundreds of
//! megabytes. No per-node `Vec` is allocated per step.
//!
//! Cost contracts with the in-memory tier (asserted by E21 and the
//! crate tests on overlap sizes):
//!
//! - [`TopoStream`] is cost-identical to `rbp_schedulers::TopoBaseline`
//!   (per node: in-degree loads, one compute, one store — the total is
//!   order-independent);
//! - [`WavefrontStream`] replays the exact algorithm of
//!   `rbp_schedulers::Wavefront` (red memory is empty between waves, so
//!   the simulation is wave-local) and produces an identical cost;
//! - [`ListStream`] is the memory-aware list scheduler new to this
//!   tier: red pebbles stay cached LRU-style instead of being evicted
//!   after every node, so repeatedly-used inputs are loaded once.

use std::time::{Duration, Instant};

use rbp_core::{Cost, ProcId};
use rbp_dag::{Dag, NodeId, TopoInfo};

use crate::sim::{StreamError, StreamSim};
use crate::sink::StrategySink;

/// Summary of a finished streaming schedule.
#[derive(Debug, Clone)]
pub struct StreamRun {
    /// Cost tally (stores/loads/computes as batched steps).
    pub cost: Cost,
    /// Number of DAG nodes scheduled.
    pub nodes: usize,
    /// Number of moves emitted to the sink.
    pub moves: u64,
    /// Passes made over the CSR adjacency structure.
    pub passes: u64,
    /// Peak number of simultaneously live red pebbles.
    pub peak_active_set: usize,
    /// Bytes the sink serialized (0 for in-memory sinks).
    pub bytes_emitted: u64,
    /// Wall-clock scheduling time.
    pub elapsed: Duration,
}

impl StreamRun {
    /// Scheduling throughput in nodes per second.
    #[must_use]
    pub fn nodes_per_sec(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.nodes as f64 / secs
        } else {
            0.0
        }
    }
}

/// A scheduler that emits a valid MPP strategy incrementally through a
/// [`StrategySink`], with resident state independent of strategy
/// length.
pub trait StreamScheduler: Send + Sync {
    /// Name used in registries, traces, and experiment tables.
    fn name(&self) -> String;

    /// Schedules `dag` on `k` processors with per-processor memory `r`,
    /// emitting every move into `sink`.
    ///
    /// # Errors
    /// Rule violations (a scheduler bug or an infeasible `r`) and sink
    /// I/O failures.
    fn schedule(
        &self,
        dag: &Dag,
        k: usize,
        r: usize,
        sink: &mut dyn StrategySink,
    ) -> Result<StreamRun, StreamError>;
}

/// Whether every edge satisfies `u < v` (one CSR pass). When true, id
/// order is a topological order and level structure is computable in a
/// single forward pass; DAGs built by [`Dag::from_edge_stream`] — all
/// generator families — have this property by construction.
fn is_id_topological(dag: &Dag) -> bool {
    dag.nodes().all(|v| dag.preds(v).iter().all(|&u| u < v))
}

/// The node to schedule at position `i`: id order when the DAG is
/// id-topological, otherwise the fallback `TopoInfo` order (identical
/// to the in-memory tier's order in both cases, since Kahn's algorithm
/// with a min-id heap visits an id-topological DAG in id order).
#[inline]
fn node_at(topo: Option<&TopoInfo>, i: usize) -> NodeId {
    topo.map_or_else(|| NodeId::new(i), |t| t.order()[i])
}

fn finish_run(
    sim: StreamSim<'_>,
    sink: &mut dyn StrategySink,
    nodes: usize,
    passes: u64,
    t0: Instant,
) -> Result<StreamRun, StreamError> {
    let cost = sim.cost();
    let moves = sim.moves();
    let peak = sim.peak_active_set();
    sim.finish(sink)?;
    Ok(StreamRun {
        cost,
        nodes,
        moves,
        passes,
        peak_active_set: peak,
        bytes_emitted: sink.bytes_emitted(),
        elapsed: t0.elapsed(),
    })
}

/// Streaming re-implementation of the Lemma 1 `topo-baseline`
/// scheduler: per node (round-robin over processors) load inputs,
/// compute, store, evict. Cost-identical to the in-memory version for
/// every DAG and node order: `m` loads, `n` computes, `n` stores.
#[derive(Debug, Clone, Copy, Default)]
pub struct TopoStream;

impl StreamScheduler for TopoStream {
    fn name(&self) -> String {
        "topo-stream".into()
    }

    fn schedule(
        &self,
        dag: &Dag,
        k: usize,
        r: usize,
        sink: &mut dyn StrategySink,
    ) -> Result<StreamRun, StreamError> {
        let t0 = Instant::now();
        let topo = (!is_id_topological(dag)).then(|| dag.topo());
        let mut sim = StreamSim::new(dag, k, r);
        for i in 0..dag.n() {
            let v = node_at(topo.as_ref(), i);
            let p = i % k;
            for &u in dag.preds(v) {
                sim.load(sink, &[(p, u)])?;
            }
            sim.compute(sink, &[(p, v)])?;
            sim.store(sink, &[(p, v)])?;
            for &u in dag.preds(v) {
                sim.remove_red(sink, p, u)?;
            }
            sim.remove_red(sink, p, v)?;
        }
        // Passes: the id-topology check plus the scheduling sweep.
        finish_run(sim, sink, dag.n(), 2, t0)
    }
}

/// Nodes grouped by topological level: a flat order array plus group
/// offsets (`levels.len() - 1` groups). For id-topological DAGs this is
/// computed in one forward pass plus a counting sort; otherwise it
/// falls back to `TopoInfo`. Either way the grouping matches
/// `TopoInfo::levels()` exactly, which is what the in-memory wavefront
/// scheduler iterates.
fn level_groups(dag: &Dag) -> (Vec<NodeId>, Vec<u32>) {
    let n = dag.n();
    if n == 0 {
        return (Vec::new(), vec![0]);
    }
    if is_id_topological(dag) {
        let mut level = vec![0u32; n];
        let mut depth = 0u32;
        for v in dag.nodes() {
            let l = dag
                .preds(v)
                .iter()
                .map(|&u| level[u.index()] + 1)
                .max()
                .unwrap_or(0);
            level[v.index()] = l;
            depth = depth.max(l + 1);
        }
        let mut offsets = vec![0u32; depth as usize + 1];
        for &l in &level {
            offsets[l as usize + 1] += 1;
        }
        for i in 0..depth as usize {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut order = vec![NodeId(0); n];
        for v in dag.nodes() {
            let c = &mut cursor[level[v.index()] as usize];
            order[*c as usize] = v;
            *c += 1;
        }
        (order, offsets)
    } else {
        let topo = dag.topo();
        let mut order = Vec::with_capacity(n);
        let mut offsets = vec![0u32];
        for group in topo.levels() {
            order.extend_from_slice(&group);
            offsets.push(order.len() as u32);
        }
        (order, offsets)
    }
}

/// Streaming re-implementation of the level-synchronous `wavefront`
/// scheduler. Red memory is empty between waves, so each wave of ≤ `k`
/// nodes is simulated with `O(k·Δ_in)` scratch; the emitted strategy
/// has the identical cost (and move sequence) to the in-memory
/// `rbp_schedulers::Wavefront`.
#[derive(Debug, Clone, Copy, Default)]
pub struct WavefrontStream;

impl StreamScheduler for WavefrontStream {
    fn name(&self) -> String {
        "wavefront-stream".into()
    }

    fn schedule(
        &self,
        dag: &Dag,
        k: usize,
        r: usize,
        sink: &mut dyn StrategySink,
    ) -> Result<StreamRun, StreamError> {
        let t0 = Instant::now();
        let (order, offsets) = level_groups(dag);
        let mut sim = StreamSim::new(dag, k, r);
        // Reused per-wave scratch, all bounded by k (wave width) and
        // Δ_in (pending inputs per node).
        let mut assignment: Vec<(ProcId, NodeId)> = Vec::with_capacity(k);
        let mut pending: Vec<Vec<NodeId>> = Vec::new();
        let mut batch: Vec<(ProcId, NodeId)> = Vec::with_capacity(k);
        for w in offsets.windows(2) {
            let level = &order[w[0] as usize..w[1] as usize];
            for wave in level.chunks(k) {
                assignment.clear();
                assignment.extend(wave.iter().enumerate().map(|(i, &v)| (i, v)));
                pending.resize_with(assignment.len().max(pending.len()), Vec::new);
                for (i, &(_, v)) in assignment.iter().enumerate() {
                    pending[i].clear();
                    pending[i].extend_from_slice(dag.preds(v));
                }
                // Load phase: batch loads with distinct vertices across
                // processors, exactly as the in-memory wavefront does.
                loop {
                    batch.clear();
                    for (i, &(p, _)) in assignment.iter().enumerate() {
                        if let Some(pos) = pending[i]
                            .iter()
                            .position(|&u| !batch.iter().any(|&(_, b)| b == u))
                        {
                            let u = pending[i].remove(pos);
                            batch.push((p, u));
                        }
                    }
                    if batch.is_empty() {
                        break;
                    }
                    sim.load(sink, &batch)?;
                }
                sim.compute(sink, &assignment)?;
                sim.store(sink, &assignment)?;
                for &(p, v) in &assignment {
                    for &u in dag.preds(v) {
                        if sim.is_red(p, u) {
                            sim.remove_red(sink, p, u)?;
                        }
                    }
                    sim.remove_red(sink, p, v)?;
                }
            }
        }
        // Passes: id-topology check, level computation, level grouping,
        // and the wave sweep.
        finish_run(sim, sink, dag.n(), 4, t0)
    }
}

/// The memory-aware streaming list scheduler — new to the streaming
/// tier. Nodes are processed in topological order; each is assigned to
/// the processor already holding the most of its inputs red
/// (tie-break: fewer resident reds, then lower id). Red pebbles are
/// *kept* after use and evicted least-recently-used only when capacity
/// demands it, so inputs shared between nearby nodes are loaded once
/// instead of once per consumer. Every computed value is stored
/// immediately, so eviction is always free and any feasible
/// `r ≥ Δ_in + 1` works.
#[derive(Debug, Clone, Copy, Default)]
pub struct ListStream;

impl StreamScheduler for ListStream {
    fn name(&self) -> String {
        "list-stream".into()
    }

    fn schedule(
        &self,
        dag: &Dag,
        k: usize,
        r: usize,
        sink: &mut dyn StrategySink,
    ) -> Result<StreamRun, StreamError> {
        let t0 = Instant::now();
        let topo = (!is_id_topological(dag)).then(|| dag.topo());
        let mut sim = StreamSim::new(dag, k, r);
        // Per-processor red cache mirror with last-use ticks; length is
        // bounded by r, so linear scans stay cheap.
        let mut caches: Vec<Vec<(NodeId, u64)>> = vec![Vec::new(); k];
        let mut missing: Vec<NodeId> = Vec::new();
        for i in 0..dag.n() {
            let v = node_at(topo.as_ref(), i);
            let tick = i as u64;
            let preds = dag.preds(v);
            // Assign to the processor with the most inputs already red.
            let p = (0..k)
                .max_by_key(|&p| {
                    let reuse = preds.iter().filter(|&&u| sim.is_red(p, u)).count();
                    // Prefer reuse, then free capacity, then low id.
                    (reuse, usize::MAX - sim.red_len(p), usize::MAX - p)
                })
                .unwrap_or(0);
            missing.clear();
            missing.extend(preds.iter().copied().filter(|&u| !sim.is_red(p, u)));
            // Evict LRU non-input reds until the node fits.
            while sim.red_len(p) + missing.len() + 1 > r {
                let victim = caches[p]
                    .iter()
                    .enumerate()
                    .filter(|(_, (u, _))| !preds.contains(u))
                    .min_by_key(|&(_, &(_, t))| t)
                    .map(|(idx, _)| idx);
                let Some(idx) = victim else {
                    break; // Infeasible r: let the simulator report it.
                };
                let (u, _) = caches[p].swap_remove(idx);
                sim.remove_red(sink, p, u)?;
            }
            for &u in &missing {
                sim.load(sink, &[(p, u)])?;
                caches[p].push((u, tick));
            }
            for e in caches[p].iter_mut() {
                if preds.contains(&e.0) {
                    e.1 = tick;
                }
            }
            sim.compute(sink, &[(p, v)])?;
            sim.store(sink, &[(p, v)])?;
            caches[p].push((v, tick));
        }
        // Passes: the id-topology check plus the scheduling sweep.
        finish_run(sim, sink, dag.n(), 2, t0)
    }
}

/// The streaming scheduler registry, mirroring
/// `rbp_schedulers::all_schedulers` for the streaming tier.
#[must_use]
pub fn all_stream_schedulers() -> Vec<Box<dyn StreamScheduler>> {
    vec![
        Box::new(TopoStream),
        Box::new(WavefrontStream),
        Box::new(ListStream),
    ]
}

/// Looks a streaming scheduler up by its registry name.
#[must_use]
pub fn stream_scheduler_by_name(name: &str) -> Option<Box<dyn StreamScheduler>> {
    all_stream_schedulers()
        .into_iter()
        .find(|s| s.name() == name)
}
