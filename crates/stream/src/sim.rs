//! The streaming rule-enforcing simulator.
//!
//! [`StreamSim`] plays the same role as `rbp_core::MppSimulator` — every
//! move a scheduler proposes is checked against the MPP rules before it
//! counts — but with two scalability differences:
//!
//! 1. moves are forwarded to a [`StrategySink`] instead of being
//!    buffered in a strategy vector, so resident state is independent
//!    of strategy length;
//! 2. the per-processor red sets are [`HybridNodeSet`]s: red pebbles
//!    are bounded by the memory parameter `r`, so on a million-node DAG
//!    each set stays in its sparse representation at `O(r)` bytes
//!    instead of `O(n/8)`.
//!
//! The blue set remains one dense bitset (`n/8` bytes — at 10^6 nodes
//! that is 125 KB, far below the size of the strategy being emitted).

use rbp_core::{Cost, MppError, MppErrorKind, MppMove, Pebble, ProcId};
use rbp_dag::{Dag, HybridNodeSet, NodeId, NodeSet};

use crate::sink::StrategySink;

/// Error from a streaming schedule: either a pebbling rule violation or
/// an I/O failure of the strategy sink.
#[derive(Debug)]
pub enum StreamError {
    /// A move violated the MPP rules (same error type as the in-memory
    /// validator, with the offending move index).
    Rule(MppError),
    /// The strategy sink failed to accept a move.
    Io(std::io::Error),
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::Rule(e) => write!(f, "rule violation: {e}"),
            StreamError::Io(e) => write!(f, "sink error: {e}"),
        }
    }
}

impl std::error::Error for StreamError {}

impl From<std::io::Error> for StreamError {
    fn from(e: std::io::Error) -> Self {
        StreamError::Io(e)
    }
}

impl From<MppError> for StreamError {
    fn from(e: MppError) -> Self {
        StreamError::Rule(e)
    }
}

/// Streaming MPP simulator: rule-checks moves, tallies cost, forwards
/// every accepted move to a sink.
pub struct StreamSim<'d> {
    dag: &'d Dag,
    k: usize,
    r: usize,
    reds: Vec<HybridNodeSet>,
    blue: NodeSet,
    cost: Cost,
    moves: u64,
    red_total: usize,
    peak_active: usize,
}

impl<'d> StreamSim<'d> {
    /// New simulator over the initial configuration (no pebbles).
    ///
    /// # Panics
    /// Panics when `k` or `r` is zero (no processor / no memory is not
    /// a playable instance).
    #[must_use]
    pub fn new(dag: &'d Dag, k: usize, r: usize) -> Self {
        assert!(k >= 1, "need at least one processor");
        assert!(r >= 1, "need at least one red pebble of memory");
        StreamSim {
            dag,
            k,
            r,
            reds: (0..k).map(|_| HybridNodeSet::new(dag.n())).collect(),
            blue: NodeSet::new(dag.n()),
            cost: Cost::zero(),
            moves: 0,
            red_total: 0,
            peak_active: 0,
        }
    }

    /// Cost tally so far.
    #[must_use]
    pub fn cost(&self) -> Cost {
        self.cost
    }

    /// Number of moves emitted so far.
    #[must_use]
    pub fn moves(&self) -> u64 {
        self.moves
    }

    /// Largest number of simultaneously live red pebbles seen so far —
    /// the resident "active set" the streaming tier is sized by.
    #[must_use]
    pub fn peak_active_set(&self) -> usize {
        self.peak_active
    }

    /// Whether processor `p` holds a red pebble on `v`.
    #[must_use]
    pub fn is_red(&self, p: ProcId, v: NodeId) -> bool {
        self.reds[p].contains(v)
    }

    /// Whether `v` holds a blue pebble.
    #[must_use]
    pub fn is_blue(&self, v: NodeId) -> bool {
        self.blue.contains(v)
    }

    /// Number of red pebbles processor `p` currently holds.
    #[must_use]
    pub fn red_len(&self, p: ProcId) -> usize {
        self.reds[p].len()
    }

    fn err(&self, kind: MppErrorKind) -> StreamError {
        StreamError::Rule(MppError {
            step: self.moves as usize,
            kind,
        })
    }

    fn check_selection(
        &self,
        batch: &[(ProcId, NodeId)],
        distinct_vertices: bool,
    ) -> Result<(), StreamError> {
        if batch.is_empty() {
            return Err(self.err(MppErrorKind::EmptySelection));
        }
        for (i, &(p, v)) in batch.iter().enumerate() {
            if p >= self.k {
                return Err(self.err(MppErrorKind::BadProcessor(p)));
            }
            for &(p2, v2) in &batch[..i] {
                if p2 == p {
                    return Err(self.err(MppErrorKind::DuplicateProcessor(p)));
                }
                if distinct_vertices && v2 == v {
                    return Err(self.err(MppErrorKind::DuplicateVertex(v)));
                }
            }
        }
        Ok(())
    }

    fn forward(&mut self, sink: &mut dyn StrategySink, mv: &MppMove) -> Result<(), StreamError> {
        sink.emit(mv)?;
        self.moves += 1;
        Ok(())
    }

    fn note_red_added(&mut self, count: usize) {
        self.red_total += count;
        self.peak_active = self.peak_active.max(self.red_total);
    }

    /// R2-M: batched load of blue values into red memory.
    ///
    /// # Errors
    /// Rule violations ([`StreamError::Rule`]) or sink failures.
    pub fn load(
        &mut self,
        sink: &mut dyn StrategySink,
        batch: &[(ProcId, NodeId)],
    ) -> Result<(), StreamError> {
        self.check_selection(batch, true)?;
        for &(p, v) in batch {
            if !self.blue.contains(v) {
                return Err(self.err(MppErrorKind::LoadWithoutBlue(v)));
            }
            if self.reds[p].contains(v) {
                return Err(self.err(MppErrorKind::AlreadyPebbled(v)));
            }
            if self.reds[p].len() + 1 > self.r {
                return Err(self.err(MppErrorKind::MemoryExceeded { proc: p, r: self.r }));
            }
        }
        for &(p, v) in batch {
            self.reds[p].insert(v);
        }
        self.note_red_added(batch.len());
        self.cost.loads += 1;
        self.forward(sink, &MppMove::Load(batch.to_vec()))
    }

    /// R3-M: batched compute.
    ///
    /// # Errors
    /// Rule violations ([`StreamError::Rule`]) or sink failures.
    pub fn compute(
        &mut self,
        sink: &mut dyn StrategySink,
        batch: &[(ProcId, NodeId)],
    ) -> Result<(), StreamError> {
        self.check_selection(batch, false)?;
        for &(p, v) in batch {
            if self.reds[p].contains(v) {
                return Err(self.err(MppErrorKind::AlreadyPebbled(v)));
            }
            if let Some(&missing) = self
                .dag
                .preds(v)
                .iter()
                .find(|&&u| !self.reds[p].contains(u))
            {
                return Err(self.err(MppErrorKind::MissingInput {
                    proc: p,
                    node: v,
                    missing,
                }));
            }
            if self.reds[p].len() + 1 > self.r {
                return Err(self.err(MppErrorKind::MemoryExceeded { proc: p, r: self.r }));
            }
        }
        for &(p, v) in batch {
            self.reds[p].insert(v);
        }
        self.note_red_added(batch.len());
        self.cost.computes += 1;
        self.forward(sink, &MppMove::Compute(batch.to_vec()))
    }

    /// R1-M: batched store of red values to slow memory.
    ///
    /// # Errors
    /// Rule violations ([`StreamError::Rule`]) or sink failures.
    pub fn store(
        &mut self,
        sink: &mut dyn StrategySink,
        batch: &[(ProcId, NodeId)],
    ) -> Result<(), StreamError> {
        self.check_selection(batch, true)?;
        for &(p, v) in batch {
            if !self.reds[p].contains(v) {
                return Err(self.err(MppErrorKind::StoreWithoutRed { proc: p, node: v }));
            }
            if self.blue.contains(v) {
                return Err(self.err(MppErrorKind::AlreadyPebbled(v)));
            }
        }
        for &(_, v) in batch {
            self.blue.insert(v);
        }
        self.cost.stores += 1;
        self.forward(sink, &MppMove::Store(batch.to_vec()))
    }

    /// R4-M: removes a red pebble (free).
    ///
    /// # Errors
    /// Rule violations ([`StreamError::Rule`]) or sink failures.
    pub fn remove_red(
        &mut self,
        sink: &mut dyn StrategySink,
        p: ProcId,
        v: NodeId,
    ) -> Result<(), StreamError> {
        if p >= self.k {
            return Err(self.err(MppErrorKind::BadProcessor(p)));
        }
        if !self.reds[p].remove(v) {
            return Err(self.err(MppErrorKind::RemoveAbsent(Pebble::Red(p, v))));
        }
        self.red_total -= 1;
        self.forward(sink, &MppMove::Remove(Pebble::Red(p, v)))
    }

    /// R4-M: removes a blue pebble (free).
    ///
    /// # Errors
    /// Rule violations ([`StreamError::Rule`]) or sink failures.
    pub fn remove_blue(
        &mut self,
        sink: &mut dyn StrategySink,
        v: NodeId,
    ) -> Result<(), StreamError> {
        if !self.blue.remove(v) {
            return Err(self.err(MppErrorKind::RemoveAbsent(Pebble::Blue(v))));
        }
        self.forward(sink, &MppMove::Remove(Pebble::Blue(v)))
    }

    /// Terminality check and sink flush: every sink node must hold a
    /// pebble of some color. Consumes the simulator.
    ///
    /// # Errors
    /// [`MppErrorKind::NotTerminal`] when a DAG sink is unpebbled;
    /// sink flush failures.
    pub fn finish(self, sink: &mut dyn StrategySink) -> Result<(), StreamError> {
        for v in self.dag.nodes() {
            if self.dag.out_degree(v) == 0
                && !self.blue.contains(v)
                && !self.reds.iter().any(|s| s.contains(v))
            {
                return Err(StreamError::Rule(MppError {
                    step: self.moves as usize,
                    kind: MppErrorKind::NotTerminal(v),
                }));
            }
        }
        sink.finish()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::VecSink;
    use rbp_dag::dag_from_edges;

    #[test]
    fn enforces_rules_like_the_validator() {
        let dag = dag_from_edges(2, &[(0, 1)]);
        let mut sink = VecSink::new();
        let mut sim = StreamSim::new(&dag, 1, 2);
        // Load before anything is blue: rejected.
        let err = sim.load(&mut sink, &[(0, NodeId(0))]).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Rule(MppError {
                kind: MppErrorKind::LoadWithoutBlue(_),
                ..
            })
        ));
        sim.compute(&mut sink, &[(0, NodeId(0))]).unwrap();
        sim.compute(&mut sink, &[(0, NodeId(1))]).unwrap();
        sim.store(&mut sink, &[(0, NodeId(1))]).unwrap();
        assert_eq!(sim.peak_active_set(), 2);
        sim.finish(&mut sink).unwrap();
        // The emitted strategy replays cleanly through the in-memory
        // validator with the same cost.
        let inst = rbp_core::MppInstance::new(&dag, 1, 2, 3);
        let cost = sink.strategy().validate(&inst).unwrap();
        assert_eq!(cost.computes, 2);
        assert_eq!(cost.stores, 1);
    }

    #[test]
    fn capacity_is_enforced() {
        let dag = dag_from_edges(3, &[(0, 2), (1, 2)]);
        let mut sink = VecSink::new();
        let mut sim = StreamSim::new(&dag, 1, 2);
        sim.compute(&mut sink, &[(0, NodeId(0))]).unwrap();
        sim.compute(&mut sink, &[(0, NodeId(1))]).unwrap();
        let err = sim.compute(&mut sink, &[(0, NodeId(2))]).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Rule(MppError {
                kind: MppErrorKind::MemoryExceeded { .. },
                ..
            })
        ));
    }

    #[test]
    fn unpebbled_sink_fails_terminality() {
        let dag = dag_from_edges(1, &[]);
        let mut sink = VecSink::new();
        let sim = StreamSim::new(&dag, 1, 1);
        let err = sim.finish(&mut sink).unwrap_err();
        assert!(matches!(
            err,
            StreamError::Rule(MppError {
                kind: MppErrorKind::NotTerminal(_),
                ..
            })
        ));
    }
}
