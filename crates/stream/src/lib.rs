//! # rbp-stream — the streaming scheduler tier
//!
//! Schedulers for million-node computational DAGs. The paper's central
//! practical consequence is that MPP `OPT` is NP-hard, so DAGs at the
//! 10^6–10^7-node scale where Hong–Kung-style I/O bounds matter can
//! only be served by heuristics — but the in-memory tier
//! (`rbp-schedulers`) allocates `O(n)` scratch per step and buffers the
//! whole strategy in a vector, capping it at toy sizes. This crate
//! re-implements the scheduler tier under streaming discipline:
//!
//! - **bounded passes** over the immutable CSR (each run reports its
//!   pass count);
//! - **`O(active-set)` resident scheduler state** — per-processor red
//!   sets are [`rbp_dag::HybridNodeSet`]s bounded by `r`, wave scratch
//!   is bounded by `k·Δ_in`, and no per-node `Vec` is allocated per
//!   step;
//! - **incremental strategy emission** through the [`StrategySink`]
//!   trait: a million-step strategy streams to a buffered JSONL writer
//!   ([`JsonlSink`], byte-compatible with `rbp_refine::persist` format
//!   version 1) instead of living in RAM. Small runs keep the classic
//!   in-memory vector ([`VecSink`]).
//!
//! Every move still goes through a rule-enforcing simulator
//! ([`StreamSim`]) — an illegal schedule is an error, never a silently
//! wrong cost — and [`TopoStream`] / [`WavefrontStream`] are
//! cost-identical to their in-memory twins (asserted by E21 and this
//! crate's tests), while [`ListStream`] is the memory-aware LRU list
//! scheduler new to this tier.
//!
//! Runs are observable through `stream.*` trace counters and gauges
//! (nodes/sec, peak active-set, passes, emitted bytes); `rbp report`
//! renders them in its "Scale" section.

#![deny(missing_docs)]

pub mod schedulers;
pub mod sim;
pub mod sink;

pub use schedulers::{
    all_stream_schedulers, stream_scheduler_by_name, ListStream, StreamRun, StreamScheduler,
    TopoStream, WavefrontStream,
};
pub use sim::{StreamError, StreamSim};
pub use sink::{JsonlSink, NullSink, StrategySink, StreamHeader, VecSink};

/// Emits the `stream.*` counter/gauge set for a finished streaming run
/// to the global tracer (no-op when tracing is off):
///
/// | name | kind |
/// |------|------|
/// | `stream.nodes` | counter |
/// | `stream.passes` | counter |
/// | `stream.emitted_bytes` | counter |
/// | `stream.moves` | counter |
/// | `stream.nodes_per_sec` | gauge |
/// | `stream.peak_active_set` | gauge |
pub fn trace_stream_run(name: &str, run: &StreamRun) {
    if !rbp_trace::enabled() {
        return;
    }
    let _span = rbp_trace::span_with(
        "stream.schedule",
        vec![
            ("scheduler", rbp_trace::Json::from(name)),
            ("n", rbp_trace::Json::from(run.nodes as u64)),
            ("cost_io_steps", rbp_trace::Json::from(run.cost.io_steps())),
        ],
    );
    rbp_trace::counter("stream.nodes", run.nodes as u64);
    rbp_trace::counter("stream.passes", run.passes);
    rbp_trace::counter("stream.emitted_bytes", run.bytes_emitted);
    rbp_trace::counter("stream.moves", run.moves);
    rbp_trace::gauge("stream.nodes_per_sec", run.nodes_per_sec());
    rbp_trace::gauge("stream.peak_active_set", run.peak_active_set as f64);
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::MppInstance;
    use rbp_dag::generators;
    use rbp_schedulers::MppScheduler as _;

    /// Streamed strategies replay cleanly through the independent
    /// in-memory validator with the exact cost the simulator tallied.
    #[test]
    fn streamed_strategies_validate_with_identical_cost() {
        for (dag, k, r) in [
            (generators::grid(4, 5), 3, 3),
            (generators::fft(3), 4, 3),
            (generators::binary_in_tree(8), 2, 3),
            (generators::layered_random(5, 4, 3, 9), 4, 4),
            (generators::chain(7), 1, 2),
        ] {
            for s in all_stream_schedulers() {
                let mut sink = VecSink::new();
                let run = s
                    .schedule(&dag, k, r, &mut sink)
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", s.name(), dag.name()));
                let inst = MppInstance::new(&dag, k, r, 2);
                let cost = sink
                    .strategy()
                    .validate(&inst)
                    .unwrap_or_else(|e| panic!("{} invalid on {}: {e}", s.name(), dag.name()));
                assert_eq!(cost, run.cost, "{} on {}", s.name(), dag.name());
                assert_eq!(run.moves as usize, sink.strategy().len());
            }
        }
    }

    /// Cost identity with the in-memory tier on overlap instances.
    #[test]
    fn cost_identical_to_in_memory_twins() {
        for (dag, k, r) in [
            (generators::grid(4, 5), 3, 3),
            (generators::grid(2, 2), 1, 3),
            (generators::fft(3), 4, 3),
            (generators::binary_in_tree(16), 2, 3),
            (generators::diamond(4), 2, 6),
            (generators::layered_random(6, 8, 2, 5), 4, 3),
        ] {
            let inst = MppInstance::new(&dag, k, r, 2);
            let mut sink = VecSink::new();
            let run = TopoStream.schedule(&dag, k, r, &mut sink).unwrap();
            let twin = rbp_schedulers::TopoBaseline.schedule(&inst).unwrap();
            assert_eq!(run.cost, twin.cost, "topo on {}", dag.name());

            let mut sink = VecSink::new();
            let run = WavefrontStream.schedule(&dag, k, r, &mut sink).unwrap();
            let twin = rbp_schedulers::Wavefront.schedule(&inst).unwrap();
            assert_eq!(run.cost, twin.cost, "wavefront on {}", dag.name());
            // The wavefront replay is move-exact, not just cost-exact.
            assert_eq!(
                sink.strategy(),
                &twin.strategy,
                "wavefront moves on {}",
                dag.name()
            );
        }
    }

    /// The memory-aware list scheduler never loads more than the
    /// baseline (which reloads every input every time).
    #[test]
    fn list_stream_reuses_red_memory() {
        let dag = generators::grid(6, 6);
        let mut sink = NullSink::new();
        let run = ListStream.schedule(&dag, 2, 6, &mut sink).unwrap();
        let mut base_sink = NullSink::new();
        let base = TopoStream.schedule(&dag, 2, 6, &mut base_sink).unwrap();
        assert!(
            run.cost.loads < base.cost.loads,
            "list {} vs baseline {}",
            run.cost.loads,
            base.cost.loads
        );
        assert_eq!(run.cost.computes, base.cost.computes);
    }

    #[test]
    fn registry_names_are_distinct_and_resolvable() {
        let names: Vec<String> = all_stream_schedulers().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
        for n in &names {
            assert!(stream_scheduler_by_name(n).is_some(), "{n}");
        }
        assert!(stream_scheduler_by_name("nope").is_none());
    }

    #[test]
    fn empty_dag_schedules_to_nothing() {
        let dag = generators::chain(0);
        for s in all_stream_schedulers() {
            let mut sink = VecSink::new();
            let run = s.schedule(&dag, 2, 2, &mut sink).unwrap();
            assert_eq!(run.moves, 0, "{}", s.name());
            assert_eq!(run.cost, rbp_core::Cost::zero());
        }
    }
}
