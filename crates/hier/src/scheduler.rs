//! Heuristic schedulers producing valid three-level strategies.
//!
//! Every move goes through the rule-enforcing [`HierSimulator`], so an
//! illegal schedule is a bug that surfaces immediately, not a silently
//! wrong cost — the same discipline as `rbp-schedulers`.
//!
//! - [`HierTopoBaseline`] — the Lemma 1 strategy lifted verbatim: all
//!   traffic through blue, green never touched. The yardstick.
//! - [`GreenList`] — topological list scheduling with two-tier
//!   eviction: spills and cross-processor handoffs go to the green
//!   tier while it has room (reclaiming dead green entries for free),
//!   falling back to blue; loads prefer green.

use rbp_core::ProcId;
use rbp_dag::NodeId;
use rbp_util::Json;

use crate::{HierError, HierInstance, HierRun, HierSimulator};

/// A scheduler producing a valid three-level strategy for any feasible
/// instance. Stateless configuration holders, `Send + Sync` so sweeps
/// can run them from worker threads.
pub trait HierScheduler: Send + Sync {
    /// Human-readable name used in experiment tables.
    fn name(&self) -> String;

    /// Builds and returns a validated run for `instance`.
    fn schedule(&self, instance: &HierInstance) -> Result<HierRun, HierError>;
}

/// The default hierarchical scheduler registry used by sweeps.
#[must_use]
pub fn all_hier_schedulers() -> Vec<Box<dyn HierScheduler>> {
    vec![Box::new(HierTopoBaseline), Box::new(GreenList)]
}

/// Emits one snapshot of a finished run to the global tracer under the
/// `scheduler.<name>.*` prefix, splitting green from blue traffic.
fn trace_run(name: &str, run: &HierRun) {
    if !rbp_trace::enabled() {
        return;
    }
    let c = run.cost;
    rbp_trace::counter(&format!("scheduler.{name}.green_stores"), c.green_stores);
    rbp_trace::counter(&format!("scheduler.{name}.green_loads"), c.green_loads);
    rbp_trace::counter(&format!("scheduler.{name}.stores"), c.stores);
    rbp_trace::counter(&format!("scheduler.{name}.loads"), c.loads);
    rbp_trace::counter(&format!("scheduler.{name}.computes"), c.computes);
    rbp_trace::counter(
        &format!("scheduler.{name}.steps"),
        run.strategy.len() as u64,
    );
}

fn schedule_span(name: &str, instance: &HierInstance) -> rbp_trace::SpanGuard {
    rbp_trace::span_with(
        "scheduler.schedule",
        vec![
            ("scheduler", Json::from(name)),
            ("n", Json::from(instance.dag.n() as u64)),
            ("k", Json::from(instance.k as u64)),
            ("green_cap", Json::from(instance.green_cap as u64)),
        ],
    )
}

/// The Lemma 1 baseline lifted to three levels: per node, load inputs
/// from blue, compute, store blue, evict — green capacity ignored.
/// Cost ≤ `(g·(Δ_in + 1) + 1)·n` exactly as in the two-level game.
#[derive(Debug, Clone, Copy, Default)]
pub struct HierTopoBaseline;

impl HierScheduler for HierTopoBaseline {
    fn name(&self) -> String {
        "hier-topo-baseline".into()
    }

    fn schedule(&self, instance: &HierInstance) -> Result<HierRun, HierError> {
        let _span = schedule_span("hier-topo-baseline", instance);
        let dag = instance.dag;
        let topo = dag.topo();
        let mut sim = HierSimulator::new(*instance);
        for (i, &v) in topo.order().iter().enumerate() {
            let p = i % instance.k;
            for &u in dag.preds(v) {
                sim.load(vec![(p, u)])?;
            }
            sim.compute(vec![(p, v)])?;
            sim.store(vec![(p, v)])?;
            for &u in dag.preds(v) {
                sim.remove_red(p, u)?;
            }
            sim.remove_red(p, v)?;
        }
        let run = sim.finish()?;
        trace_run(&self.name(), &run);
        Ok(run)
    }
}

/// Green-aware topological list scheduling with two-tier eviction.
///
/// Nodes are assigned round-robin in topological order. Each processor
/// keeps values red as long as capacity allows; on eviction, a value
/// that is still needed (a remaining consumer or a sink) and not yet
/// persisted is staged to the green tier if it has room — dead green
/// entries (no remaining consumers, not sinks) are reclaimed for free
/// first — and to blue otherwise. Cross-processor handoffs are
/// persisted eagerly at compute time, green-first. Loads prefer the
/// green copy whenever it is at least as cheap as a blue load.
#[derive(Debug, Clone, Copy, Default)]
pub struct GreenList;

impl GreenList {
    /// Picks an eviction victim on processor `p`: any red node outside
    /// `keep`, preferring values that are dead or already persisted
    /// (their eviction is free).
    fn victim(
        sim: &HierSimulator,
        p: ProcId,
        keep: &dyn Fn(NodeId) -> bool,
        needed: &dyn Fn(NodeId) -> bool,
    ) -> NodeId {
        let cfg = sim.config();
        let mut fallback = None;
        for w in cfg.reds[p].iter() {
            if keep(w) {
                continue;
            }
            if !needed(w) || cfg.green.contains(w) || cfg.blue.contains(w) {
                return w;
            }
            fallback = Some(w);
        }
        fallback.expect("feasible instance always has an eviction victim")
    }

    /// Evicts `w` from `p`, persisting it first if it is still needed
    /// and held nowhere outside `p`'s fast memory.
    fn evict(
        sim: &mut HierSimulator,
        p: ProcId,
        w: NodeId,
        needed: &dyn Fn(NodeId) -> bool,
        remaining: &[u32],
        sinks: &[bool],
    ) -> Result<(), HierError> {
        let cfg = sim.config();
        let held_elsewhere = cfg.green.contains(w)
            || cfg.blue.contains(w)
            || cfg
                .reds
                .iter()
                .enumerate()
                .any(|(q, s)| q != p && s.contains(w));
        if needed(w) && !held_elsewhere {
            Self::persist(sim, p, w, remaining, sinks)?;
        }
        sim.remove_red(p, w)
    }

    /// Persists `w` from `p` green-first: reclaims dead green entries
    /// to make room, then falls back to blue if the tier is full or
    /// not cheaper.
    fn persist(
        sim: &mut HierSimulator,
        p: ProcId,
        w: NodeId,
        remaining: &[u32],
        sinks: &[bool],
    ) -> Result<(), HierError> {
        let inst = *sim.instance();
        if inst.model.green <= inst.model.g && sim.config().green.len() >= inst.green_cap {
            let dead: Vec<NodeId> = sim
                .config()
                .green
                .iter()
                .filter(|&u| remaining[u.index()] == 0 && !sinks[u.index()])
                .collect();
            for u in dead {
                if sim.config().green.len() < inst.green_cap {
                    break;
                }
                sim.remove_green(u)?;
            }
        }
        sim.persist_prefer_green(p, w)
    }

    /// Loads `u` into `p`, preferring the green copy when it is at
    /// least as cheap.
    fn fetch(sim: &mut HierSimulator, p: ProcId, u: NodeId) -> Result<(), HierError> {
        let inst = *sim.instance();
        let cfg = sim.config();
        let green_ok = cfg.green.contains(u);
        let blue_ok = cfg.blue.contains(u);
        if green_ok && (inst.model.green <= inst.model.g || !blue_ok) {
            sim.load_green(vec![(p, u)])
        } else {
            sim.load(vec![(p, u)])
        }
    }
}

impl HierScheduler for GreenList {
    fn name(&self) -> String {
        "green-list".into()
    }

    fn schedule(&self, instance: &HierInstance) -> Result<HierRun, HierError> {
        let _span = schedule_span("green-list", instance);
        let dag = instance.dag;
        let n = dag.n();
        let topo = dag.topo();
        let k = instance.k;

        // Static round-robin ownership in topological order.
        let mut proc = vec![0usize; n];
        for (i, &v) in topo.order().iter().enumerate() {
            proc[v.index()] = i % k;
        }
        // Remaining consumers per node; a node is needed while it has
        // uncomputed successors or is a sink.
        let mut remaining: Vec<u32> = (0..n)
            .map(|i| dag.succs(NodeId::new(i)).len() as u32)
            .collect();
        let mut sinks = vec![false; n];
        for s in dag.sinks() {
            sinks[s.index()] = true;
        }

        let mut sim = HierSimulator::new(*instance);
        for &v in topo.order() {
            let p = proc[v.index()];
            let needed = |u: NodeId| remaining[u.index()] > 0 || sinks[u.index()];
            // Bring every input red on p, making room as required.
            for &u in dag.preds(v) {
                if sim.config().reds[p].contains(u) {
                    continue;
                }
                while sim.config().reds[p].len() >= instance.r {
                    let keep = |w: NodeId| w == v || dag.preds(v).contains(&w);
                    let w = Self::victim(&sim, p, &keep, &needed);
                    Self::evict(&mut sim, p, w, &needed, &remaining, &sinks)?;
                }
                Self::fetch(&mut sim, p, u)?;
            }
            // Room for v itself.
            while sim.config().reds[p].len() >= instance.r {
                let keep = |w: NodeId| w == v || dag.preds(v).contains(&w);
                let w = Self::victim(&sim, p, &keep, &needed);
                Self::evict(&mut sim, p, w, &needed, &remaining, &sinks)?;
            }
            sim.compute(vec![(p, v)])?;
            for &u in dag.preds(v) {
                remaining[u.index()] -= 1;
            }
            // Eager handoff: if some consumer runs elsewhere, publish
            // v now while it is still red here.
            if dag.succs(v).iter().any(|&s| proc[s.index()] != p) {
                Self::persist(&mut sim, p, v, &remaining, &sinks)?;
            }
        }
        let run = sim.finish()?;
        trace_run(&self.name(), &run);
        Ok(run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::{dag_from_edges, generators, DagStats};

    #[test]
    fn registry_runs_everything_and_revalidates() {
        let dag = generators::layered_random(4, 4, 2, 11);
        let inst = HierInstance::new(&dag, 2, 4, 2, 3, 1);
        for s in all_hier_schedulers() {
            let run = s
                .schedule(&inst)
                .unwrap_or_else(|e| panic!("{} failed: {e}", s.name()));
            let cost = run.strategy.validate(&inst).unwrap();
            assert_eq!(cost, run.cost, "{}", s.name());
        }
    }

    #[test]
    fn baseline_respects_lemma1_bound() {
        for (dag, k, r, g) in [
            (generators::binary_in_tree(8), 2, 3, 3),
            (generators::grid(3, 4), 3, 3, 2),
            (generators::layered_random(5, 4, 3, 9), 4, 4, 4),
        ] {
            let inst = HierInstance::new(&dag, k, r, g, 2, 1);
            let run = HierTopoBaseline.schedule(&inst).unwrap();
            let stats = DagStats::compute(&dag);
            let bound = (g * (stats.max_in_degree as u64 + 1) + 1) * stats.n as u64;
            assert!(run.cost.total(inst.model) <= bound, "{}", dag.name());
            assert_eq!(run.cost.green_io_steps(), 0);
        }
    }

    #[test]
    fn green_list_never_loses_to_baseline_with_cheap_green() {
        for (dag, k, r, g) in [
            (generators::binary_in_tree(8), 2, 3, 3),
            (generators::grid(3, 4), 2, 4, 4),
            (generators::fft(3), 2, 4, 5),
            (generators::layered_random(5, 4, 3, 9), 3, 4, 4),
        ] {
            let inst = HierInstance::new(&dag, k, r, g, 4, 1);
            let base = HierTopoBaseline.schedule(&inst).unwrap();
            let green = GreenList.schedule(&inst).unwrap();
            assert!(
                green.cost.total(inst.model) <= base.cost.total(inst.model),
                "{}: green-list {} > baseline {}",
                dag.name(),
                green.cost.total(inst.model),
                base.cost.total(inst.model)
            );
        }
    }

    #[test]
    fn green_list_uses_green_for_handoffs() {
        // Two processors alternate along a chain: every handoff should
        // ride the cheap green tier, not blue.
        let dag = generators::chain(8);
        let inst = HierInstance::new(&dag, 2, 3, 5, 2, 1);
        let run = GreenList.schedule(&inst).unwrap();
        assert!(run.cost.green_io_steps() > 0);
        assert_eq!(
            run.cost.io_steps(),
            0,
            "no blue traffic expected: {}",
            run.cost
        );
    }

    #[test]
    fn green_list_with_zero_cap_is_pure_mpp() {
        let dag = generators::grid(3, 3);
        let inst = HierInstance::new(&dag, 2, 4, 3, 0, 1);
        let run = GreenList.schedule(&inst).unwrap();
        assert_eq!(run.cost.green_io_steps(), 0);
        run.strategy.validate(&inst).unwrap();
    }

    #[test]
    fn green_list_works_at_minimum_feasible_memory() {
        let dag = generators::diamond(6); // Δin = 6
        let inst = HierInstance::new(&dag, 2, 7, 2, 1, 1);
        let run = GreenList.schedule(&inst).unwrap();
        run.strategy.validate(&inst).unwrap();
    }

    #[test]
    fn green_list_reclaims_dead_green_entries() {
        // A long chain on one processor with r = 2 and green_cap = 1:
        // each spilled value dies once consumed, so the single green
        // slot must be recycled along the chain instead of overflowing
        // to blue.
        let dag = dag_from_edges(6, &[(0, 2), (1, 2), (2, 4), (3, 4), (4, 5)]);
        let inst = HierInstance::new(&dag, 1, 3, 9, 1, 1);
        let run = GreenList.schedule(&inst).unwrap();
        assert_eq!(
            run.cost.io_steps(),
            0,
            "blue fallback unexpected: {}",
            run.cost
        );
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = all_hier_schedulers().iter().map(|s| s.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len(), "{names:?}");
    }
}
