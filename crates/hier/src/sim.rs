//! Step-by-step simulation engine for building hierarchical strategies.
//!
//! Green-aware schedulers drive a [`HierSimulator`] exactly as the
//! two-level schedulers drive `MppSimulator`: each call applies one rule
//! to the live configuration (rejecting illegal moves immediately, with
//! the violation) and logs it. [`HierSimulator::finish`] checks
//! terminality and returns the strategy plus its cost, which can be
//! re-validated independently with [`crate::validate_hier`].

use rbp_core::ProcId;
use rbp_dag::NodeId;

use crate::strategy::apply_checked;
use crate::{
    HierConfiguration, HierCost, HierError, HierErrorKind, HierInstance, HierMove, HierPebble,
    HierStrategy,
};

/// A live three-level game that accumulates a strategy.
#[derive(Debug, Clone)]
pub struct HierSimulator<'a> {
    instance: HierInstance<'a>,
    config: HierConfiguration,
    moves: Vec<HierMove>,
    cost: HierCost,
}

/// A finished, validated hierarchical run.
#[derive(Debug, Clone)]
pub struct HierRun {
    /// The strategy that was executed.
    pub strategy: HierStrategy,
    /// Its rule-application tally.
    pub cost: HierCost,
}

impl<'a> HierSimulator<'a> {
    /// Starts a game in the initial (pebble-free) configuration.
    #[must_use]
    pub fn new(instance: HierInstance<'a>) -> Self {
        let config = HierConfiguration::initial(instance.dag, instance.k);
        HierSimulator {
            instance,
            config,
            moves: Vec::new(),
            cost: HierCost::zero(),
        }
    }

    /// The instance being played.
    #[must_use]
    pub fn instance(&self) -> &HierInstance<'a> {
        &self.instance
    }

    /// The current configuration (read-only).
    #[must_use]
    pub fn config(&self) -> &HierConfiguration {
        &self.config
    }

    /// Cost so far.
    #[must_use]
    pub fn cost(&self) -> HierCost {
        self.cost
    }

    /// Number of moves so far.
    #[must_use]
    pub fn steps(&self) -> usize {
        self.moves.len()
    }

    /// Applies one move, or reports the violation without changing
    /// state.
    pub fn apply(&mut self, mv: HierMove) -> Result<(), HierError> {
        apply_checked(&self.instance, &mut self.config, &mv).map_err(|kind| HierError {
            step: self.moves.len(),
            kind,
        })?;
        match &mv {
            HierMove::Store(_) => self.cost.stores += 1,
            HierMove::Load(_) => self.cost.loads += 1,
            HierMove::StoreGreen(_) => self.cost.green_stores += 1,
            HierMove::LoadGreen(_) => self.cost.green_loads += 1,
            HierMove::Compute(_) => self.cost.computes += 1,
            HierMove::Remove(_) => {}
        }
        self.moves.push(mv);
        Ok(())
    }

    /// Batch compute (R3-H).
    pub fn compute(&mut self, batch: Vec<(ProcId, NodeId)>) -> Result<(), HierError> {
        self.apply(HierMove::Compute(batch))
    }

    /// Batch blue load (R2-H).
    pub fn load(&mut self, batch: Vec<(ProcId, NodeId)>) -> Result<(), HierError> {
        self.apply(HierMove::Load(batch))
    }

    /// Batch blue store (R1-H).
    pub fn store(&mut self, batch: Vec<(ProcId, NodeId)>) -> Result<(), HierError> {
        self.apply(HierMove::Store(batch))
    }

    /// Batch green load (R6-H).
    pub fn load_green(&mut self, batch: Vec<(ProcId, NodeId)>) -> Result<(), HierError> {
        self.apply(HierMove::LoadGreen(batch))
    }

    /// Batch green store (R5-H).
    pub fn store_green(&mut self, batch: Vec<(ProcId, NodeId)>) -> Result<(), HierError> {
        self.apply(HierMove::StoreGreen(batch))
    }

    /// Remove a red pebble (R4-H).
    pub fn remove_red(&mut self, proc: ProcId, v: NodeId) -> Result<(), HierError> {
        self.apply(HierMove::Remove(HierPebble::Red(proc, v)))
    }

    /// Remove a green pebble (R4-H).
    pub fn remove_green(&mut self, v: NodeId) -> Result<(), HierError> {
        self.apply(HierMove::Remove(HierPebble::Green(v)))
    }

    /// Remove a blue pebble (R4-H).
    pub fn remove_blue(&mut self, v: NodeId) -> Result<(), HierError> {
        self.apply(HierMove::Remove(HierPebble::Blue(v)))
    }

    /// Persists `v` from `proc`, preferring the cheap green tier:
    /// green-stores if there is room (or `v` is already green), else
    /// blue-stores. No-op if `v` already has a blue pebble and a green
    /// store is impossible. Convenience for schedulers.
    pub fn persist_prefer_green(&mut self, proc: ProcId, v: NodeId) -> Result<(), HierError> {
        if self.config.green.contains(v) {
            return Ok(());
        }
        if self.config.green.len() < self.instance.green_cap
            && self.instance.model.green <= self.instance.model.g
        {
            return self.store_green(vec![(proc, v)]);
        }
        if self.config.blue.contains(v) {
            return Ok(());
        }
        self.store(vec![(proc, v)])
    }

    /// Checks terminality and returns the finished run.
    pub fn finish(self) -> Result<HierRun, HierError> {
        if let Some(sink) = self
            .instance
            .dag
            .sinks()
            .into_iter()
            .find(|&s| !self.config.has_pebble(s))
        {
            return Err(HierError {
                step: self.moves.len(),
                kind: HierErrorKind::NotTerminal(sink),
            });
        }
        Ok(HierRun {
            strategy: HierStrategy::from_moves(self.moves),
            cost: self.cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::dag_from_edges;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn simulator_replays_like_validator() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = HierInstance::new(&d, 2, 2, 3, 2, 1);
        let mut sim = HierSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store_green(vec![(0, v(0))]).unwrap();
        sim.load_green(vec![(1, v(0))]).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        assert_eq!(run.cost.green_io_steps(), 2);
        let cost2 = run.strategy.validate(&inst).unwrap();
        assert_eq!(cost2, run.cost);
        assert_eq!(run.cost.total(inst.model), 2 + 2);
    }

    #[test]
    fn illegal_move_keeps_simulator_usable() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = HierInstance::new(&d, 1, 2, 1, 0, 1);
        let mut sim = HierSimulator::new(inst);
        assert!(sim.compute(vec![(0, v(1))]).is_err());
        assert_eq!(sim.steps(), 0);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.compute(vec![(0, v(1))]).unwrap();
        assert!(sim.finish().is_ok());
    }

    #[test]
    fn finish_rejects_non_terminal() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = HierInstance::new(&d, 1, 2, 1, 1, 1);
        let mut sim = HierSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        let err = sim.finish().unwrap_err();
        assert_eq!(err.kind, HierErrorKind::NotTerminal(v(1)));
    }

    #[test]
    fn persist_prefers_green_until_full() {
        let d = dag_from_edges(3, &[]);
        let inst = HierInstance::new(&d, 1, 3, 7, 1, 1);
        let mut sim = HierSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.compute(vec![(0, v(1))]).unwrap();
        sim.persist_prefer_green(0, v(0)).unwrap();
        // Idempotent while green.
        sim.persist_prefer_green(0, v(0)).unwrap();
        // Green full: falls back to blue.
        sim.persist_prefer_green(0, v(1)).unwrap();
        sim.persist_prefer_green(0, v(1)).unwrap();
        sim.compute(vec![(0, v(2))]).unwrap();
        let run = sim.finish().unwrap();
        assert_eq!((run.cost.green_stores, run.cost.stores), (1, 1));
    }

    #[test]
    fn persist_with_zero_cap_goes_blue() {
        let d = dag_from_edges(1, &[]);
        let inst = HierInstance::new(&d, 1, 1, 7, 0, 1);
        let mut sim = HierSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.persist_prefer_green(0, v(0)).unwrap();
        let run = sim.finish().unwrap();
        assert_eq!((run.cost.green_stores, run.cost.stores), (0, 1));
    }
}
