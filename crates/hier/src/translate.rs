//! Projecting three-level strategies down to the two-level game.
//!
//! The flattening argument: merge the green tier into blue. A blue
//! pebble is strictly more durable than a green one (it is never
//! evicted for capacity), so replaying a hierarchical strategy with
//! every green store re-interpreted as a blue store — and green
//! deletions dropped — yields a valid MPP strategy. Each green I/O
//! application becomes at most one blue I/O application, so
//!
//! `MPP cost ≤ g·(blue I/O + green I/O) + computes`,
//!
//! i.e. the two-level optimum is bounded by the three-level cost with
//! green traffic re-priced at `g`. Composed with `rbp_core::mpp_to_spp`
//! this chains the Lemma 5 simulation all the way from three levels to
//! a single processor, which is how the tests cross-check the new game
//! against the paper's machinery.

use rbp_core::{MppMove, MppStrategy, Pebble};

use crate::{HierInstance, HierMove, HierPebble, HierStrategy};

/// Flattens a three-level strategy into a two-level one by merging
/// green into blue.
///
/// The result validates against [`HierInstance::mpp_instance`] (same
/// DAG, `k`, `r`, and blue I/O cost `g`). The input strategy is assumed
/// valid for `instance` — validate it first. Move-by-move:
///
/// - `Store`/`StoreGreen` → MPP `Store`, filtered to the vertices not
///   yet in the merged blue set (a green store of an already
///   blue-stored value is a free no-op two levels down); a fully
///   filtered batch is dropped.
/// - `Load`/`LoadGreen` → MPP `Load` (the merged blue set always holds
///   the value: it is a superset of green ∪ blue at every step, since
///   nothing is ever removed from it).
/// - `Compute` and red removals are unchanged.
/// - Green and blue removals are dropped (the classic
///   blue-pebbles-are-never-deleted normalization).
#[must_use]
pub fn hier_to_mpp(instance: &HierInstance, strategy: &HierStrategy) -> MppStrategy {
    let mut merged_blue = instance.dag.empty_set();
    let mut out = Vec::new();
    for mv in &strategy.moves {
        match mv {
            HierMove::Store(batch) | HierMove::StoreGreen(batch) => {
                let fresh: Vec<_> = batch
                    .iter()
                    .copied()
                    .filter(|&(_, v)| !merged_blue.contains(v))
                    .collect();
                if fresh.is_empty() {
                    continue;
                }
                for &(_, v) in &fresh {
                    merged_blue.insert(v);
                }
                out.push(MppMove::Store(fresh));
            }
            HierMove::Load(batch) | HierMove::LoadGreen(batch) => {
                out.push(MppMove::Load(batch.clone()));
            }
            HierMove::Compute(batch) => out.push(MppMove::Compute(batch.clone())),
            HierMove::Remove(HierPebble::Red(p, v)) => {
                out.push(MppMove::Remove(Pebble::Red(*p, *v)));
            }
            HierMove::Remove(HierPebble::Green(_) | HierPebble::Blue(_)) => {}
        }
    }
    MppStrategy::from_moves(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{solve_hier, GreenList, HierScheduler, HierSimulator, HierTopoBaseline};
    use rbp_core::{mpp_to_spp, simulation_instance, SolveLimits};
    use rbp_dag::{dag_from_edges, generators, NodeId};

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn green_handoff_projects_to_blue_handoff() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = HierInstance::new(&d, 2, 2, 3, 2, 1);
        let mut sim = HierSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store_green(vec![(0, v(0))]).unwrap();
        sim.load_green(vec![(1, v(0))]).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();

        let mpp = hier_to_mpp(&inst, &run.strategy);
        let mpp_inst = inst.mpp_instance();
        let cost = mpp.validate(&mpp_inst).unwrap();
        assert_eq!(cost.io_steps(), 2);
        // Re-pricing bound: g·(all I/O) + computes.
        let repriced = inst.model.g * (run.cost.io_steps() + run.cost.green_io_steps())
            + inst.model.compute * run.cost.computes;
        assert_eq!(cost.total(mpp_inst.model), repriced);
    }

    #[test]
    fn double_persist_collapses_to_one_store() {
        // Green store then blue store of the same value: the projection
        // must not emit a second (illegal) blue store.
        let d = dag_from_edges(1, &[]);
        let inst = HierInstance::new(&d, 1, 1, 2, 1, 1);
        let mut sim = HierSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store_green(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        let run = sim.finish().unwrap();
        let mpp = hier_to_mpp(&inst, &run.strategy);
        let cost = mpp.validate(&inst.mpp_instance()).unwrap();
        assert_eq!(cost.stores, 1);
    }

    #[test]
    fn green_removals_vanish_in_projection() {
        // The green slot is recycled (store, remove, store) — both
        // stores survive the projection as blue stores of distinct
        // vertices, while the green removals are dropped.
        let d = dag_from_edges(2, &[]);
        let inst = HierInstance::new(&d, 1, 1, 2, 1, 1);
        let mut sim = HierSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store_green(vec![(0, v(0))]).unwrap();
        sim.remove_red(0, v(0)).unwrap();
        sim.remove_green(v(0)).unwrap();
        sim.compute(vec![(0, v(1))]).unwrap();
        sim.store_green(vec![(0, v(1))]).unwrap();
        // v0 lost its green pebble, but the projection keeps the merged
        // blue pebble, so the projected strategy is terminal even
        // though the hier run itself is not.
        let moves = vec![
            crate::HierMove::compute1(0, v(0)),
            crate::HierMove::green_store1(0, v(0)),
            crate::HierMove::Remove(crate::HierPebble::Red(0, v(0))),
            crate::HierMove::Remove(crate::HierPebble::Green(v(0))),
            crate::HierMove::compute1(0, v(1)),
            crate::HierMove::green_store1(0, v(1)),
        ];
        let strategy = crate::HierStrategy::from_moves(moves);
        let mpp = hier_to_mpp(&inst, &strategy);
        let cost = mpp.validate(&inst.mpp_instance()).unwrap();
        assert_eq!((cost.stores, cost.loads, cost.computes), (2, 0, 2));
        assert!(!mpp
            .moves
            .iter()
            .any(|m| matches!(m, rbp_core::MppMove::Remove(Pebble::Blue(_)))));
    }

    #[test]
    fn scheduler_outputs_project_validly() {
        for (dag, k, r, g, cap) in [
            (generators::binary_in_tree(8), 2, 3, 3, 2),
            (generators::grid(3, 3), 2, 4, 4, 3),
            (generators::layered_random(4, 4, 2, 7), 3, 4, 2, 2),
        ] {
            let inst = HierInstance::new(&dag, k, r, g, cap, 1);
            for s in [
                &HierTopoBaseline as &dyn HierScheduler,
                &GreenList as &dyn HierScheduler,
            ] {
                let run = s.schedule(&inst).unwrap();
                let mpp = hier_to_mpp(&inst, &run.strategy);
                let cost = mpp.validate(&inst.mpp_instance()).unwrap();
                let repriced = inst.model.g * (run.cost.io_steps() + run.cost.green_io_steps())
                    + inst.model.compute * run.cost.computes;
                assert!(
                    cost.total(inst.mpp_instance().model) <= repriced,
                    "{} on {}",
                    s.name(),
                    dag.name()
                );
            }
        }
    }

    #[test]
    fn exact_witness_chains_down_to_spp() {
        // hier → mpp → spp: the full Lemma 5 chain applied to a witness
        // that genuinely uses the green tier.
        let gadget = rbp_gadgets::HierSkip::build(1);
        let d = gadget.dag;
        let inst = HierInstance::new(&d, 1, 3, 3, 1, 1);
        let sol = solve_hier(&inst, SolveLimits::states(500_000)).unwrap();
        assert!(sol.cost.green_io_steps() > 0);
        let mpp_inst = inst.mpp_instance();
        let mpp = hier_to_mpp(&inst, &sol.strategy);
        mpp.validate(&mpp_inst).unwrap();
        let spp = mpp_to_spp(&mpp_inst, &mpp);
        spp.validate(&simulation_instance(&mpp_inst)).unwrap();
    }
}
