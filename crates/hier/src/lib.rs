//! # rbp-hier — three-level (red/green/blue) multiprocessor pebbling
//!
//! Extends the paper's MPP game (§3.2) with a shared, bounded,
//! cheaper-I/O mid tier — modelling a scratchpad / HBM / node-local
//! cache between the per-processor fast memories and unbounded slow
//! memory. Configurations are `(R^1..R^k, G, B)`: per-processor red
//! sets of capacity `r`, one shared green set of capacity `green_cap`,
//! unbounded blue.
//!
//! The rule set keeps the four MPP rules **verbatim** and adds one
//! store/load pair for the green tier:
//!
//! | rule | effect | cost |
//! |------|--------|------|
//! | R1-H store | red → blue (batched) | `g` |
//! | R2-H load | blue → red (batched) | `g` |
//! | R3-H compute | inputs red → red (batched) | `compute` |
//! | R4-H remove | delete any pebble | free |
//! | R5-H green store | red → green (batched, capacity-checked) | `green` |
//! | R6-H green load | green → red (batched) | `green` |
//!
//! There is no direct green ↔ blue rule: outer-tier traffic stages
//! through a red pebble, as cache lines stage through a core. Two
//! structural facts anchor the design and are enforced by tests:
//!
//! - **Degenerate reduction.** With `green_cap = 0` (or `green = g`)
//!   the game *is* vanilla MPP: same reachable configurations, same
//!   optimal cost, verified byte-for-byte against `rbp_core::solve_mpp`
//!   over randomized instances.
//! - **Projection.** Merging green into blue flattens any three-level
//!   strategy into a valid two-level one ([`hier_to_mpp`]), so
//!   `OPT_MPP ≤ g·(blue I/O + green I/O) + computes` — the three-level
//!   optimum with green re-priced at `g`.
//!
//! The exact solver ([`solve_hier`]) runs on the shared
//! [`rbp_core::engine`] A\* drivers (sequential and hash-sharded
//! parallel), inheriting processor-symmetry canonicalization, the
//! Lemma 1 admissible heuristic (with `G ∪ B` as the out-of-fast-memory
//! set), and lazy eviction. Heuristic schedulers ([`GreenList`],
//! [`HierTopoBaseline`]) build strategies through the rule-enforcing
//! [`HierSimulator`].
//!
//! ```
//! use rbp_hier::{solve_hier, HierInstance};
//! use rbp_core::SolveLimits;
//! use rbp_dag::dag_from_edges;
//!
//! // Two triangle-capped parts joined at a sink: at r = 3 the part
//! // finishing second forces the other part's live output out of fast
//! // memory. Blue I/O costs 3, the green tier costs 1.
//! let dag = dag_from_edges(
//!     7,
//!     &[(0, 1), (0, 2), (1, 2), (3, 4), (3, 5), (4, 5), (2, 6), (5, 6)],
//! );
//! let inst = HierInstance::new(&dag, 1, 3, 3, 1, 1);
//! let sol = solve_hier(&inst, SolveLimits::states(500_000)).unwrap();
//! assert!(sol.cost.green_io_steps() > 0); // the spill rides the mid tier
//! ```

#![deny(missing_docs)]

pub mod exact;
pub mod instance;
pub mod moves;
pub mod scheduler;
pub mod sim;
pub mod strategy;
pub mod translate;

pub use exact::{solve as solve_hier, solve_with as solve_hier_with, HierSolution};
pub use instance::{HierConfiguration, HierCost, HierCostModel, HierInstance};
pub use moves::{HierMove, HierPebble};
pub use scheduler::{all_hier_schedulers, GreenList, HierScheduler, HierTopoBaseline};
pub use sim::{HierRun, HierSimulator};
pub use strategy::{apply_move, validate as validate_hier, HierError, HierErrorKind, HierStrategy};
pub use translate::hier_to_mpp;
