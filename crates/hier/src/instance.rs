//! Hierarchical instances, the two-I/O-cost model, and configurations.

use rbp_core::{CostModel, GameMode, MppInstance};
use rbp_dag::{Dag, NodeId, NodeSet};

/// Per-rule costs of the three-level game.
///
/// Blue I/O (R1-H/R2-H) costs `g` per rule application exactly as in
/// the paper's MPP cost function; green I/O (R5-H/R6-H) costs `green`
/// per application; computes cost `compute`; deletions are free. The
/// model is interesting when `green < g` (the mid tier is the cheaper
/// spill target), but nothing requires it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierCostModel {
    /// Cost of one blue (slow-memory) I/O rule application.
    pub g: u64,
    /// Cost of one green (mid-tier) I/O rule application.
    pub green: u64,
    /// Cost of one compute rule application.
    pub compute: u64,
}

impl HierCostModel {
    /// The standard hierarchy cost function: blue I/O costs `g`, green
    /// I/O costs `green`, computes cost 1.
    #[must_use]
    pub fn hier(g: u64, green: u64) -> Self {
        HierCostModel {
            g,
            green,
            compute: 1,
        }
    }

    /// The two-level cost model obtained by forgetting the green tier
    /// (used by the degenerate reduction and the projection).
    #[must_use]
    pub fn as_mpp(self) -> CostModel {
        CostModel {
            g: self.g,
            compute: self.compute,
        }
    }
}

/// Tally of rule applications of a hierarchical strategy, with blue and
/// green I/O counted separately so experiments can attribute the
/// savings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HierCost {
    /// R1-H applications (red → blue).
    pub stores: u64,
    /// R2-H applications (blue → red).
    pub loads: u64,
    /// R5-H applications (red → green).
    pub green_stores: u64,
    /// R6-H applications (green → red).
    pub green_loads: u64,
    /// R3-H applications (computes).
    pub computes: u64,
}

impl HierCost {
    /// Zero cost.
    #[must_use]
    pub fn zero() -> Self {
        HierCost::default()
    }

    /// Number of blue I/O rule applications.
    #[must_use]
    pub fn io_steps(&self) -> u64 {
        self.stores + self.loads
    }

    /// Number of green I/O rule applications.
    #[must_use]
    pub fn green_io_steps(&self) -> u64 {
        self.green_stores + self.green_loads
    }

    /// Total cost under `model`:
    /// `g·(stores+loads) + green·(green_stores+green_loads) +
    /// compute·computes`.
    #[must_use]
    pub fn total(&self, model: HierCostModel) -> u64 {
        model.g * self.io_steps()
            + model.green * self.green_io_steps()
            + model.compute * self.computes
    }

    /// Adds another tally.
    pub fn add(&mut self, other: HierCost) {
        self.stores += other.stores;
        self.loads += other.loads;
        self.green_stores += other.green_stores;
        self.green_loads += other.green_loads;
        self.computes += other.computes;
    }
}

impl std::fmt::Display for HierCost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stores={} loads={} green_stores={} green_loads={} computes={}",
            self.stores, self.loads, self.green_stores, self.green_loads, self.computes
        )
    }
}

/// A three-level problem instance: pebble `dag` with `k` processors of
/// red capacity `r`, a shared green tier of capacity `green_cap`, and
/// unbounded blue, under `model`.
#[derive(Debug, Clone, Copy)]
pub struct HierInstance<'a> {
    /// The computational DAG.
    pub dag: &'a Dag,
    /// Number of processors (shades of red).
    pub k: usize,
    /// Fast memory capacity per processor.
    pub r: usize,
    /// Capacity of the shared green tier (`0` disables it, reducing the
    /// game to vanilla MPP).
    pub green_cap: usize,
    /// Rule costs.
    pub model: HierCostModel,
}

impl<'a> HierInstance<'a> {
    /// Standard instance: compute cost 1, blue I/O cost `g`, green I/O
    /// cost `green_cost`, green capacity `green_cap`.
    #[must_use]
    pub fn new(
        dag: &'a Dag,
        k: usize,
        r: usize,
        g: u64,
        green_cap: usize,
        green_cost: u64,
    ) -> Self {
        HierInstance {
            dag,
            k,
            r,
            green_cap,
            model: HierCostModel::hier(g, green_cost),
        }
    }

    /// Lifts a two-level MPP instance into the hierarchy with the given
    /// green parameters (same DAG, processors, red capacity, and blue
    /// I/O cost).
    #[must_use]
    pub fn from_mpp(mpp: &MppInstance<'a>, green_cap: usize, green_cost: u64) -> Self {
        HierInstance::new(mpp.dag, mpp.k, mpp.r, mpp.model.g, green_cap, green_cost)
    }

    /// Lifts an MPP instance according to a [`GameMode`]. Returns
    /// `None` for [`GameMode::Vanilla`] — the caller should keep using
    /// the two-level machinery, which is both faster and byte-identical
    /// in cost.
    #[must_use]
    pub fn from_mode(mpp: &MppInstance<'a>, mode: GameMode) -> Option<Self> {
        match mode {
            GameMode::Vanilla => None,
            GameMode::Hier {
                green_cap,
                green_cost,
            } => Some(HierInstance::from_mpp(mpp, green_cap, green_cost)),
        }
    }

    /// The two-level instance obtained by forgetting the green tier.
    #[must_use]
    pub fn mpp_instance(&self) -> MppInstance<'a> {
        MppInstance {
            dag: self.dag,
            k: self.k,
            r: self.r,
            model: self.model.as_mpp(),
        }
    }

    /// Feasibility requires `r ≥ Δ_in + 1` and at least one processor,
    /// exactly as in the two-level game (the green tier only ever adds
    /// options).
    #[must_use]
    pub fn is_feasible(&self) -> bool {
        self.k >= 1 && self.r > self.dag.max_in_degree()
    }
}

/// A configuration `(R^1, …, R^k, G, B)`: one red set per processor
/// plus the shared bounded green set and the shared unbounded blue set.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct HierConfiguration {
    /// Red pebbles per processor shade.
    pub reds: Vec<NodeSet>,
    /// Green pebbles (shared bounded mid tier).
    pub green: NodeSet,
    /// Blue pebbles (shared unbounded slow memory).
    pub blue: NodeSet,
}

impl HierConfiguration {
    /// The empty initial configuration.
    #[must_use]
    pub fn initial(dag: &Dag, k: usize) -> Self {
        HierConfiguration {
            reds: vec![dag.empty_set(); k],
            green: dag.empty_set(),
            blue: dag.empty_set(),
        }
    }

    /// Number of processors.
    #[must_use]
    pub fn k(&self) -> usize {
        self.reds.len()
    }

    /// Whether `v` holds any pebble (any shade of red, green, or blue).
    #[must_use]
    pub fn has_pebble(&self, v: NodeId) -> bool {
        self.blue.contains(v) || self.green.contains(v) || self.reds.iter().any(|r| r.contains(v))
    }

    /// Whether the configuration respects the capacities.
    #[must_use]
    pub fn is_valid(&self, r: usize, green_cap: usize) -> bool {
        self.green.len() <= green_cap && self.reds.iter().all(|s| s.len() <= r)
    }

    /// Whether the configuration is terminal for `dag`: every sink
    /// holds a pebble on some level.
    #[must_use]
    pub fn is_terminal(&self, dag: &Dag) -> bool {
        dag.sinks().into_iter().all(|s| self.has_pebble(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::dag_from_edges;

    #[test]
    fn cost_model_and_totals() {
        let m = HierCostModel::hier(4, 1);
        assert_eq!(m.compute, 1);
        assert_eq!(m.as_mpp(), CostModel::mpp(4));
        let c = HierCost {
            stores: 1,
            loads: 2,
            green_stores: 3,
            green_loads: 4,
            computes: 5,
        };
        assert_eq!(c.io_steps(), 3);
        assert_eq!(c.green_io_steps(), 7);
        assert_eq!(c.total(m), 4 * 3 + 7 + 5);
        let mut d = HierCost::zero();
        d.add(c);
        assert_eq!(d, c);
        assert!(c.to_string().contains("green_stores=3"));
    }

    #[test]
    fn instance_lifting_and_feasibility() {
        let d = dag_from_edges(3, &[(0, 2), (1, 2)]);
        let mpp = MppInstance::new(&d, 2, 3, 5);
        let h = HierInstance::from_mpp(&mpp, 2, 1);
        assert_eq!(h.model, HierCostModel::hier(5, 1));
        assert_eq!(h.green_cap, 2);
        assert!(h.is_feasible());
        assert!(!HierInstance::new(&d, 2, 2, 5, 2, 1).is_feasible());
        assert_eq!(h.mpp_instance().model, CostModel::mpp(5));
        assert!(HierInstance::from_mode(&mpp, GameMode::Vanilla).is_none());
        let via = HierInstance::from_mode(
            &mpp,
            GameMode::Hier {
                green_cap: 4,
                green_cost: 2,
            },
        )
        .unwrap();
        assert_eq!((via.green_cap, via.model.green), (4, 2));
    }

    #[test]
    fn configuration_queries() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let mut c = HierConfiguration::initial(&d, 2);
        assert_eq!(c.k(), 2);
        assert!(!c.is_terminal(&d));
        c.green.insert(NodeId(1));
        assert!(c.has_pebble(NodeId(1)));
        assert!(c.is_terminal(&d));
        assert!(c.is_valid(1, 1));
        assert!(!c.is_valid(1, 0));
    }
}
