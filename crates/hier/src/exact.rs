//! Exact optimal solver for the three-level game on small instances.
//!
//! A\* search over configurations `(R^1..R^k, G, B)` packed into `u64`
//! masks, built on the shared [`rbp_core::engine`] drivers — the same
//! sequential and hash-distributed parallel machinery as the two-level
//! `solve_mpp`. Transitions are whole rule applications: all non-empty
//! batched selections of a single rule type are enumerated, so the
//! solver exploits the one-cost-per-parallel-step semantics exactly, on
//! both the blue and the green tier.
//!
//! State-space reductions, all correctness-preserving and inherited
//! from the two-level solver:
//!
//! - **Processor symmetry.** Shades are interchangeable; the green and
//!   blue sets are shared, so sorting the per-processor red masks is
//!   still a sound canonicalization and the permutation-trail witness
//!   reconstruction carries over unchanged.
//! - **Admissible heuristic.** The two-level Lemma-1 heuristic
//!   `ceil(|needed| / k) · compute` evaluated with `G ∪ B` in the role
//!   of the blue set: a green pebble, like a blue one, certifies the
//!   value exists outside fast memory, so the count of still-to-compute
//!   nodes is unchanged and the bound remains admissible (it counts
//!   compute applications only, never I/O).
//! - **Lazy eviction.** Red deletions only on a processor at capacity,
//!   green deletions only when the green tier is at capacity, blue
//!   pebbles never deleted.
//!
//! With `green_cap = 0` no green rule is ever enabled and the explored
//! state space is exactly the two-level one — the randomized
//! reduction-equivalence suite in this crate's tests pins that down
//! against `rbp_core::solve_mpp` numerically.

use rbp_core::engine::{
    pack_fields, search, unpack_fields, words_for, Domain, EmitFn, PackedMove, Partition,
    PhaseProf, PhaseStats,
};
use rbp_core::{
    trace_shards, AdmissibleHeuristic, HeurCtx, SearchConfig, SearchOutcome, SearchStats,
    ShardStats, SolveLimits, StopReason, MAX_THREADS,
};
use rbp_dag::NodeId;
use rbp_util::Json;

use crate::{HierCost, HierInstance, HierMove, HierPebble, HierStrategy};

const MAX_K: usize = 4;

/// An optimal three-level solution found by [`solve`].
#[derive(Debug, Clone)]
pub struct HierSolution {
    /// The optimal total cost under the instance's cost model.
    pub total: u64,
    /// Tally of the optimal strategy's rule applications.
    pub cost: HierCost,
    /// A witness strategy achieving `total`.
    pub strategy: HierStrategy,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct Key {
    reds: [u64; MAX_K],
    green: u64,
    blue: u64,
}

impl Key {
    #[inline]
    fn red_all(&self) -> u64 {
        self.reds.iter().fold(0, |a, &b| a | b)
    }
}

// Packed move layout: bits 28..=30 hold the tag (seven rule variants
// need three bits, one more than the two-level solver's two); batch
// moves store one 7-bit slot per processor (bit 6 = active, bits 0..=5
// = node) in bits 0..=27; removals store the node in bits 0..=5 and,
// for red removals, the processor in bits 6..=7.
const TAG_COMPUTE: u32 = 0;
const TAG_LOAD: u32 = 1;
const TAG_STORE: u32 = 2;
const TAG_LOAD_GREEN: u32 = 3;
const TAG_STORE_GREEN: u32 = 4;
const TAG_REMOVE_RED: u32 = 5;
const TAG_REMOVE_GREEN: u32 = 6;

#[inline]
fn encode_batch(tag: u32, batch: &[(usize, u32)]) -> PackedMove {
    let mut w = tag << 28;
    for &(j, i) in batch {
        w |= (0x40 | i) << (7 * j as u32);
    }
    w
}

#[inline]
fn encode_remove(tag: u32, proc: usize, node: u32) -> PackedMove {
    (tag << 28) | ((proc as u32) << 6) | node
}

fn decode(w: PackedMove, k: usize) -> (u32, Vec<(usize, u32)>) {
    let tag = w >> 28;
    if tag == TAG_REMOVE_RED || tag == TAG_REMOVE_GREEN {
        return (tag, vec![(((w >> 6) & 0x3) as usize, w & 0x3f)]);
    }
    let mut pairs = Vec::new();
    for j in 0..k {
        let slot = (w >> (7 * j as u32)) & 0x7f;
        if slot & 0x40 != 0 {
            pairs.push((j, slot & 0x3f));
        }
    }
    (tag, pairs)
}

fn apply(key: &mut Key, tag: u32, pairs: &[(usize, u32)]) {
    match tag {
        TAG_COMPUTE | TAG_LOAD | TAG_LOAD_GREEN => {
            for &(j, i) in pairs {
                key.reds[j] |= 1 << i;
            }
        }
        TAG_STORE => {
            for &(_, i) in pairs {
                key.blue |= 1 << i;
            }
        }
        TAG_STORE_GREEN => {
            for &(_, i) in pairs {
                key.green |= 1 << i;
            }
        }
        TAG_REMOVE_RED => {
            let (j, i) = pairs[0];
            key.reds[j] &= !(1 << i);
        }
        _ => {
            let (_, i) = pairs[0];
            key.green &= !(1 << i);
        }
    }
}

/// Sorts the masks descending (insertion sort; `len ≤ 4`).
#[inline]
fn sort_desc(xs: &mut [u64]) {
    for i in 1..xs.len() {
        let mut j = i;
        while j > 0 && xs[j] > xs[j - 1] {
            xs.swap(j, j - 1);
            j -= 1;
        }
    }
}

/// Whether the masks are already in canonical (descending) order — the
/// memo check that lets most successors skip the sort (the parent is
/// canonical; order-preserving moves produce sorted children).
#[inline]
fn is_sorted_desc(xs: &[u64]) -> bool {
    xs.windows(2).all(|w| w[0] >= w[1])
}

/// Canonicalizes `raw` and returns the gather permutation `pi` such
/// that `canonical.reds[q] == raw.reds[pi[q]]`. The shared green and
/// blue sets are invariant under shade relabeling.
fn canon_with_perm(raw: Key, k: usize, symmetry: bool) -> (Key, [usize; MAX_K]) {
    let mut idx = [0usize, 1, 2, 3];
    if !symmetry {
        return (raw, idx);
    }
    idx[..k].sort_by(|&a, &b| raw.reds[b].cmp(&raw.reds[a]));
    let mut out = raw;
    for (q, &i) in idx[..k].iter().enumerate() {
        out.reds[q] = raw.reds[i];
    }
    (out, idx)
}

/// Finds a minimum-total-cost three-level pebbling with the default
/// (fully optimized) configuration, or `None` if infeasible
/// (`r ≤ Δ_in`), too large (`n > 64` or `k > 4`), or out of budget.
#[must_use]
pub fn solve(instance: &HierInstance, limits: SolveLimits) -> Option<HierSolution> {
    solve_with(instance, &SearchConfig::default().with_limits(limits)).solution
}

/// [`solve`] with explicit optimization switches, also reporting search
/// statistics. Each call opens a `solve.hier` trace span and reports
/// the shared search counters under `solver.hier.*` plus the
/// hierarchy-specific `hier.*` counters (green vs blue traffic split of
/// the witness) — all no-ops unless a trace sink is installed.
#[must_use]
pub fn solve_with(instance: &HierInstance, config: &SearchConfig) -> SearchOutcome<HierSolution> {
    let _span = rbp_trace::span_with(
        "solve.hier",
        vec![
            ("n", Json::from(instance.dag.n())),
            ("k", Json::from(instance.k)),
            ("r", Json::from(instance.r)),
            ("g", Json::from(instance.model.g)),
            ("green_cap", Json::from(instance.green_cap)),
            ("green_cost", Json::from(instance.model.green)),
            ("heuristic", Json::from(config.heuristic)),
            ("symmetry", Json::from(config.symmetry)),
            ("threads", Json::from(config.threads.max(1))),
            ("partition", Json::from(config.partition.as_str())),
        ],
    );
    let (solution, stats, reason, shards, phases) = solve_inner(instance, config);
    stats.trace("hier", solution.as_ref().map(|s| s.total));
    trace_shards("hier", &shards);
    phases.trace("hier");
    if rbp_trace::enabled() {
        rbp_trace::counter("hier.runs", 1);
        rbp_trace::gauge("hier.green_cap", instance.green_cap as f64);
        rbp_trace::gauge("hier.green_cost", instance.model.green as f64);
        if let Some(sol) = &solution {
            rbp_trace::counter("hier.green_stores", sol.cost.green_stores);
            rbp_trace::counter("hier.green_loads", sol.cost.green_loads);
            rbp_trace::counter("hier.blue_stores", sol.cost.stores);
            rbp_trace::counter("hier.blue_loads", sol.cost.loads);
            rbp_trace::counter("hier.computes", sol.cost.computes);
            rbp_trace::gauge("hier.total", sol.total as f64);
        }
    }
    SearchOutcome {
        solution,
        stats,
        reason,
        shards,
        phases,
    }
}

/// The three-level state space described for the shared search drivers:
/// keys are `(R^1..R^k, G, B)` masks bit-packed to `(k+2) · n` bits,
/// successors are whole batched rule applications (canonicalized under
/// processor symmetry before emission).
struct HierDomain {
    n: usize,
    k: usize,
    r: usize,
    green_cap: usize,
    compute: u64,
    g: u64,
    green: u64,
    preds_mask: Vec<u64>,
    sinks_mask: u64,
    heur: AdmissibleHeuristic,
    use_heuristic: bool,
    symmetry: bool,
    dominance: bool,
    max_priority: u64,
    partition: Partition,
}

/// Reused per-worker expansion buffers (allocation-free inner loop) and
/// the embedded phase profiler the driver drains via `take_phases`.
struct HierScratch {
    batch: Vec<(usize, u32)>,
    prof: PhaseProf,
}

impl Default for HierScratch {
    fn default() -> Self {
        HierScratch {
            batch: Vec::with_capacity(MAX_K),
            prof: PhaseProf::default(),
        }
    }
}

impl Domain for HierDomain {
    type Key = Key;
    type Scratch = HierScratch;

    fn key_words(&self) -> usize {
        words_for(self.k + 2, self.n)
    }

    fn pack(&self, key: &Key, out: &mut [u64]) {
        let mut fields = [0u64; MAX_K + 2];
        fields[..self.k].copy_from_slice(&key.reds[..self.k]);
        fields[self.k] = key.green;
        fields[self.k + 1] = key.blue;
        pack_fields(&fields[..self.k + 2], self.n, out);
    }

    fn unpack(&self, words: &[u64]) -> Key {
        let mut fields = [0u64; MAX_K + 2];
        unpack_fields(words, self.n, &mut fields[..self.k + 2]);
        let mut reds = [0u64; MAX_K];
        reds[..self.k].copy_from_slice(&fields[..self.k]);
        Key {
            reds,
            green: fields[self.k],
            blue: fields[self.k + 1],
        }
    }

    fn root(&self) -> Key {
        Key {
            reds: [0; MAX_K],
            green: 0,
            blue: 0,
        }
    }

    fn is_goal(&self, key: &Key) -> bool {
        self.sinks_mask & !(key.red_all() | key.green | key.blue) == 0
    }

    fn heuristic(&self, key: &Key) -> Option<u64> {
        if self.use_heuristic {
            // Green joins blue as "available without recomputing": the
            // compute-count lower bound is oblivious to which outer
            // tier holds the value.
            self.heur.eval(key.red_all(), key.green | key.blue, 0)
        } else {
            Some(0)
        }
    }

    fn max_priority(&self) -> u64 {
        self.max_priority
    }

    fn owner(&self, key: &Key, hash: u64, shards: usize) -> usize {
        // Green pebbles are fast-memory-adjacent for locality purposes:
        // fold them into the red side of the partition signature.
        self.partition
            .owner(key.red_all() | key.green, key.blue, hash, shards)
    }

    fn expand(&self, key: &Key, scratch: &mut HierScratch, emit: EmitFn<'_, Key>) {
        let (k, r, n) = (self.k, self.r, self.n);
        let key = *key;
        let full = if n == 64 { u64::MAX } else { (1u64 << n) - 1 };
        let HierScratch { batch, prof } = scratch;

        // Per-parent heuristic context with `G ∪ B` in the blue role
        // (see `heuristic`): one from-scratch closure walk whose needed
        // set answers most successors in O(1) via `eval_delta`.
        let hctx: Option<HeurCtx> = if self.use_heuristic {
            let t0 = prof.start();
            prof.stats.heur_full_evals += 1;
            let ctx = self.heur.prepare(key.red_all(), key.green | key.blue, 0);
            prof.stop_heur(t0);
            debug_assert!(ctx.is_some(), "three-level states are never dead");
            ctx
        } else {
            None
        };

        let mut emit_raw = |mut raw: Key, cost: u64, mv: PackedMove| {
            if self.symmetry {
                let t0 = prof.start();
                if is_sorted_desc(&raw.reds[..k]) {
                    prof.stats.canon_memo_hits += 1;
                } else {
                    sort_desc(&mut raw.reds[..k]);
                    prof.stats.canon_sorts += 1;
                }
                prof.stop_canon(t0);
            }
            emit(raw, cost, mv, &mut || {
                if !self.use_heuristic {
                    return Some(0);
                }
                let t0 = prof.start();
                let outer = raw.green | raw.blue;
                let hv = match &hctx {
                    Some(ctx) => {
                        self.heur
                            .eval_delta(ctx, raw.red_all(), outer, 0, &mut prof.stats)
                    }
                    None => self.heur.eval(raw.red_all(), outer, 0),
                };
                prof.stop_heur(t0);
                hv
            });
        };

        // --- R4-H: lazy red eviction on full processors (cost 0). ---
        for j in 0..k {
            if key.reds[j].count_ones() as usize >= r {
                for i in iter_bits(key.reds[j]) {
                    let mut nk = key;
                    nk.reds[j] &= !(1u64 << i);
                    emit_raw(nk, 0, encode_remove(TAG_REMOVE_RED, j, i));
                }
            }
        }

        // --- R4-H: lazy green eviction when the tier is full (cost 0).
        if self.green_cap > 0 && key.green.count_ones() as usize >= self.green_cap {
            for i in iter_bits(key.green) {
                let mut nk = key;
                nk.green &= !(1u64 << i);
                emit_raw(nk, 0, encode_remove(TAG_REMOVE_GREEN, 0, i));
            }
        }

        let mut suppressed = 0u64;
        let mut opts = [0u64; MAX_K];

        // --- R3-H: batched computes. ---
        for (j, opt) in opts.iter_mut().enumerate().take(k) {
            *opt = 0;
            if key.reds[j].count_ones() as usize >= r {
                continue;
            }
            for i in iter_bits(full & !key.reds[j]) {
                if self.preds_mask[i as usize] & !key.reds[j] == 0 {
                    *opt |= 1u64 << i;
                }
            }
        }
        for_each_batch(
            &opts[..k],
            false,
            self.dominance,
            usize::MAX,
            batch,
            &mut suppressed,
            &mut |batch| {
                let mut nk = key;
                for &(j, i) in batch {
                    nk.reds[j] |= 1u64 << i;
                }
                emit_raw(nk, self.compute, encode_batch(TAG_COMPUTE, batch));
            },
        );

        // --- R2-H: batched blue loads (distinct vertices). ---
        for (j, opt) in opts.iter_mut().enumerate().take(k) {
            *opt = if key.reds[j].count_ones() as usize >= r {
                0
            } else {
                key.blue & !key.reds[j]
            };
        }
        for_each_batch(
            &opts[..k],
            true,
            self.dominance,
            usize::MAX,
            batch,
            &mut suppressed,
            &mut |batch| {
                let mut nk = key;
                for &(j, i) in batch {
                    nk.reds[j] |= 1u64 << i;
                }
                emit_raw(nk, self.g, encode_batch(TAG_LOAD, batch));
            },
        );

        // --- R1-H: batched blue stores (distinct vertices). Storing an
        // already-blue node is structurally excluded by the mask. ---
        for (j, opt) in opts.iter_mut().enumerate().take(k) {
            *opt = key.reds[j] & !key.blue;
        }
        for_each_batch(
            &opts[..k],
            true,
            self.dominance,
            usize::MAX,
            batch,
            &mut suppressed,
            &mut |batch| {
                let mut nk = key;
                for &(_, i) in batch {
                    nk.blue |= 1u64 << i;
                }
                emit_raw(nk, self.g, encode_batch(TAG_STORE, batch));
            },
        );

        if self.green_cap == 0 {
            // No green rule is ever enabled: the remaining enumeration
            // is dead weight, and skipping it keeps the explored state
            // space literally the two-level one.
            prof.stats.idle_suppressed += suppressed;
            return;
        }

        // --- R6-H: batched green loads (distinct vertices). ---
        for (j, opt) in opts.iter_mut().enumerate().take(k) {
            *opt = if key.reds[j].count_ones() as usize >= r {
                0
            } else {
                key.green & !key.reds[j]
            };
        }
        for_each_batch(
            &opts[..k],
            true,
            self.dominance,
            usize::MAX,
            batch,
            &mut suppressed,
            &mut |batch| {
                let mut nk = key;
                for &(j, i) in batch {
                    nk.reds[j] |= 1u64 << i;
                }
                emit_raw(nk, self.green, encode_batch(TAG_LOAD_GREEN, batch));
            },
        );

        // --- R5-H: batched green stores (distinct vertices, bounded by
        // the shared capacity — the enumerator's `budget` enforces the
        // free-slot cap, and maximality is judged against it, so a
        // batch filling every free slot is maximal even when idle
        // processors still hold storable values). ---
        let free = self.green_cap - (key.green.count_ones() as usize).min(self.green_cap);
        if free > 0 {
            for (j, opt) in opts.iter_mut().enumerate().take(k) {
                *opt = key.reds[j] & !key.green;
            }
            for_each_batch(
                &opts[..k],
                true,
                self.dominance,
                free,
                batch,
                &mut suppressed,
                &mut |batch| {
                    let mut nk = key;
                    for &(_, i) in batch {
                        nk.green |= 1u64 << i;
                    }
                    emit_raw(nk, self.green, encode_batch(TAG_STORE_GREEN, batch));
                },
            );
        }

        prof.stats.idle_suppressed += suppressed;
    }

    fn take_phases(&self, scratch: &mut HierScratch) -> PhaseStats {
        scratch.prof.take()
    }
}

/// Builds the search domain for a supported, non-empty, feasible
/// instance; `None` otherwise (the caller distinguishes the trivial
/// `n == 0` case itself).
fn build_domain(instance: &HierInstance, config: &SearchConfig) -> Option<HierDomain> {
    let dag = instance.dag;
    let n = dag.n();
    let k = instance.k;
    if n == 0 || n > 64 || k > MAX_K || k == 0 || instance.green_cap > 64 {
        return None;
    }
    if !instance.is_feasible() {
        return None;
    }
    let model = instance.model;

    let preds_mask: Vec<u64> = dag
        .nodes()
        .map(|v| {
            dag.preds(v)
                .iter()
                .fold(0u64, |m, p| m | (1u64 << p.index()))
        })
        .collect();
    let sinks_mask: u64 = dag
        .sinks()
        .iter()
        .fold(0u64, |m, s| m | (1u64 << s.index()));

    // Priority ceiling for the bucket representation: the game can
    // always ignore the green tier, so twice the two-level Lemma 1
    // trivial upper bound still covers every f-value the search pushes.
    let ub = (model.g * (dag.max_in_degree() as u64 + 1))
        .saturating_add(model.compute)
        .saturating_mul(n as u64);
    let max_priority = ub.saturating_mul(2).saturating_add(
        model
            .g
            .saturating_add(model.compute)
            .saturating_add(model.green),
    );

    Some(HierDomain {
        n,
        k,
        r: instance.r,
        green_cap: instance.green_cap,
        compute: model.compute,
        g: model.g,
        green: model.green,
        preds_mask,
        sinks_mask,
        // The re-entry term assumes `load_cost` is the cheapest way to
        // re-redden an evicted value; in the three-level game the green
        // tier may undercut a blue reload.
        heur: AdmissibleHeuristic::for_mpp(&instance.mpp_instance())
            .with_load_cost(model.g.min(model.green)),
        use_heuristic: config.heuristic,
        symmetry: config.symmetry,
        dominance: config.dominance,
        max_priority,
        partition: Partition::build(config.partition, dag, config.threads.clamp(1, MAX_THREADS)),
    })
}

#[allow(clippy::type_complexity)]
fn solve_inner(
    instance: &HierInstance,
    config: &SearchConfig,
) -> (
    Option<HierSolution>,
    SearchStats,
    StopReason,
    Vec<ShardStats>,
    PhaseStats,
) {
    let k = instance.k;
    if instance.dag.n() == 0 && k > 0 && k <= MAX_K && instance.green_cap <= 64 {
        return (
            Some(HierSolution {
                total: 0,
                cost: HierCost::zero(),
                strategy: HierStrategy::new(),
            }),
            SearchStats::default(),
            StopReason::Solved,
            Vec::new(),
            PhaseStats::default(),
        );
    }
    let Some(domain) = build_domain(instance, config) else {
        return (
            None,
            SearchStats::default(),
            StopReason::Unsupported,
            Vec::new(),
            PhaseStats::default(),
        );
    };
    let out = search(&domain, config);
    let solution = out
        .best
        .map(|(total, path)| reconstruct(instance, path, total, config.symmetry));
    (solution, out.stats, out.reason, out.shards, out.phases)
}

/// Enumerates non-empty batches over per-processor option bitmasks:
/// each processor picks one set bit of its mask or idles. Identical to
/// the two-level enumerator (including the inclusion-maximality
/// dominance pruning — see `rbp_core::mpp`'s `for_each_batch` for the
/// soundness argument); kept local because the scratch layout is
/// crate-private on both sides. `budget` caps the number of acting
/// processors (the green-store free-slot cap; `usize::MAX` otherwise).
fn for_each_batch(
    options: &[u64],
    distinct_vertices: bool,
    maximal: bool,
    budget: usize,
    batch: &mut Vec<(usize, u32)>,
    suppressed: &mut u64,
    f: &mut impl FnMut(&[(usize, u32)]),
) {
    #[allow(clippy::too_many_arguments)]
    fn rec(
        options: &[u64],
        j: usize,
        distinct: bool,
        maximal: bool,
        budget: usize,
        used: u64,
        batch: &mut Vec<(usize, u32)>,
        suppressed: &mut u64,
        f: &mut impl FnMut(&[(usize, u32)]),
    ) {
        if j == options.len() {
            if batch.is_empty() {
                return;
            }
            if maximal && batch.len() < budget {
                for (jj, &opt) in options.iter().enumerate() {
                    if batch.iter().any(|&(b, _)| b == jj) {
                        continue;
                    }
                    let ext = if distinct { opt & !used } else { opt };
                    if ext != 0 {
                        // Idle processor jj could still act: this batch
                        // is dominated by the one that also assigns it.
                        *suppressed += 1;
                        return;
                    }
                }
            }
            f(batch);
            return;
        }
        let avail = if distinct {
            options[j] & !used
        } else {
            options[j]
        };
        let can_act = avail != 0 && batch.len() < budget;
        // Idle branch; early subtree cut only when sound (see the
        // two-level enumerator).
        if maximal && !distinct && can_act && budget >= options.len() {
            *suppressed += 1;
        } else {
            rec(
                options,
                j + 1,
                distinct,
                maximal,
                budget,
                used,
                batch,
                suppressed,
                f,
            );
        }
        if !can_act {
            return;
        }
        let mut m = avail;
        while m != 0 {
            let i = m.trailing_zeros();
            m &= m - 1;
            batch.push((j, i));
            rec(
                options,
                j + 1,
                distinct,
                maximal,
                budget,
                used | (1u64 << i),
                batch,
                suppressed,
                f,
            );
            batch.pop();
        }
    }
    batch.clear();
    rec(
        options,
        0,
        distinct_vertices,
        maximal,
        budget,
        0,
        batch,
        suppressed,
        f,
    );
}

/// Rebuilds the witness from the canonical-state parent chain,
/// re-applying the shade permutation trail exactly as the two-level
/// reconstruction does (green and blue sets are permutation-invariant,
/// so only the red labels need translating).
fn reconstruct(
    instance: &HierInstance,
    path: Vec<(Key, PackedMove)>,
    total: u64,
    symmetry: bool,
) -> HierSolution {
    let k = instance.k;
    let mut perm = [0usize, 1, 2, 3];
    let mut cur = path.first().map_or(
        Key {
            reds: [0; MAX_K],
            green: 0,
            blue: 0,
        },
        |&(p, _)| p,
    );
    let mut moves = Vec::with_capacity(path.len());
    for (parent, mv) in path {
        debug_assert_eq!(parent, cur);
        let (tag, pairs) = decode(mv, k);
        let concrete: Vec<(usize, NodeId)> = pairs
            .iter()
            .map(|&(j, i)| (perm[j], NodeId::new(i as usize)))
            .collect();
        moves.push(match tag {
            TAG_COMPUTE => HierMove::Compute(concrete),
            TAG_LOAD => HierMove::Load(concrete),
            TAG_STORE => HierMove::Store(concrete),
            TAG_LOAD_GREEN => HierMove::LoadGreen(concrete),
            TAG_STORE_GREEN => HierMove::StoreGreen(concrete),
            TAG_REMOVE_RED => {
                let (p, v) = concrete[0];
                HierMove::Remove(HierPebble::Red(p, v))
            }
            _ => HierMove::Remove(HierPebble::Green(concrete[0].1)),
        });
        let mut raw = parent;
        apply(&mut raw, tag, &pairs);
        let (next, pi) = canon_with_perm(raw, k, symmetry);
        let prev_perm = perm;
        for q in 0..k {
            perm[q] = prev_perm[pi[q]];
        }
        cur = next;
    }
    let strategy = HierStrategy::from_moves(moves);
    let cost = strategy
        .validate(instance)
        .expect("hier solver produced an invalid strategy");
    debug_assert_eq!(cost.total(instance.model), total);
    HierSolution {
        total,
        cost,
        strategy,
    }
}

fn iter_bits(mut mask: u64) -> impl Iterator<Item = u32> {
    std::iter::from_fn(move || {
        if mask == 0 {
            None
        } else {
            let i = mask.trailing_zeros();
            mask &= mask - 1;
            Some(i)
        }
    })
}

#[doc(hidden)]
pub mod probe {
    //! Test hooks into the successor-generation kernel: raw
    //! (symmetry-off) naive vs dominance-pruned successor sets along
    //! deterministic pseudo-random walks, for the successor-set
    //! equivalence property tests. Not a public API.

    use super::*;
    use rbp_util::Rng;

    /// A raw successor snapshot: per-processor red masks, the shared
    /// green and blue masks, and edge cost. Produced with symmetry
    /// canonicalization off so set comparisons see concrete labels.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
    pub struct Succ {
        /// Per-processor red masks (entries `k..` are zero).
        pub reds: [u64; MAX_K],
        /// Green (middle-tier) mask.
        pub green: u64,
        /// Blue mask.
        pub blue: u64,
        /// Edge cost of the generating move.
        pub cost: u64,
    }

    fn expand_into(domain: &HierDomain, key: &Key, scratch: &mut HierScratch) -> Vec<Succ> {
        let mut out = Vec::new();
        domain.expand(key, scratch, &mut |k2, c, _mv, _hv| {
            out.push(Succ {
                reds: k2.reds,
                green: k2.green,
                blue: k2.blue,
                cost: c,
            })
        });
        out
    }

    fn raw_config(dominance: bool) -> SearchConfig {
        SearchConfig {
            heuristic: false,
            symmetry: false,
            dominance,
            ..SearchConfig::default()
        }
    }

    /// Walks `steps` states from the root along a seeded random path
    /// (always stepping through a *naive* successor), returning the
    /// `(naive, pruned)` successor sets of every visited state.
    /// Panics on unsupported instances.
    #[must_use]
    pub fn successor_walk(
        instance: &HierInstance,
        seed: u64,
        steps: usize,
    ) -> Vec<(Vec<Succ>, Vec<Succ>)> {
        let naive = build_domain(instance, &raw_config(false)).expect("unsupported instance");
        let pruned = build_domain(instance, &raw_config(true)).expect("unsupported instance");
        let mut rng = Rng::new(seed);
        let mut scratch = HierScratch::default();
        let mut key = naive.root();
        let mut out = Vec::with_capacity(steps);
        for _ in 0..steps {
            let ns = expand_into(&naive, &key, &mut scratch);
            let ps = expand_into(&pruned, &key, &mut scratch);
            if ns.is_empty() {
                break;
            }
            let pick = rng.index(ns.len());
            let next = Key {
                reds: ns[pick].reds,
                green: ns[pick].green,
                blue: ns[pick].blue,
            };
            out.push((ns, ps));
            key = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_core::{solve_mpp, MppInstance};
    use rbp_dag::{dag_from_edges, generators};

    fn limits() -> SolveLimits {
        SolveLimits::states(500_000)
    }

    #[test]
    fn single_node_costs_one_compute() {
        let d = dag_from_edges(1, &[]);
        let sol = solve(&HierInstance::new(&d, 2, 1, 3, 2, 1), limits()).unwrap();
        assert_eq!(sol.total, 1);
        assert_eq!(sol.cost.computes, 1);
    }

    #[test]
    fn zero_capacity_matches_vanilla_exactly() {
        for (d, k, r, g) in [
            (generators::binary_in_tree(4), 2, 3, 2),
            (generators::grid(2, 3), 2, 3, 2),
            (generators::independent_chains(2, 3), 2, 2, 3),
        ] {
            let mpp = MppInstance::new(&d, k, r, g);
            let vanilla = solve_mpp(&mpp, limits()).unwrap();
            let hier = solve(&HierInstance::from_mpp(&mpp, 0, 1), limits()).unwrap();
            assert_eq!(hier.total, vanilla.total, "{}", d.name());
            assert_eq!(hier.cost.green_io_steps(), 0);
        }
    }

    #[test]
    fn cheap_green_never_worse_than_vanilla() {
        let d = generators::grid(2, 3);
        let mpp = MppInstance::new(&d, 2, 3, 3);
        let vanilla = solve_mpp(&mpp, limits()).unwrap();
        let hier = solve(&HierInstance::from_mpp(&mpp, 2, 1), limits()).unwrap();
        assert!(hier.total <= vanilla.total);
    }

    #[test]
    fn green_tier_beats_vanilla_on_skip_gadget() {
        // Two triangle-capped chains joined at a sink (rbp-gadgets
        // `hier_skip`): at r = 3 the second triangle needs all three
        // red slots while the first part's output is still live, so it
        // must be spilled. Vanilla pays the blue round-trip 2g; the
        // green tier pays 2·green.
        let gadget = rbp_gadgets::HierSkip::build(1);
        let mpp = MppInstance::new(&gadget.dag, 1, 3, 3);
        let vanilla = solve_mpp(&mpp, limits()).unwrap();
        let hier = solve(&HierInstance::from_mpp(&mpp, 1, 1), limits()).unwrap();
        assert_eq!(vanilla.total, gadget.vanilla_total(3));
        assert_eq!(hier.total, gadget.hier_total(1));
        assert!(
            hier.total < vanilla.total,
            "hier {} !< vanilla {}",
            hier.total,
            vanilla.total
        );
        assert!(hier.cost.green_io_steps() > 0);
    }

    #[test]
    fn degenerate_green_cost_matches_vanilla_total() {
        // green_cost = g: the tier is still usable but never cheaper,
        // so the optimum is the two-level one.
        let d = generators::binary_in_tree(4);
        let mpp = MppInstance::new(&d, 2, 3, 2);
        let vanilla = solve_mpp(&mpp, limits()).unwrap();
        let hier = solve(&HierInstance::from_mpp(&mpp, 2, 2), limits()).unwrap();
        assert_eq!(hier.total, vanilla.total);
    }

    #[test]
    fn witness_validates_with_green_traffic() {
        let gadget = rbp_gadgets::HierSkip::build(1);
        let d = gadget.dag;
        let inst = HierInstance::new(&d, 1, 3, 3, 1, 1);
        let sol = solve(&inst, limits()).unwrap();
        let cost = sol.strategy.validate(&inst).unwrap();
        assert_eq!(cost.total(inst.model), sol.total);
        assert_eq!(cost, sol.cost);
    }

    #[test]
    fn parallel_matches_sequential_cost() {
        let d = generators::grid(2, 3);
        let inst = HierInstance::new(&d, 2, 3, 2, 2, 1);
        let seq = solve_with(&inst, &SearchConfig::default());
        for threads in [2usize, 4] {
            let par = solve_with(&inst, &SearchConfig::default().with_threads(threads));
            let (s, p) = (seq.solution.as_ref().unwrap(), par.solution.unwrap());
            assert_eq!(s.total, p.total, "threads={threads}");
            p.strategy.validate(&inst).unwrap();
            assert_eq!(par.reason, StopReason::Solved);
        }
    }

    #[test]
    fn optimized_and_baseline_agree() {
        for (d, k, r, g, cap, gc) in [
            (generators::binary_in_tree(4), 2, 3, 2, 2, 1),
            (generators::diamond(2), 2, 3, 3, 1, 1),
            (generators::independent_chains(2, 3), 2, 2, 3, 2, 1),
        ] {
            let inst = HierInstance::new(&d, k, r, g, cap, gc);
            let base = solve_with(&inst, &SearchConfig::baseline());
            let opt = solve_with(&inst, &SearchConfig::default());
            let (b, o) = (base.solution.unwrap(), opt.solution.unwrap());
            assert_eq!(b.total, o.total, "{} k={k} r={r}", d.name());
            o.strategy.validate(&inst).unwrap();
        }
    }

    #[test]
    fn symmetry_witness_remains_valid_with_green() {
        let d = generators::grid(2, 2);
        let inst = HierInstance::new(&d, 2, 3, 2, 2, 1);
        let sol = solve(&inst, limits()).unwrap();
        let cost = sol.strategy.validate(&inst).unwrap();
        assert_eq!(cost.total(inst.model), sol.total);
    }

    #[test]
    fn infeasible_and_oversized_rejected() {
        let d = dag_from_edges(3, &[(0, 2), (1, 2)]);
        assert!(solve(&HierInstance::new(&d, 2, 2, 1, 2, 1), limits()).is_none());
        assert!(solve(&HierInstance::new(&d, 5, 3, 1, 2, 1), limits()).is_none());
        assert!(solve(&HierInstance::new(&d, 2, 3, 1, 65, 1), limits()).is_none());
        let big = generators::chain(65);
        assert!(solve(&HierInstance::new(&big, 2, 2, 1, 2, 1), limits()).is_none());
    }

    #[test]
    fn empty_dag_is_free() {
        let d = dag_from_edges(0, &[]);
        let sol = solve(&HierInstance::new(&d, 2, 1, 1, 2, 1), limits()).unwrap();
        assert_eq!(sol.total, 0);
    }

    #[test]
    fn state_budget_aborts() {
        let d = generators::grid(3, 3);
        let out = solve_with(
            &HierInstance::new(&d, 2, 3, 1, 2, 1),
            &SearchConfig::default().with_limits(SolveLimits::states(5)),
        );
        assert!(out.solution.is_none());
        assert_eq!(out.reason, StopReason::StateLimit);
    }
}
