//! Hierarchical strategy representation and the rule-enforcing
//! validator, mirroring `rbp_core::mpp`'s `apply_checked` discipline:
//! every rule precondition is checked before any mutation, so an
//! illegal move never corrupts the configuration.

use rbp_core::ProcId;
use rbp_dag::NodeId;

use crate::{HierConfiguration, HierCost, HierInstance, HierMove, HierPebble};

/// A three-level pebbling strategy: the sequence of rule applications.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierStrategy {
    /// The moves, in execution order.
    pub moves: Vec<HierMove>,
}

impl HierStrategy {
    /// Empty strategy.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Strategy from a move list.
    #[must_use]
    pub fn from_moves(moves: Vec<HierMove>) -> Self {
        HierStrategy { moves }
    }

    /// Number of moves.
    #[must_use]
    pub fn len(&self) -> usize {
        self.moves.len()
    }

    /// Whether there are no moves.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.moves.is_empty()
    }

    /// Appends a move.
    pub fn push(&mut self, m: HierMove) {
        self.moves.push(m);
    }

    /// Validates against `instance` and returns the cost tally.
    pub fn validate(&self, instance: &HierInstance) -> Result<HierCost, HierError> {
        validate(instance, &self.moves)
    }
}

/// A rule violation found while replaying a hierarchical strategy.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierError {
    /// Index of the offending move (or `moves.len()` for terminal-state
    /// failures).
    pub step: usize,
    /// What went wrong.
    pub kind: HierErrorKind,
}

/// The kinds of three-level rule violations. The first eleven mirror
/// the MPP kinds; the last three are new to the green tier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HierErrorKind {
    /// A batch was empty.
    EmptySelection,
    /// A processor index is `≥ k`.
    BadProcessor(ProcId),
    /// The same processor appears twice in one shaded selection.
    DuplicateProcessor(ProcId),
    /// The same vertex appears twice in one I/O batch.
    DuplicateVertex(NodeId),
    /// R1-H: processor `proc` holds no red pebble on `node`.
    StoreWithoutRed {
        /// The storing processor.
        proc: ProcId,
        /// The node it tried to store.
        node: NodeId,
    },
    /// R2-H: `node` holds no blue pebble.
    LoadWithoutBlue(NodeId),
    /// R3-H: an input of `node` lacks a red pebble of `proc`'s shade.
    MissingInput {
        /// The computing processor.
        proc: ProcId,
        /// The node being computed.
        node: NodeId,
        /// The missing input.
        missing: NodeId,
    },
    /// Placing a red pebble would exceed processor `proc`'s capacity.
    MemoryExceeded {
        /// The overflowing processor.
        proc: ProcId,
        /// The capacity.
        r: usize,
    },
    /// Redundant placement (node already holds that exact pebble).
    AlreadyPebbled(NodeId),
    /// R4-H applied to a pebble that is not on the board.
    RemoveAbsent(HierPebble),
    /// After the last move some sink holds no pebble on any level.
    NotTerminal(NodeId),
    /// R5-H: processor `proc` holds no red pebble on `node`.
    GreenStoreWithoutRed {
        /// The storing processor.
        proc: ProcId,
        /// The node it tried to stage into the green tier.
        node: NodeId,
    },
    /// R6-H: `node` holds no green pebble.
    LoadWithoutGreen(NodeId),
    /// R5-H: placing the batch's green pebbles would exceed the shared
    /// green capacity.
    GreenCapacityExceeded {
        /// The shared green-tier capacity.
        cap: usize,
    },
}

impl std::fmt::Display for HierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "step {}: {:?}", self.step, self.kind)
    }
}

impl std::error::Error for HierError {}

/// Replays `moves` on `instance`, enforcing every rule, the red and
/// green capacity bounds, and terminality. Returns the cost tally.
pub fn validate(instance: &HierInstance, moves: &[HierMove]) -> Result<HierCost, HierError> {
    let mut config = HierConfiguration::initial(instance.dag, instance.k);
    let mut cost = HierCost::zero();
    for (step, mv) in moves.iter().enumerate() {
        apply_checked(instance, &mut config, mv).map_err(|kind| HierError { step, kind })?;
        match mv {
            HierMove::Store(_) => cost.stores += 1,
            HierMove::Load(_) => cost.loads += 1,
            HierMove::StoreGreen(_) => cost.green_stores += 1,
            HierMove::LoadGreen(_) => cost.green_loads += 1,
            HierMove::Compute(_) => cost.computes += 1,
            HierMove::Remove(_) => {}
        }
    }
    if let Some(sink) = instance
        .dag
        .sinks()
        .into_iter()
        .find(|&s| !config.has_pebble(s))
    {
        return Err(HierError {
            step: moves.len(),
            kind: HierErrorKind::NotTerminal(sink),
        });
    }
    Ok(cost)
}

/// Applies one move to `config` if legal in `instance`, mutating
/// `config` only on success. Public so strategy transformers and the
/// simulator share the single replay primitive.
pub fn apply_move(
    instance: &HierInstance,
    config: &mut HierConfiguration,
    mv: &HierMove,
) -> Result<(), HierErrorKind> {
    apply_checked(instance, config, mv)
}

/// Applies one move to `config` if legal in `instance`.
pub(crate) fn apply_checked(
    instance: &HierInstance,
    config: &mut HierConfiguration,
    mv: &HierMove,
) -> Result<(), HierErrorKind> {
    let dag = instance.dag;
    let k = instance.k;
    let r = instance.r;

    let check_selection =
        |batch: &[(ProcId, NodeId)], distinct_vertices: bool| -> Result<(), HierErrorKind> {
            if batch.is_empty() {
                return Err(HierErrorKind::EmptySelection);
            }
            for (i, &(p, v)) in batch.iter().enumerate() {
                if p >= k {
                    return Err(HierErrorKind::BadProcessor(p));
                }
                for &(p2, v2) in &batch[..i] {
                    if p2 == p {
                        return Err(HierErrorKind::DuplicateProcessor(p));
                    }
                    if distinct_vertices && v2 == v {
                        return Err(HierErrorKind::DuplicateVertex(v));
                    }
                }
            }
            Ok(())
        };

    match mv {
        HierMove::Store(batch) => {
            check_selection(batch, true)?;
            for &(p, v) in batch {
                if !config.reds[p].contains(v) {
                    return Err(HierErrorKind::StoreWithoutRed { proc: p, node: v });
                }
                if config.blue.contains(v) {
                    return Err(HierErrorKind::AlreadyPebbled(v));
                }
            }
            for &(_, v) in batch {
                config.blue.insert(v);
            }
        }
        HierMove::Load(batch) => {
            check_selection(batch, true)?;
            for &(p, v) in batch {
                if !config.blue.contains(v) {
                    return Err(HierErrorKind::LoadWithoutBlue(v));
                }
                if config.reds[p].contains(v) {
                    return Err(HierErrorKind::AlreadyPebbled(v));
                }
                if config.reds[p].len() + 1 > r {
                    return Err(HierErrorKind::MemoryExceeded { proc: p, r });
                }
            }
            for &(p, v) in batch {
                config.reds[p].insert(v);
            }
        }
        HierMove::StoreGreen(batch) => {
            check_selection(batch, true)?;
            for &(p, v) in batch {
                if !config.reds[p].contains(v) {
                    return Err(HierErrorKind::GreenStoreWithoutRed { proc: p, node: v });
                }
                if config.green.contains(v) {
                    return Err(HierErrorKind::AlreadyPebbled(v));
                }
            }
            // Batch vertices are distinct and none is green yet, so the
            // batch adds exactly `batch.len()` green pebbles.
            if config.green.len() + batch.len() > instance.green_cap {
                return Err(HierErrorKind::GreenCapacityExceeded {
                    cap: instance.green_cap,
                });
            }
            for &(_, v) in batch {
                config.green.insert(v);
            }
        }
        HierMove::LoadGreen(batch) => {
            check_selection(batch, true)?;
            for &(p, v) in batch {
                if !config.green.contains(v) {
                    return Err(HierErrorKind::LoadWithoutGreen(v));
                }
                if config.reds[p].contains(v) {
                    return Err(HierErrorKind::AlreadyPebbled(v));
                }
                if config.reds[p].len() + 1 > r {
                    return Err(HierErrorKind::MemoryExceeded { proc: p, r });
                }
            }
            for &(p, v) in batch {
                config.reds[p].insert(v);
            }
        }
        HierMove::Compute(batch) => {
            // Vertices may repeat across processors (two shades may
            // compute the same node simultaneously), as in R3-M.
            check_selection(batch, false)?;
            for &(p, v) in batch {
                if config.reds[p].contains(v) {
                    return Err(HierErrorKind::AlreadyPebbled(v));
                }
                if let Some(&missing) = dag.preds(v).iter().find(|&&u| !config.reds[p].contains(u))
                {
                    return Err(HierErrorKind::MissingInput {
                        proc: p,
                        node: v,
                        missing,
                    });
                }
                if config.reds[p].len() + 1 > r {
                    return Err(HierErrorKind::MemoryExceeded { proc: p, r });
                }
            }
            for &(p, v) in batch {
                config.reds[p].insert(v);
            }
        }
        HierMove::Remove(pebble) => match *pebble {
            HierPebble::Red(p, v) => {
                if p >= k {
                    return Err(HierErrorKind::BadProcessor(p));
                }
                if !config.reds[p].remove(v) {
                    return Err(HierErrorKind::RemoveAbsent(*pebble));
                }
            }
            HierPebble::Green(v) => {
                if !config.green.remove(v) {
                    return Err(HierErrorKind::RemoveAbsent(*pebble));
                }
            }
            HierPebble::Blue(v) => {
                if !config.blue.remove(v) {
                    return Err(HierErrorKind::RemoveAbsent(*pebble));
                }
            }
        },
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn green_staging_validates() {
        // Proc 0 computes 0, stages it through green, proc 1 picks it
        // up and computes 1 — the cheap-communication path.
        let d = rbp_dag::dag_from_edges(2, &[(0, 1)]);
        let inst = HierInstance::new(&d, 2, 2, 5, 1, 1);
        let cost = validate(
            &inst,
            &[
                HierMove::compute1(0, v(0)),
                HierMove::green_store1(0, v(0)),
                HierMove::green_load1(1, v(0)),
                HierMove::compute1(1, v(1)),
            ],
        )
        .unwrap();
        assert_eq!(cost.green_io_steps(), 2);
        assert_eq!(cost.total(inst.model), 4); // two green steps at cost 1 + two computes
    }

    #[test]
    fn green_capacity_enforced_per_batch() {
        let d = rbp_dag::dag_from_edges(2, &[]);
        let inst = HierInstance::new(&d, 2, 1, 1, 1, 1);
        let err = validate(
            &inst,
            &[
                HierMove::Compute(vec![(0, v(0)), (1, v(1))]),
                HierMove::StoreGreen(vec![(0, v(0)), (1, v(1))]),
            ],
        )
        .unwrap_err();
        assert_eq!(err.kind, HierErrorKind::GreenCapacityExceeded { cap: 1 });
        // A single green store fits.
        validate(
            &inst,
            &[
                HierMove::Compute(vec![(0, v(0)), (1, v(1))]),
                HierMove::green_store1(0, v(0)),
            ],
        )
        .unwrap();
    }

    #[test]
    fn zero_capacity_green_rejects_all_green_stores() {
        let d = rbp_dag::dag_from_edges(1, &[]);
        let inst = HierInstance::new(&d, 1, 1, 1, 0, 1);
        let err = validate(
            &inst,
            &[HierMove::compute1(0, v(0)), HierMove::green_store1(0, v(0))],
        )
        .unwrap_err();
        assert_eq!(err.kind, HierErrorKind::GreenCapacityExceeded { cap: 0 });
    }

    #[test]
    fn green_load_requires_green() {
        let d = rbp_dag::dag_from_edges(1, &[]);
        let inst = HierInstance::new(&d, 1, 1, 1, 1, 1);
        let err = validate(&inst, &[HierMove::green_load1(0, v(0))]).unwrap_err();
        assert_eq!(err.kind, HierErrorKind::LoadWithoutGreen(v(0)));
    }

    #[test]
    fn green_store_requires_own_red() {
        let d = rbp_dag::dag_from_edges(1, &[]);
        let inst = HierInstance::new(&d, 2, 1, 1, 1, 1);
        let err = validate(
            &inst,
            &[HierMove::compute1(0, v(0)), HierMove::green_store1(1, v(0))],
        )
        .unwrap_err();
        assert_eq!(
            err.kind,
            HierErrorKind::GreenStoreWithoutRed {
                proc: 1,
                node: v(0)
            }
        );
    }

    #[test]
    fn illegal_move_leaves_state_unchanged() {
        let d = rbp_dag::dag_from_edges(2, &[(0, 1)]);
        let inst = HierInstance::new(&d, 1, 2, 1, 1, 1);
        let mut config = HierConfiguration::initial(&d, 1);
        assert!(apply_move(&inst, &mut config, &HierMove::compute1(0, v(1))).is_err());
        assert_eq!(config, HierConfiguration::initial(&d, 1));
    }

    #[test]
    fn node_may_be_green_and_blue_simultaneously() {
        let d = rbp_dag::dag_from_edges(1, &[]);
        let inst = HierInstance::new(&d, 1, 1, 1, 1, 1);
        validate(
            &inst,
            &[
                HierMove::compute1(0, v(0)),
                HierMove::green_store1(0, v(0)),
                HierMove::store1(0, v(0)),
            ],
        )
        .unwrap();
    }

    #[test]
    fn remove_green_then_terminality() {
        let d = rbp_dag::dag_from_edges(1, &[]);
        let inst = HierInstance::new(&d, 1, 1, 1, 1, 1);
        let err = validate(
            &inst,
            &[
                HierMove::compute1(0, v(0)),
                HierMove::green_store1(0, v(0)),
                HierMove::Remove(HierPebble::Red(0, v(0))),
                HierMove::Remove(HierPebble::Green(v(0))),
            ],
        )
        .unwrap_err();
        assert_eq!(err.kind, HierErrorKind::NotTerminal(v(0)));
        let err = validate(&inst, &[HierMove::Remove(HierPebble::Green(v(0)))]).unwrap_err();
        assert_eq!(
            err.kind,
            HierErrorKind::RemoveAbsent(HierPebble::Green(v(0)))
        );
    }
}
