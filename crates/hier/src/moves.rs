//! The transition rules of the three-level game as explicit moves.
//!
//! The rule set is the vanilla MPP rule set (R1-H/R2-H blue I/O, R3-H
//! compute, R4-H deletion) plus one store/load pair for the green mid
//! tier (R5-H/R6-H). There is no direct green ↔ blue rule: traffic
//! between the outer tiers stages through a red pebble, exactly as real
//! cache hierarchies move lines through the core. Because the vanilla
//! rules are retained verbatim, a zero-capacity green tier gives back
//! the two-level game move-for-move.

use rbp_core::ProcId;
use rbp_dag::NodeId;

/// A pebble reference, for deletions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierPebble {
    /// A red pebble of the given shade on the given node.
    Red(ProcId, NodeId),
    /// A green pebble on the given node.
    Green(NodeId),
    /// A blue pebble on the given node.
    Blue(NodeId),
}

/// One application of a three-level rule.
///
/// As in MPP, the `Vec<(ProcId, NodeId)>` batches are *shaded
/// selections* — injective assignments of processors to vertices — and
/// a whole batch is one rule application with one unit of cost (`g` for
/// blue I/O, `green` for green I/O, `compute` for computes) regardless
/// of its size.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum HierMove {
    /// R1-H: each selected processor copies one of its red values to
    /// slow memory (adds a blue pebble). Costs `g`.
    Store(Vec<(ProcId, NodeId)>),
    /// R2-H: each selected processor loads one blue value into its fast
    /// memory. Costs `g`.
    Load(Vec<(ProcId, NodeId)>),
    /// R5-H: each selected processor copies one of its red values to
    /// the green tier, respecting the shared capacity. Costs `green`.
    StoreGreen(Vec<(ProcId, NodeId)>),
    /// R6-H: each selected processor loads one green value into its
    /// fast memory. Costs `green`.
    LoadGreen(Vec<(ProcId, NodeId)>),
    /// R3-H: each selected processor computes one node whose inputs all
    /// hold red pebbles of its shade. Costs `compute`.
    Compute(Vec<(ProcId, NodeId)>),
    /// R4-H: remove one pebble (any level). Free.
    Remove(HierPebble),
}

impl HierMove {
    /// Whether this is a blue I/O rule (R1-H or R2-H).
    #[must_use]
    pub fn is_blue_io(&self) -> bool {
        matches!(self, HierMove::Store(_) | HierMove::Load(_))
    }

    /// Whether this is a green I/O rule (R5-H or R6-H).
    #[must_use]
    pub fn is_green_io(&self) -> bool {
        matches!(self, HierMove::StoreGreen(_) | HierMove::LoadGreen(_))
    }

    /// Size `m` of the shaded selection (1 for removals).
    #[must_use]
    pub fn batch_size(&self) -> usize {
        match self {
            HierMove::Store(b)
            | HierMove::Load(b)
            | HierMove::StoreGreen(b)
            | HierMove::LoadGreen(b)
            | HierMove::Compute(b) => b.len(),
            HierMove::Remove(_) => 1,
        }
    }

    /// Single-processor blue store.
    #[must_use]
    pub fn store1(proc: ProcId, v: NodeId) -> Self {
        HierMove::Store(vec![(proc, v)])
    }

    /// Single-processor blue load.
    #[must_use]
    pub fn load1(proc: ProcId, v: NodeId) -> Self {
        HierMove::Load(vec![(proc, v)])
    }

    /// Single-processor green store.
    #[must_use]
    pub fn green_store1(proc: ProcId, v: NodeId) -> Self {
        HierMove::StoreGreen(vec![(proc, v)])
    }

    /// Single-processor green load.
    #[must_use]
    pub fn green_load1(proc: ProcId, v: NodeId) -> Self {
        HierMove::LoadGreen(vec![(proc, v)])
    }

    /// Single-processor compute.
    #[must_use]
    pub fn compute1(proc: ProcId, v: NodeId) -> Self {
        HierMove::Compute(vec![(proc, v)])
    }
}

impl std::fmt::Display for HierMove {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let write_batch = |f: &mut std::fmt::Formatter<'_>, name: &str, b: &[(ProcId, NodeId)]| {
            write!(f, "{name}[")?;
            for (i, (p, v)) in b.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "p{p}:{v}")?;
            }
            write!(f, "]")
        };
        match self {
            HierMove::Store(b) => write_batch(f, "store", b),
            HierMove::Load(b) => write_batch(f, "load", b),
            HierMove::StoreGreen(b) => write_batch(f, "gstore", b),
            HierMove::LoadGreen(b) => write_batch(f, "gload", b),
            HierMove::Compute(b) => write_batch(f, "compute", b),
            HierMove::Remove(HierPebble::Red(p, v)) => write!(f, "remove[p{p}:{v}]"),
            HierMove::Remove(HierPebble::Green(v)) => write!(f, "remove[green:{v}]"),
            HierMove::Remove(HierPebble::Blue(v)) => write!(f, "remove[blue:{v}]"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_size() {
        assert!(HierMove::store1(0, NodeId(1)).is_blue_io());
        assert!(!HierMove::store1(0, NodeId(1)).is_green_io());
        assert!(HierMove::green_load1(1, NodeId(2)).is_green_io());
        assert!(!HierMove::compute1(0, NodeId(0)).is_blue_io());
        let m = HierMove::StoreGreen(vec![(0, NodeId(1)), (1, NodeId(2))]);
        assert_eq!(m.batch_size(), 2);
        assert_eq!(
            HierMove::Remove(HierPebble::Green(NodeId(0))).batch_size(),
            1
        );
    }

    #[test]
    fn display() {
        assert_eq!(
            HierMove::LoadGreen(vec![(0, NodeId(5)), (1, NodeId(6))]).to_string(),
            "gload[p0:v5, p1:v6]"
        );
        assert_eq!(
            HierMove::Remove(HierPebble::Green(NodeId(2))).to_string(),
            "remove[green:v2]"
        );
        assert_eq!(
            HierMove::green_store1(1, NodeId(3)).to_string(),
            "gstore[p1:v3]"
        );
    }
}
