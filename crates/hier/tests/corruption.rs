//! Strategy-corruption coverage: every [`HierErrorKind`] variant is
//! produced by a concrete corrupted strategy and reported at the right
//! step, and the validator never mutates away the error (validating
//! twice gives the same answer).

use rbp_core::ProcId;
use rbp_dag::{dag_from_edges, NodeId};
use rbp_hier::{validate_hier, HierErrorKind, HierInstance, HierMove, HierPebble};

fn v(i: u32) -> NodeId {
    NodeId(i)
}

/// `0 → 1`, two processors, `r = 2`, `g = 3`, one green slot.
fn dag() -> rbp_dag::Dag {
    dag_from_edges(2, &[(0, 1)])
}

#[test]
fn every_error_kind_is_reachable_and_attributed() {
    let d = dag();
    let inst = HierInstance::new(&d, 2, 2, 3, 1, 1);
    let zero_cap = HierInstance::new(&d, 2, 2, 3, 0, 1);
    let tight = HierInstance::new(&d, 2, 1, 3, 1, 1); // r = 1 (infeasible but validates moves)

    struct Case {
        name: &'static str,
        moves: Vec<HierMove>,
        step: usize,
        kind: HierErrorKind,
        tight_r: bool,
        zero_cap: bool,
    }
    let c1 = HierMove::compute1(0, v(0));
    let cases = vec![
        Case {
            name: "empty-selection",
            moves: vec![HierMove::Compute(vec![])],
            step: 0,
            kind: HierErrorKind::EmptySelection,
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "bad-processor",
            moves: vec![HierMove::compute1(7, v(0))],
            step: 0,
            kind: HierErrorKind::BadProcessor(7),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "duplicate-processor",
            moves: vec![HierMove::Compute(vec![(0, v(0)), (0, v(0))])],
            step: 0,
            kind: HierErrorKind::DuplicateProcessor(0),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "duplicate-vertex",
            moves: vec![
                HierMove::Compute(vec![(0, v(0)), (1, v(0))]),
                HierMove::Store(vec![(0, v(0)), (1, v(0))]),
            ],
            step: 1,
            kind: HierErrorKind::DuplicateVertex(v(0)),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "store-without-red",
            moves: vec![HierMove::store1(0, v(0))],
            step: 0,
            kind: HierErrorKind::StoreWithoutRed {
                proc: 0,
                node: v(0),
            },
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "load-without-blue",
            moves: vec![HierMove::load1(0, v(0))],
            step: 0,
            kind: HierErrorKind::LoadWithoutBlue(v(0)),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "missing-input",
            moves: vec![HierMove::compute1(0, v(1))],
            step: 0,
            kind: HierErrorKind::MissingInput {
                proc: 0,
                node: v(1),
                missing: v(0),
            },
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "memory-exceeded",
            moves: vec![c1.clone(), HierMove::compute1(0, v(1))],
            step: 1,
            kind: HierErrorKind::MemoryExceeded { proc: 0, r: 1 },
            tight_r: true,
            zero_cap: false,
        },
        Case {
            name: "already-pebbled",
            moves: vec![c1.clone(), c1.clone()],
            step: 1,
            kind: HierErrorKind::AlreadyPebbled(v(0)),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "remove-absent-red",
            moves: vec![HierMove::Remove(HierPebble::Red(1, v(0)))],
            step: 0,
            kind: HierErrorKind::RemoveAbsent(HierPebble::Red(1, v(0))),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "remove-absent-green",
            moves: vec![HierMove::Remove(HierPebble::Green(v(0)))],
            step: 0,
            kind: HierErrorKind::RemoveAbsent(HierPebble::Green(v(0))),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "remove-absent-blue",
            moves: vec![HierMove::Remove(HierPebble::Blue(v(1)))],
            step: 0,
            kind: HierErrorKind::RemoveAbsent(HierPebble::Blue(v(1))),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "not-terminal",
            moves: vec![c1.clone()],
            step: 1,
            kind: HierErrorKind::NotTerminal(v(1)),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "green-store-without-red",
            moves: vec![c1.clone(), HierMove::green_store1(1, v(0))],
            step: 1,
            kind: HierErrorKind::GreenStoreWithoutRed {
                proc: 1,
                node: v(0),
            },
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "load-without-green",
            moves: vec![HierMove::green_load1(0, v(0))],
            step: 0,
            kind: HierErrorKind::LoadWithoutGreen(v(0)),
            tight_r: false,
            zero_cap: false,
        },
        Case {
            name: "green-capacity-exceeded",
            moves: vec![c1.clone(), HierMove::green_store1(0, v(0))],
            step: 1,
            kind: HierErrorKind::GreenCapacityExceeded { cap: 0 },
            tight_r: false,
            zero_cap: true,
        },
    ];

    let mut covered: Vec<&'static str> = Vec::new();
    for case in &cases {
        let instance = if case.tight_r {
            &tight
        } else if case.zero_cap {
            &zero_cap
        } else {
            &inst
        };
        let err = validate_hier(instance, &case.moves)
            .expect_err(&format!("{}: corrupted strategy validated", case.name));
        assert_eq!(err.step, case.step, "{}", case.name);
        assert_eq!(err.kind, case.kind, "{}", case.name);
        // Validation is replay-only: running it again is identical.
        let err2 = validate_hier(instance, &case.moves).unwrap_err();
        assert_eq!(
            (err2.step, err2.kind),
            (err.step, err.kind),
            "{}",
            case.name
        );
        covered.push(variant_name(&case.kind));
    }

    // Exhaustiveness: one case per variant of the error enum.
    let mut expected = vec![
        "EmptySelection",
        "BadProcessor",
        "DuplicateProcessor",
        "DuplicateVertex",
        "StoreWithoutRed",
        "LoadWithoutBlue",
        "MissingInput",
        "MemoryExceeded",
        "AlreadyPebbled",
        "RemoveAbsent",
        "NotTerminal",
        "GreenStoreWithoutRed",
        "LoadWithoutGreen",
        "GreenCapacityExceeded",
    ];
    covered.sort_unstable();
    covered.dedup();
    expected.sort_unstable();
    assert_eq!(covered, expected, "not every error kind is exercised");
}

fn variant_name(kind: &HierErrorKind) -> &'static str {
    match kind {
        HierErrorKind::EmptySelection => "EmptySelection",
        HierErrorKind::BadProcessor(_) => "BadProcessor",
        HierErrorKind::DuplicateProcessor(_) => "DuplicateProcessor",
        HierErrorKind::DuplicateVertex(_) => "DuplicateVertex",
        HierErrorKind::StoreWithoutRed { .. } => "StoreWithoutRed",
        HierErrorKind::LoadWithoutBlue(_) => "LoadWithoutBlue",
        HierErrorKind::MissingInput { .. } => "MissingInput",
        HierErrorKind::MemoryExceeded { .. } => "MemoryExceeded",
        HierErrorKind::AlreadyPebbled(_) => "AlreadyPebbled",
        HierErrorKind::RemoveAbsent(_) => "RemoveAbsent",
        HierErrorKind::NotTerminal(_) => "NotTerminal",
        HierErrorKind::GreenStoreWithoutRed { .. } => "GreenStoreWithoutRed",
        HierErrorKind::LoadWithoutGreen(_) => "LoadWithoutGreen",
        HierErrorKind::GreenCapacityExceeded { .. } => "GreenCapacityExceeded",
    }
}

#[test]
fn corrupting_a_valid_exact_witness_is_always_caught() {
    // Take the solver's witness on the separation gadget and corrupt it
    // in systematic ways; every corruption must be rejected.
    let gadget = rbp_gadgets::HierSkip::build(1);
    let inst = HierInstance::new(&gadget.dag, 1, 3, 3, 1, 1);
    let sol = rbp_hier::solve_hier(&inst, rbp_core::SolveLimits::states(2_000_000)).unwrap();
    let moves = &sol.strategy.moves;
    assert!(validate_hier(&inst, moves).is_ok());

    // Dropping any single non-removal move breaks the replay.
    for i in 0..moves.len() {
        if matches!(moves[i], HierMove::Remove(_)) {
            continue;
        }
        let mut corrupted = moves.clone();
        corrupted.remove(i);
        assert!(
            validate_hier(&inst, &corrupted).is_err(),
            "dropping move {i} went unnoticed"
        );
    }

    // Redirecting a compute's processor out of range is caught.
    let mut corrupted = moves.clone();
    for m in &mut corrupted {
        if let HierMove::Compute(batch) = m {
            batch[0].0 = 3 as ProcId;
            break;
        }
    }
    assert!(matches!(
        validate_hier(&inst, &corrupted).unwrap_err().kind,
        HierErrorKind::BadProcessor(3)
    ));
}
