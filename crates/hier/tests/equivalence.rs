//! Randomized reduction-equivalence suite: with degenerate green
//! parameters the three-level solver must reproduce the vanilla MPP
//! exact optimum, instance for instance.
//!
//! 100 seeded random instances, two degeneracies each:
//! - `green_cap = 0`: the green rules are never enabled, so the state
//!   space is literally the two-level one — totals must match.
//! - `green_cost = g`: the tier is usable but never cheaper — the
//!   optimum must still match (witness tallies may legitimately trade
//!   green for blue traffic at equal cost).

use rbp_core::{solve_mpp, MppInstance, SolveLimits};
use rbp_dag::{generators, Dag};
use rbp_hier::{solve_hier, HierInstance};
use rbp_util::Rng;

fn limits() -> SolveLimits {
    SolveLimits::states(2_000_000)
}

/// Draws a small random instance: the solve must stay cheap enough to
/// run 200 exact solves in this suite.
fn draw(rng: &mut Rng) -> (Dag, usize, usize, u64) {
    let dag = if rng.bool(0.5) {
        generators::layered_random(rng.range(2, 4), 2, 2, rng.next_u64())
    } else {
        generators::random_dag(rng.range(4, 7), 0.3, rng.next_u64())
    };
    let k = rng.range(1, 3);
    let r = dag.max_in_degree() + 1 + usize::from(rng.bool(0.25));
    let g = rng.range_u64(2, 6);
    (dag, k, r, g)
}

#[test]
fn zero_green_capacity_matches_vanilla_on_100_seeds() {
    let mut rng = Rng::new(0x9e37_2024);
    for case in 0..100 {
        let (dag, k, r, g) = draw(&mut rng);
        let mpp = MppInstance::new(&dag, k, r, g);
        let vanilla = solve_mpp(&mpp, limits()).expect("vanilla solve");
        let green_cost = rng.range_u64(1, g + 1);
        let hier =
            solve_hier(&HierInstance::from_mpp(&mpp, 0, green_cost), limits()).expect("hier solve");
        assert_eq!(
            hier.total,
            vanilla.total,
            "case {case}: {} k={k} r={r} g={g}",
            dag.name()
        );
        assert_eq!(hier.cost.green_io_steps(), 0, "case {case}");
        // Byte-identical costs: the degenerate tally *is* an MPP tally.
        assert_eq!(
            (hier.cost.stores, hier.cost.loads, hier.cost.computes),
            (
                vanilla.cost.stores,
                vanilla.cost.loads,
                vanilla.cost.computes
            ),
            "case {case}: optimal tallies diverged without a green tier"
        );
    }
}

#[test]
fn green_priced_at_g_matches_vanilla_on_100_seeds() {
    let mut rng = Rng::new(0x51_2024);
    for case in 0..100 {
        let (dag, k, r, g) = draw(&mut rng);
        let mpp = MppInstance::new(&dag, k, r, g);
        let vanilla = solve_mpp(&mpp, limits()).expect("vanilla solve");
        let cap = rng.range(1, 3);
        let hier = solve_hier(&HierInstance::from_mpp(&mpp, cap, g), limits()).expect("hier solve");
        assert_eq!(
            hier.total,
            vanilla.total,
            "case {case}: {} k={k} r={r} g={g} cap={cap}",
            dag.name()
        );
    }
}

#[test]
fn cheap_green_never_exceeds_vanilla_and_projection_bounds_it() {
    // Sanity on non-degenerate parameters: OPT_hier ≤ OPT_mpp, and the
    // flattened strategy certifies OPT_mpp ≤ re-priced hier cost.
    let mut rng = Rng::new(0xcafe_2024);
    for case in 0..25 {
        let (dag, k, r, g) = draw(&mut rng);
        let mpp = MppInstance::new(&dag, k, r, g);
        let vanilla = solve_mpp(&mpp, limits()).expect("vanilla solve");
        let inst = HierInstance::from_mpp(&mpp, rng.range(1, 3), 1);
        let hier = solve_hier(&inst, limits()).expect("hier solve");
        assert!(hier.total <= vanilla.total, "case {case}");
        let projected = rbp_hier::hier_to_mpp(&inst, &hier.strategy);
        let cost = projected.validate(&mpp).expect("projection invalid");
        let repriced = g * (hier.cost.io_steps() + hier.cost.green_io_steps())
            + inst.model.compute * hier.cost.computes;
        assert!(cost.total(mpp.model) <= repriced, "case {case}");
        assert!(vanilla.total <= cost.total(mpp.model), "case {case}");
    }
}
