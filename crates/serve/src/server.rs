//! The long-lived service: accept loop, router, worker pool, and
//! graceful shutdown.
//!
//! [`Server::start`] binds a [`std::net::TcpListener`], spawns the
//! configured worker pool plus one accept thread, and returns
//! immediately; [`Server::wait`] blocks until shutdown is requested
//! (via [`ServerHandle::request_shutdown`] or `POST /v1/shutdown`) and
//! then **drains**: the listener stops accepting, workers finish every
//! job already admitted to the queue, and in-flight connections get
//! their responses before the call returns. Nothing admitted is ever
//! dropped silently — backpressure is always an explicit `503` with
//! `Retry-After`.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rbp_util::json::Json;
use rbp_util::FxHashMap;

use crate::api::{ApiError, Work};
use crate::cache::ResultCache;
use crate::http;
use crate::jobs::{Job, JobQueue, JobState, PushError};
use crate::stats::ServeStats;
use crate::store::ResultStore;
use crate::wire;
use crate::ServeConfig;

/// Completed/failed jobs kept for polling before the registry is
/// pruned (oldest first).
const JOB_RETENTION: usize = 4096;

/// Socket read/write timeout for request handling.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

pub(crate) struct State {
    cfg: ServeConfig,
    addr: SocketAddr,
    queue: JobQueue,
    jobs: Mutex<FxHashMap<u64, Arc<Job>>>,
    cache: ResultCache,
    /// Durable result tier under the RAM cache (`--store-dir`).
    store: Option<ResultStore>,
    stats: ServeStats,
    shutdown: AtomicBool,
    next_job: AtomicU64,
    active_conns: AtomicU64,
}

/// A running service instance bound to a local address.
pub struct Server {
    state: Arc<State>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// A cloneable shutdown/introspection handle onto a running [`Server`].
#[derive(Clone)]
pub struct ServerHandle {
    state: Arc<State>,
}

impl ServerHandle {
    /// Requests graceful shutdown (idempotent): stop accepting, drain
    /// the queue, answer in-flight requests.
    pub fn request_shutdown(&self) {
        request_shutdown(&self.state);
    }

    /// Whether shutdown has been requested.
    #[must_use]
    pub fn is_shutting_down(&self) -> bool {
        self.state.shutdown.load(Ordering::Relaxed)
    }
}

fn request_shutdown(state: &State) {
    if state.shutdown.swap(true, Ordering::SeqCst) {
        return; // already requested
    }
    rbp_trace::counter("serve.shutdown_requested", 1);
    // Poke the accept loop out of its blocking accept().
    let _ = TcpStream::connect_timeout(&state.addr, Duration::from_secs(1));
}

impl Server {
    /// Binds `cfg.addr`, spawns the worker pool and the accept thread,
    /// and returns the running server. When `cfg.store_dir` is set the
    /// persistent store is opened (recovering any torn tail and
    /// compacting) and its newest entries are preloaded into the RAM
    /// cache, so a restarted server answers previously-solved
    /// instances as cache hits immediately.
    ///
    /// # Errors
    /// Propagates bind failures and store open/recovery failures.
    pub fn start(cfg: ServeConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let workers_n = cfg.workers.max(1);
        let cache = ResultCache::new(cfg.cache_cap);
        let store = match &cfg.store_dir {
            Some(dir) => {
                let store = ResultStore::open(std::path::Path::new(dir), cfg.store_cap_bytes)?;
                let warmed = store.warm(&cache, cfg.cache_cap);
                rbp_trace::counter("serve.store.opened", 1);
                if warmed > 0 {
                    rbp_trace::counter("serve.store.warm_boot", 1);
                }
                Some(store)
            }
            None => None,
        };
        let state = Arc::new(State {
            queue: JobQueue::new(cfg.queue_cap.max(1)),
            jobs: Mutex::new(FxHashMap::default()),
            cache,
            store,
            stats: ServeStats::new(),
            shutdown: AtomicBool::new(false),
            next_job: AtomicU64::new(1),
            active_conns: AtomicU64::new(0),
            addr,
            cfg,
        });

        let workers = (0..workers_n)
            .map(|i| {
                let state = Arc::clone(&state);
                std::thread::Builder::new()
                    .name(format!("rbp-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))
                    .expect("spawn worker thread")
            })
            .collect();

        let accept = {
            let state = Arc::clone(&state);
            std::thread::Builder::new()
                .name("rbp-serve-accept".into())
                .spawn(move || accept_loop(&listener, &state))
                .expect("spawn accept thread")
        };

        Ok(Server {
            state,
            accept: Some(accept),
            workers,
        })
    }

    /// The bound local address (useful with `addr: "127.0.0.1:0"`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// A cloneable handle for requesting shutdown from elsewhere.
    #[must_use]
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            state: Arc::clone(&self.state),
        }
    }

    /// Blocks until shutdown is requested, then drains and joins every
    /// thread: the accept loop exits, workers finish the admitted
    /// backlog, and in-flight connections get their responses.
    pub fn wait(mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // No new jobs can arrive (accept loop is gone and submissions
        // check the shutdown flag); let workers drain the backlog.
        self.state.queue.begin_shutdown();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Give in-flight connection handlers a moment to flush.
        let drain_deadline = Instant::now() + Duration::from_secs(5);
        while self.state.active_conns.load(Ordering::Relaxed) > 0 && Instant::now() < drain_deadline
        {
            std::thread::sleep(Duration::from_millis(5));
        }
        rbp_trace::counter("serve.drained", 1);
    }

    /// [`ServerHandle::request_shutdown`] + [`Server::wait`] in one
    /// call, for tests and in-process harnesses.
    pub fn shutdown(self) {
        self.handle().request_shutdown();
        self.wait();
    }
}

fn accept_loop(listener: &TcpListener, state: &Arc<State>) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                state.active_conns.fetch_add(1, Ordering::Relaxed);
                let state = Arc::clone(state);
                let _ = std::thread::Builder::new()
                    .name("rbp-serve-conn".into())
                    .spawn(move || {
                        handle_connection(&state, stream);
                        state.active_conns.fetch_sub(1, Ordering::Relaxed);
                    });
            }
            Err(_) => {
                if state.shutdown.load(Ordering::Relaxed) {
                    break;
                }
            }
        }
    }
}

/// One response: status, body, optional extra headers.
struct Reply {
    status: u16,
    body: Json,
    retry_after: Option<u64>,
}

impl Reply {
    fn ok(body: Json) -> Reply {
        Reply {
            status: 200,
            body,
            retry_after: None,
        }
    }

    fn error(status: u16, msg: &str) -> Reply {
        Reply {
            status,
            body: Json::obj([
                ("error", Json::from(msg)),
                ("status", Json::from(u64::from(status))),
            ]),
            retry_after: None,
        }
    }
}

fn handle_connection(state: &Arc<State>, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));

    // Protocol negotiation: a binary client's first 4 bytes are the
    // preamble "RBP\x01", which no HTTP request can start with (methods
    // are ASCII uppercase). Sniff at most 4 bytes, bailing out of the
    // sniff as soon as the bytes diverge from the preamble, and hand
    // whatever was consumed to the HTTP parser.
    let mut sniffed = [0u8; 4];
    let mut n = 0usize;
    while n < sniffed.len() && sniffed[..n] == wire::PREAMBLE[..n] {
        use std::io::Read as _;
        match stream.read(&mut sniffed[n..]) {
            Ok(0) | Err(_) => break,
            Ok(got) => n += got,
        }
    }
    if sniffed[..n] == wire::PREAMBLE {
        handle_binary_connection(state, &mut stream);
        return;
    }

    let reply = match http::read_request(&mut stream, &sniffed[..n], state.cfg.max_body_bytes) {
        Ok(req) => {
            state.stats.accepted.fetch_add(1, Ordering::Relaxed);
            rbp_trace::counter("serve.http.accepted", 1);
            route(state, &req)
        }
        Err(e) => Reply::error(e.status, &e.msg),
    };
    let mut extra: Vec<(&str, String)> = Vec::new();
    if let Some(secs) = reply.retry_after {
        extra.push(("retry-after", secs.to_string()));
    }
    let _ = http::write_response(&mut stream, reply.status, &extra, &reply.body.render());
}

/// One persistent binary-protocol connection: acknowledge the
/// preamble, then answer request frames until the client hangs up.
fn handle_binary_connection(state: &Arc<State>, stream: &mut TcpStream) {
    use std::io::Write as _;
    // Frames are small and strictly request/response; Nagle would add
    // delayed-ACK stalls to every exchange.
    let _ = stream.set_nodelay(true);
    if stream.write_all(&wire::PREAMBLE).is_err() || stream.flush().is_err() {
        return;
    }
    rbp_trace::counter("serve.wire.conn", 1);
    while let Ok(Some(frame)) = wire::read_frame(stream, state.cfg.max_body_bytes) {
        state.stats.wire_requests.fetch_add(1, Ordering::Relaxed);
        rbp_trace::counter("serve.wire.request", 1);
        let reply = binary_reply(state, &frame);
        if wire::write_frame(stream, &reply).is_err() {
            break;
        }
    }
}

/// Maps one request frame to its response/error frame via the shared
/// submission path. Responses carry the result core **verbatim** —
/// the same bytes the cache holds and the HTTP envelope re-renders.
fn binary_reply(state: &Arc<State>, frame: &wire::Frame) -> wire::Frame {
    let (endpoint, body_text) = match frame.parse_request() {
        Ok(parts) => parts,
        Err(msg) => return wire::Frame::error(400, &msg),
    };
    if !matches!(
        endpoint,
        "solve" | "schedule" | "portfolio" | "bounds" | "generate"
    ) {
        return wire::Frame::error(404, &format!("no binary endpoint '{endpoint}'"));
    }
    let body = match Json::parse(body_text) {
        Ok(v) => v,
        Err(e) => return wire::Frame::error(400, &format!("body is not valid JSON: {e}")),
    };
    match submit(state, endpoint, &body, false) {
        Submitted::Answer { tag, core, .. } => wire::Frame::response(tag, &core),
        Submitted::Accepted { .. } => {
            wire::Frame::error(500, "async admission on a binary connection")
        }
        Submitted::TimedOut { deadline_ms, .. } => {
            wire::Frame::error(504, &format!("deadline of {deadline_ms} ms exceeded"))
        }
        Submitted::Refused { status, msg, .. } => wire::Frame::error(status, &msg),
    }
}

fn route(state: &Arc<State>, req: &http::Request) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/v1/healthz") => Reply::ok(Json::obj([
            ("status", Json::from("ok")),
            (
                "shutting_down",
                Json::from(state.shutdown.load(Ordering::Relaxed)),
            ),
        ])),
        ("GET", "/v1/stats") => Reply::ok(state.stats.to_json(
            state.queue.depth(),
            state.cfg.queue_cap,
            state.cfg.workers,
            &state.cache,
            state.store.as_ref(),
        )),
        ("POST", "/v1/shutdown") => {
            // The response races process teardown by design: flag first,
            // poke the accept loop, then answer on this still-open
            // connection (wait() lingers for active connections).
            request_shutdown(state);
            Reply::ok(Json::obj([("status", Json::from("draining"))]))
        }
        ("GET", path) if path.starts_with("/v1/jobs/") => job_endpoint(state, path),
        (
            "POST",
            "/v1/solve" | "/v1/schedule" | "/v1/portfolio" | "/v1/bounds" | "/v1/generate",
        ) => {
            let endpoint = req.path.rsplit('/').next().unwrap_or_default();
            handle_submit(state, endpoint, req)
        }
        ("GET" | "POST", _) => Reply::error(404, &format!("no route for {}", req.path)),
        _ => Reply::error(405, &format!("method {} not allowed", req.method)),
    }
}

/// `GET /v1/jobs/<id>` (status) and `GET /v1/jobs/<id>/result`.
fn job_endpoint(state: &Arc<State>, path: &str) -> Reply {
    let rest = &path["/v1/jobs/".len()..];
    let (id_str, want_result) = match rest.strip_suffix("/result") {
        Some(id) => (id, true),
        None => (rest, false),
    };
    let Ok(id) = id_str.parse::<u64>() else {
        return Reply::error(400, &format!("bad job id '{id_str}'"));
    };
    let job = state.jobs.lock().unwrap().get(&id).cloned();
    let Some(job) = job else {
        return Reply::error(404, &format!("unknown job {id} (pruned or never existed)"));
    };
    let st = job.state();
    if want_result {
        match st {
            JobState::Done(core) => Reply::ok(envelope("job", job.id, None, &core)),
            JobState::Failed(status, msg) => Reply::error(status, &msg),
            JobState::Queued | JobState::Running => Reply {
                status: 202,
                body: status_body(&job, &st),
                retry_after: Some(1),
            },
        }
    } else {
        Reply::ok(status_body(&job, &st))
    }
}

fn status_body(job: &Job, st: &JobState) -> Json {
    Json::obj([
        ("job", Json::from(job.id)),
        ("endpoint", Json::from(job.endpoint)),
        ("status", Json::from(st.name())),
        ("result", Json::from(format!("/v1/jobs/{}/result", job.id))),
    ])
}

/// Wraps a result core into the response envelope.
fn envelope(cache: &str, job_id: u64, elapsed_us: Option<u64>, core: &str) -> Json {
    let core = Json::parse(core).unwrap_or(Json::Null);
    let mut pairs = vec![
        ("cache".to_string(), Json::from(cache)),
        ("job".to_string(), Json::from(job_id)),
    ];
    if let Some(us) = elapsed_us {
        pairs.push(("elapsed_us".to_string(), Json::from(us)));
    }
    pairs.push(("result".to_string(), core));
    Json::Obj(pairs)
}

/// Outcome of one submission, transport-agnostic: the HTTP route wraps
/// it in the JSON envelope, the binary handler maps it to frames.
enum Submitted {
    /// A result is in hand (cache hit, store hit, or a completed
    /// synchronous job). `tag` is the wire cache tag; `core` the
    /// rendered result-core JSON, verbatim from cache/store/worker.
    Answer {
        tag: u8,
        job: u64,
        elapsed_us: u64,
        core: String,
    },
    /// Async admission: the job is queued, poll for the result.
    Accepted { job: u64 },
    /// Synchronous wait exceeded its deadline; the job may still
    /// finish and is pollable.
    TimedOut { job: u64, deadline_ms: u64 },
    /// The request never became a result (validation, backpressure…).
    Refused {
        status: u16,
        msg: String,
        retry_after: Option<u64>,
    },
}

impl Submitted {
    fn refused(status: u16, msg: impl Into<String>) -> Submitted {
        Submitted::Refused {
            status,
            msg: msg.into(),
            retry_after: None,
        }
    }

    fn backpressure(msg: impl Into<String>) -> Submitted {
        Submitted::Refused {
            status: 503,
            msg: msg.into(),
            retry_after: Some(1),
        }
    }
}

/// The shared submission path behind `POST /v1/<endpoint>` and binary
/// request frames: validate, probe the RAM cache then the persistent
/// store, and only then queue a job. `allow_async` gates
/// `"mode":"async"` (HTTP-only; a binary connection is already the
/// subscription channel).
fn submit(state: &Arc<State>, endpoint: &str, body: &Json, allow_async: bool) -> Submitted {
    let started = Instant::now();
    if state.shutdown.load(Ordering::Relaxed) {
        state.stats.rejected.fetch_add(1, Ordering::Relaxed);
        rbp_trace::counter("serve.http.rejected", 1);
        return Submitted::backpressure("server is draining");
    }

    // Envelope-level knobs: execution mode and deadline.
    let asynchronous = match body.get("mode").and_then(Json::as_str) {
        None | Some("sync") => false,
        Some("async") if allow_async => true,
        Some("async") => {
            return Submitted::refused(400, "async mode is not available on binary connections");
        }
        Some(other) => {
            return Submitted::refused(400, format!("mode '{other}' is not sync|async"));
        }
    };
    let deadline_ms = body
        .get("deadline_ms")
        .and_then(Json::as_u64)
        .unwrap_or(state.cfg.default_deadline_ms)
        .clamp(1, 600_000);
    let deadline = started + Duration::from_millis(deadline_ms);

    let mut work = match Work::parse(endpoint, body) {
        Ok(w) => w,
        Err(ApiError { status, msg }) => return Submitted::refused(status, msg),
    };
    work.cap_threads(state.cfg.max_solve_threads);
    if let Some(threads) = work.solve_threads() {
        state.stats.record_solve_threads(threads);
    }
    let key = work.cache_key();

    // Content-addressed fast path: identical instances answer from the
    // RAM cache without ever touching the queue.
    if let Some(core) = state.cache.get(&key) {
        state.stats.record_latency(endpoint, elapsed_us(started));
        return Submitted::Answer {
            tag: wire::TAG_HIT,
            job: 0,
            elapsed_us: elapsed_us(started),
            core,
        };
    }
    // Durable second tier: a RAM-evicted (or pre-restart) result read
    // back from disk, promoted into the RAM cache on the way out.
    if let Some(store) = &state.store {
        if let Some(core) = store.get(&key) {
            state.cache.insert(&key, core.clone());
            state.stats.record_latency(endpoint, elapsed_us(started));
            return Submitted::Answer {
                tag: wire::TAG_STORE,
                job: 0,
                elapsed_us: elapsed_us(started),
                core,
            };
        }
    }

    let id = state.next_job.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job::new(id, work, key, deadline));
    register_job(state, &job);

    match state.queue.push(Arc::clone(&job)) {
        Ok(depth) => {
            rbp_trace::gauge("serve.queue.depth", depth as f64);
        }
        Err(reason) => {
            state.jobs.lock().unwrap().remove(&id);
            state.stats.rejected.fetch_add(1, Ordering::Relaxed);
            rbp_trace::counter("serve.http.rejected", 1);
            return match reason {
                PushError::Full => Submitted::backpressure(format!(
                    "queue full ({} jobs waiting); retry shortly",
                    state.cfg.queue_cap
                )),
                PushError::ShuttingDown => Submitted::backpressure("server is draining"),
            };
        }
    }

    if asynchronous {
        return Submitted::Accepted { job: id };
    }

    match job.wait_until(deadline) {
        // Execution latency was recorded by the worker; the reply
        // carries the end-to-end time.
        JobState::Done(core) => Submitted::Answer {
            tag: wire::TAG_MISS,
            job: id,
            elapsed_us: elapsed_us(started),
            core,
        },
        JobState::Failed(status, msg) => Submitted::refused(status, msg),
        JobState::Queued | JobState::Running => {
            state.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            rbp_trace::counter("serve.http.timeout", 1);
            Submitted::TimedOut {
                job: id,
                deadline_ms,
            }
        }
    }
}

fn handle_submit(state: &Arc<State>, endpoint: &str, req: &http::Request) -> Reply {
    let Some(text) = req.body_str() else {
        return Reply::error(400, "body is not valid UTF-8");
    };
    let body = match Json::parse(text) {
        Ok(v) => v,
        Err(e) => return Reply::error(400, &format!("body is not valid JSON: {e}")),
    };
    match submit(state, endpoint, &body, true) {
        Submitted::Answer {
            tag,
            job,
            elapsed_us,
            core,
        } => Reply::ok(envelope(wire::tag_name(tag), job, Some(elapsed_us), &core)),
        Submitted::Accepted { job } => Reply {
            status: 202,
            body: Json::obj([
                ("cache", Json::from("miss")),
                ("job", Json::from(job)),
                ("status", Json::from("queued")),
                ("poll", Json::from(format!("/v1/jobs/{job}"))),
                ("result", Json::from(format!("/v1/jobs/{job}/result"))),
            ]),
            retry_after: None,
        },
        Submitted::TimedOut { job, deadline_ms } => Reply {
            status: 504,
            body: Json::obj([
                (
                    "error",
                    Json::from(format!("deadline of {deadline_ms} ms exceeded")),
                ),
                ("status", Json::from(504u64)),
                ("job", Json::from(job)),
                ("poll", Json::from(format!("/v1/jobs/{job}"))),
            ]),
            retry_after: None,
        },
        Submitted::Refused {
            status,
            msg,
            retry_after,
        } => {
            let mut reply = Reply::error(status, &msg);
            reply.retry_after = retry_after;
            reply
        }
    }
}

fn register_job(state: &Arc<State>, job: &Arc<Job>) {
    let mut jobs = state.jobs.lock().unwrap();
    jobs.insert(job.id, Arc::clone(job));
    if jobs.len() > JOB_RETENTION {
        // Prune the oldest *terminal* jobs; queued/running entries are
        // always retained so nothing admitted loses its handle.
        let mut prunable: Vec<u64> = jobs
            .iter()
            .filter(|(_, j)| j.state().is_terminal())
            .map(|(&id, _)| id)
            .collect();
        prunable.sort_unstable();
        let excess = jobs.len().saturating_sub(JOB_RETENTION);
        for id in prunable.into_iter().take(excess) {
            jobs.remove(&id);
        }
    }
}

fn worker_loop(state: &Arc<State>) {
    while let Some(job) = state.queue.pop() {
        rbp_trace::gauge("serve.queue.depth", state.queue.depth() as f64);
        if !job.claim() {
            continue;
        }
        if Instant::now() >= job.deadline {
            state.stats.failed.fetch_add(1, Ordering::Relaxed);
            rbp_trace::counter("serve.job.expired", 1);
            job.finish(JobState::Failed(
                504,
                "deadline exceeded while queued".to_string(),
            ));
            continue;
        }
        let span = rbp_trace::span_with(
            "serve.job",
            vec![
                ("endpoint", Json::from(job.endpoint)),
                ("job", Json::from(job.id)),
            ],
        );
        let started = Instant::now();
        match job.work.execute() {
            Ok(core) => {
                let rendered = core.render();
                state.cache.insert(&job.cache_key, rendered.clone());
                // Persist before finishing the job: once a client has
                // seen the answer, a restart must still know it.
                if let Some(store) = &state.store {
                    store.append(&job.cache_key, &rendered);
                }
                state.stats.completed.fetch_add(1, Ordering::Relaxed);
                state
                    .stats
                    .record_latency(job.endpoint, elapsed_us(started));
                rbp_trace::counter("serve.job.completed", 1);
                job.finish(JobState::Done(rendered));
            }
            Err(ApiError { status, msg }) => {
                state.stats.failed.fetch_add(1, Ordering::Relaxed);
                rbp_trace::counter("serve.job.failed", 1);
                job.finish(JobState::Failed(status, msg));
            }
        }
        drop(span);
    }
}

fn elapsed_us(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_micros()).unwrap_or(u64::MAX)
}
