//! Jobs, the bounded job queue, and completion signalling.
//!
//! Every POST endpoint turns its parsed request into a [`Job`] and
//! offers it to the [`JobQueue`]. The queue is **bounded**: when
//! `queue_cap` jobs are already waiting the submission is refused and
//! the HTTP layer answers `503` with `Retry-After` — backpressure is
//! explicit, requests are never dropped silently. Worker threads pop
//! jobs in FIFO order, execute them, and publish the terminal state
//! through a mutex + condvar pair that synchronous waiters (and async
//! pollers via `/v1/jobs/<id>`) observe.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

use crate::api::Work;

/// Lifecycle of one submitted job.
#[derive(Debug, Clone)]
pub enum JobState {
    /// Waiting in the queue.
    Queued,
    /// Claimed by a worker, executing.
    Running,
    /// Finished successfully; holds the rendered JSON result core.
    Done(String),
    /// Finished with an error: HTTP status plus message.
    Failed(u16, String),
}

impl JobState {
    /// Short lowercase status name for responses (`queued`, `running`,
    /// `done`, `failed`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done(_) => "done",
            JobState::Failed(..) => "failed",
        }
    }

    /// Whether the job reached a terminal state.
    #[must_use]
    pub fn is_terminal(&self) -> bool {
        matches!(self, JobState::Done(_) | JobState::Failed(..))
    }
}

/// One unit of queued work plus its completion signal.
#[derive(Debug)]
pub struct Job {
    /// Monotonic job id (also the `/v1/jobs/<id>` handle).
    pub id: u64,
    /// Endpoint name (`solve`, `schedule`, …) for stats and traces.
    pub endpoint: &'static str,
    /// The parsed work to execute.
    pub work: Work,
    /// Content-address of the instance (result cache key).
    pub cache_key: String,
    /// Wall-clock point after which the job must not start executing.
    pub deadline: Instant,
    state: Mutex<JobState>,
    done: Condvar,
}

impl Job {
    /// A freshly queued job.
    #[must_use]
    pub fn new(id: u64, work: Work, cache_key: String, deadline: Instant) -> Self {
        Job {
            id,
            endpoint: work.endpoint(),
            work,
            cache_key,
            deadline,
            state: Mutex::new(JobState::Queued),
            done: Condvar::new(),
        }
    }

    /// Snapshot of the current state.
    #[must_use]
    pub fn state(&self) -> JobState {
        self.state.lock().unwrap().clone()
    }

    /// Transitions `Queued → Running`; returns `false` when the job is
    /// no longer claimable (already terminal).
    pub fn claim(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        if matches!(*st, JobState::Queued) {
            *st = JobState::Running;
            true
        } else {
            false
        }
    }

    /// Publishes a terminal state and wakes every waiter.
    pub fn finish(&self, terminal: JobState) {
        debug_assert!(terminal.is_terminal());
        let mut st = self.state.lock().unwrap();
        *st = terminal;
        drop(st);
        self.done.notify_all();
    }

    /// Blocks until the job reaches a terminal state or `deadline`
    /// passes, returning the state observed last (possibly still
    /// `Queued`/`Running` on timeout).
    #[must_use]
    pub fn wait_until(&self, deadline: Instant) -> JobState {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.is_terminal() {
                return st.clone();
            }
            let now = Instant::now();
            if now >= deadline {
                return st.clone();
            }
            let (guard, _timeout) = self.done.wait_timeout(st, deadline - now).unwrap();
            st = guard;
        }
    }
}

struct QueueInner {
    q: VecDeque<Arc<Job>>,
    shutdown: bool,
}

/// The bounded FIFO feeding the worker pool.
pub struct JobQueue {
    cap: usize,
    inner: Mutex<QueueInner>,
    nonempty: Condvar,
}

/// Refusal reason from [`JobQueue::push`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PushError {
    /// `queue_cap` jobs are already waiting (backpressure → 503).
    Full,
    /// The server is draining; no new work is accepted.
    ShuttingDown,
}

impl JobQueue {
    /// A queue admitting at most `cap` waiting jobs.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        JobQueue {
            cap,
            inner: Mutex::new(QueueInner {
                q: VecDeque::new(),
                shutdown: false,
            }),
            nonempty: Condvar::new(),
        }
    }

    /// Offers a job; on success returns the queue depth *including* the
    /// new job, for the `serve.queue.depth` gauge.
    ///
    /// # Errors
    /// [`PushError::Full`] under backpressure, [`PushError::ShuttingDown`]
    /// once draining has begun.
    pub fn push(&self, job: Arc<Job>) -> Result<usize, PushError> {
        let mut inner = self.inner.lock().unwrap();
        if inner.shutdown {
            return Err(PushError::ShuttingDown);
        }
        if inner.q.len() >= self.cap {
            return Err(PushError::Full);
        }
        inner.q.push_back(job);
        let depth = inner.q.len();
        drop(inner);
        self.nonempty.notify_one();
        Ok(depth)
    }

    /// Blocks for the next job. Returns `None` only when the queue is
    /// shutting down **and** fully drained, so in-flight work always
    /// completes before workers exit.
    #[must_use]
    pub fn pop(&self) -> Option<Arc<Job>> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(job) = inner.q.pop_front() {
                return Some(job);
            }
            if inner.shutdown {
                return None;
            }
            inner = self.nonempty.wait(inner).unwrap();
        }
    }

    /// Current number of waiting jobs.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.inner.lock().unwrap().q.len()
    }

    /// Begins draining: no further pushes are admitted; workers exit
    /// once the backlog is empty.
    pub fn begin_shutdown(&self) {
        self.inner.lock().unwrap().shutdown = true;
        self.nonempty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn mk_job(id: u64) -> Arc<Job> {
        Arc::new(Job::new(
            id,
            Work::Generate {
                family: "chain".into(),
                params: vec![2],
            },
            format!("key{id}"),
            Instant::now() + Duration::from_secs(5),
        ))
    }

    #[test]
    fn bounded_push_rejects_when_full() {
        let q = JobQueue::new(2);
        assert_eq!(q.push(mk_job(1)), Ok(1));
        assert_eq!(q.push(mk_job(2)), Ok(2));
        assert_eq!(q.push(mk_job(3)), Err(PushError::Full));
        assert_eq!(q.depth(), 2);
    }

    #[test]
    fn shutdown_drains_backlog_then_stops() {
        let q = JobQueue::new(8);
        q.push(mk_job(1)).unwrap();
        q.push(mk_job(2)).unwrap();
        q.begin_shutdown();
        assert_eq!(q.push(mk_job(3)), Err(PushError::ShuttingDown));
        assert_eq!(q.pop().unwrap().id, 1);
        assert_eq!(q.pop().unwrap().id, 2);
        assert!(q.pop().is_none(), "drained queue signals worker exit");
    }

    #[test]
    fn job_state_machine_and_waiters() {
        let job = mk_job(7);
        assert_eq!(job.state().name(), "queued");
        assert!(job.claim());
        assert!(!job.claim(), "a running job cannot be claimed twice");
        assert_eq!(job.state().name(), "running");

        let waiter = {
            let job = Arc::clone(&job);
            std::thread::spawn(move || job.wait_until(Instant::now() + Duration::from_secs(5)))
        };
        job.finish(JobState::Done("{}".into()));
        let seen = waiter.join().unwrap();
        assert_eq!(seen.name(), "done");
    }

    #[test]
    fn wait_times_out_on_stuck_job() {
        let job = mk_job(8);
        let seen = job.wait_until(Instant::now() + Duration::from_millis(20));
        assert_eq!(seen.name(), "queued");
        assert!(!seen.is_terminal());
    }
}
