//! # rbp-serve — pebbling as a service
//!
//! A zero-dependency HTTP/1.1 + JSON layer exposing the workspace's
//! solver/scheduler/portfolio/bounds stack as a **long-lived service**
//! instead of one-shot CLI runs. Solve results are expensive (OPT is
//! NP-hard) and deterministic per instance, which makes them worth
//! queueing and caching behind a daemon:
//!
//! - **Bounded job queue + worker pool** — submissions past `queue_cap`
//!   are refused with `503` + `Retry-After` (explicit backpressure,
//!   never a silent drop); `workers` threads execute jobs FIFO.
//! - **Content-addressed result cache** — keyed by
//!   [`rbp_trace::hash_hex`] over the canonical instance (endpoint,
//!   canonical DAG text, machine parameters), sharded with per-shard
//!   LRU eviction and hit/miss counters. A warm hit skips the queue
//!   entirely.
//! - **Per-request deadlines** — `deadline_ms` bounds both the queue
//!   wait and the synchronous response; expired waits answer `504` with
//!   a poll URL so the eventual result is still retrievable.
//! - **Async jobs** — `"mode":"async"` returns `202` plus
//!   `/v1/jobs/<id>` / `/v1/jobs/<id>/result` endpoints for
//!   long-running solves.
//! - **Persistent result store** — with `store_dir` set, every
//!   completed result is appended to a crash-safe, checksummed record
//!   log ([`store`]) and the newest entries are preloaded into the RAM
//!   cache on startup, so a restarted server answers previously-solved
//!   instances hot immediately (cache tags: `hit` = RAM, `store` =
//!   disk, `miss` = computed).
//! - **Binary wire protocol** — high-QPS clients send the 4-byte
//!   preamble `RBP\x01` on connect and switch the connection to
//!   persistent length-prefixed frames ([`wire`]), skipping per-request
//!   TCP connects and HTTP parsing; [`FleetClient`] consistent-hash
//!   routes over N instances.
//! - **Graceful shutdown** — `POST /v1/shutdown` (or
//!   [`ServerHandle::request_shutdown`]) stops accepting, drains every
//!   admitted job, and answers all in-flight requests before exit.
//!
//! Endpoints (schema v1, documented in `docs/SCHEMAS.md`): `POST
//! /v1/solve`, `/v1/schedule`, `/v1/portfolio`, `/v1/bounds`,
//! `/v1/generate`, plus `GET /v1/healthz`, `GET /v1/stats`, `GET
//! /v1/jobs/<id>[/result]`, and `POST /v1/shutdown`. Everything is
//! instrumented with `serve.*` trace counters/gauges/spans.
//!
//! ```
//! use rbp_serve::{http, ServeConfig, Server};
//! use std::time::Duration;
//!
//! let server = Server::start(ServeConfig {
//!     addr: "127.0.0.1:0".into(),
//!     workers: 1,
//!     ..ServeConfig::default()
//! })
//! .unwrap();
//! let addr = server.addr();
//! let resp = http::request(addr, "GET", "/v1/healthz", None, Duration::from_secs(5)).unwrap();
//! assert_eq!(resp.status, 200);
//! assert!(resp.body.contains("\"status\":\"ok\""));
//! server.shutdown();
//! ```

#![deny(missing_docs)]

pub mod api;
pub mod cache;
pub mod http;
pub mod jobs;
pub mod server;
pub mod stats;
pub mod store;
pub mod wire;

pub use api::{build_dag, ApiError, Work};
pub use cache::ResultCache;
pub use jobs::{Job, JobQueue, JobState, PushError};
pub use server::{Server, ServerHandle};
pub use stats::ServeStats;
pub use store::ResultStore;
pub use wire::{Client, FleetClient, Frame, WireResponse};

/// Configuration of one service instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`"127.0.0.1:0"` picks an ephemeral port).
    pub addr: String,
    /// Worker threads executing jobs (minimum 1).
    pub workers: usize,
    /// Maximum number of jobs waiting in the queue; submissions beyond
    /// it are refused with `503` + `Retry-After`.
    pub queue_cap: usize,
    /// Result-cache capacity in entries (0 disables caching).
    pub cache_cap: usize,
    /// Default per-request deadline when the body carries none.
    pub default_deadline_ms: u64,
    /// Maximum accepted request-body size in bytes.
    pub max_body_bytes: usize,
    /// Upper bound on per-request solver threads: a `"threads"` field on
    /// `POST /v1/solve` is clamped to this before keying or queueing
    /// (minimum 1).
    pub max_solve_threads: usize,
    /// Directory for the persistent result store (`None` disables it).
    /// When set, completed results are appended to
    /// `<dir>/results.log` and the newest entries are preloaded into
    /// the RAM cache on startup, so restarts answer hot immediately.
    pub store_dir: Option<String>,
    /// Byte cap on the store log (`0` = unbounded); exceeding it
    /// triggers a compaction that evicts the oldest entries first.
    pub store_cap_bytes: u64,
}

impl Default for ServeConfig {
    /// Ephemeral port, 4 workers, 64-deep queue, 256-entry cache, 30 s
    /// deadline, 1 MiB bodies, at most 4 solver threads per request, no
    /// persistent store, 64 MiB store cap once one is configured.
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            cache_cap: 256,
            default_deadline_ms: 30_000,
            max_body_bytes: 1 << 20,
            max_solve_threads: 4,
            store_dir: None,
            store_cap_bytes: 64 << 20,
        }
    }
}
