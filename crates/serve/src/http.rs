//! Minimal HTTP/1.1 framing over [`std::net::TcpStream`].
//!
//! The service speaks just enough of the protocol for JSON request/
//! response exchanges: one request per connection, `Content-Length`
//! bodies, `Connection: close` on every response. The same module also
//! provides the tiny blocking [`request`] client used by the in-process
//! load harness (`exp_serve`) and the integration tests — both sides of
//! the wire live next to each other so framing changes cannot drift
//! apart.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Maximum accepted size of the request head (request line + headers).
const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, …).
    pub method: String,
    /// Request path without the query string (e.g. `/v1/solve`).
    pub path: String,
    /// Raw query string after `?`, if any.
    pub query: Option<String>,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// Request body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// Case-insensitive header lookup (names are stored lower-cased).
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 text, if valid.
    #[must_use]
    pub fn body_str(&self) -> Option<&str> {
        std::str::from_utf8(&self.body).ok()
    }
}

/// A framing-level error: the HTTP status to answer with plus a
/// human-readable message for the error body.
#[derive(Debug, Clone)]
pub struct HttpError {
    /// Response status code (400, 408, 413, …).
    pub status: u16,
    /// What went wrong.
    pub msg: String,
}

impl HttpError {
    fn new(status: u16, msg: impl Into<String>) -> Self {
        HttpError {
            status,
            msg: msg.into(),
        }
    }
}

/// Reads and parses one HTTP/1.1 request from `stream`.
///
/// `prefix` holds bytes already consumed from the stream before
/// parsing began — the accept loop sniffs the first bytes of every
/// connection to negotiate the binary protocol (see `crate::wire`) and
/// passes them through here when they turn out to be HTTP.
///
/// # Errors
/// [`HttpError`] with status 400 on malformed framing, 408 on a
/// connection that hits the socket read timeout or closes early, 413
/// when the body exceeds `max_body`, or 431 when the head exceeds the
/// 16 KiB header limit.
pub fn read_request(
    stream: &mut TcpStream,
    prefix: &[u8],
    max_body: usize,
) -> Result<Request, HttpError> {
    let mut buf: Vec<u8> = Vec::with_capacity(1024.max(prefix.len()));
    buf.extend_from_slice(prefix);
    let mut tmp = [0u8; 4096];

    // Accumulate until the blank line terminating the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::new(431, "request head too large"));
        }
        let n = stream
            .read(&mut tmp)
            .map_err(|e| HttpError::new(408, format!("read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed before full head"));
        }
        buf.extend_from_slice(&tmp[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;
    let mut lines = head.split("\r\n").map(str::trim_end);
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "empty request line"))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::new(400, "request line has no path"))?;
    let version = parts.next().unwrap_or("");
    if !version.starts_with("HTTP/1.") {
        return Err(HttpError::new(400, "unsupported HTTP version"));
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header line: {line:?}")))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .map(|(_, v)| {
            v.parse::<usize>()
                .map_err(|_| HttpError::new(400, "bad content-length"))
        })
        .transpose()?
        .unwrap_or(0);
    if content_length > max_body {
        return Err(HttpError::new(
            413,
            format!("body of {content_length} bytes exceeds limit {max_body}"),
        ));
    }

    // The head scan may already have consumed part (or all) of the body.
    let body_start = head_end + 4; // past "\r\n\r\n"
    let mut body: Vec<u8> = buf.get(body_start..).unwrap_or_default().to_vec();
    while body.len() < content_length {
        let n = stream
            .read(&mut tmp)
            .map_err(|e| HttpError::new(408, format!("body read failed: {e}")))?;
        if n == 0 {
            return Err(HttpError::new(400, "connection closed mid-body"));
        }
        body.extend_from_slice(&tmp[..n]);
    }
    body.truncate(content_length);

    Ok(Request {
        method,
        path,
        query,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The canonical reason phrase for the status codes this service emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes one `Connection: close` JSON response and flushes the stream.
///
/// # Errors
/// Propagates socket write failures (the peer may already be gone; the
/// caller logs and drops the connection).
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &str,
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: close\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A parsed client-side response.
#[derive(Debug, Clone)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Response body text.
    pub body: String,
}

impl ClientResponse {
    /// Case-insensitive header lookup.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Blocking one-shot HTTP client: connects, sends `method path` with an
/// optional JSON body, and reads the full response (the server closes
/// the connection after each exchange).
///
/// # Errors
/// Propagates connect/read/write failures and malformed response
/// framing as [`std::io::Error`].
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_client_response(&raw)
}

fn parse_client_response(raw: &[u8]) -> std::io::Result<ClientResponse> {
    let bad = |msg: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, msg.to_string());
    let head_end = find_head_end(raw).ok_or_else(|| bad("response has no header terminator"))?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| bad("response head not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad("bad status line"))?;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((n, v)) = line.split_once(':') {
            headers.push((n.trim().to_ascii_lowercase(), v.trim().to_string()));
        }
    }
    let body = String::from_utf8_lossy(&raw[head_end + 4..]).into_owned();
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn roundtrip(request_bytes: &[u8], max_body: usize) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let bytes = request_bytes.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&bytes).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        // Split the bytes the way the accept loop does: a sniffed
        // prefix handed back into the parser, the rest on the wire.
        let mut first = [0u8; 1];
        stream.read_exact(&mut first).unwrap();
        let out = read_request(&mut stream, &first, max_body);
        writer.join().unwrap();
        out
    }

    #[test]
    fn parses_post_with_body() {
        let req = roundtrip(
            b"POST /v1/solve?mode=async HTTP/1.1\r\nHost: x\r\nContent-Length: 7\r\n\r\n{\"k\":2}",
            1024,
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/solve");
        assert_eq!(req.query.as_deref(), Some("mode=async"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body_str(), Some("{\"k\":2}"));
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /v1/healthz HTTP/1.1\r\n\r\n", 1024).unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_body() {
        let err = roundtrip(
            b"POST /v1/solve HTTP/1.1\r\nContent-Length: 100\r\n\r\n",
            10,
        )
        .unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn rejects_malformed_request_line() {
        let err = roundtrip(b"NONSENSE\r\n\r\n", 1024).unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn client_response_parsing() {
        let resp = parse_client_response(
            b"HTTP/1.1 503 Service Unavailable\r\nRetry-After: 1\r\n\r\n{\"error\":\"full\"}",
        )
        .unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.body, "{\"error\":\"full\"}");
    }
}
