//! Disk-backed, content-addressed persistent result store.
//!
//! The in-memory [`ResultCache`] dies with the
//! process; this module is the durable tier underneath it: an
//! **append-only record log** (`results.log` inside `--store-dir`)
//! holding one `(cache key, rendered result core)` pair per record,
//! plus an in-memory index rebuilt by scanning the log on boot. The
//! on-disk format is specified normatively in `docs/SCHEMAS.md`
//! ("Persistent result store"); the invariants that matter:
//!
//! - **Crash safety by construction.** Records are length-prefixed and
//!   checksummed. A crash (or `kill -9`) can only ever produce a *torn
//!   tail*: the boot scan stops at the first incomplete or
//!   checksum-mismatched record, truncates it away, and keeps every
//!   record before it. Nothing is ever updated in place.
//! - **Last write wins.** Appending an existing key supersedes the
//!   earlier record; the index always points at the newest one.
//! - **Compaction.** Superseded duplicates are garbage. Boot compacts
//!   the log whenever duplicates exist or the file exceeds
//!   `cap_bytes`; runtime appends that push the file past `cap_bytes`
//!   trigger the same rewrite inline. Compaction keeps the
//!   most-recently-appended entries (oldest are evicted first) and is
//!   atomic: the survivors are written to `results.log.compact`, then
//!   renamed over the log.
//! - **Warm boot.** [`ResultStore::warm`] preloads the newest entries
//!   into the RAM cache so a restarted server answers its first
//!   repeat request as a cache hit, not a recompute.
//!
//! Every probe/append/compaction is mirrored to the tracer under
//! `serve.store.*` and surfaced in `GET /v1/stats`.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rbp_util::FxHashMap;

use crate::cache::ResultCache;

/// File magic: identifies `results.log` and pins format version 1.
pub const MAGIC: [u8; 8] = *b"RBPSTOR1";

/// Fixed per-record overhead: `len: u32` + `crc: u32` prefixes.
pub const RECORD_HEADER_BYTES: u64 = 8;

/// Largest accepted record body (`key_len` field + key + value). A
/// length prefix beyond this is treated as corruption, not an
/// allocation request.
pub const MAX_RECORD_BYTES: u32 = 64 << 20;

/// The record checksum: 64-bit FNV-1a over the record body, folded to
/// 32 bits by XOR-ing the high and low halves. Zero dependencies,
/// deterministic across platforms, and strong enough to detect the
/// torn/garbage tails it exists for.
#[must_use]
pub fn checksum(bytes: &[u8]) -> u32 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    ((h >> 32) as u32) ^ (h as u32)
}

/// Where one live record's value sits in the log.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Append ordinal (monotonic); larger = newer. Eviction order.
    seq: u64,
    /// Byte offset of the value within the file.
    value_off: u64,
    /// Value length in bytes.
    value_len: u32,
}

struct Inner {
    file: File,
    /// Current file length in bytes (magic + records).
    len: u64,
    /// Live index: cache key → newest record's value slot.
    index: FxHashMap<String, Slot>,
    /// Next append ordinal.
    next_seq: u64,
    /// Records appended since the last compaction that are now
    /// superseded (dead weight the next compaction reclaims).
    dead_records: u64,
}

/// The persistent result store: one append-only log + index.
pub struct ResultStore {
    path: PathBuf,
    cap_bytes: u64,
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
    appends: AtomicU64,
    compactions: AtomicU64,
    warmed: AtomicU64,
}

impl std::fmt::Debug for ResultStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResultStore")
            .field("path", &self.path)
            .field("cap_bytes", &self.cap_bytes)
            .field("entries", &self.len())
            .finish_non_exhaustive()
    }
}

/// One record decoded during the boot scan.
struct ScannedRecord {
    key: String,
    value_off: u64,
    value_len: u32,
    /// Offset of the byte *after* this record.
    end: u64,
}

impl ResultStore {
    /// Opens (or creates) the store rooted at `dir`, recovering from
    /// any torn tail and compacting when duplicates exist or the log
    /// exceeds `cap_bytes` (`0` = unbounded).
    ///
    /// # Errors
    /// Propagates directory/file creation and read failures. A corrupt
    /// *tail* is not an error (it is truncated away); a corrupt
    /// *magic* means the file is not ours and is refused.
    pub fn open(dir: &Path, cap_bytes: u64) -> std::io::Result<ResultStore> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("results.log");
        let mut file = OpenOptions::new()
            .read(true)
            .append(true)
            .create(true)
            .open(&path)?;

        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        if raw.is_empty() {
            file.write_all(&MAGIC)?;
            file.flush()?;
            raw.extend_from_slice(&MAGIC);
        } else if raw.len() < MAGIC.len() || raw[..MAGIC.len()] != MAGIC {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{}: bad magic (not an rbp result store)", path.display()),
            ));
        }

        // Sequential scan: index every valid record, stop at the first
        // torn or corrupt one and truncate it away.
        let mut index: FxHashMap<String, Slot> = FxHashMap::default();
        let mut next_seq = 0u64;
        let mut dead_records = 0u64;
        let mut valid_end = MAGIC.len() as u64;
        while let Some(rec) = scan_record(&raw, valid_end) {
            let slot = Slot {
                seq: next_seq,
                value_off: rec.value_off,
                value_len: rec.value_len,
            };
            if index.insert(rec.key, slot).is_some() {
                dead_records += 1;
            }
            next_seq += 1;
            valid_end = rec.end;
        }
        if valid_end < raw.len() as u64 {
            rbp_trace::counter("serve.store.truncated_tail", 1);
            file.set_len(valid_end)?;
        }

        let store = ResultStore {
            path,
            cap_bytes,
            inner: Mutex::new(Inner {
                file,
                len: valid_end,
                index,
                next_seq,
                dead_records,
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            appends: AtomicU64::new(0),
            compactions: AtomicU64::new(0),
            warmed: AtomicU64::new(0),
        };
        // Boot compaction: reclaim duplicates and enforce the cap so a
        // restarted server starts from a canonical log.
        {
            let mut inner = store.inner.lock().unwrap();
            let over_cap = cap_bytes > 0 && inner.len > cap_bytes;
            if inner.dead_records > 0 || over_cap {
                store.compact_locked(&mut inner)?;
            }
        }
        store.trace_gauges();
        Ok(store)
    }

    /// Looks up `key`, reading the value back from disk. Counts the
    /// probe as a store hit or miss (the caller only probes after a
    /// RAM-cache miss).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.index.get(key).copied();
        let out = slot.and_then(|s| {
            let mut buf = vec![0u8; s.value_len as usize];
            inner.file.seek(SeekFrom::Start(s.value_off)).ok()?;
            inner.file.read_exact(&mut buf).ok()?;
            String::from_utf8(buf).ok()
        });
        drop(inner);
        if out.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            rbp_trace::counter("serve.store.hit", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            rbp_trace::counter("serve.store.miss", 1);
        }
        out
    }

    /// Appends (or supersedes) `key`, durably. A full log triggers an
    /// inline compaction that evicts the oldest entries first. I/O
    /// failures are counted (`serve.store.append_error`) but never
    /// propagate — the store is a cache tier, not the source of truth.
    pub fn append(&self, key: &str, value: &str) {
        let mut inner = self.inner.lock().unwrap();
        match self.append_locked(&mut inner, key, value) {
            Ok(()) => {
                self.appends.fetch_add(1, Ordering::Relaxed);
                rbp_trace::counter("serve.store.append", 1);
            }
            Err(_) => rbp_trace::counter("serve.store.append_error", 1),
        }
        drop(inner);
        self.trace_gauges();
    }

    fn append_locked(&self, inner: &mut Inner, key: &str, value: &str) -> std::io::Result<()> {
        let record = encode_record(key, value);
        inner.file.write_all(&record)?;
        inner.file.flush()?;
        let value_off = inner.len + record.len() as u64 - value.len() as u64;
        let slot = Slot {
            seq: inner.next_seq,
            value_off,
            value_len: value.len() as u32,
        };
        inner.len += record.len() as u64;
        inner.next_seq += 1;
        if inner.index.insert(key.to_string(), slot).is_some() {
            inner.dead_records += 1;
        }
        if self.cap_bytes > 0 && inner.len > self.cap_bytes {
            self.compact_locked(inner)?;
        }
        Ok(())
    }

    /// Rewrites the log keeping one record per live key, newest
    /// appends retained first under the byte cap, then atomically
    /// renames the rewrite over the log.
    fn compact_locked(&self, inner: &mut Inner) -> std::io::Result<()> {
        // Newest first for cap enforcement…
        let mut live: Vec<(String, Slot)> =
            inner.index.iter().map(|(k, s)| (k.clone(), *s)).collect();
        live.sort_unstable_by_key(|(_, s)| std::cmp::Reverse(s.seq));

        let mut kept: Vec<(String, String)> = Vec::with_capacity(live.len());
        let mut kept_bytes = MAGIC.len() as u64;
        let mut evicted = 0u64;
        for (key, slot) in live {
            let mut buf = vec![0u8; slot.value_len as usize];
            inner.file.seek(SeekFrom::Start(slot.value_off))?;
            inner.file.read_exact(&mut buf)?;
            let value = String::from_utf8(buf).map_err(|_| {
                std::io::Error::new(std::io::ErrorKind::InvalidData, "non-UTF-8 store value")
            })?;
            let record_bytes = RECORD_HEADER_BYTES + 2 + key.len() as u64 + value.len() as u64;
            if self.cap_bytes > 0 && kept_bytes + record_bytes > self.cap_bytes {
                evicted += 1;
                continue;
            }
            kept_bytes += record_bytes;
            kept.push((key, value));
        }
        // …but written oldest-first so seq order still mirrors age.
        kept.reverse();

        let tmp_path = self.path.with_extension("log.compact");
        let mut tmp = File::create(&tmp_path)?;
        tmp.write_all(&MAGIC)?;
        for (key, value) in &kept {
            tmp.write_all(&encode_record(key, value))?;
        }
        tmp.flush()?;
        drop(tmp);
        std::fs::rename(&tmp_path, &self.path)?;

        // Reopen and rebuild the index over the fresh file.
        let file = OpenOptions::new()
            .read(true)
            .append(true)
            .open(&self.path)?;
        let mut index = FxHashMap::default();
        let mut off = MAGIC.len() as u64;
        for (seq, (key, value)) in kept.iter().enumerate() {
            let value_off = off + RECORD_HEADER_BYTES + 2 + key.len() as u64;
            index.insert(
                key.clone(),
                Slot {
                    seq: seq as u64,
                    value_off,
                    value_len: value.len() as u32,
                },
            );
            off = value_off + value.len() as u64;
        }
        inner.file = file;
        inner.len = off;
        inner.next_seq = kept.len() as u64;
        inner.index = index;
        inner.dead_records = 0;

        self.compactions.fetch_add(1, Ordering::Relaxed);
        rbp_trace::counter("serve.store.compaction", 1);
        if evicted > 0 {
            rbp_trace::counter("serve.store.evicted", evicted);
        }
        Ok(())
    }

    /// Preloads the newest (at most `limit`) stored results into the
    /// RAM cache, oldest of them first so LRU recency mirrors append
    /// recency. Returns how many entries were loaded.
    pub fn warm(&self, cache: &ResultCache, limit: usize) -> usize {
        let mut inner = self.inner.lock().unwrap();
        let mut live: Vec<(String, Slot)> =
            inner.index.iter().map(|(k, s)| (k.clone(), *s)).collect();
        live.sort_unstable_by_key(|(_, s)| s.seq);
        let skip = live.len().saturating_sub(limit);
        let mut loaded = 0usize;
        for (key, slot) in live.into_iter().skip(skip) {
            let mut buf = vec![0u8; slot.value_len as usize];
            let ok = inner.file.seek(SeekFrom::Start(slot.value_off)).is_ok()
                && inner.file.read_exact(&mut buf).is_ok();
            if !ok {
                continue;
            }
            if let Ok(value) = String::from_utf8(buf) {
                cache.insert(&key, value);
                loaded += 1;
            }
        }
        drop(inner);
        self.warmed.store(loaded as u64, Ordering::Relaxed);
        rbp_trace::gauge("serve.store.warmed", loaded as f64);
        loaded
    }

    fn trace_gauges(&self) {
        rbp_trace::gauge("serve.store.entries", self.len() as f64);
        rbp_trace::gauge("serve.store.bytes", self.bytes() as f64);
    }

    /// Number of live (distinct-key) entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().index.len()
    }

    /// Whether the store holds no live entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current log file size in bytes (including superseded records).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.inner.lock().unwrap().len
    }

    /// Configured byte cap (`0` = unbounded).
    #[must_use]
    pub fn cap_bytes(&self) -> u64 {
        self.cap_bytes
    }

    /// Store probes answered from disk since open.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Store probes that found nothing since open.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Successful appends since open.
    #[must_use]
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// Compaction passes since open (boot compaction included).
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    /// Entries preloaded into the RAM cache by the last [`warm`](Self::warm).
    #[must_use]
    pub fn warmed(&self) -> u64 {
        self.warmed.load(Ordering::Relaxed)
    }
}

/// Encodes one record: `len` + `crc` prefixes, then
/// `key_len (u16 LE) | key | value`.
fn encode_record(key: &str, value: &str) -> Vec<u8> {
    let body_len = 2 + key.len() + value.len();
    let mut out = Vec::with_capacity(RECORD_HEADER_BYTES as usize + body_len);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    let body_start = out.len() + 4; // after the crc slot
    out.extend_from_slice(&[0u8; 4]); // crc placeholder
    out.extend_from_slice(&(key.len() as u16).to_le_bytes());
    out.extend_from_slice(key.as_bytes());
    out.extend_from_slice(value.as_bytes());
    let crc = checksum(&out[body_start..]);
    out[4..8].copy_from_slice(&crc.to_le_bytes());
    out
}

/// Decodes the record starting at `off`, or `None` when the bytes from
/// `off` on are not one complete, checksum-valid record (torn tail).
fn scan_record(raw: &[u8], off: u64) -> Option<ScannedRecord> {
    let off = off as usize;
    let header = raw.get(off..off + RECORD_HEADER_BYTES as usize)?;
    let body_len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    let crc = u32::from_le_bytes(header[4..8].try_into().unwrap());
    if !(2..=MAX_RECORD_BYTES).contains(&body_len) {
        return None;
    }
    let body_start = off + RECORD_HEADER_BYTES as usize;
    let body = raw.get(body_start..body_start + body_len as usize)?;
    if checksum(body) != crc {
        return None;
    }
    let key_len = u16::from_le_bytes(body[0..2].try_into().unwrap()) as usize;
    if 2 + key_len > body.len() {
        return None;
    }
    let key = std::str::from_utf8(&body[2..2 + key_len]).ok()?;
    Some(ScannedRecord {
        key: key.to_string(),
        value_off: (body_start + 2 + key_len) as u64,
        value_len: body_len - 2 - key_len as u32,
        end: (body_start + body_len as usize) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "rbp-store-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_reopen() {
        let dir = tmpdir("roundtrip");
        {
            let store = ResultStore::open(&dir, 0).unwrap();
            assert!(store.is_empty());
            store.append("k1", "{\"total\":4}");
            store.append("k2", "{\"total\":9}");
            assert_eq!(store.get("k1").as_deref(), Some("{\"total\":4}"));
            assert_eq!(store.get("missing"), None);
            assert_eq!(store.hits(), 1);
            assert_eq!(store.misses(), 1);
        }
        // A fresh process sees everything.
        let store = ResultStore::open(&dir, 0).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.get("k2").as_deref(), Some("{\"total\":9}"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn last_write_wins_and_boot_compaction_reclaims() {
        let dir = tmpdir("upsert");
        let bytes_before;
        {
            let store = ResultStore::open(&dir, 0).unwrap();
            store.append("k", "old");
            store.append("k", "new");
            assert_eq!(store.get("k").as_deref(), Some("new"));
            assert_eq!(store.len(), 1);
            bytes_before = store.bytes();
        }
        // Reopen compacts the superseded record away.
        let store = ResultStore::open(&dir, 0).unwrap();
        assert_eq!(store.get("k").as_deref(), Some("new"));
        assert!(store.bytes() < bytes_before, "duplicate reclaimed");
        assert_eq!(store.compactions(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_tail_truncated_record_is_dropped_earlier_survive() {
        let dir = tmpdir("torn");
        {
            let store = ResultStore::open(&dir, 0).unwrap();
            store.append("a", "alpha");
            store.append("b", "beta");
        }
        let path = dir.join("results.log");
        let full = std::fs::read(&path).unwrap();
        // Simulate a crash mid-append at every torn length of a third
        // record: earlier records must always survive intact.
        let tail = encode_record("c", "gamma");
        for cut in 1..tail.len() {
            let mut torn = full.clone();
            torn.extend_from_slice(&tail[..cut]);
            std::fs::write(&path, &torn).unwrap();
            let store = ResultStore::open(&dir, 0).unwrap();
            assert_eq!(store.len(), 2, "cut={cut}");
            assert_eq!(store.get("a").as_deref(), Some("alpha"));
            assert_eq!(store.get("b").as_deref(), Some("beta"));
            assert_eq!(store.get("c"), None);
            drop(store);
            // Recovery truncated the torn bytes from the file itself.
            assert_eq!(std::fs::read(&path).unwrap(), full, "cut={cut}");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_checksum_drops_tail_from_that_record_on() {
        let dir = tmpdir("crc");
        {
            let store = ResultStore::open(&dir, 0).unwrap();
            store.append("a", "alpha");
            store.append("b", "beta");
        }
        let path = dir.join("results.log");
        let mut raw = std::fs::read(&path).unwrap();
        // Flip one byte inside the *second* record's value.
        let n = raw.len();
        raw[n - 1] ^= 0xff;
        std::fs::write(&path, &raw).unwrap();
        let store = ResultStore::open(&dir, 0).unwrap();
        assert_eq!(store.get("a").as_deref(), Some("alpha"));
        assert_eq!(store.get("b"), None, "corrupt record dropped");
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn foreign_file_is_refused() {
        let dir = tmpdir("magic");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("results.log"), b"definitely not a store").unwrap();
        assert!(ResultStore::open(&dir, 0).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cap_triggers_compaction_evicting_oldest() {
        let dir = tmpdir("cap");
        let value = "x".repeat(100);
        // Each record is 8 + 2 + 4 + 100 = 114 bytes; cap to ~4 records.
        let store = ResultStore::open(&dir, 500).unwrap();
        for i in 0..20 {
            store.append(&format!("key{i:02}"), &value);
        }
        assert!(
            store.bytes() <= 500,
            "cap enforced: {} bytes",
            store.bytes()
        );
        assert!(store.compactions() >= 1);
        assert_eq!(store.get("key19").as_deref(), Some(value.as_str()));
        assert_eq!(store.get("key00"), None, "oldest evicted");
        // Survivors persist across reopen under the same cap.
        drop(store);
        let store = ResultStore::open(&dir, 500).unwrap();
        assert_eq!(store.get("key19").as_deref(), Some(value.as_str()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn warm_preloads_newest_into_cache() {
        let dir = tmpdir("warm");
        let store = ResultStore::open(&dir, 0).unwrap();
        for i in 0..10 {
            store.append(&format!("k{i}"), &format!("v{i}"));
        }
        let cache = ResultCache::new(64);
        assert_eq!(store.warm(&cache, 4), 4);
        assert_eq!(store.warmed(), 4);
        // Newest four are in RAM; older ones are not.
        assert_eq!(cache.get("k9").as_deref(), Some("v9"));
        assert_eq!(cache.get("k6").as_deref(), Some("v6"));
        assert_eq!(cache.get("k5"), None);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checksum_is_stable_and_sensitive() {
        assert_eq!(checksum(b""), checksum(b""));
        assert_ne!(checksum(b"a"), checksum(b"b"));
        // Pinned value: the on-disk format depends on this function
        // never changing (docs/SCHEMAS.md).
        assert_eq!(checksum(b"rbp"), 0xeb07_3be6);
    }
}
