//! Sharded, content-addressed result cache with LRU eviction.
//!
//! Keys are [`rbp_trace::hash_hex`] digests of the *canonical instance*
//! (endpoint, canonical DAG text, machine parameters — see
//! `Work::cache_key`), so two requests describing the same problem in
//! different ways (inline DAG text vs. a generator spec producing the
//! same graph) still collide onto one entry. Values are the rendered
//! JSON result cores handed back verbatim on a hit.
//!
//! The map is split into shards, each behind its own mutex, so cache
//! probes from concurrent connection handlers do not serialize on one
//! lock. Eviction is per-shard LRU via a monotonic use tick; hit/miss
//! tallies are lock-free atomics surfaced in `/v1/stats` and as
//! `serve.cache.*` trace counters.

use std::hash::Hasher as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use rbp_util::{FxHashMap, FxHasher};

const SHARDS: usize = 8;

#[derive(Debug, Default)]
struct Shard {
    map: FxHashMap<String, Entry>,
    tick: u64,
}

#[derive(Debug)]
struct Entry {
    value: String,
    last_used: u64,
}

/// The service-wide result cache. Capacity 0 disables caching entirely
/// (every probe is a miss, inserts are dropped).
#[derive(Debug)]
pub struct ResultCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ResultCache {
    /// A cache holding at most `cap` entries (rounded up to a multiple
    /// of the shard count; `cap == 0` disables).
    #[must_use]
    pub fn new(cap: usize) -> Self {
        ResultCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            per_shard_cap: cap.div_ceil(SHARDS),
            cap,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let mut h = FxHasher::default();
        h.write(key.as_bytes());
        &self.shards[(h.finish() as usize) % SHARDS]
    }

    /// Looks up `key`, refreshing its LRU position and counting the
    /// probe as a hit or miss.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<String> {
        if self.cap == 0 {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let mut shard = self.shard(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        let hit = shard.map.get_mut(key).map(|e| {
            e.last_used = tick;
            e.value.clone()
        });
        drop(shard);
        if hit.is_some() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            rbp_trace::counter("serve.cache.hit", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            rbp_trace::counter("serve.cache.miss", 1);
        }
        hit
    }

    /// Inserts (or refreshes) `key`, evicting the least recently used
    /// entry of the shard when it is full.
    pub fn insert(&self, key: &str, value: String) {
        if self.cap == 0 {
            return;
        }
        let mut shard = self.shard(key).lock().unwrap();
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(key) && shard.map.len() >= self.per_shard_cap {
            if let Some(victim) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&victim);
                rbp_trace::counter("serve.cache.evicted", 1);
            }
        }
        shard.map.insert(
            key.to_string(),
            Entry {
                value,
                last_used: tick,
            },
        );
    }

    /// Number of currently cached entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap().map.len())
            .sum()
    }

    /// Whether the cache currently holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured capacity (entry count).
    #[must_use]
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Total hits since start.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total misses since start.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_miss_counting_and_roundtrip() {
        let c = ResultCache::new(64);
        assert_eq!(c.get("a"), None);
        c.insert("a", "va".into());
        assert_eq!(c.get("a").as_deref(), Some("va"));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used_within_shard() {
        // Single-entry shards: inserting two keys that land in the same
        // shard must evict the older one.
        let c = ResultCache::new(1); // per_shard_cap == 1
        c.insert("k0", "v0".into());
        // Find a second key in the same shard as k0.
        let shard_of = |cache: &ResultCache, key: &str| {
            let mut h = FxHasher::default();
            h.write(key.as_bytes());
            let _ = cache;
            (h.finish() as usize) % SHARDS
        };
        let home = shard_of(&c, "k0");
        let other = (1..1000)
            .map(|i| format!("k{i}"))
            .find(|k| shard_of(&c, k) == home)
            .unwrap();
        c.insert(&other, "v1".into());
        assert_eq!(c.get("k0"), None, "old entry evicted");
        assert_eq!(c.get(&other).as_deref(), Some("v1"));
    }

    #[test]
    fn refreshing_protects_from_eviction() {
        let c = ResultCache::new(SHARDS * 2); // two entries per shard
        c.insert("x", "vx".into());
        // Touch x so it is fresher than any subsequent same-shard key.
        for i in 0..100 {
            let _ = c.get("x");
            c.insert(&format!("y{i}"), "vy".into());
        }
        assert_eq!(c.get("x").as_deref(), Some("vx"));
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ResultCache::new(0);
        c.insert("a", "v".into());
        assert_eq!(c.get("a"), None);
        assert_eq!(c.len(), 0);
        assert_eq!(c.cap(), 0);
    }
}
