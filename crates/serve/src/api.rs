//! Request parsing, work execution, and response envelopes — schema v1.
//!
//! A POST body describes a problem instance (an inline DAG in the
//! `rbp_dag::io` text format, or a generator spec) plus machine
//! parameters `(k, r, g)` and endpoint-specific knobs. [`Work::parse`]
//! validates everything up front so malformed requests fail with `400`
//! before touching the queue; [`Work::execute`] runs on a worker thread
//! and produces the JSON *result core* that is cached and wrapped into
//! the response envelope. `docs/SCHEMAS.md` documents every body shape.

use rbp_core::rbp_dag::{generators, io, Dag};
use rbp_core::{
    CostModel, GameMode, MppInstance, MppRunStats, PartitionMode, SearchConfig, SolveLimits,
};
use rbp_hier::{all_hier_schedulers, HierInstance};
use rbp_refine::{race, PortfolioConfig};
use rbp_schedulers::all_schedulers;
use rbp_stream::{all_stream_schedulers, NullSink};
use rbp_util::json::Json;

/// Largest DAG accepted by the scheduling/bounds endpoints — and the
/// threshold above which `/v1/schedule` switches to the streaming tier.
pub const MAX_NODES: usize = 4096;
/// Largest DAG accepted by the `/v1/schedule` streaming tier. Beyond
/// this the request is rejected with `413` before anything is built.
pub const STREAM_MAX_NODES: usize = 2_000_000;
/// Exact-solver admission bounds (matches the portfolio's exact tier).
pub const SOLVE_MAX_NODES: usize = 64;
/// Exact-solver processor-count admission bound.
pub const SOLVE_MAX_PROCS: usize = 4;

/// An API-level failure: HTTP status plus a message for the error body.
#[derive(Debug, Clone)]
pub struct ApiError {
    /// HTTP status code (400 validation, 422 semantic, 500 internal).
    pub status: u16,
    /// Human-readable description.
    pub msg: String,
}

impl ApiError {
    /// Convenience constructor.
    #[must_use]
    pub fn new(status: u16, msg: impl Into<String>) -> Self {
        ApiError {
            status,
            msg: msg.into(),
        }
    }
}

fn bad(msg: impl Into<String>) -> ApiError {
    ApiError::new(400, msg)
}

fn too_large(n: u64, limit: usize) -> ApiError {
    ApiError::new(413, format!("DAG of {n} nodes exceeds limit {limit}"))
}

/// Parsed, validated work for one request.
#[derive(Debug, Clone)]
pub enum Work {
    /// `POST /v1/solve` — exact optimum via the A\* solver.
    Solve {
        /// Problem DAG.
        dag: Dag,
        /// Processors.
        k: usize,
        /// Red pebbles per processor.
        r: usize,
        /// I/O cost weight.
        g: u64,
        /// Settled-state budget handed to the solver.
        max_states: usize,
        /// Solver worker threads (the server caps this at
        /// [`ServeConfig::max_solve_threads`](crate::ServeConfig)).
        threads: usize,
        /// Shard-ownership strategy for the parallel engine.
        partition: PartitionMode,
        /// Game mode: vanilla two-level MPP or the three-level
        /// hierarchy (`levels`/`green_cap`/`green_cost` body fields).
        mode: GameMode,
    },
    /// `POST /v1/schedule` — run the heuristic scheduler registry.
    Schedule {
        /// Problem DAG.
        dag: Dag,
        /// Processors.
        k: usize,
        /// Red pebbles per processor.
        r: usize,
        /// I/O cost weight.
        g: u64,
        /// Optional substring filter on scheduler names.
        filter: Option<String>,
        /// Game mode: vanilla two-level MPP or the three-level
        /// hierarchy (`levels`/`green_cap`/`green_cost` body fields).
        mode: GameMode,
    },
    /// `POST /v1/portfolio` — race schedulers + refinement (+ exact).
    Portfolio {
        /// Problem DAG.
        dag: Dag,
        /// Processors.
        k: usize,
        /// Red pebbles per processor.
        r: usize,
        /// I/O cost weight.
        g: u64,
        /// Wall-clock budget for the race.
        budget_ms: u64,
        /// Seed for the randomized workers.
        seed: u64,
        /// Whether the exact solver may join the race.
        use_exact: bool,
    },
    /// `POST /v1/bounds` — Lemma 1 bounds and feasibility.
    Bounds {
        /// Problem DAG.
        dag: Dag,
        /// Processors.
        k: usize,
        /// Red pebbles per processor.
        r: usize,
        /// I/O cost weight.
        g: u64,
    },
    /// `POST /v1/generate` — emit a named gadget/generator DAG.
    Generate {
        /// Generator family name.
        family: String,
        /// Family parameters.
        params: Vec<usize>,
    },
}

impl Work {
    /// The endpoint name for stats, traces, and result cores.
    #[must_use]
    pub fn endpoint(&self) -> &'static str {
        match self {
            Work::Solve { .. } => "solve",
            Work::Schedule { .. } => "schedule",
            Work::Portfolio { .. } => "portfolio",
            Work::Bounds { .. } => "bounds",
            Work::Generate { .. } => "generate",
        }
    }

    /// Parses and validates the body of `POST /v1/<endpoint>`.
    ///
    /// # Errors
    /// `400` for malformed bodies or out-of-range parameters, `422` for
    /// well-formed but infeasible instances (`r ≤ Δin`).
    pub fn parse(endpoint: &str, body: &Json) -> Result<Work, ApiError> {
        match endpoint {
            "solve" => {
                let (dag, k, r, g) = instance_params(body, MAX_NODES)?;
                if dag.n() > SOLVE_MAX_NODES || k > SOLVE_MAX_PROCS {
                    return Err(bad(format!(
                        "exact solve admits n ≤ {SOLVE_MAX_NODES} and k ≤ {SOLVE_MAX_PROCS} \
                         (got n={}, k={k}); use /v1/portfolio for larger instances",
                        dag.n()
                    )));
                }
                let max_states = opt_u64(body, "max_states")?
                    .map_or(SolveLimits::default().max_states, |v| v as usize)
                    .min(50_000_000);
                let threads = opt_u64(body, "threads")?
                    .map_or(1, |v| v as usize)
                    .clamp(1, rbp_core::MAX_THREADS);
                let partition = match body.get("partition") {
                    None | Some(Json::Null) => PartitionMode::default(),
                    Some(Json::Str(s)) => s.parse::<PartitionMode>().map_err(bad)?,
                    Some(_) => return Err(bad("\"partition\" must be a string")),
                };
                let mode = mode_from_body(body)?;
                Ok(Work::Solve {
                    dag,
                    k,
                    r,
                    g,
                    max_states,
                    threads,
                    partition,
                    mode,
                })
            }
            "schedule" => {
                let (dag, k, r, g) = instance_params(body, STREAM_MAX_NODES)?;
                let filter = match body.get("scheduler") {
                    None | Some(Json::Null) => None,
                    Some(Json::Str(s)) => Some(s.clone()),
                    Some(_) => return Err(bad("\"scheduler\" must be a string")),
                };
                let mode = mode_from_body(body)?;
                if mode.is_hier() && dag.n() > MAX_NODES {
                    return Err(bad(format!(
                        "three-level mode is in-memory only: n ≤ {MAX_NODES} \
                         (got n={}); drop \"levels\" for the streaming tier",
                        dag.n()
                    )));
                }
                Ok(Work::Schedule {
                    dag,
                    k,
                    r,
                    g,
                    filter,
                    mode,
                })
            }
            "portfolio" => {
                let (dag, k, r, g) = instance_params(body, MAX_NODES)?;
                let budget_ms = opt_u64(body, "budget_ms")?.unwrap_or(1000).clamp(1, 60_000);
                let seed = opt_u64(body, "seed")?.unwrap_or(0);
                let use_exact = match body.get("use_exact") {
                    None | Some(Json::Null) => true,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err(bad("\"use_exact\" must be a boolean")),
                };
                Ok(Work::Portfolio {
                    dag,
                    k,
                    r,
                    g,
                    budget_ms,
                    seed,
                    use_exact,
                })
            }
            "bounds" => {
                let (dag, k, r, g) = instance_params(body, MAX_NODES)?;
                Ok(Work::Bounds { dag, k, r, g })
            }
            "generate" => {
                let spec = body
                    .get("generator")
                    .ok_or_else(|| bad("generate: missing \"generator\" object"))?;
                let (family, params) = generator_spec(spec)?;
                // Reject absurd specs by closed-form size estimate BEFORE
                // building anything — an unguarded `grid(10^6, 10^6)` would
                // otherwise try to allocate a 10^12-node adjacency.
                if let Some(est) = estimate_nodes(&family, &params) {
                    if est > (4 * MAX_NODES) as u64 {
                        return Err(too_large(est, 4 * MAX_NODES));
                    }
                }
                // Build once now so bad specs fail at submit time.
                let dag = build_dag(&family, &params).map_err(bad)?;
                if dag.n() > 4 * MAX_NODES {
                    return Err(too_large(dag.n() as u64, 4 * MAX_NODES));
                }
                Ok(Work::Generate { family, params })
            }
            other => Err(ApiError::new(404, format!("unknown endpoint '{other}'"))),
        }
    }

    /// Clamps the solver thread count to the server-side cap. Called by
    /// the server after [`Work::parse`] and **before**
    /// [`Work::cache_key`], so the key reflects the effective count.
    pub fn cap_threads(&mut self, max: usize) {
        if let Work::Solve { threads, .. } = self {
            *threads = (*threads).min(max.max(1));
        }
    }

    /// The effective solver thread count (`None` for non-solve work).
    #[must_use]
    pub fn solve_threads(&self) -> Option<usize> {
        match self {
            Work::Solve { threads, .. } => Some(*threads),
            _ => None,
        }
    }

    /// The canonical-instance cache key: a [`rbp_trace::hash_hex`]
    /// digest over the endpoint, the canonical DAG text, and every
    /// parameter that affects the result.
    #[must_use]
    pub fn cache_key(&self) -> String {
        let canonical = match self {
            Work::Solve {
                dag,
                k,
                r,
                g,
                max_states,
                threads,
                partition,
                mode,
            } => format!(
                "solve|v1|k={k}|r={r}|g={g}|max_states={max_states}|threads={threads}\
                 |partition={partition}|mode={}|{}",
                mode.token(),
                io::to_text(dag)
            ),
            Work::Schedule {
                dag,
                k,
                r,
                g,
                filter,
                mode,
            } => format!(
                "schedule|v1|k={k}|r={r}|g={g}|filter={}|mode={}|{}",
                filter.as_deref().unwrap_or(""),
                mode.token(),
                io::to_text(dag)
            ),
            Work::Portfolio {
                dag,
                k,
                r,
                g,
                budget_ms,
                seed,
                use_exact,
            } => format!(
                "portfolio|v1|k={k}|r={r}|g={g}|budget={budget_ms}|seed={seed}|exact={use_exact}|{}",
                io::to_text(dag)
            ),
            Work::Bounds { dag, k, r, g } => {
                format!("bounds|v1|k={k}|r={r}|g={g}|{}", io::to_text(dag))
            }
            Work::Generate { family, params } => {
                format!("generate|v1|{family}|{params:?}")
            }
        };
        rbp_trace::hash_hex(canonical.as_bytes())
    }

    /// Executes the work, producing the JSON result core.
    ///
    /// # Errors
    /// `422` when the solver gives up or a scheduler rejects the
    /// instance; `500` for internal invariant violations.
    pub fn execute(&self) -> Result<Json, ApiError> {
        match self {
            Work::Solve {
                dag,
                k,
                r,
                g,
                max_states,
                threads,
                partition,
                mode,
            } => {
                let inst = MppInstance::new(dag, *k, *r, *g);
                let config = SearchConfig::default()
                    .with_limits(SolveLimits::states(*max_states))
                    .with_threads(*threads)
                    .with_partition(*partition);
                let budget_err = |reason: &str| {
                    ApiError::new(
                        422,
                        format!(
                            "exact solver exhausted its budget of {max_states} states \
                             (reason: {reason})"
                        ),
                    )
                };
                if let Some(hinst) = HierInstance::from_mode(&inst, *mode) {
                    let out = rbp_hier::solve_hier_with(&hinst, &config);
                    let sol = out
                        .solution
                        .ok_or_else(|| budget_err(out.reason.as_str()))?;
                    return Ok(Json::obj([
                        ("endpoint", Json::from("solve")),
                        ("mode", Json::from(mode.token())),
                        ("instance", instance_json(dag, *k, *r, *g)),
                        ("total", Json::from(sol.total)),
                        ("io_steps", Json::from(sol.cost.io_steps())),
                        ("green_io_steps", Json::from(sol.cost.green_io_steps())),
                        ("green_stores", Json::from(sol.cost.green_stores)),
                        ("green_loads", Json::from(sol.cost.green_loads)),
                        ("compute_steps", Json::from(sol.cost.computes)),
                        ("moves", Json::from(sol.strategy.len())),
                        ("threads", Json::from(*threads)),
                        ("partition", Json::from(partition.as_str())),
                        ("settled", Json::from(out.stats.settled)),
                        ("proven_optimal", Json::from(true)),
                    ]));
                }
                let out = rbp_core::solve_mpp_with(&inst, &config);
                let sol = out
                    .solution
                    .ok_or_else(|| budget_err(out.reason.as_str()))?;
                Ok(Json::obj([
                    ("endpoint", Json::from("solve")),
                    ("mode", Json::from(mode.token())),
                    ("instance", instance_json(dag, *k, *r, *g)),
                    ("total", Json::from(sol.total)),
                    ("io_steps", Json::from(sol.cost.io_steps())),
                    ("compute_steps", Json::from(sol.cost.computes)),
                    ("moves", Json::from(sol.strategy.len())),
                    ("threads", Json::from(*threads)),
                    ("partition", Json::from(partition.as_str())),
                    ("settled", Json::from(out.stats.settled)),
                    ("proven_optimal", Json::from(true)),
                ]))
            }
            Work::Schedule {
                dag,
                k,
                r,
                g,
                filter,
                mode,
            } => {
                // Above the in-memory cap, hand the instance to the
                // streaming tier: bounded CSR passes, O(active-set)
                // resident state, strategy discarded as it is verified.
                // (Parsing rejects hier mode above the cap.)
                if dag.n() > MAX_NODES {
                    return schedule_streaming(dag, *k, *r, *g, filter.as_deref());
                }
                if let Some(hinst) =
                    HierInstance::from_mode(&MppInstance::new(dag, *k, *r, *g), *mode)
                {
                    return schedule_hier(&hinst, *mode, filter.as_deref());
                }
                let inst = MppInstance::new(dag, *k, *r, *g);
                let mut rows = Vec::new();
                let mut best: Option<(u64, String)> = None;
                for s in all_schedulers() {
                    let name = s.name();
                    if let Some(f) = filter {
                        if !name.contains(f.as_str()) {
                            continue;
                        }
                    }
                    let run = s
                        .schedule(&inst)
                        .map_err(|e| ApiError::new(422, format!("{name}: {e}")))?;
                    let stats = MppRunStats::analyze(&inst, &run.strategy);
                    if best.as_ref().is_none_or(|(t, _)| stats.total < *t) {
                        best = Some((stats.total, name.clone()));
                    }
                    rows.push(Json::obj([
                        ("name", Json::from(name.as_str())),
                        ("total", Json::from(stats.total)),
                        ("io_steps", Json::from(stats.cost.io_steps())),
                        ("surplus", Json::from(stats.surplus)),
                        ("recomputations", Json::from(stats.recomputations)),
                    ]));
                }
                let (best_total, best_name) = best.ok_or_else(|| {
                    ApiError::new(
                        422,
                        format!("no scheduler matches '{}'", filter.as_deref().unwrap_or("")),
                    )
                })?;
                Ok(Json::obj([
                    ("endpoint", Json::from("schedule")),
                    ("tier", Json::from("in-memory")),
                    ("mode", Json::from(mode.token())),
                    ("instance", instance_json(dag, *k, *r, *g)),
                    ("schedulers", Json::Arr(rows)),
                    (
                        "best",
                        Json::obj([
                            ("name", Json::from(best_name.as_str())),
                            ("total", Json::from(best_total)),
                        ]),
                    ),
                ]))
            }
            Work::Portfolio {
                dag,
                k,
                r,
                g,
                budget_ms,
                seed,
                use_exact,
            } => {
                let inst = MppInstance::new(dag, *k, *r, *g);
                let cfg = PortfolioConfig {
                    budget_millis: *budget_ms,
                    seed: *seed,
                    use_exact: *use_exact,
                    ..PortfolioConfig::default()
                };
                let out = race(&inst, &cfg).map_err(|e| ApiError::new(422, e.to_string()))?;
                let baseline = out.entries.first().and_then(|e| e.total);
                let entries = out.entries.iter().map(|e| {
                    Json::obj([
                        ("name", Json::from(e.name.as_str())),
                        ("total", e.total.map_or(Json::Null, Json::from)),
                        ("millis", Json::from(e.millis)),
                    ])
                });
                Ok(Json::obj([
                    ("endpoint", Json::from("portfolio")),
                    ("instance", instance_json(dag, *k, *r, *g)),
                    ("total", Json::from(out.total)),
                    ("winner", Json::from(out.provenance.as_str())),
                    ("baseline", baseline.map_or(Json::Null, Json::from)),
                    ("proven_optimal", Json::from(out.proven_optimal)),
                    ("entries", Json::arr(entries)),
                ]))
            }
            Work::Bounds { dag, k, r, g } => {
                let inst = MppInstance::new(dag, *k, *r, *g);
                Ok(Json::obj([
                    ("endpoint", Json::from("bounds")),
                    ("instance", instance_json(dag, *k, *r, *g)),
                    ("feasible", Json::from(inst.is_feasible())),
                    ("lower", Json::from(rbp_bounds::trivial::lower(&inst))),
                    ("upper", Json::from(rbp_bounds::trivial::upper(&inst))),
                    (
                        "greedy_factor",
                        Json::from(rbp_bounds::trivial::greedy_factor(&inst)),
                    ),
                ]))
            }
            Work::Generate { family, params } => {
                let dag = build_dag(family, params).map_err(|m| ApiError::new(400, m))?;
                Ok(Json::obj([
                    ("endpoint", Json::from("generate")),
                    ("family", Json::from(family.as_str())),
                    ("params", Json::arr(params.iter().map(|&p| Json::from(p)))),
                    ("name", Json::from(dag.name())),
                    ("n", Json::from(dag.n())),
                    ("edges", Json::from(dag.edges().count())),
                    ("dag_text", Json::from(io::to_text(&dag))),
                ]))
            }
        }
    }
}

/// The `/v1/schedule` streaming tier: runs every registered
/// [`rbp_stream`] scheduler through a rule-enforcing simulator with the
/// strategy discarded move-by-move ([`NullSink`]) — the server reports
/// costs and throughput, it does not ship million-move strategies over
/// HTTP. Emits `stream.*` trace counters/gauges per run.
fn schedule_streaming(
    dag: &Dag,
    k: usize,
    r: usize,
    g: u64,
    filter: Option<&str>,
) -> Result<Json, ApiError> {
    let model = CostModel::mpp(g);
    let mut rows = Vec::new();
    let mut best: Option<(u64, String)> = None;
    for s in all_stream_schedulers() {
        let name = s.name();
        if let Some(f) = filter {
            if !name.contains(f) {
                continue;
            }
        }
        let mut sink = NullSink::new();
        let run = s
            .schedule(dag, k, r, &mut sink)
            .map_err(|e| ApiError::new(422, format!("{name}: {e}")))?;
        rbp_stream::trace_stream_run(&name, &run);
        let total = run.cost.total(model);
        if best.as_ref().is_none_or(|(t, _)| total < *t) {
            best = Some((total, name.clone()));
        }
        rows.push(Json::obj([
            ("name", Json::from(name.as_str())),
            ("total", Json::from(total)),
            ("io_steps", Json::from(run.cost.io_steps())),
            ("moves", Json::from(run.moves)),
            ("passes", Json::from(run.passes)),
            ("peak_active_set", Json::from(run.peak_active_set)),
            ("nodes_per_sec", Json::from(run.nodes_per_sec())),
        ]));
    }
    let (best_total, best_name) = best.ok_or_else(|| {
        ApiError::new(
            422,
            format!("no streaming scheduler matches '{}'", filter.unwrap_or(""),),
        )
    })?;
    Ok(Json::obj([
        ("endpoint", Json::from("schedule")),
        ("tier", Json::from("streaming")),
        ("instance", instance_json(dag, k, r, g)),
        ("schedulers", Json::Arr(rows)),
        (
            "best",
            Json::obj([
                ("name", Json::from(best_name.as_str())),
                ("total", Json::from(best_total)),
            ]),
        ),
    ]))
}

/// The `/v1/schedule` three-level tier: runs the [`rbp_hier`] scheduler
/// registry, with blue and green traffic attributed separately in every
/// row.
fn schedule_hier(
    inst: &HierInstance,
    mode: GameMode,
    filter: Option<&str>,
) -> Result<Json, ApiError> {
    let mut rows = Vec::new();
    let mut best: Option<(u64, String)> = None;
    for s in all_hier_schedulers() {
        let name = s.name();
        if let Some(f) = filter {
            if !name.contains(f) {
                continue;
            }
        }
        let run = s
            .schedule(inst)
            .map_err(|e| ApiError::new(422, format!("{name}: {e}")))?;
        let total = run.cost.total(inst.model);
        if best.as_ref().is_none_or(|(t, _)| total < *t) {
            best = Some((total, name.clone()));
        }
        rows.push(Json::obj([
            ("name", Json::from(name.as_str())),
            ("total", Json::from(total)),
            ("io_steps", Json::from(run.cost.io_steps())),
            ("green_io_steps", Json::from(run.cost.green_io_steps())),
            ("green_stores", Json::from(run.cost.green_stores)),
            ("green_loads", Json::from(run.cost.green_loads)),
            ("compute_steps", Json::from(run.cost.computes)),
        ]));
    }
    let (best_total, best_name) = best.ok_or_else(|| {
        ApiError::new(
            422,
            format!("no scheduler matches '{}'", filter.unwrap_or("")),
        )
    })?;
    Ok(Json::obj([
        ("endpoint", Json::from("schedule")),
        ("tier", Json::from("in-memory")),
        ("mode", Json::from(mode.token())),
        (
            "instance",
            instance_json(inst.dag, inst.k, inst.r, inst.model.g),
        ),
        ("schedulers", Json::Arr(rows)),
        (
            "best",
            Json::obj([
                ("name", Json::from(best_name.as_str())),
                ("total", Json::from(best_total)),
            ]),
        ),
    ]))
}

/// Parses the shared game-mode fields (`levels`, `green_cap`,
/// `green_cost`) through the workspace-wide [`GameMode`] parser — the
/// same semantics as the CLI's `--levels`/`--green-cap`/`--green-cost`.
fn mode_from_body(body: &Json) -> Result<GameMode, ApiError> {
    GameMode::from_flags(
        opt_u64(body, "levels")?,
        opt_u64(body, "green_cap")?,
        opt_u64(body, "green_cost")?,
    )
    .map_err(bad)
}

/// Extracts the shared `(dag, k, r, g)` instance parameters. `max_nodes`
/// is the endpoint's admission cap ([`MAX_NODES`] everywhere except
/// `/v1/schedule`, whose streaming tier accepts [`STREAM_MAX_NODES`]).
fn instance_params(body: &Json, max_nodes: usize) -> Result<(Dag, usize, usize, u64), ApiError> {
    let dag = dag_from_body(body, max_nodes)?;
    let k = req_u64(body, "k")? as usize;
    let r = req_u64(body, "r")? as usize;
    let g = req_u64(body, "g")?;
    if k == 0 || k > 512 {
        return Err(bad(format!("k={k} out of range 1..=512")));
    }
    if r == 0 || r > 1_000_000 {
        return Err(bad(format!("r={r} out of range 1..=1000000")));
    }
    if dag.n() == 0 {
        return Err(bad("DAG has no nodes"));
    }
    if dag.n() > max_nodes {
        return Err(too_large(dag.n() as u64, max_nodes));
    }
    if r <= dag.max_in_degree() {
        return Err(ApiError::new(
            422,
            format!(
                "infeasible: r={r} but the DAG needs r ≥ {} (max in-degree + 1)",
                dag.max_in_degree() + 1
            ),
        ));
    }
    Ok((dag, k, r, g))
}

/// Builds the DAG from either `"dag_text"` or `"generator"`, rejecting
/// over-limit inputs with `413` *before* any proportional allocation:
/// inline text is pre-scanned for its `nodes <n>` declaration and
/// generator specs are sized by [`estimate_nodes`].
fn dag_from_body(body: &Json, max_nodes: usize) -> Result<Dag, ApiError> {
    match (body.get("dag_text"), body.get("generator")) {
        (Some(Json::Str(text)), None) => {
            check_declared_nodes(text, max_nodes)?;
            io::parse(text).map_err(|e| bad(format!("dag_text: {e}")))
        }
        (None, Some(spec)) => {
            let (family, params) = generator_spec(spec)?;
            if let Some(est) = estimate_nodes(&family, &params) {
                if est > max_nodes as u64 {
                    return Err(too_large(est, max_nodes));
                }
            }
            build_dag(&family, &params).map_err(bad)
        }
        (Some(_), Some(_)) => Err(bad("give either \"dag_text\" or \"generator\", not both")),
        (Some(_), None) => Err(bad("\"dag_text\" must be a string")),
        (None, None) => Err(bad("missing DAG: provide \"dag_text\" or \"generator\"")),
    }
}

/// Pre-scan of the `rbp_dag::io` text header: the format declares
/// `nodes <n>` up front, so an over-limit count 413s without parsing
/// the (potentially huge) edge list. Headers the scan cannot make
/// sense of fall through to [`io::parse`]'s own error reporting.
fn check_declared_nodes(text: &str, max_nodes: usize) -> Result<(), ApiError> {
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("dag ") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("nodes ") {
            if let Ok(n) = rest.trim().parse::<u64>() {
                if n > max_nodes as u64 {
                    return Err(too_large(n, max_nodes));
                }
            }
        }
        break;
    }
    Ok(())
}

/// Closed-form (saturating) node-count estimate for a generator spec,
/// mirroring the sizes produced by [`build_dag`]. Used to reject absurd
/// requests with `413` before any allocation; `None` for families the
/// registry does not know (those fail later with `400`). Estimates are
/// exact or slight over-approximations — never drastic under-counts —
/// so nothing huge slips past the guard.
#[must_use]
pub fn estimate_nodes(family: &str, params: &[usize]) -> Option<u64> {
    let p = |i: usize| params.get(i).copied().unwrap_or(0) as u64;
    Some(match family {
        "chain" | "random" => p(0),
        "chains" | "grid" | "layered" => p(0).saturating_mul(p(1)),
        "tree" => p(0).saturating_mul(2),
        "fft" => {
            let log_n = p(0).min(62) as u32;
            (1u64 << log_n).saturating_mul(u64::from(log_n) + 1)
        }
        // 2n² inputs + per output cell n products and n−1 partial sums.
        "matmul" => p(0)
            .saturating_mul(p(0))
            .saturating_mul(p(0).saturating_mul(2).saturating_add(2)),
        "diamond" => p(0).saturating_add(2),
        "pyramid" => {
            let h = p(0);
            h.saturating_add(1).saturating_mul(h.saturating_add(2)) / 2
        }
        "zipper" => p(0).saturating_mul(2).saturating_add(p(1)),
        "hier_skip" => p(0).saturating_mul(2).saturating_add(5),
        _ => return None,
    })
}

fn generator_spec(spec: &Json) -> Result<(String, Vec<usize>), ApiError> {
    let family = spec
        .get("family")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("generator: missing \"family\" string"))?
        .to_string();
    let params = match spec.get("params") {
        None | Some(Json::Null) => Vec::new(),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| {
                v.as_u64()
                    .filter(|&u| u <= (1 << 20))
                    .map(|u| u as usize)
                    .ok_or_else(|| bad("generator: params must be non-negative integers ≤ 2^20"))
            })
            .collect::<Result<_, _>>()?,
        Some(_) => return Err(bad("generator: \"params\" must be an array")),
    };
    Ok((family, params))
}

fn req_u64(body: &Json, key: &str) -> Result<u64, ApiError> {
    body.get(key)
        .ok_or_else(|| bad(format!("missing \"{key}\"")))?
        .as_u64()
        .ok_or_else(|| bad(format!("\"{key}\" must be a non-negative integer")))
}

fn opt_u64(body: &Json, key: &str) -> Result<Option<u64>, ApiError> {
    match body.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(v) => v
            .as_u64()
            .map(Some)
            .ok_or_else(|| bad(format!("\"{key}\" must be a non-negative integer"))),
    }
}

/// The instance summary object embedded in every result core, including
/// the canonical-instance fingerprint (`rbp_trace::hash_hex` over DAG
/// text + parameters).
#[must_use]
pub fn instance_json(dag: &Dag, k: usize, r: usize, g: u64) -> Json {
    let hash =
        rbp_trace::hash_hex(format!("instance|k={k}|r={r}|g={g}|{}", io::to_text(dag)).as_bytes());
    Json::obj([
        ("name", Json::from(dag.name())),
        ("n", Json::from(dag.n())),
        ("k", Json::from(k)),
        ("r", Json::from(r)),
        ("g", Json::from(g)),
        ("hash", Json::from(hash)),
    ])
}

/// Builds a generated DAG by family name — the shared registry behind
/// `POST /v1/generate`, generator specs in instance bodies, and the
/// `rbp gen` CLI subcommand.
///
/// # Errors
/// A human-readable message for unknown families or wrong arity.
pub fn build_dag(family: &str, params: &[usize]) -> Result<Dag, String> {
    let need = |n: usize| -> Result<(), String> {
        if params.len() == n {
            Ok(())
        } else {
            Err(format!(
                "{family}: expected {n} parameters, got {}",
                params.len()
            ))
        }
    };
    match family {
        "chain" => {
            need(1)?;
            Ok(generators::chain(params[0]))
        }
        "chains" => {
            need(2)?;
            Ok(generators::independent_chains(params[0], params[1]))
        }
        "tree" => {
            need(1)?;
            Ok(generators::binary_in_tree(params[0]))
        }
        "grid" => {
            need(2)?;
            Ok(generators::grid(params[0], params[1]))
        }
        "fft" => {
            need(1)?;
            let log_n =
                u32::try_from(params[0]).map_err(|_| "fft: parameter too large".to_string())?;
            if log_n > 16 {
                return Err("fft: log_n capped at 16".to_string());
            }
            Ok(generators::fft(log_n))
        }
        "matmul" => {
            need(1)?;
            Ok(generators::matmul(params[0]))
        }
        "diamond" => {
            need(1)?;
            Ok(generators::diamond(params[0]))
        }
        "pyramid" => {
            need(1)?;
            Ok(generators::pyramid(params[0]))
        }
        "zipper" => {
            need(2)?;
            Ok(rbp_gadgets::Zipper::build(params[0], params[1], 0).dag)
        }
        "hier_skip" => {
            need(1)?;
            if params[0] == 0 {
                return Err("hier_skip: chain length must be ≥ 1".to_string());
            }
            Ok(rbp_gadgets::HierSkip::build(params[0]).dag)
        }
        "random" => {
            need(2)?;
            Ok(generators::random_dag(params[0], 0.2, params[1] as u64))
        }
        "layered" => {
            need(4)?;
            Ok(generators::layered_random(
                params[0],
                params[1],
                params[2],
                params[3] as u64,
            ))
        }
        other => Err(format!(
            "unknown family '{other}' \
             (chain|chains|tree|grid|fft|matmul|diamond|pyramid|zipper|hier_skip|random|layered)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_body(s: &str) -> Json {
        Json::parse(s).unwrap()
    }

    #[test]
    fn solve_body_roundtrip_and_cache_key_stability() {
        let body =
            parse_body(r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#);
        let w1 = Work::parse("solve", &body).unwrap();
        let w2 = Work::parse("solve", &body).unwrap();
        assert_eq!(w1.endpoint(), "solve");
        assert_eq!(w1.cache_key(), w2.cache_key());

        // The same instance given as inline text hits the same key.
        let dag = build_dag("grid", &[2, 3]).unwrap();
        let text = io::to_text(&dag);
        let inline = Json::obj([
            ("dag_text", Json::from(text)),
            ("k", Json::from(2u64)),
            ("r", Json::from(3u64)),
            ("g", Json::from(2u64)),
        ]);
        let w3 = Work::parse("solve", &inline).unwrap();
        assert_eq!(w1.cache_key(), w3.cache_key());

        // Different parameters → different key.
        let other =
            parse_body(r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":4,"g":2}"#);
        assert_ne!(
            Work::parse("solve", &other).unwrap().cache_key(),
            w1.cache_key()
        );
    }

    #[test]
    fn solve_threads_parse_cap_and_key() {
        let body = parse_body(
            r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2,"threads":16}"#,
        );
        let mut w = Work::parse("solve", &body).unwrap();
        assert_eq!(w.solve_threads(), Some(16));
        let key16 = w.cache_key();

        // The server-side cap clamps before keying; the key follows the
        // effective count.
        w.cap_threads(4);
        assert_eq!(w.solve_threads(), Some(4));
        assert_ne!(w.cache_key(), key16);

        // Default is single-threaded; zero clamps up to one.
        let plain =
            parse_body(r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#);
        assert_eq!(
            Work::parse("solve", &plain).unwrap().solve_threads(),
            Some(1)
        );
        let zero = parse_body(
            r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2,"threads":0}"#,
        );
        assert_eq!(
            Work::parse("solve", &zero).unwrap().solve_threads(),
            Some(1)
        );
        assert_eq!(Work::parse("bounds", &plain).unwrap().solve_threads(), None);
    }

    #[test]
    fn solve_partition_parse_key_and_rejects_junk() {
        let plain =
            parse_body(r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#);
        let default_key = Work::parse("solve", &plain).unwrap().cache_key();
        // The explicit default spells the same key as the omitted field.
        let hash = parse_body(
            r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2,"partition":"hash"}"#,
        );
        assert_eq!(
            Work::parse("solve", &hash).unwrap().cache_key(),
            default_key
        );
        // A different mode changes the key (stats differ even though the
        // optimum does not).
        let anchors = parse_body(
            r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2,"partition":"anchors"}"#,
        );
        assert_ne!(
            Work::parse("solve", &anchors).unwrap().cache_key(),
            default_key
        );
        let junk = parse_body(
            r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2,"partition":"fancy"}"#,
        );
        assert_eq!(Work::parse("solve", &junk).unwrap_err().status, 400);
        let not_str = parse_body(
            r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2,"partition":7}"#,
        );
        assert_eq!(Work::parse("solve", &not_str).unwrap_err().status, 400);
    }

    #[test]
    fn parallel_solve_executes_and_matches_sequential_total() {
        let body =
            parse_body(r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#);
        let seq = Work::parse("solve", &body).unwrap().execute().unwrap();
        for mode in ["hash", "bands", "anchors"] {
            let par_body = parse_body(&format!(
                r#"{{"generator":{{"family":"grid","params":[2,3]}},"k":2,"r":3,"g":2,"threads":2,"partition":"{mode}"}}"#,
            ));
            let par = Work::parse("solve", &par_body).unwrap().execute().unwrap();
            assert_eq!(
                seq.get("total").unwrap().as_u64(),
                par.get("total").unwrap().as_u64(),
                "partition={mode}"
            );
            assert_eq!(par.get("threads").unwrap().as_u64(), Some(2));
            assert_eq!(
                par.get("partition").and_then(Json::as_str),
                Some(mode),
                "partition mode must be echoed in the response"
            );
        }
    }

    #[test]
    fn validation_failures_carry_status() {
        let missing = parse_body(r#"{"k":2,"r":3,"g":2}"#);
        assert_eq!(Work::parse("solve", &missing).unwrap_err().status, 400);

        let infeasible =
            parse_body(r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":1,"g":2}"#);
        assert_eq!(Work::parse("solve", &infeasible).unwrap_err().status, 422);

        let too_big =
            parse_body(r#"{"generator":{"family":"grid","params":[30,30]},"k":2,"r":3,"g":2}"#);
        let err = Work::parse("solve", &too_big).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.msg.contains("portfolio"), "{}", err.msg);

        let unknown = Work::parse("nope", &missing).unwrap_err();
        assert_eq!(unknown.status, 404);
    }

    #[test]
    fn solve_executes_and_reports_optimum() {
        let body = parse_body(r#"{"generator":{"family":"chain","params":[3]},"k":1,"r":2,"g":1}"#);
        let work = Work::parse("solve", &body).unwrap();
        let core = work.execute().unwrap();
        assert_eq!(core.get("endpoint").unwrap().as_str(), Some("solve"));
        assert_eq!(core.get("proven_optimal"), Some(&Json::Bool(true)));
        assert!(core.get("total").unwrap().as_u64().unwrap() >= 3);
        let inst = core.get("instance").unwrap();
        assert_eq!(inst.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(inst.get("hash").unwrap().as_str().unwrap().len(), 16);
    }

    #[test]
    fn schedule_reports_registry_and_best() {
        let body =
            parse_body(r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#);
        let work = Work::parse("schedule", &body).unwrap();
        let core = work.execute().unwrap();
        let rows = core.get("schedulers").unwrap().as_arr().unwrap();
        assert!(rows.len() >= 4, "registry has several schedulers");
        let best = core
            .get("best")
            .unwrap()
            .get("total")
            .unwrap()
            .as_u64()
            .unwrap();
        let min = rows
            .iter()
            .map(|r| r.get("total").unwrap().as_u64().unwrap())
            .min()
            .unwrap();
        assert_eq!(best, min);
    }

    #[test]
    fn bounds_sandwich_holds() {
        let body =
            parse_body(r#"{"generator":{"family":"grid","params":[3,3]},"k":2,"r":3,"g":2}"#);
        let core = Work::parse("bounds", &body).unwrap().execute().unwrap();
        let lower = core.get("lower").unwrap().as_u64().unwrap();
        let upper = core.get("upper").unwrap().as_u64().unwrap();
        assert!(lower <= upper);
        assert_eq!(core.get("feasible"), Some(&Json::Bool(true)));
    }

    #[test]
    fn generate_emits_parseable_dag_text() {
        let body = parse_body(r#"{"generator":{"family":"fft","params":[2]}}"#);
        let core = Work::parse("generate", &body).unwrap().execute().unwrap();
        let text = core.get("dag_text").unwrap().as_str().unwrap();
        let dag = io::parse(text).unwrap();
        assert_eq!(dag.n(), core.get("n").unwrap().as_u64().unwrap() as usize);
    }

    #[test]
    fn build_dag_rejects_unknown_family_and_bad_arity() {
        assert!(build_dag("nope", &[]).is_err());
        assert!(build_dag("grid", &[3]).is_err());
        assert!(build_dag("grid", &[3, 3]).is_ok());
    }

    /// An absurd generator spec must 413 from the size estimate alone —
    /// a `grid(10^6, 10^6)` request would otherwise try to allocate a
    /// 10^12-node adjacency before the old post-build check ever ran.
    #[test]
    fn absurd_generator_specs_413_without_building() {
        for endpoint in ["generate", "schedule", "solve", "bounds"] {
            let body = parse_body(
                r#"{"generator":{"family":"grid","params":[1000000,1000000]},"k":2,"r":3,"g":2}"#,
            );
            let err = Work::parse(endpoint, &body).unwrap_err();
            assert_eq!(err.status, 413, "{endpoint}: {}", err.msg);
            assert!(err.msg.contains("exceeds limit"), "{endpoint}: {}", err.msg);
        }
        // Every registry family has an estimate, and the estimate never
        // understates the built size (so nothing slips past the guard).
        for (family, params) in [
            ("chain", vec![17]),
            ("chains", vec![3, 5]),
            ("tree", vec![8]),
            ("grid", vec![4, 6]),
            ("fft", vec![3]),
            ("matmul", vec![3]),
            ("diamond", vec![5]),
            ("pyramid", vec![4]),
            ("zipper", vec![3, 4]),
            ("hier_skip", vec![3]),
            ("random", vec![12, 7]),
            ("layered", vec![3, 4, 2, 9]),
        ] {
            let est = estimate_nodes(family, &params)
                .unwrap_or_else(|| panic!("{family} has no estimate"));
            let built = build_dag(family, &params).unwrap().n() as u64;
            assert!(est >= built, "{family}: estimate {est} < built {built}");
            assert!(
                est <= 2 * built + 2,
                "{family}: estimate {est} way over {built}"
            );
        }
        assert_eq!(estimate_nodes("nope", &[]), None);
    }

    /// Inline `dag_text` is capped by its declared `nodes <n>` header
    /// before the edge list is parsed.
    #[test]
    fn huge_inline_dag_text_413s_before_parsing() {
        let body = Json::obj([
            (
                "dag_text",
                Json::from("dag evil\nnodes 99999999\nedge 0 1\nend\n"),
            ),
            ("k", Json::from(2u64)),
            ("r", Json::from(3u64)),
            ("g", Json::from(2u64)),
        ]);
        let err = Work::parse("schedule", &body).unwrap_err();
        assert_eq!(err.status, 413, "{}", err.msg);
        // A small declared count still parses (and still validates).
        let ok = Json::obj([
            ("dag_text", Json::from("dag tiny\nnodes 2\nedge 0 1\nend\n")),
            ("k", Json::from(1u64)),
            ("r", Json::from(2u64)),
            ("g", Json::from(2u64)),
        ]);
        assert!(Work::parse("schedule", &ok).is_ok());
    }

    /// The game-mode fields parse through the shared [`GameMode`]
    /// parser, reshape the cache key, and flow through to a hierarchical
    /// solve whose response echoes the canonical mode token.
    #[test]
    fn solve_mode_fields_key_and_execute() {
        let vanilla =
            parse_body(r#"{"generator":{"family":"hier_skip","params":[1]},"k":1,"r":3,"g":3}"#);
        let wv = Work::parse("solve", &vanilla).unwrap();
        let hier = parse_body(
            r#"{"generator":{"family":"hier_skip","params":[1]},"k":1,"r":3,"g":3,
                "levels":3,"green_cap":1,"green_cost":1}"#,
        );
        let wh = Work::parse("solve", &hier).unwrap();
        assert_ne!(wv.cache_key(), wh.cache_key(), "mode must be cache-keyed");

        let cv = wv.execute().unwrap();
        let ch = wh.execute().unwrap();
        assert_eq!(cv.get("mode").unwrap().as_str(), Some("mpp"));
        assert_eq!(ch.get("mode").unwrap().as_str(), Some("hier:cap=1:cost=1"));
        // The separation gadget: the mid tier strictly beats vanilla.
        let tv = cv.get("total").unwrap().as_u64().unwrap();
        let th = ch.get("total").unwrap().as_u64().unwrap();
        assert!(th < tv, "hier {th} !< vanilla {tv}");
        assert!(ch.get("green_io_steps").unwrap().as_u64().unwrap() > 0);

        // Defaulted green parameters are keyed at their canonical values.
        let defaulted = parse_body(
            r#"{"generator":{"family":"hier_skip","params":[1]},"k":1,"r":3,"g":3,"levels":3}"#,
        );
        let wd = Work::parse("solve", &defaulted).unwrap();
        assert_ne!(wd.cache_key(), wv.cache_key());
        assert_ne!(wd.cache_key(), wh.cache_key());

        // Green fields without levels=3 are rejected, as in the CLI.
        let stray = parse_body(
            r#"{"generator":{"family":"hier_skip","params":[1]},"k":1,"r":3,"g":3,"green_cap":2}"#,
        );
        assert_eq!(Work::parse("solve", &stray).unwrap_err().status, 400);
    }

    /// `levels: 3` on the schedule endpoint runs the hier registry with
    /// green traffic attributed per row — and is rejected above the
    /// in-memory cap rather than silently falling back to two levels.
    #[test]
    fn schedule_mode_rows_and_streaming_rejection() {
        let body = parse_body(
            r#"{"generator":{"family":"grid","params":[3,3]},"k":2,"r":4,"g":3,
                "levels":3,"green_cap":4,"green_cost":1}"#,
        );
        let core = Work::parse("schedule", &body).unwrap().execute().unwrap();
        assert_eq!(
            core.get("mode").unwrap().as_str(),
            Some("hier:cap=4:cost=1")
        );
        let rows = core.get("schedulers").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), all_hier_schedulers().len());
        for row in rows {
            assert!(row.get("green_io_steps").unwrap().as_u64().is_some());
        }
        // Vanilla responses echo the vanilla token.
        let plain =
            parse_body(r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#);
        let core = Work::parse("schedule", &plain).unwrap().execute().unwrap();
        assert_eq!(core.get("mode").unwrap().as_str(), Some("mpp"));

        let big = parse_body(
            r#"{"generator":{"family":"grid","params":[70,70]},"k":4,"r":4,"g":2,"levels":3}"#,
        );
        let err = Work::parse("schedule", &big).unwrap_err();
        assert_eq!(err.status, 400);
        assert!(err.msg.contains("in-memory only"), "{}", err.msg);
    }

    /// Above [`MAX_NODES`] the schedule endpoint switches to the
    /// streaming tier: stream-scheduler rows with throughput stats and
    /// a `tier` marker, best = min over rows.
    #[test]
    fn schedule_auto_selects_streaming_tier_above_threshold() {
        // grid(70, 70) = 4900 nodes: past the in-memory cap of 4096,
        // comfortably inside STREAM_MAX_NODES.
        let body =
            parse_body(r#"{"generator":{"family":"grid","params":[70,70]},"k":4,"r":4,"g":2}"#);
        let work = Work::parse("schedule", &body).unwrap();
        let core = work.execute().unwrap();
        assert_eq!(core.get("tier").unwrap().as_str(), Some("streaming"));
        let rows = core.get("schedulers").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), rbp_stream::all_stream_schedulers().len());
        for row in rows {
            assert!(row.get("total").unwrap().as_u64().is_some());
            assert!(row.get("passes").unwrap().as_u64().is_some());
            assert!(row.get("peak_active_set").unwrap().as_u64().is_some());
            assert!(row.get("nodes_per_sec").unwrap().as_f64().is_some());
        }
        let best = core
            .get("best")
            .unwrap()
            .get("total")
            .unwrap()
            .as_u64()
            .unwrap();
        let min = rows
            .iter()
            .map(|r| r.get("total").unwrap().as_u64().unwrap())
            .min()
            .unwrap();
        assert_eq!(best, min);

        // Below the threshold the classic tier answers and says so.
        let small =
            parse_body(r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#);
        let core = Work::parse("schedule", &small).unwrap().execute().unwrap();
        assert_eq!(core.get("tier").unwrap().as_str(), Some("in-memory"));

        // The streaming tier honours the name filter, 422s on no match.
        let filtered = parse_body(
            r#"{"generator":{"family":"grid","params":[70,70]},"k":4,"r":4,"g":2,"scheduler":"wavefront"}"#,
        );
        let core = Work::parse("schedule", &filtered)
            .unwrap()
            .execute()
            .unwrap();
        let rows = core.get("schedulers").unwrap().as_arr().unwrap();
        assert_eq!(rows.len(), 1);
        let nomatch = parse_body(
            r#"{"generator":{"family":"grid","params":[70,70]},"k":4,"r":4,"g":2,"scheduler":"zzz"}"#,
        );
        let err = Work::parse("schedule", &nomatch)
            .unwrap()
            .execute()
            .unwrap_err();
        assert_eq!(err.status, 422);
    }
}
