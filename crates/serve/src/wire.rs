//! Binary wire protocol v1: compact length-prefixed framing for
//! high-QPS clients, negotiated on the same listener as HTTP.
//!
//! A client opts in by sending the 4-byte preamble [`PREAMBLE`]
//! (`"RBP\x01"`) as its first bytes; the server echoes the preamble
//! back as the acknowledgement and the connection switches to
//! **persistent** binary framing (many requests per connection — this
//! is the whole point: the HTTP path pays a TCP connect plus head
//! parse per request). Because every HTTP method token is plain ASCII
//! uppercase letters, the preamble can never be confused with the
//! start of an HTTP request; a non-preamble first byte falls through
//! to the HTTP parser untouched.
//!
//! Framing (all integers little-endian; normative spec in
//! `docs/SCHEMAS.md` "Binary wire protocol v1"):
//!
//! ```text
//! frame  = kind:u8  flags:u8  status:u16  payload_len:u32  payload
//! kind   = 0x01 request | 0x02 response | 0x03 error
//! ```
//!
//! - **Request** (`kind=0x01`): payload is `endpoint_len:u8` +
//!   endpoint name (e.g. `solve`) + the same JSON body the HTTP
//!   endpoint takes. `flags`/`status` must be 0. Async mode is an
//!   HTTP-only feature (a binary connection *is* the subscription) and
//!   is refused with a 400 error frame.
//! - **Response** (`kind=0x02`): `status` is the HTTP-equivalent code
//!   (200), `flags` carries the cache tag ([`TAG_MISS`]/[`TAG_HIT`]/
//!   [`TAG_STORE`]), and the payload is the **result core JSON,
//!   verbatim** — byte-for-byte the cached rendering, identical to the
//!   `result` field of the HTTP envelope (the render→parse→render
//!   fixpoint property of `rbp_util::json` makes the envelope's
//!   re-rendering byte-stable).
//! - **Error** (`kind=0x03`): `status` is the HTTP-equivalent code,
//!   payload is the UTF-8 error message; `flags` is 0.
//!
//! The module also hosts the client side: [`Client`] (one persistent
//! binary connection) and [`FleetClient`] (rendezvous-hash routing
//! over N server instances — the zero-dependency stand-in for
//! `SO_REUSEPORT`, which `std::net` cannot set without libc).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rbp_util::FxHasher;
use std::hash::Hasher;

/// Connection preamble: `RBP` + protocol version byte `0x01`.
pub const PREAMBLE: [u8; 4] = *b"RBP\x01";

/// Frame kind: request (client → server).
pub const KIND_REQUEST: u8 = 0x01;
/// Frame kind: successful response (server → client).
pub const KIND_RESPONSE: u8 = 0x02;
/// Frame kind: error (server → client); `status` holds the code.
pub const KIND_ERROR: u8 = 0x03;

/// Response cache tag: computed fresh by a worker.
pub const TAG_MISS: u8 = 0;
/// Response cache tag: answered from the in-memory cache.
pub const TAG_HIT: u8 = 1;
/// Response cache tag: answered from the persistent store.
pub const TAG_STORE: u8 = 2;

/// Fixed frame header size in bytes.
pub const HEADER_BYTES: usize = 8;

/// The cache-tag name used by the HTTP envelope for a given response
/// `flags` value (`"miss"`, `"hit"`, `"store"`).
#[must_use]
pub fn tag_name(flags: u8) -> &'static str {
    match flags {
        TAG_HIT => "hit",
        TAG_STORE => "store",
        _ => "miss",
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Frame kind ([`KIND_REQUEST`]/[`KIND_RESPONSE`]/[`KIND_ERROR`]).
    pub kind: u8,
    /// Response cache tag, 0 elsewhere.
    pub flags: u8,
    /// HTTP-equivalent status (responses and errors; 0 on requests).
    pub status: u16,
    /// Frame payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a request frame for `endpoint` (path-less name, e.g.
    /// `"solve"`) carrying a JSON `body`.
    ///
    /// # Panics
    /// If `endpoint` exceeds 255 bytes.
    #[must_use]
    pub fn request(endpoint: &str, body: &str) -> Frame {
        assert!(endpoint.len() <= u8::MAX as usize, "endpoint name too long");
        let mut payload = Vec::with_capacity(1 + endpoint.len() + body.len());
        payload.push(endpoint.len() as u8);
        payload.extend_from_slice(endpoint.as_bytes());
        payload.extend_from_slice(body.as_bytes());
        Frame {
            kind: KIND_REQUEST,
            flags: 0,
            status: 0,
            payload,
        }
    }

    /// Builds a response frame carrying the result core verbatim.
    #[must_use]
    pub fn response(tag: u8, core: &str) -> Frame {
        Frame {
            kind: KIND_RESPONSE,
            flags: tag,
            status: 200,
            payload: core.as_bytes().to_vec(),
        }
    }

    /// Builds an error frame with an HTTP-equivalent status code.
    #[must_use]
    pub fn error(status: u16, msg: &str) -> Frame {
        Frame {
            kind: KIND_ERROR,
            flags: 0,
            status,
            payload: msg.as_bytes().to_vec(),
        }
    }

    /// Splits a request payload into `(endpoint, body)`.
    ///
    /// # Errors
    /// A message describing the malformation (for a 400 error frame).
    pub fn parse_request(&self) -> Result<(&str, &str), String> {
        if self.kind != KIND_REQUEST {
            return Err(format!(
                "expected request frame, got kind {:#04x}",
                self.kind
            ));
        }
        let &len = self.payload.first().ok_or("empty request payload")?;
        let len = len as usize;
        if 1 + len > self.payload.len() {
            return Err("endpoint length exceeds payload".to_string());
        }
        let endpoint = std::str::from_utf8(&self.payload[1..1 + len])
            .map_err(|_| "endpoint is not UTF-8".to_string())?;
        let body = std::str::from_utf8(&self.payload[1 + len..])
            .map_err(|_| "body is not UTF-8".to_string())?;
        Ok((endpoint, body))
    }
}

/// Writes one frame as a single `write` (header and payload in one
/// buffer — two small writes would trip Nagle/delayed-ACK stalls on
/// the request/response ping-pong) and flushes.
///
/// # Errors
/// Propagates socket write failures.
pub fn write_frame(stream: &mut TcpStream, frame: &Frame) -> std::io::Result<()> {
    let mut buf = Vec::with_capacity(HEADER_BYTES + frame.payload.len());
    buf.push(frame.kind);
    buf.push(frame.flags);
    buf.extend_from_slice(&frame.status.to_le_bytes());
    buf.extend_from_slice(&(frame.payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&frame.payload);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Reads one frame. Returns `Ok(None)` on a clean EOF at a frame
/// boundary (the peer hung up between requests).
///
/// # Errors
/// I/O failures, EOF mid-frame, or a payload length beyond
/// `max_payload` (refused before allocation).
pub fn read_frame(stream: &mut TcpStream, max_payload: usize) -> std::io::Result<Option<Frame>> {
    let mut head = [0u8; HEADER_BYTES];
    let mut filled = 0usize;
    while filled < head.len() {
        let n = stream.read(&mut head[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(None); // clean close between frames
            }
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "connection closed mid-frame-header",
            ));
        }
        filled += n;
    }
    let payload_len = u32::from_le_bytes(head[4..8].try_into().unwrap()) as usize;
    if payload_len > max_payload {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame payload of {payload_len} bytes exceeds limit {max_payload}"),
        ));
    }
    let mut payload = vec![0u8; payload_len];
    stream.read_exact(&mut payload)?;
    Ok(Some(Frame {
        kind: head[0],
        flags: head[1],
        status: u16::from_le_bytes(head[2..4].try_into().unwrap()),
        payload,
    }))
}

/// One response as seen by the binary client.
#[derive(Debug, Clone)]
pub struct WireResponse {
    /// HTTP-equivalent status code.
    pub status: u16,
    /// Cache tag for responses ([`TAG_MISS`]/[`TAG_HIT`]/[`TAG_STORE`]).
    pub tag: u8,
    /// Result core JSON (responses) or error message (errors).
    pub payload: String,
}

impl WireResponse {
    /// Whether this is a successful response frame.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status == 200
    }
}

/// A persistent binary-protocol connection to one server.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    max_payload: usize,
}

impl Client {
    /// Connects, sends the preamble, and waits for the server's echo.
    ///
    /// # Errors
    /// Connect/write failures, or a server that does not acknowledge
    /// the binary protocol.
    pub fn connect(addr: SocketAddr, timeout: Duration) -> std::io::Result<Client> {
        let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        stream.set_nodelay(true)?;
        stream.write_all(&PREAMBLE)?;
        stream.flush()?;
        let mut ack = [0u8; 4];
        stream.read_exact(&mut ack)?;
        if ack != PREAMBLE {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "server did not acknowledge binary protocol",
            ));
        }
        Ok(Client {
            stream,
            max_payload: 64 << 20,
        })
    }

    /// Sends one request frame and reads the matching response or
    /// error frame (the protocol is strictly request→response on each
    /// connection, so no correlation ids are needed).
    ///
    /// # Errors
    /// Socket failures, or a server frame that is not a response/error.
    pub fn call(&mut self, endpoint: &str, body: &str) -> std::io::Result<WireResponse> {
        write_frame(&mut self.stream, &Frame::request(endpoint, body))?;
        let frame = read_frame(&mut self.stream, self.max_payload)?.ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed before answering",
            )
        })?;
        let payload = String::from_utf8_lossy(&frame.payload).into_owned();
        match frame.kind {
            KIND_RESPONSE => Ok(WireResponse {
                status: frame.status,
                tag: frame.flags,
                payload,
            }),
            KIND_ERROR => Ok(WireResponse {
                status: frame.status,
                tag: 0,
                payload,
            }),
            other => Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("unexpected frame kind {other:#04x} from server"),
            )),
        }
    }
}

/// Rendezvous (highest-random-weight) hash of a routing key onto one
/// of `n` members: every distinct key deterministically picks one
/// member, and adding/removing a member only remaps the keys that
/// hashed to it. This is the client-side stand-in for kernel
/// `SO_REUSEPORT` spreading.
#[must_use]
pub fn rendezvous_pick(addrs: &[SocketAddr], routing_key: &str) -> usize {
    let mut best = 0usize;
    let mut best_w = 0u64;
    for (i, addr) in addrs.iter().enumerate() {
        let mut h = FxHasher::default();
        h.write(format!("{addr}").as_bytes());
        h.write(routing_key.as_bytes());
        let w = h.finish();
        if i == 0 || w > best_w {
            best = i;
            best_w = w;
        }
    }
    best
}

/// A consistent-hash client over a fleet of server instances: each
/// request is routed by rendezvous hashing of `endpoint|body` so
/// identical instances always land on the same member, making every
/// member's cache authoritative for its key range.
#[derive(Debug)]
pub struct FleetClient {
    addrs: Vec<SocketAddr>,
    conns: Vec<Option<Client>>,
    timeout: Duration,
}

impl FleetClient {
    /// Builds a fleet client over `addrs` (connections open lazily).
    ///
    /// # Panics
    /// If `addrs` is empty.
    #[must_use]
    pub fn new(addrs: Vec<SocketAddr>, timeout: Duration) -> FleetClient {
        assert!(!addrs.is_empty(), "fleet needs at least one member");
        let conns = addrs.iter().map(|_| None).collect();
        FleetClient {
            addrs,
            conns,
            timeout,
        }
    }

    /// Which member a request routes to (exposed for tests/telemetry).
    #[must_use]
    pub fn route(&self, endpoint: &str, body: &str) -> usize {
        rendezvous_pick(&self.addrs, &format!("{endpoint}|{body}"))
    }

    /// Routes and sends one request on the member's persistent
    /// connection, reconnecting (once) if the cached connection died.
    ///
    /// # Errors
    /// Propagates the failure of the reconnect attempt.
    pub fn call(&mut self, endpoint: &str, body: &str) -> std::io::Result<WireResponse> {
        let i = self.route(endpoint, body);
        if self.conns[i].is_none() {
            self.conns[i] = Some(Client::connect(self.addrs[i], self.timeout)?);
        }
        let conn = self.conns[i].as_mut().expect("connection just ensured");
        match conn.call(endpoint, body) {
            Ok(resp) => Ok(resp),
            Err(_) => {
                // Stale connection (member restarted): reconnect once.
                let mut fresh = Client::connect(self.addrs[i], self.timeout)?;
                let resp = fresh.call(endpoint, body)?;
                self.conns[i] = Some(fresh);
                Ok(resp)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_frame_roundtrips_endpoint_and_body() {
        let f = Frame::request("solve", "{\"k\":2}");
        let (endpoint, body) = f.parse_request().unwrap();
        assert_eq!(endpoint, "solve");
        assert_eq!(body, "{\"k\":2}");
    }

    #[test]
    fn malformed_request_payloads_are_errors() {
        let mut f = Frame::request("solve", "{}");
        f.payload[0] = 200; // endpoint length beyond payload
        assert!(f.parse_request().is_err());
        let empty = Frame {
            kind: KIND_REQUEST,
            flags: 0,
            status: 0,
            payload: Vec::new(),
        };
        assert!(empty.parse_request().is_err());
        assert!(Frame::response(TAG_HIT, "{}").parse_request().is_err());
    }

    #[test]
    fn tag_names_match_http_envelope() {
        assert_eq!(tag_name(TAG_MISS), "miss");
        assert_eq!(tag_name(TAG_HIT), "hit");
        assert_eq!(tag_name(TAG_STORE), "store");
    }

    #[test]
    fn preamble_is_not_an_http_method_prefix() {
        // Every HTTP method starts with an ASCII uppercase letter; the
        // version byte 0x01 additionally guarantees no collision.
        assert!(PREAMBLE.iter().any(|b| !b.is_ascii_uppercase()));
    }

    #[test]
    fn rendezvous_is_deterministic_and_total() {
        let addrs: Vec<SocketAddr> = (0..4)
            .map(|i| format!("127.0.0.1:{}", 9000 + i).parse().unwrap())
            .collect();
        let mut used = [false; 4];
        for i in 0..64 {
            let key = format!("solve|{{\"k\":{i}}}");
            let a = rendezvous_pick(&addrs, &key);
            let b = rendezvous_pick(&addrs, &key);
            assert_eq!(a, b, "deterministic");
            used[a] = true;
        }
        assert!(used.iter().all(|&u| u), "64 keys spread across 4 members");
        // Removing a member only remaps keys owned by it.
        let shrunk = &addrs[..3];
        for i in 0..64 {
            let key = format!("solve|{{\"k\":{i}}}");
            let before = rendezvous_pick(&addrs, &key);
            if before < 3 {
                assert_eq!(
                    rendezvous_pick(shrunk, &key),
                    before,
                    "stable for survivors"
                );
            }
        }
    }
}
