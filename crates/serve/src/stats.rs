//! Service-level counters and per-endpoint latency aggregation.
//!
//! Everything here is doubly reported: lock-free atomics feed the
//! `GET /v1/stats` endpoint, and the same observations are mirrored to
//! the global tracer as `serve.*` counters/gauges so a traced server
//! run can be rendered with `rbp report`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use rbp_util::json::Json;

use crate::cache::ResultCache;
use crate::store::ResultStore;

/// One endpoint's latency aggregate (microseconds).
#[derive(Debug, Default, Clone)]
struct Latency {
    count: u64,
    total_us: u64,
    max_us: u64,
}

/// Global service counters, shared by every connection handler and
/// worker thread.
#[derive(Debug)]
pub struct ServeStats {
    started: Instant,
    /// HTTP requests successfully parsed and routed.
    pub accepted: AtomicU64,
    /// Submissions refused with `503` (queue full / shutting down).
    pub rejected: AtomicU64,
    /// Jobs that finished with a result.
    pub completed: AtomicU64,
    /// Jobs that finished with an error (including queue-deadline
    /// expiry).
    pub failed: AtomicU64,
    /// Synchronous waits that hit their deadline (`504` answers; the
    /// job itself may still complete and populate the cache).
    pub timeouts: AtomicU64,
    /// Request frames received over binary-protocol connections.
    pub wire_requests: AtomicU64,
    latency: Mutex<Vec<(String, Latency)>>,
    /// Accepted `/v1/solve` requests bucketed by effective (post-cap)
    /// solver thread count: `(threads, requests)`.
    solve_threads: Mutex<Vec<(usize, u64)>>,
}

impl ServeStats {
    /// Fresh counters; `started` anchors the uptime report.
    #[must_use]
    pub fn new() -> Self {
        ServeStats {
            started: Instant::now(),
            accepted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            wire_requests: AtomicU64::new(0),
            latency: Mutex::new(Vec::new()),
            solve_threads: Mutex::new(Vec::new()),
        }
    }

    /// Records one accepted solve request's effective thread count and
    /// mirrors it as a `serve.solve.threads` gauge.
    pub fn record_solve_threads(&self, threads: usize) {
        let mut buckets = self.solve_threads.lock().unwrap();
        match buckets.iter_mut().find(|(t, _)| *t == threads) {
            Some((_, n)) => *n += 1,
            None => {
                buckets.push((threads, 1));
                buckets.sort_unstable_by_key(|&(t, _)| t);
            }
        }
        drop(buckets);
        rbp_trace::gauge("serve.solve.threads", threads as f64);
    }

    /// Records one executed job's latency under its endpoint name and
    /// mirrors it as a `serve.latency_us.<endpoint>` gauge.
    pub fn record_latency(&self, endpoint: &str, us: u64) {
        let mut lat = self.latency.lock().unwrap();
        match lat.iter_mut().find(|(n, _)| n == endpoint) {
            Some((_, l)) => {
                l.count += 1;
                l.total_us += us;
                l.max_us = l.max_us.max(us);
            }
            None => lat.push((
                endpoint.to_string(),
                Latency {
                    count: 1,
                    total_us: us,
                    max_us: us,
                },
            )),
        }
        drop(lat);
        rbp_trace::gauge(&format!("serve.latency_us.{endpoint}"), us as f64);
    }

    /// The `GET /v1/stats` response body. `store` is the persistent
    /// tier when `--store-dir` is configured; without it the `store`
    /// object reports `"enabled": false` only.
    #[must_use]
    pub fn to_json(
        &self,
        queue_depth: usize,
        queue_cap: usize,
        workers: usize,
        cache: &ResultCache,
        store: Option<&ResultStore>,
    ) -> Json {
        let hits = cache.hits();
        let misses = cache.misses();
        let probes = hits + misses;
        let hit_rate = if probes == 0 {
            0.0
        } else {
            hits as f64 / probes as f64
        };
        let endpoints = {
            let lat = self.latency.lock().unwrap();
            let rows: Vec<(String, Json)> = lat
                .iter()
                .map(|(name, l)| {
                    (
                        name.clone(),
                        Json::obj([
                            ("count", Json::from(l.count)),
                            (
                                "mean_us",
                                Json::from(l.total_us.checked_div(l.count).unwrap_or(0)),
                            ),
                            ("max_us", Json::from(l.max_us)),
                        ]),
                    )
                })
                .collect();
            Json::Obj(rows)
        };
        Json::obj([
            (
                "uptime_us",
                Json::from(u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)),
            ),
            (
                "accepted",
                Json::from(self.accepted.load(Ordering::Relaxed)),
            ),
            (
                "rejected",
                Json::from(self.rejected.load(Ordering::Relaxed)),
            ),
            (
                "completed",
                Json::from(self.completed.load(Ordering::Relaxed)),
            ),
            ("failed", Json::from(self.failed.load(Ordering::Relaxed))),
            (
                "timeouts",
                Json::from(self.timeouts.load(Ordering::Relaxed)),
            ),
            (
                "wire_requests",
                Json::from(self.wire_requests.load(Ordering::Relaxed)),
            ),
            ("queue_depth", Json::from(queue_depth)),
            ("queue_cap", Json::from(queue_cap)),
            ("workers", Json::from(workers)),
            (
                "cache",
                Json::obj([
                    ("entries", Json::from(cache.len())),
                    ("cap", Json::from(cache.cap())),
                    ("hits", Json::from(hits)),
                    ("misses", Json::from(misses)),
                    ("hit_rate", Json::from(hit_rate)),
                ]),
            ),
            (
                "store",
                match store {
                    Some(s) => Json::obj([
                        ("enabled", Json::from(true)),
                        ("entries", Json::from(s.len())),
                        ("bytes", Json::from(s.bytes())),
                        ("cap_bytes", Json::from(s.cap_bytes())),
                        ("hits", Json::from(s.hits())),
                        ("misses", Json::from(s.misses())),
                        ("appends", Json::from(s.appends())),
                        ("compactions", Json::from(s.compactions())),
                        ("warmed", Json::from(s.warmed())),
                    ]),
                    None => Json::obj([("enabled", Json::from(false))]),
                },
            ),
            ("endpoints", endpoints),
            ("solve_threads", {
                let buckets = self.solve_threads.lock().unwrap();
                Json::Obj(
                    buckets
                        .iter()
                        .map(|&(t, n)| (t.to_string(), Json::from(n)))
                        .collect(),
                )
            }),
        ])
    }
}

impl Default for ServeStats {
    fn default() -> Self {
        ServeStats::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_aggregates_per_endpoint() {
        let s = ServeStats::new();
        s.record_latency("solve", 100);
        s.record_latency("solve", 300);
        s.record_latency("bounds", 10);
        s.accepted.store(3, Ordering::Relaxed);
        let cache = ResultCache::new(4);
        let j = s.to_json(1, 8, 2, &cache, None);
        assert_eq!(j.get("accepted").unwrap().as_u64(), Some(3));
        assert_eq!(j.get("queue_depth").unwrap().as_u64(), Some(1));
        let store = j.get("store").unwrap();
        assert_eq!(
            store.get("enabled").map(|v| v.render()).as_deref(),
            Some("false")
        );
        let solve = j.get("endpoints").unwrap().get("solve").unwrap();
        assert_eq!(solve.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(solve.get("mean_us").unwrap().as_u64(), Some(200));
        assert_eq!(solve.get("max_us").unwrap().as_u64(), Some(300));
    }

    #[test]
    fn solve_thread_buckets_aggregate_sorted() {
        let s = ServeStats::new();
        s.record_solve_threads(4);
        s.record_solve_threads(1);
        s.record_solve_threads(4);
        let cache = ResultCache::new(4);
        let j = s.to_json(0, 8, 2, &cache, None);
        let buckets = j.get("solve_threads").unwrap();
        assert_eq!(buckets.get("1").unwrap().as_u64(), Some(1));
        assert_eq!(buckets.get("4").unwrap().as_u64(), Some(2));
        if let Json::Obj(pairs) = buckets {
            assert_eq!(pairs[0].0, "1");
            assert_eq!(pairs[1].0, "4");
        } else {
            panic!("solve_threads is an object");
        }
    }
}
