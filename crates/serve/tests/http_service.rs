//! End-to-end integration tests: a real server on an ephemeral port,
//! driven over real TCP connections through the crate's own client.

use std::time::{Duration, Instant};

use rbp_serve::http::{self, ClientResponse};
use rbp_serve::{ServeConfig, Server};
use rbp_util::json::Json;

const TIMEOUT: Duration = Duration::from_secs(10);

fn small_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        queue_cap: 16,
        cache_cap: 64,
        default_deadline_ms: 10_000,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

fn post(server: &Server, path: &str, body: &str) -> ClientResponse {
    http::request(server.addr(), "POST", path, Some(body), TIMEOUT).expect("http roundtrip")
}

fn get(server: &Server, path: &str) -> ClientResponse {
    http::request(server.addr(), "GET", path, None, TIMEOUT).expect("http roundtrip")
}

const SOLVE_BODY: &str = r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#;

#[test]
fn healthz_and_unknown_routes() {
    let server = small_server();
    let ok = get(&server, "/v1/healthz");
    assert_eq!(ok.status, 200);
    assert!(ok.body.contains("\"status\":\"ok\""), "{}", ok.body);

    assert_eq!(get(&server, "/v1/nope").status, 404);
    assert_eq!(post(&server, "/v1/nope", "{}").status, 404);
    server.shutdown();
}

#[test]
fn solve_twice_hits_cache_with_identical_cost() {
    let server = small_server();

    let cold = post(&server, "/v1/solve", SOLVE_BODY);
    assert_eq!(cold.status, 200, "{}", cold.body);
    let cold_json = Json::parse(&cold.body).unwrap();
    assert_eq!(cold_json.get("cache").and_then(Json::as_str), Some("miss"));
    let cold_total = cold_json
        .get("result")
        .and_then(|r| r.get("total"))
        .and_then(Json::as_u64)
        .expect("solve result has a total");

    let warm = post(&server, "/v1/solve", SOLVE_BODY);
    assert_eq!(warm.status, 200, "{}", warm.body);
    let warm_json = Json::parse(&warm.body).unwrap();
    assert_eq!(warm_json.get("cache").and_then(Json::as_str), Some("hit"));
    let warm_total = warm_json
        .get("result")
        .and_then(|r| r.get("total"))
        .and_then(Json::as_u64)
        .unwrap();
    assert_eq!(cold_total, warm_total, "cached result must be identical");

    // Stats reflect one hit and one miss.
    let stats = Json::parse(&get(&server, "/v1/stats").body).unwrap();
    let cache = stats.get("cache").unwrap();
    assert_eq!(cache.get("hits").and_then(Json::as_u64), Some(1));
    assert!(cache.get("misses").and_then(Json::as_u64).unwrap() >= 1);
    server.shutdown();
}

#[test]
fn validation_errors_map_to_http_statuses() {
    let server = small_server();
    assert_eq!(post(&server, "/v1/solve", "not json").status, 400);
    assert_eq!(post(&server, "/v1/solve", r#"{"k":2}"#).status, 400);
    // Infeasible r: grid(2,3) needs r >= 3.
    let infeasible = r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":1,"g":2}"#;
    assert_eq!(post(&server, "/v1/solve", infeasible).status, 422);
    // Unknown generator family.
    let unknown = r#"{"generator":{"family":"nope"},"k":2,"r":3,"g":2}"#;
    assert_eq!(post(&server, "/v1/solve", unknown).status, 400);
    server.shutdown();
}

#[test]
fn schedule_bounds_generate_endpoints_respond() {
    let server = small_server();

    let sched = Json::parse(&post(&server, "/v1/schedule", SOLVE_BODY).body).unwrap();
    let rows = sched
        .get("result")
        .and_then(|r| r.get("schedulers"))
        .and_then(Json::as_arr)
        .expect("schedulers array");
    assert!(rows.len() >= 4);

    let bounds = Json::parse(&post(&server, "/v1/bounds", SOLVE_BODY).body).unwrap();
    let result = bounds.get("result").unwrap();
    let lower = result.get("lower").and_then(Json::as_u64).unwrap();
    let upper = result.get("upper").and_then(Json::as_u64).unwrap();
    assert!(lower <= upper);

    let gen_body = r#"{"generator":{"family":"tree","params":[4]}}"#;
    let gen = Json::parse(&post(&server, "/v1/generate", gen_body).body).unwrap();
    let text = gen
        .get("result")
        .and_then(|r| r.get("dag_text"))
        .and_then(Json::as_str)
        .expect("dag text");
    assert!(text.starts_with("dag "));
    server.shutdown();
}

#[test]
fn async_submit_poll_result_flow() {
    let server = small_server();
    let body = r#"{"generator":{"family":"grid","params":[2,4]},"k":2,"r":3,"g":2,"mode":"async","budget_ms":100}"#;
    let submitted = post(&server, "/v1/portfolio", body);
    assert_eq!(submitted.status, 202, "{}", submitted.body);
    let sub = Json::parse(&submitted.body).unwrap();
    let job = sub.get("job").and_then(Json::as_u64).expect("job id");

    // Poll until terminal (worker needs ~100 ms for the race).
    let deadline = Instant::now() + Duration::from_secs(10);
    let result = loop {
        let polled = get(&server, &format!("/v1/jobs/{job}/result"));
        if polled.status == 200 {
            break Json::parse(&polled.body).unwrap();
        }
        assert_eq!(polled.status, 202, "{}", polled.body);
        assert!(Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(20));
    };
    assert_eq!(result.get("cache").and_then(Json::as_str), Some("job"));
    let total = result
        .get("result")
        .and_then(|r| r.get("total"))
        .and_then(Json::as_u64)
        .unwrap();
    assert!(total > 0);

    // Status endpoint agrees.
    let status = Json::parse(&get(&server, &format!("/v1/jobs/{job}")).body).unwrap();
    assert_eq!(status.get("status").and_then(Json::as_str), Some("done"));
    // Unknown job → 404.
    assert_eq!(get(&server, "/v1/jobs/999999").status, 404);
    server.shutdown();
}

#[test]
fn sync_deadline_answers_504_with_poll_handle() {
    let server = small_server();
    // A 400 ms portfolio race with a 30 ms deadline must time out.
    let body = r#"{"generator":{"family":"grid","params":[2,4]},"k":2,"r":3,"g":2,"budget_ms":400,"deadline_ms":30}"#;
    let resp = post(&server, "/v1/portfolio", body);
    assert_eq!(resp.status, 504, "{}", resp.body);
    let json = Json::parse(&resp.body).unwrap();
    let job = json.get("job").and_then(Json::as_u64).expect("poll handle");

    // The job still completes and becomes retrievable.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let polled = get(&server, &format!("/v1/jobs/{job}/result"));
        if polled.status == 200 {
            break;
        }
        assert!(Instant::now() < deadline, "timed-out job never completed");
        std::thread::sleep(Duration::from_millis(20));
    }
    server.shutdown();
}

#[test]
fn overload_returns_503_and_never_drops_requests() {
    // One worker, one queue slot: concurrent slow submissions must see
    // explicit 503 backpressure with Retry-After, never a hang or drop.
    let server = Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 1,
        queue_cap: 1,
        cache_cap: 0, // distinct seeds would miss anyway; keep it simple
        ..ServeConfig::default()
    })
    .unwrap();
    let addr = server.addr();

    let n = 6;
    let results: Vec<ClientResponse> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                scope.spawn(move || {
                    // Distinct seeds defeat the cache so every request
                    // carries real work.
                    let body = format!(
                        r#"{{"generator":{{"family":"grid","params":[2,4]}},"k":2,"r":3,"g":2,"budget_ms":200,"seed":{i}}}"#
                    );
                    http::request(addr, "POST", "/v1/portfolio", Some(&body), TIMEOUT)
                        .expect("every request gets an answer")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let ok = results.iter().filter(|r| r.status == 200).count();
    let rejected: Vec<&ClientResponse> = results.iter().filter(|r| r.status == 503).collect();
    assert_eq!(
        ok + rejected.len(),
        n,
        "every request answered with 200 or 503"
    );
    assert!(ok >= 1, "at least the first job executes");
    assert!(!rejected.is_empty(), "backpressure must trigger");
    for r in &rejected {
        assert_eq!(r.header("retry-after"), Some("1"), "{}", r.body);
    }

    // Stats agree: rejected count matches observed 503s.
    let stats = Json::parse(&get(&server, "/v1/stats").body).unwrap();
    assert_eq!(
        stats.get("rejected").and_then(Json::as_u64),
        Some(rejected.len() as u64)
    );
    server.shutdown();
}

#[test]
fn graceful_shutdown_via_endpoint_drains() {
    let server = small_server();
    let addr = server.addr();
    let resp = post(&server, "/v1/shutdown", "");
    assert_eq!(resp.status, 200);
    assert!(resp.body.contains("draining"), "{}", resp.body);
    server.wait(); // returns once drained

    // The listener is gone afterwards.
    let after = http::request(addr, "GET", "/v1/healthz", None, Duration::from_millis(500));
    assert!(after.is_err() || after.unwrap().status != 200);
}
