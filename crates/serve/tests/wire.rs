//! Binary wire protocol integration tests: negotiation on a shared
//! listener, JSON-vs-binary payload equivalence, persistent multi-frame
//! connections, error frames, and fleet routing — checks of the
//! protocol spec in docs/SCHEMAS.md ("Binary wire protocol v1").

use std::time::Duration;

use rbp_serve::http;
use rbp_serve::{wire, Client, FleetClient, ServeConfig, Server};
use rbp_util::json::Json;

const TIMEOUT: Duration = Duration::from_secs(10);
const SOLVE_BODY: &str = r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#;

fn small_server() -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port")
}

#[test]
fn binary_and_http_clients_share_one_listener() {
    let server = small_server();
    // HTTP first …
    let health = http::request(server.addr(), "GET", "/v1/healthz", None, TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    // … binary second, on the very same port.
    let mut client = Client::connect(server.addr(), TIMEOUT).expect("binary negotiation");
    let resp = client.call("bounds", SOLVE_BODY).unwrap();
    assert_eq!(resp.status, 200, "{}", resp.payload);
    // … and HTTP still works afterwards.
    let health = http::request(server.addr(), "GET", "/v1/healthz", None, TIMEOUT).unwrap();
    assert_eq!(health.status, 200);
    server.shutdown();
}

#[test]
fn binary_payload_is_byte_identical_to_http_result() {
    let server = small_server();

    // Same instance over both transports. HTTP first (cold solve).
    let http_resp = http::request(
        server.addr(),
        "POST",
        "/v1/solve",
        Some(SOLVE_BODY),
        TIMEOUT,
    )
    .unwrap();
    assert_eq!(http_resp.status, 200, "{}", http_resp.body);
    let envelope = Json::parse(&http_resp.body).unwrap();
    let http_result = envelope.get("result").expect("envelope result").render();

    // Binary second: must be a cache hit carrying the result core
    // verbatim — bytes-for-bytes what the HTTP envelope re-rendered.
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();
    let bin = client.call("solve", SOLVE_BODY).unwrap();
    assert_eq!(bin.status, 200, "{}", bin.payload);
    assert_eq!(bin.tag, wire::TAG_HIT);
    assert_eq!(bin.payload, http_result, "same request → same result bytes");
    server.shutdown();
}

#[test]
fn one_connection_carries_many_frames_with_cache_tags() {
    let server = small_server();
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();

    let cold = client.call("solve", SOLVE_BODY).unwrap();
    assert_eq!(cold.status, 200, "{}", cold.payload);
    assert_eq!(cold.tag, wire::TAG_MISS);
    let warm = client.call("solve", SOLVE_BODY).unwrap();
    assert_eq!(warm.tag, wire::TAG_HIT);
    assert_eq!(warm.payload, cold.payload, "cached bytes are identical");

    // A different endpoint on the same connection still works.
    let bounds = client.call("bounds", SOLVE_BODY).unwrap();
    assert_eq!(bounds.status, 200);

    // The server counted the frames.
    let stats = http::request(server.addr(), "GET", "/v1/stats", None, TIMEOUT).unwrap();
    let stats = Json::parse(&stats.body).unwrap();
    assert_eq!(stats.get("wire_requests").and_then(Json::as_u64), Some(3));
    server.shutdown();
}

#[test]
fn protocol_violations_answer_error_frames() {
    let server = small_server();
    let mut client = Client::connect(server.addr(), TIMEOUT).unwrap();

    // Unknown endpoint → 404 error frame, connection stays usable.
    let resp = client.call("nope", "{}").unwrap();
    assert_eq!(resp.status, 404, "{}", resp.payload);
    // Malformed JSON body → 400.
    let resp = client.call("solve", "not json").unwrap();
    assert_eq!(resp.status, 400);
    // Async mode is HTTP-only → 400.
    let async_body =
        r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2,"mode":"async"}"#;
    let resp = client.call("solve", async_body).unwrap();
    assert_eq!(resp.status, 400, "{}", resp.payload);
    assert!(resp.payload.contains("async"), "{}", resp.payload);
    // Validation failures map like HTTP: infeasible r → 422.
    let infeasible = r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":1,"g":2}"#;
    let resp = client.call("solve", infeasible).unwrap();
    assert_eq!(resp.status, 422);
    // After all that abuse the connection still answers real work.
    let resp = client.call("bounds", SOLVE_BODY).unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn fleet_client_routes_consistently_and_survives_member_churn() {
    let members: Vec<Server> = (0..3).map(|_| small_server()).collect();
    let addrs: Vec<_> = members.iter().map(Server::addr).collect();
    let mut fleet = FleetClient::new(addrs.clone(), TIMEOUT);

    // Identical instances always route to the same member, so the
    // second call is that member's cache hit.
    let owner = fleet.route("solve", SOLVE_BODY);
    assert_eq!(fleet.route("solve", SOLVE_BODY), owner);
    let cold = fleet.call("solve", SOLVE_BODY).unwrap();
    assert_eq!(cold.tag, wire::TAG_MISS);
    let warm = fleet.call("solve", SOLVE_BODY).unwrap();
    assert_eq!(warm.tag, wire::TAG_HIT);
    assert_eq!(warm.payload, cold.payload);

    // A mixed workload spreads across members deterministically.
    let mut used = vec![false; addrs.len()];
    for i in 0..32 {
        let body = format!(
            r#"{{"generator":{{"family":"grid","params":[2,{}]}},"k":2,"r":3,"g":2,"seed":{i}}}"#,
            2 + i % 3
        );
        used[fleet.route("bounds", &body)] = true;
    }
    assert!(used.iter().all(|&u| u), "32 keys spread over 3 members");

    for server in members {
        server.shutdown();
    }
}
