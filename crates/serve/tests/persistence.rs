//! Restart-survival integration tests: a server with `store_dir` set
//! must answer previously-solved instances as cache hits after a full
//! stop/start cycle, per the warm-boot contract in docs/OPERATIONS.md.

use std::path::{Path, PathBuf};
use std::time::Duration;

use rbp_serve::http::{self, ClientResponse};
use rbp_serve::{ServeConfig, Server};
use rbp_util::json::Json;

const TIMEOUT: Duration = Duration::from_secs(10);
const SOLVE_BODY: &str = r#"{"generator":{"family":"grid","params":[2,3]},"k":2,"r":3,"g":2}"#;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rbp-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stored_server(dir: &Path, cache_cap: usize) -> Server {
    Server::start(ServeConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        cache_cap,
        store_dir: Some(dir.display().to_string()),
        ..ServeConfig::default()
    })
    .expect("bind ephemeral port with store")
}

fn post(server: &Server, path: &str, body: &str) -> ClientResponse {
    http::request(server.addr(), "POST", path, Some(body), TIMEOUT).expect("http roundtrip")
}

fn cache_tag(resp: &ClientResponse) -> String {
    Json::parse(&resp.body)
        .unwrap()
        .get("cache")
        .and_then(Json::as_str)
        .expect("envelope has a cache tag")
        .to_string()
}

fn result_total(resp: &ClientResponse) -> u64 {
    Json::parse(&resp.body)
        .unwrap()
        .get("result")
        .and_then(|r| r.get("total"))
        .and_then(Json::as_u64)
        .expect("solve result has a total")
}

#[test]
fn warm_boot_answers_previously_solved_instance_as_hit() {
    let dir = tmpdir("warmboot");

    // Generation 1: solve cold, populating RAM cache and disk store.
    let first = stored_server(&dir, 64);
    let cold = post(&first, "/v1/solve", SOLVE_BODY);
    assert_eq!(cold.status, 200, "{}", cold.body);
    assert_eq!(cache_tag(&cold), "miss");
    let cold_total = result_total(&cold);
    first.shutdown();

    // Generation 2: a brand-new process over the same directory must
    // answer the same instance from the warmed RAM cache — tag "hit",
    // not "store" and certainly not "miss".
    let second = stored_server(&dir, 64);
    let warm = post(&second, "/v1/solve", SOLVE_BODY);
    assert_eq!(warm.status, 200, "{}", warm.body);
    assert_eq!(cache_tag(&warm), "hit", "{}", warm.body);
    assert_eq!(result_total(&warm), cold_total, "identical result");

    // Stats expose the store tier: enabled, populated, warmed.
    let stats = http::request(second.addr(), "GET", "/v1/stats", None, TIMEOUT).unwrap();
    let stats = Json::parse(&stats.body).unwrap();
    let store = stats.get("store").expect("stats carry a store object");
    assert_eq!(
        store.get("enabled").map(Json::render).as_deref(),
        Some("true")
    );
    assert!(store.get("entries").and_then(Json::as_u64).unwrap() >= 1);
    assert!(store.get("warmed").and_then(Json::as_u64).unwrap() >= 1);
    assert!(store.get("bytes").and_then(Json::as_u64).unwrap() > 0);
    second.shutdown();

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn store_tier_answers_when_ram_cache_cannot() {
    let dir = tmpdir("storetier");

    // cache_cap 0 disables the RAM tier entirely: the only way the
    // second request can avoid recomputing is the persistent store.
    let server = stored_server(&dir, 0);
    let cold = post(&server, "/v1/solve", SOLVE_BODY);
    assert_eq!(cache_tag(&cold), "miss");
    let durable = post(&server, "/v1/solve", SOLVE_BODY);
    assert_eq!(cache_tag(&durable), "store", "{}", durable.body);
    assert_eq!(result_total(&durable), result_total(&cold));

    let stats = http::request(server.addr(), "GET", "/v1/stats", None, TIMEOUT).unwrap();
    let store = Json::parse(&stats.body)
        .unwrap()
        .get("store")
        .cloned()
        .unwrap();
    assert!(store.get("hits").and_then(Json::as_u64).unwrap() >= 1);
    assert!(store.get("appends").and_then(Json::as_u64).unwrap() >= 1);
    server.shutdown();

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn distinct_instances_stay_distinct_across_restart() {
    let dir = tmpdir("distinct");
    let other_body = r#"{"generator":{"family":"grid","params":[2,4]},"k":2,"r":3,"g":2}"#;

    let first = stored_server(&dir, 64);
    let a = post(&first, "/v1/solve", SOLVE_BODY);
    let b = post(&first, "/v1/solve", other_body);
    assert_eq!(cache_tag(&a), "miss");
    assert_eq!(cache_tag(&b), "miss");
    first.shutdown();

    let second = stored_server(&dir, 64);
    let a2 = post(&second, "/v1/solve", SOLVE_BODY);
    let b2 = post(&second, "/v1/solve", other_body);
    assert_eq!(cache_tag(&a2), "hit");
    assert_eq!(cache_tag(&b2), "hit");
    assert_eq!(result_total(&a2), result_total(&a));
    assert_eq!(result_total(&b2), result_total(&b));
    second.shutdown();

    std::fs::remove_dir_all(&dir).unwrap();
}
