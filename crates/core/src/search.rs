//! Shared A\* search engine for the exact SPP and MPP solvers.
//!
//! Both solvers explore the same kind of space — packed `u64` pebbling
//! configurations connected by small-integer-cost rule applications
//! (`0` for deletions, `compute` for R3, `g` for R1/R2) — so the
//! machinery lives here once:
//!
//! - `Frontier`: a monotone **bucket queue** indexed by `f = d + h`.
//!   Edge costs are tiny integers, so the full priority range is at most
//!   the trivial upper bound of Lemma 1; `pop` is a cursor advance and
//!   `push` a `Vec` append, with zero per-operation heap rebalancing.
//!   Instances whose cost range would make buckets wasteful (huge `g`)
//!   fall back to a binary heap transparently.
//! - [`SearchStats`] / [`ShardStats`]: counters for the benchmark
//!   harness and trace gauges, including the packed-arena memory axis.
//!
//! The search loop itself lives in `driver.rs` (sequential and
//! hash-sharded parallel engines over the `Domain` trait), with state
//! storage in `arena.rs` (packed interning) and cross-shard messaging
//! in `spsc.rs`.
//! - [`AdmissibleHeuristic`]: the lower bound guiding A\*. See the
//!   admissibility argument on the type; it is also *consistent*, so
//!   the first settling of a state is final and the bucket cursor never
//!   moves backwards.
//!
//! A\* degenerates to the old uniform-cost search when the heuristic is
//! disabled via [`SearchConfig`], which is exactly how the equivalence
//! tests and the before/after benchmarks obtain the baseline solver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::{MppInstance, PartitionMode, SppInstance};

/// Resource limits for the exact solvers.
///
/// Limits are **global**: at any thread count the budget covers the
/// whole solve, not each worker. The parallel solver enforces them
/// through shared atomic counters and a shared deadline, so
/// `max_states = 10_000` means the same thing at `threads = 1` and
/// `threads = 8`.
#[derive(Debug, Clone, Copy)]
pub struct SolveLimits {
    /// Abort after settling this many states (summed across shards).
    pub max_states: usize,
    /// Abort when this much wall-clock time has elapsed since the
    /// solve started (`None` = no deadline). Checked periodically, so
    /// overshoot is bounded by one expansion batch.
    pub deadline: Option<Duration>,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits {
            max_states: 2_000_000,
            deadline: None,
        }
    }
}

impl SolveLimits {
    /// Limits with a settled-state budget and no deadline.
    #[must_use]
    pub fn states(max_states: usize) -> Self {
        SolveLimits {
            max_states,
            ..SolveLimits::default()
        }
    }

    /// These limits with a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Tuning switches for the exact solvers.
///
/// The default enables every correctness-preserving reduction; the
/// [`SearchConfig::baseline`] configuration reproduces the original
/// plain-Dijkstra solver for equivalence testing and benchmarking.
///
/// ```
/// use rbp_core::{SearchConfig, SolveLimits};
///
/// let fast = SearchConfig::default();       // A* + symmetry reduction
/// assert!(fast.heuristic && fast.symmetry);
///
/// let reference = SearchConfig::baseline(); // plain uniform-cost search
/// assert!(!reference.heuristic && !reference.symmetry);
///
/// // Both knobs compose with a state budget:
/// let bounded = fast.with_limits(SolveLimits::states(10_000));
/// assert_eq!(bounded.limits.max_states, 10_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Guide the search with the admissible heuristic (A\*).
    pub heuristic: bool,
    /// Canonicalize processor-symmetric MPP states (ignored by SPP).
    pub symmetry: bool,
    /// Worker threads. `0` or `1` runs the sequential engine; `≥ 2`
    /// runs the sharded parallel engine (HDA\*-style state ownership),
    /// which returns the same optimal costs. Capped at [`MAX_THREADS`].
    pub threads: usize,
    /// Shard-ownership strategy for the parallel engine (ignored at
    /// `threads ≤ 1`). Every mode proves the same optima; they differ
    /// only in cross-shard traffic and load balance.
    pub partition: PartitionMode,
    /// Resource limits.
    pub limits: SolveLimits,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            heuristic: true,
            symmetry: true,
            threads: 1,
            partition: PartitionMode::default(),
            limits: SolveLimits::default(),
        }
    }
}

impl SearchConfig {
    /// The unoptimized reference configuration: plain uniform-cost
    /// search over raw (label-sensitive) states.
    #[must_use]
    pub fn baseline() -> Self {
        SearchConfig {
            heuristic: false,
            symmetry: false,
            ..SearchConfig::default()
        }
    }

    /// This configuration with different limits.
    #[must_use]
    pub fn with_limits(mut self, limits: SolveLimits) -> Self {
        self.limits = limits;
        self
    }

    /// This configuration with a worker-thread count (see
    /// [`SearchConfig::threads`]).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// This configuration with a shard-ownership strategy (see
    /// [`SearchConfig::partition`]).
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionMode) -> Self {
        self.partition = partition;
        self
    }
}

/// Hard cap on solver worker threads (shard count). The shard id must
/// fit the packed global-state-id layout, and pebbling searches stop
/// scaling long before this anyway.
pub const MAX_THREADS: usize = 64;

/// Why a solve stopped — distinguishes a proven answer from the
/// different ways of running out of resources.
///
/// Pre-existing callers that only look at `SearchOutcome::solution`
/// keep working; the reason disambiguates `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// An optimal solution was found and proven optimal.
    Solved,
    /// The reachable state space was exhausted without reaching a goal
    /// (the instance is unsolvable, e.g. a dead one-shot variant).
    Exhausted,
    /// The global `max_states` settled-state budget ran out.
    StateLimit,
    /// The wall-clock deadline in [`SolveLimits::deadline`] passed.
    Deadline,
    /// The instance is outside the solver's supported range
    /// (`n > 64`, `k > 4`, infeasible capacity).
    Unsupported,
}

impl StopReason {
    /// Short lowercase token for logs and JSON (`"solved"`,
    /// `"exhausted"`, `"state_limit"`, `"deadline"`, `"unsupported"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Solved => "solved",
            StopReason::Exhausted => "exhausted",
            StopReason::StateLimit => "state_limit",
            StopReason::Deadline => "deadline",
            StopReason::Unsupported => "unsupported",
        }
    }
}

/// Counters describing one exact-solve run.
///
/// Accumulated locally in the search hot loop and emitted through
/// `rbp-trace` once per solve (see [`SearchStats::trace`]), so enabling
/// tracing never adds per-relaxation overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// States settled (popped with an up-to-date distance and expanded).
    pub settled: u64,
    /// Queue pushes (each corresponds to a distance improvement).
    pub pushed: u64,
    /// Stale queue entries skipped on pop.
    pub stale: u64,
    /// High-water mark of the frontier size (peak open-queue length).
    pub frontier_peak: u64,
    /// Whether the frontier fell back from the bucket queue to the
    /// binary heap (priority range exceeded the bucket ceiling).
    pub heap_fallback: bool,
    /// The admissible heuristic's value at the start state (zero when
    /// the heuristic is disabled). `h_root / OPT` measures heuristic
    /// tightness: 1.0 would be a perfect lower bound.
    pub h_root: u64,
    /// Distinct states interned into the state arena(s) — discovered
    /// states, settled or not.
    pub arena_states: u64,
    /// Peak bytes held by the state arena(s): packed key words, node
    /// metadata, and the interning tables, summed over shards. The
    /// memory axis of the before/after benchmarks;
    /// [`SearchStats::bytes_per_state`] derives the per-state figure.
    pub arena_peak_bytes: u64,
    /// Successors handed to another shard over an SPSC channel
    /// (always zero in the sequential engine).
    pub cross_sends: u64,
    /// Ring blocks those sends were batched into; `cross_sends /
    /// send_blocks` is the achieved batching factor.
    pub send_blocks: u64,
    /// Successors kept on the shard that generated them (the locality
    /// the partition bought; zero in the sequential engine).
    pub local_succs: u64,
    /// Foreign states expanded speculatively by an otherwise-starving
    /// shard (work stealing by duplication; never affects optimality).
    pub foreign_expansions: u64,
    /// Worker threads the solve actually used.
    pub threads: u64,
}

impl SearchStats {
    /// Arena bytes per interned state (`arena_peak_bytes /
    /// arena_states`), the compactness figure the memory benchmarks
    /// track. Zero before any state is interned.
    #[must_use]
    pub fn bytes_per_state(&self) -> f64 {
        if self.arena_states == 0 {
            0.0
        } else {
            self.arena_peak_bytes as f64 / self.arena_states as f64
        }
    }

    /// Fraction of generated successors that stayed on their shard
    /// (`local_succs / (local_succs + cross_sends)`). Zero when nothing
    /// was generated; 1.0 would be a perfectly local partition.
    #[must_use]
    pub fn locality_fraction(&self) -> f64 {
        let total = self.local_succs + self.cross_sends;
        if total == 0 {
            0.0
        } else {
            self.local_succs as f64 / total as f64
        }
    }

    /// Emits these counters through the global tracer under
    /// `solver.<which>.*` names, plus the heuristic-tightness gauge
    /// when the achieved optimum is known. No-op while tracing is
    /// disabled.
    pub fn trace(&self, which: &str, total: Option<u64>) {
        if !rbp_trace::enabled() {
            return;
        }
        rbp_trace::counter(&format!("solver.{which}.settled"), self.settled);
        rbp_trace::counter(&format!("solver.{which}.pushed"), self.pushed);
        rbp_trace::counter(&format!("solver.{which}.stale"), self.stale);
        rbp_trace::gauge(
            &format!("solver.{which}.frontier_peak"),
            self.frontier_peak as f64,
        );
        rbp_trace::counter(
            &format!("solver.{which}.heap_fallback"),
            u64::from(self.heap_fallback),
        );
        rbp_trace::counter(&format!("solver.{which}.arena_states"), self.arena_states);
        rbp_trace::gauge(
            &format!("solver.{which}.arena_bytes"),
            self.arena_peak_bytes as f64,
        );
        rbp_trace::gauge(
            &format!("solver.{which}.bytes_per_state"),
            self.bytes_per_state(),
        );
        rbp_trace::counter(&format!("solver.{which}.cross_sends"), self.cross_sends);
        rbp_trace::counter(&format!("solver.{which}.send_blocks"), self.send_blocks);
        rbp_trace::counter(
            &format!("solver.{which}.foreign_expansions"),
            self.foreign_expansions,
        );
        rbp_trace::gauge(
            &format!("solver.{which}.locality_fraction"),
            self.locality_fraction(),
        );
        rbp_trace::gauge(&format!("solver.{which}.threads"), self.threads as f64);
        if let Some(total) = total {
            if total > 0 {
                rbp_trace::gauge(
                    &format!("solver.{which}.h_tightness"),
                    self.h_root as f64 / total as f64,
                );
            }
        }
    }
}

/// Per-shard counters from one parallel solve (empty for sequential
/// runs). Emitted as `solver.<which>.shard<i>.*` trace gauges via
/// [`trace_shards`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (also the owning worker thread's index).
    pub shard: u64,
    /// States this shard settled.
    pub settled: u64,
    /// Frontier pushes on this shard.
    pub pushed: u64,
    /// Successors this shard sent to other shards.
    pub sent: u64,
    /// Ring blocks those sends were flushed in.
    pub send_blocks: u64,
    /// Successors this shard generated and kept (it owned them).
    pub local_succs: u64,
    /// Messages this shard received from other shards.
    pub received: u64,
    /// Received messages that did not improve any distance (duplicates
    /// of work already done, e.g. re-deliveries of speculatively
    /// expanded states).
    pub dup_msgs: u64,
    /// Foreign states this shard expanded speculatively while its own
    /// frontier was empty.
    pub foreign_expansions: u64,
    /// Distinct states interned into this shard's arena.
    pub arena_states: u64,
    /// Bytes held by this shard's arena (keys + metadata + table).
    pub arena_bytes: u64,
}

impl ShardStats {
    /// Fraction of this shard's generated successors it owned itself.
    #[must_use]
    pub fn locality_fraction(&self) -> f64 {
        let total = self.local_succs + self.sent;
        if total == 0 {
            0.0
        } else {
            self.local_succs as f64 / total as f64
        }
    }

    /// Fraction of received messages that were duplicates
    /// (`dup_msgs / received`). Zero when nothing was received.
    #[must_use]
    pub fn duplicate_rate(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.dup_msgs as f64 / self.received as f64
        }
    }
}

/// Emits per-shard counters as `solver.<which>.shard<i>.{settled,
/// pushed,sent,send_blocks,foreign_expansions,locality_fraction,
/// duplicate_rate,arena_bytes}` trace gauges. No-op while tracing is
/// disabled or for sequential solves (empty slice).
pub fn trace_shards(which: &str, shards: &[ShardStats]) {
    if !rbp_trace::enabled() {
        return;
    }
    for s in shards {
        let i = s.shard;
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.settled"),
            s.settled as f64,
        );
        rbp_trace::gauge(&format!("solver.{which}.shard{i}.pushed"), s.pushed as f64);
        rbp_trace::gauge(&format!("solver.{which}.shard{i}.sent"), s.sent as f64);
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.send_blocks"),
            s.send_blocks as f64,
        );
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.foreign_expansions"),
            s.foreign_expansions as f64,
        );
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.locality_fraction"),
            s.locality_fraction(),
        );
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.duplicate_rate"),
            s.duplicate_rate(),
        );
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.arena_bytes"),
            s.arena_bytes as f64,
        );
    }
}

/// Result of an exact solve together with the search counters that
/// produced it — the unit the before/after benchmarks compare.
#[derive(Debug, Clone)]
pub struct SearchOutcome<T> {
    /// The optimal solution, or `None` when the instance is infeasible,
    /// too large, provably unsolvable, or a resource limit was hit
    /// (see [`SearchOutcome::reason`] for which).
    pub solution: Option<T>,
    /// Search-effort counters for this run.
    pub stats: SearchStats,
    /// Why the search stopped; disambiguates `solution == None`
    /// between "proven unsolvable", "state budget", and "deadline".
    pub reason: StopReason,
    /// Per-shard counters (empty for sequential solves).
    pub shards: Vec<ShardStats>,
}

/// A compact one-word move encoding; the solvers define the bit layout.
pub type PackedMove = u32;

const BUCKET_CAP: u64 = 1 << 22;

/// Min-priority frontier: bucket queue for small priority ranges, binary
/// heap fallback otherwise. Entries carry the g-value at push time so
/// stale entries can be recognized without a decrease-key operation.
pub(crate) enum Frontier<K> {
    Buckets {
        buckets: Vec<Vec<(K, u64)>>,
        cursor: usize,
        len: usize,
    },
    Heap(BinaryHeap<(Reverse<u64>, K, u64)>),
}

impl<K: Copy + Ord> Frontier<K> {
    /// `max_priority` should upper-bound every `f` value ever pushed
    /// (e.g. the Lemma 1 trivial upper bound); it only selects the
    /// representation, never correctness.
    pub(crate) fn new(max_priority: u64) -> Self {
        if max_priority <= BUCKET_CAP {
            Frontier::Buckets {
                buckets: Vec::new(),
                cursor: 0,
                len: 0,
            }
        } else {
            Frontier::Heap(BinaryHeap::new())
        }
    }

    pub(crate) fn push(&mut self, priority: u64, key: K, dist: u64) {
        match self {
            Frontier::Buckets {
                buckets,
                cursor,
                len,
            } => {
                let idx = usize::try_from(priority).expect("priority fits usize");
                if idx >= buckets.len() {
                    buckets.resize_with(idx + 1, Vec::new);
                }
                buckets[idx].push((key, dist));
                // A consistent heuristic never pushes below the cursor;
                // tolerate it anyway so a merely-admissible heuristic
                // still yields correct results.
                *cursor = (*cursor).min(idx);
                *len += 1;
            }
            Frontier::Heap(heap) => heap.push((Reverse(priority), key, dist)),
        }
    }

    /// Pops the minimum-priority entry as `(priority, key, dist)`.
    pub(crate) fn pop(&mut self) -> Option<(u64, K, u64)> {
        match self {
            Frontier::Buckets {
                buckets,
                cursor,
                len,
            } => {
                if *len == 0 {
                    return None;
                }
                while buckets[*cursor].is_empty() {
                    *cursor += 1;
                }
                *len -= 1;
                buckets[*cursor].pop().map(|(k, d)| (*cursor as u64, k, d))
            }
            Frontier::Heap(heap) => heap.pop().map(|(Reverse(p), k, d)| (p, k, d)),
        }
    }

    /// The minimum priority currently queued, without popping it.
    /// Conservative in the presence of stale entries: may report a
    /// priority whose entry will be discarded on pop, never one larger
    /// than the true minimum.
    pub(crate) fn peek_priority(&mut self) -> Option<u64> {
        match self {
            Frontier::Buckets {
                buckets,
                cursor,
                len,
            } => {
                if *len == 0 {
                    return None;
                }
                while buckets[*cursor].is_empty() {
                    *cursor += 1;
                }
                Some(*cursor as u64)
            }
            Frontier::Heap(heap) => heap.peek().map(|(Reverse(p), _, _)| *p),
        }
    }

    /// Current number of queued (possibly stale) entries.
    pub(crate) fn len(&self) -> usize {
        match self {
            Frontier::Buckets { len, .. } => *len,
            Frontier::Heap(heap) => heap.len(),
        }
    }
}

/// An admissible, consistent lower bound on the remaining cost of a
/// pebbling search state, shared by both exact solvers and exported to
/// `rbp-bounds`.
///
/// Let `pebbled = red_all ∪ blue` and let the **needed set** `A` be the
/// upward closure of the unpebbled sinks through unpebbled nodes
/// (following predecessor edges). Every `v ∈ A` must be computed at
/// least once in *any* completion: an unpebbled sink must clearly be
/// computed (it cannot be loaded — it is not blue, and blue pebbles
/// only appear by storing red ones, which requires acquiring red
/// first); and if `v ∈ A` must be computed, an unpebbled predecessor
/// `p` must hold a red pebble at that moment, whose first acquisition
/// must itself be a compute by the same argument. A compute step
/// finishes at most `k` nodes, and a computable node has all
/// predecessors red — it is a *minimal* element of `A` — so one step
/// removes at most `k` nodes from `A`. Hence
/// `ceil(|A| / k) · compute` remaining compute cost, and the bound
/// drops by at most `compute` per compute step (consistency).
///
/// Two I/O terms add on (they bound *disjoint* step classes, so the sum
/// stays admissible): nodes that are blue, not red, predecessors of `A`,
/// and can never be (re)computed — Hong–Kung sources, or already-computed
/// nodes in the one-shot variant — each force a load (`g` each, batched
/// by `k` in MPP); and under the Hong–Kung sink convention every
/// non-blue sink forces a store. This is exactly the Lemma 1 trivial
/// I/O reasoning applied to the not-yet-blue, not-yet-red values.
///
/// [`AdmissibleHeuristic::eval`] returns `None` for provably dead
/// states (a needed node can never be computed again), which the
/// one-shot variant uses as exact pruning.
#[derive(Debug, Clone)]
pub struct AdmissibleHeuristic {
    preds: Vec<u64>,
    sinks: u64,
    k: u64,
    compute_cost: u64,
    g: u64,
    /// Nodes rule R3 can never fire on (Hong–Kung sources).
    no_compute: u64,
    /// One-shot variant: nodes in `computed` cannot be recomputed.
    one_shot: bool,
    /// Hong–Kung sink convention: sinks must end blue.
    store_sinks: bool,
}

impl AdmissibleHeuristic {
    /// The heuristic for an MPP instance (base game: everything is
    /// computable, sinks may end red or blue).
    #[must_use]
    pub fn for_mpp(instance: &MppInstance) -> Self {
        let (preds, sinks) = masks(instance.dag);
        AdmissibleHeuristic {
            preds,
            sinks,
            k: instance.k as u64,
            compute_cost: instance.model.compute,
            g: instance.model.g,
            no_compute: 0,
            one_shot: false,
            store_sinks: false,
        }
    }

    /// The heuristic for an SPP instance, honoring its variant flags.
    #[must_use]
    pub fn for_spp(instance: &SppInstance) -> Self {
        let (preds, sinks) = masks(instance.dag);
        let no_compute = if instance.variant.sources_start_blue {
            instance
                .dag
                .sources()
                .iter()
                .fold(0u64, |m, s| m | (1u64 << s.index()))
        } else {
            0
        };
        AdmissibleHeuristic {
            preds,
            sinks,
            k: 1,
            compute_cost: instance.model.compute,
            g: instance.model.g,
            no_compute,
            one_shot: instance.variant.one_shot,
            store_sinks: instance.variant.sinks_need_blue,
        }
    }

    /// Evaluates the bound at a packed state. `red_all` is the union of
    /// all red masks, `computed` the ever-computed mask (zero unless the
    /// one-shot variant tracks it). `None` means the state admits no
    /// completion at all.
    #[must_use]
    pub fn eval(&self, red_all: u64, blue: u64, computed: u64) -> Option<u64> {
        let pebbled = red_all | blue;
        let mut need = self.sinks & !pebbled;
        let mut stack = need;
        let mut pred_union = 0u64;
        while stack != 0 {
            let v = stack.trailing_zeros() as usize;
            stack &= stack - 1;
            let ps = self.preds[v];
            pred_union |= ps;
            let fresh = ps & !pebbled & !need;
            need |= fresh;
            stack |= fresh;
        }
        let uncomputable = self.no_compute | if self.one_shot { computed } else { 0 };
        if need & uncomputable != 0 {
            return None;
        }
        let mut h = u64::from(need.count_ones()).div_ceil(self.k) * self.compute_cost;
        // Forced loads: blue-only predecessors of needed nodes that can
        // never be recomputed must re-enter fast memory by R2.
        let forced_loads = pred_union & blue & !red_all & uncomputable;
        h += u64::from(forced_loads.count_ones()).div_ceil(self.k) * self.g;
        if self.store_sinks {
            let missing_stores = self.sinks & !blue;
            h += u64::from(missing_stores.count_ones()).div_ceil(self.k) * self.g;
        }
        Some(h)
    }
}

fn masks(dag: &rbp_dag::Dag) -> (Vec<u64>, u64) {
    let preds = dag
        .nodes()
        .map(|v| {
            dag.preds(v)
                .iter()
                .fold(0u64, |m, p| m | (1u64 << p.index()))
        })
        .collect();
    let sinks = dag
        .sinks()
        .iter()
        .fold(0u64, |m, s| m | (1u64 << s.index()));
    (preds, sinks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::generators;

    #[test]
    fn frontier_bucket_orders_by_priority() {
        let mut f: Frontier<u32> = Frontier::new(100);
        assert!(matches!(f, Frontier::Buckets { .. }));
        f.push(5, 50, 5);
        f.push(1, 10, 1);
        f.push(3, 30, 3);
        f.push(1, 11, 1);
        assert_eq!(f.peek_priority(), Some(1));
        let mut out = Vec::new();
        while let Some((p, k, d)) = f.pop() {
            assert_eq!(p, d, "test entries carry priority as dist");
            out.push(k);
        }
        assert_eq!(out.len(), 4);
        assert!(out[..2].contains(&10) && out[..2].contains(&11));
        assert_eq!(&out[2..], &[30, 50]);
        assert_eq!(f.peek_priority(), None);
    }

    #[test]
    fn frontier_heap_fallback_orders_by_priority() {
        let mut f: Frontier<u32> = Frontier::new(u64::MAX);
        assert!(matches!(f, Frontier::Heap(_)));
        f.push(1 << 40, 2, 7);
        f.push(3, 1, 3);
        assert_eq!(f.peek_priority(), Some(3));
        assert_eq!(f.pop(), Some((3, 1, 3)));
        assert_eq!(f.pop(), Some((1 << 40, 2, 7)));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn frontier_tolerates_push_below_cursor() {
        let mut f: Frontier<u32> = Frontier::new(100);
        f.push(5, 50, 5);
        assert_eq!(f.pop(), Some((5, 50, 5)));
        f.push(2, 20, 2);
        assert_eq!(f.pop(), Some((2, 20, 2)));
    }

    #[test]
    fn heuristic_counts_remaining_computes() {
        let dag = generators::chain(4);
        let inst = MppInstance::new(&dag, 1, 2, 3);
        let h = AdmissibleHeuristic::for_mpp(&inst);
        // Nothing pebbled: all 4 nodes must be computed.
        assert_eq!(h.eval(0, 0, 0), Some(4));
        // Node 2 red: the closure from sink 3 stops there; 3 remains.
        assert_eq!(h.eval(1 << 2, 0, 0), Some(1));
        // Sink pebbled: done.
        assert_eq!(h.eval(1 << 3, 0, 0), Some(0));
        assert_eq!(h.eval(0, 1 << 3, 0), Some(0));
    }

    #[test]
    fn heuristic_divides_by_k() {
        let dag = generators::independent_chains(2, 3); // 6 nodes
        let inst = MppInstance::new(&dag, 2, 2, 1);
        let h = AdmissibleHeuristic::for_mpp(&inst);
        assert_eq!(h.eval(0, 0, 0), Some(3));
    }

    #[test]
    fn heuristic_hong_kung_forces_loads_and_stores() {
        use crate::{CostModel, SppVariant};
        let dag = generators::chain(3);
        let inst = SppInstance {
            dag: &dag,
            r: 2,
            model: CostModel::spp_io_only(2),
            variant: SppVariant::hong_kung(),
        };
        let h = AdmissibleHeuristic::for_spp(&inst);
        // Source (node 0) starts blue; sink (node 2) must end blue.
        // Needed = {1, 2}; node 0 is a forced load; sink store missing:
        // h = 0 computes + g(load 0) + g(store 2) = 4.
        assert_eq!(h.eval(0, 1 << 0, 0), Some(4));
        // Everything blue: done.
        assert_eq!(h.eval(0, 0b111, 0), Some(0));
    }

    #[test]
    fn heuristic_one_shot_detects_dead_states() {
        let dag = generators::chain(2);
        let inst = SppInstance {
            dag: &dag,
            r: 2,
            model: crate::CostModel::spp_io_only(1),
            variant: crate::SppVariant::one_shot(),
        };
        let h = AdmissibleHeuristic::for_spp(&inst);
        // Node 0 computed then deleted without a store, sink unpebbled:
        // node 0 must be re-acquired but cannot be. Dead.
        assert_eq!(h.eval(0, 0, 1 << 0), None);
        // Same mask but node 0 still red: fine.
        assert!(h.eval(1 << 0, 0, 1 << 0).is_some());
    }
}
