//! Shared A\* search engine for the exact SPP and MPP solvers.
//!
//! Both solvers explore the same kind of space — packed `u64` pebbling
//! configurations connected by small-integer-cost rule applications
//! (`0` for deletions, `compute` for R3, `g` for R1/R2) — so the
//! machinery lives here once:
//!
//! - `Frontier`: a monotone **bucket queue** indexed by `f = d + h`.
//!   Edge costs are tiny integers, so the full priority range is at most
//!   the trivial upper bound of Lemma 1; `pop` is a cursor advance and
//!   `push` a `Vec` append, with zero per-operation heap rebalancing.
//!   Instances whose cost range would make buckets wasteful (huge `g`)
//!   fall back to a binary heap transparently.
//! - [`SearchStats`] / [`ShardStats`]: counters for the benchmark
//!   harness and trace gauges, including the packed-arena memory axis.
//!
//! The search loop itself lives in `driver.rs` (sequential and
//! hash-sharded parallel engines over the `Domain` trait), with state
//! storage in `arena.rs` (packed interning) and cross-shard messaging
//! in `spsc.rs`.
//! - [`AdmissibleHeuristic`]: the lower bound guiding A\*. See the
//!   admissibility argument on the type; it is also *consistent*, so
//!   the first settling of a state is final and the bucket cursor never
//!   moves backwards.
//!
//! A\* degenerates to the old uniform-cost search when the heuristic is
//! disabled via [`SearchConfig`], which is exactly how the equivalence
//! tests and the before/after benchmarks obtain the baseline solver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::time::Duration;

use crate::{MppInstance, PartitionMode, SppInstance};

/// Resource limits for the exact solvers.
///
/// Limits are **global**: at any thread count the budget covers the
/// whole solve, not each worker. The parallel solver enforces them
/// through shared atomic counters and a shared deadline, so
/// `max_states = 10_000` means the same thing at `threads = 1` and
/// `threads = 8`.
#[derive(Debug, Clone, Copy)]
pub struct SolveLimits {
    /// Abort after settling this many states (summed across shards).
    pub max_states: usize,
    /// Abort when this much wall-clock time has elapsed since the
    /// solve started (`None` = no deadline). Checked periodically, so
    /// overshoot is bounded by one expansion batch.
    pub deadline: Option<Duration>,
}

impl Default for SolveLimits {
    fn default() -> Self {
        SolveLimits {
            max_states: 2_000_000,
            deadline: None,
        }
    }
}

impl SolveLimits {
    /// Limits with a settled-state budget and no deadline.
    #[must_use]
    pub fn states(max_states: usize) -> Self {
        SolveLimits {
            max_states,
            ..SolveLimits::default()
        }
    }

    /// These limits with a wall-clock deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }
}

/// Tuning switches for the exact solvers.
///
/// The default enables every correctness-preserving reduction; the
/// [`SearchConfig::baseline`] configuration reproduces the original
/// plain-Dijkstra solver for equivalence testing and benchmarking.
///
/// ```
/// use rbp_core::{SearchConfig, SolveLimits};
///
/// let fast = SearchConfig::default();       // A* + symmetry + dominance
/// assert!(fast.heuristic && fast.symmetry && fast.dominance);
///
/// let reference = SearchConfig::baseline(); // plain uniform-cost search
/// assert!(!reference.heuristic && !reference.symmetry && !reference.dominance);
///
/// // The knobs compose with a state budget:
/// let bounded = fast.with_limits(SolveLimits::states(10_000));
/// assert_eq!(bounded.limits.max_states, 10_000);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// Guide the search with the admissible heuristic (A\*).
    pub heuristic: bool,
    /// Canonicalize processor-symmetric MPP states (ignored by SPP).
    pub symmetry: bool,
    /// Suppress provably dominated successors at generation time (e.g.
    /// partial rule batches that an equal-cost, pointwise-larger batch
    /// subsumes). Never changes the proven optimum; the successor-set
    /// equivalence property tests pin the soundness argument down per
    /// pruned move.
    pub dominance: bool,
    /// Worker threads. `0` or `1` runs the sequential engine; `≥ 2`
    /// runs the sharded parallel engine (HDA\*-style state ownership),
    /// which returns the same optimal costs. Capped at [`MAX_THREADS`].
    pub threads: usize,
    /// Shard-ownership strategy for the parallel engine (ignored at
    /// `threads ≤ 1`). Every mode proves the same optima; they differ
    /// only in cross-shard traffic and load balance.
    pub partition: PartitionMode,
    /// Resource limits.
    pub limits: SolveLimits,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            heuristic: true,
            symmetry: true,
            dominance: true,
            threads: 1,
            partition: PartitionMode::default(),
            limits: SolveLimits::default(),
        }
    }
}

impl SearchConfig {
    /// The unoptimized reference configuration: plain uniform-cost
    /// search over raw (label-sensitive) states.
    #[must_use]
    pub fn baseline() -> Self {
        SearchConfig {
            heuristic: false,
            symmetry: false,
            dominance: false,
            ..SearchConfig::default()
        }
    }

    /// This configuration with different limits.
    #[must_use]
    pub fn with_limits(mut self, limits: SolveLimits) -> Self {
        self.limits = limits;
        self
    }

    /// This configuration with a worker-thread count (see
    /// [`SearchConfig::threads`]).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// This configuration with a shard-ownership strategy (see
    /// [`SearchConfig::partition`]).
    #[must_use]
    pub fn with_partition(mut self, partition: PartitionMode) -> Self {
        self.partition = partition;
        self
    }
}

/// Hard cap on solver worker threads (shard count). The shard id must
/// fit the packed global-state-id layout, and pebbling searches stop
/// scaling long before this anyway.
pub const MAX_THREADS: usize = 64;

/// Why a solve stopped — distinguishes a proven answer from the
/// different ways of running out of resources.
///
/// Pre-existing callers that only look at `SearchOutcome::solution`
/// keep working; the reason disambiguates `None`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// An optimal solution was found and proven optimal.
    Solved,
    /// The reachable state space was exhausted without reaching a goal
    /// (the instance is unsolvable, e.g. a dead one-shot variant).
    Exhausted,
    /// The global `max_states` settled-state budget ran out.
    StateLimit,
    /// The wall-clock deadline in [`SolveLimits::deadline`] passed.
    Deadline,
    /// The instance is outside the solver's supported range
    /// (`n > 64`, `k > 4`, infeasible capacity).
    Unsupported,
}

impl StopReason {
    /// Short lowercase token for logs and JSON (`"solved"`,
    /// `"exhausted"`, `"state_limit"`, `"deadline"`, `"unsupported"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            StopReason::Solved => "solved",
            StopReason::Exhausted => "exhausted",
            StopReason::StateLimit => "state_limit",
            StopReason::Deadline => "deadline",
            StopReason::Unsupported => "unsupported",
        }
    }
}

/// Counters describing one exact-solve run.
///
/// Accumulated locally in the search hot loop and emitted through
/// `rbp-trace` once per solve (see [`SearchStats::trace`]), so enabling
/// tracing never adds per-relaxation overhead.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// States settled (popped with an up-to-date distance and expanded).
    pub settled: u64,
    /// Queue pushes (each corresponds to a distance improvement).
    pub pushed: u64,
    /// Stale queue entries skipped on pop.
    pub stale: u64,
    /// High-water mark of the frontier size (peak open-queue length).
    pub frontier_peak: u64,
    /// Whether the frontier fell back from the bucket queue to the
    /// binary heap (priority range exceeded the bucket ceiling).
    pub heap_fallback: bool,
    /// The admissible heuristic's value at the start state (zero when
    /// the heuristic is disabled). `h_root / OPT` measures heuristic
    /// tightness: 1.0 would be a perfect lower bound.
    pub h_root: u64,
    /// Distinct states interned into the state arena(s) — discovered
    /// states, settled or not.
    pub arena_states: u64,
    /// Peak bytes held by the state arena(s): packed key words, node
    /// metadata, and the interning tables, summed over shards. The
    /// memory axis of the before/after benchmarks;
    /// [`SearchStats::bytes_per_state`] derives the per-state figure.
    pub arena_peak_bytes: u64,
    /// Successors handed to another shard over an SPSC channel
    /// (always zero in the sequential engine).
    pub cross_sends: u64,
    /// Ring blocks those sends were batched into; `cross_sends /
    /// send_blocks` is the achieved batching factor.
    pub send_blocks: u64,
    /// Successors kept on the shard that generated them (the locality
    /// the partition bought; zero in the sequential engine).
    pub local_succs: u64,
    /// Foreign states expanded speculatively by an otherwise-starving
    /// shard (work stealing by duplication; never affects optimality).
    pub foreign_expansions: u64,
    /// Worker threads the solve actually used.
    pub threads: u64,
}

impl SearchStats {
    /// Arena bytes per interned state (`arena_peak_bytes /
    /// arena_states`), the compactness figure the memory benchmarks
    /// track. Zero before any state is interned.
    #[must_use]
    pub fn bytes_per_state(&self) -> f64 {
        if self.arena_states == 0 {
            0.0
        } else {
            self.arena_peak_bytes as f64 / self.arena_states as f64
        }
    }

    /// Fraction of generated successors that stayed on their shard
    /// (`local_succs / (local_succs + cross_sends)`). Zero when nothing
    /// was generated; 1.0 would be a perfectly local partition.
    #[must_use]
    pub fn locality_fraction(&self) -> f64 {
        let total = self.local_succs + self.cross_sends;
        if total == 0 {
            0.0
        } else {
            self.local_succs as f64 / total as f64
        }
    }

    /// Emits these counters through the global tracer under
    /// `solver.<which>.*` names, plus the heuristic-tightness gauge
    /// when the achieved optimum is known. No-op while tracing is
    /// disabled.
    pub fn trace(&self, which: &str, total: Option<u64>) {
        if !rbp_trace::enabled() {
            return;
        }
        rbp_trace::counter(&format!("solver.{which}.settled"), self.settled);
        rbp_trace::counter(&format!("solver.{which}.pushed"), self.pushed);
        rbp_trace::counter(&format!("solver.{which}.stale"), self.stale);
        rbp_trace::gauge(
            &format!("solver.{which}.frontier_peak"),
            self.frontier_peak as f64,
        );
        rbp_trace::counter(
            &format!("solver.{which}.heap_fallback"),
            u64::from(self.heap_fallback),
        );
        rbp_trace::counter(&format!("solver.{which}.arena_states"), self.arena_states);
        rbp_trace::gauge(
            &format!("solver.{which}.arena_bytes"),
            self.arena_peak_bytes as f64,
        );
        rbp_trace::gauge(
            &format!("solver.{which}.bytes_per_state"),
            self.bytes_per_state(),
        );
        rbp_trace::counter(&format!("solver.{which}.cross_sends"), self.cross_sends);
        rbp_trace::counter(&format!("solver.{which}.send_blocks"), self.send_blocks);
        rbp_trace::counter(
            &format!("solver.{which}.foreign_expansions"),
            self.foreign_expansions,
        );
        rbp_trace::gauge(
            &format!("solver.{which}.locality_fraction"),
            self.locality_fraction(),
        );
        rbp_trace::gauge(&format!("solver.{which}.threads"), self.threads as f64);
        if let Some(total) = total {
            if total > 0 {
                rbp_trace::gauge(
                    &format!("solver.{which}.h_tightness"),
                    self.h_root as f64 / total as f64,
                );
            }
        }
    }
}

/// Per-shard counters from one parallel solve (empty for sequential
/// runs). Emitted as `solver.<which>.shard<i>.*` trace gauges via
/// [`trace_shards`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (also the owning worker thread's index).
    pub shard: u64,
    /// States this shard settled.
    pub settled: u64,
    /// Frontier pushes on this shard.
    pub pushed: u64,
    /// Successors this shard sent to other shards.
    pub sent: u64,
    /// Ring blocks those sends were flushed in.
    pub send_blocks: u64,
    /// Successors this shard generated and kept (it owned them).
    pub local_succs: u64,
    /// Messages this shard received from other shards.
    pub received: u64,
    /// Received messages that did not improve any distance (duplicates
    /// of work already done, e.g. re-deliveries of speculatively
    /// expanded states).
    pub dup_msgs: u64,
    /// Foreign states this shard expanded speculatively while its own
    /// frontier was empty.
    pub foreign_expansions: u64,
    /// Distinct states interned into this shard's arena.
    pub arena_states: u64,
    /// Bytes held by this shard's arena (keys + metadata + table).
    pub arena_bytes: u64,
}

impl ShardStats {
    /// Fraction of this shard's generated successors it owned itself.
    #[must_use]
    pub fn locality_fraction(&self) -> f64 {
        let total = self.local_succs + self.sent;
        if total == 0 {
            0.0
        } else {
            self.local_succs as f64 / total as f64
        }
    }

    /// Fraction of received messages that were duplicates
    /// (`dup_msgs / received`). Zero when nothing was received.
    #[must_use]
    pub fn duplicate_rate(&self) -> f64 {
        if self.received == 0 {
            0.0
        } else {
            self.dup_msgs as f64 / self.received as f64
        }
    }
}

/// Emits per-shard counters as `solver.<which>.shard<i>.{settled,
/// pushed,sent,send_blocks,foreign_expansions,locality_fraction,
/// duplicate_rate,arena_bytes}` trace gauges. No-op while tracing is
/// disabled or for sequential solves (empty slice).
pub fn trace_shards(which: &str, shards: &[ShardStats]) {
    if !rbp_trace::enabled() {
        return;
    }
    for s in shards {
        let i = s.shard;
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.settled"),
            s.settled as f64,
        );
        rbp_trace::gauge(&format!("solver.{which}.shard{i}.pushed"), s.pushed as f64);
        rbp_trace::gauge(&format!("solver.{which}.shard{i}.sent"), s.sent as f64);
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.send_blocks"),
            s.send_blocks as f64,
        );
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.foreign_expansions"),
            s.foreign_expansions as f64,
        );
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.locality_fraction"),
            s.locality_fraction(),
        );
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.duplicate_rate"),
            s.duplicate_rate(),
        );
        rbp_trace::gauge(
            &format!("solver.{which}.shard{i}.arena_bytes"),
            s.arena_bytes as f64,
        );
    }
}

/// Returns whether per-phase wall-clock timing is enabled via the
/// `RBP_PHASE_PROF` environment variable (any value other than empty
/// or `0`). Read once and cached for the process lifetime.
///
/// Timing is opt-in because it reads the clock twice per successor —
/// enabling it unconditionally would pollute the very benchmarks the
/// profile exists to explain. The phase *counters* (memo hits, delta
/// fast-paths, suppressed idles, emissions) are plain integer
/// increments and are always accumulated.
#[must_use]
pub fn phase_timing_enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED
        .get_or_init(|| std::env::var("RBP_PHASE_PROF").is_ok_and(|v| !v.is_empty() && v != "0"))
}

/// Phase-level accounting for the expansion hot path, aggregated over a
/// whole solve (summed across shards for parallel runs).
///
/// The `*_ns` fields partition the wall-clock time spent inside
/// `Domain::expand` plus the driver's per-successor work; they are only
/// populated when [`phase_timing_enabled`] (env `RBP_PHASE_PROF=1`).
/// The count fields are always populated. Emitted through `rbp-trace`
/// as `solver.phase.*` once per solve (see [`PhaseStats::trace`]) and
/// rendered by `rbp report` as the "Hot path" section.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStats {
    /// Time sorting red masks into the canonical processor order.
    pub canonicalize_ns: u64,
    /// Time evaluating the admissible bound (delta and from-scratch).
    pub heuristic_ns: u64,
    /// Time enumerating rule batches and building successor keys:
    /// expand wall-clock minus the other in-expand phases.
    pub succ_gen_ns: u64,
    /// Time packing, hashing, and interning successors into the arena.
    pub hash_intern_ns: u64,
    /// Time pushing improved successors onto the frontier.
    pub queue_ns: u64,
    /// Canonicalizations satisfied by the sorted-order memo check
    /// (the red projection was already canonical; no sort ran).
    pub canon_memo_hits: u64,
    /// Canonicalizations that had to sort the red masks.
    pub canon_sorts: u64,
    /// Heuristic evaluations answered by the O(1) incremental delta
    /// path (no needed-set closure walk).
    pub heur_delta_fast: u64,
    /// Heuristic evaluations that ran the from-scratch closure walk.
    pub heur_full_evals: u64,
    /// Successors suppressed by dominance pruning (idle processors that
    /// had an available action, and dominated single moves).
    pub idle_suppressed: u64,
    /// Successors emitted to the driver (post-pruning).
    pub emitted: u64,
    /// Emitted successors the driver discarded before interning because
    /// `g + h` exceeded the beam-probe upper bound (or the successor
    /// was provably dead).
    pub ub_pruned: u64,
}

impl PhaseStats {
    /// Adds `other`'s counters into `self` (shard aggregation).
    pub fn merge(&mut self, other: &PhaseStats) {
        self.canonicalize_ns += other.canonicalize_ns;
        self.heuristic_ns += other.heuristic_ns;
        self.succ_gen_ns += other.succ_gen_ns;
        self.hash_intern_ns += other.hash_intern_ns;
        self.queue_ns += other.queue_ns;
        self.canon_memo_hits += other.canon_memo_hits;
        self.canon_sorts += other.canon_sorts;
        self.heur_delta_fast += other.heur_delta_fast;
        self.heur_full_evals += other.heur_full_evals;
        self.idle_suppressed += other.idle_suppressed;
        self.emitted += other.emitted;
        self.ub_pruned += other.ub_pruned;
    }

    /// Sum of the explicitly timed phases (everything but the derived
    /// successor-generation remainder).
    #[must_use]
    pub fn timed_ns(&self) -> u64 {
        self.canonicalize_ns + self.heuristic_ns + self.hash_intern_ns + self.queue_ns
    }

    /// Emits these counters through the global tracer under
    /// `solver.phase.<which>.*` names. The `*_ns` gauges are only
    /// emitted when phase timing ran (any nonzero timer); counts are
    /// always emitted. No-op while tracing is disabled.
    pub fn trace(&self, which: &str) {
        if !rbp_trace::enabled() {
            return;
        }
        rbp_trace::counter(&format!("solver.phase.{which}.emitted"), self.emitted);
        rbp_trace::counter(
            &format!("solver.phase.{which}.idle_suppressed"),
            self.idle_suppressed,
        );
        rbp_trace::counter(
            &format!("solver.phase.{which}.canon_memo_hits"),
            self.canon_memo_hits,
        );
        rbp_trace::counter(
            &format!("solver.phase.{which}.canon_sorts"),
            self.canon_sorts,
        );
        rbp_trace::counter(
            &format!("solver.phase.{which}.heur_delta_fast"),
            self.heur_delta_fast,
        );
        rbp_trace::counter(
            &format!("solver.phase.{which}.heur_full_evals"),
            self.heur_full_evals,
        );
        rbp_trace::counter(&format!("solver.phase.{which}.ub_pruned"), self.ub_pruned);
        if self.timed_ns() + self.succ_gen_ns > 0 {
            rbp_trace::gauge(
                &format!("solver.phase.{which}.canonicalize_ns"),
                self.canonicalize_ns as f64,
            );
            rbp_trace::gauge(
                &format!("solver.phase.{which}.heuristic_ns"),
                self.heuristic_ns as f64,
            );
            rbp_trace::gauge(
                &format!("solver.phase.{which}.succ_gen_ns"),
                self.succ_gen_ns as f64,
            );
            rbp_trace::gauge(
                &format!("solver.phase.{which}.hash_intern_ns"),
                self.hash_intern_ns as f64,
            );
            rbp_trace::gauge(
                &format!("solver.phase.{which}.queue_ns"),
                self.queue_ns as f64,
            );
        }
    }
}

/// Scratch-embedded phase profiler the `Domain` implementations
/// accumulate into during [`expand`](crate::engine::Domain::expand).
///
/// Owns a [`PhaseStats`] plus the cached timing flag; the driver drains
/// it once per worker via `Domain::take_phases`, so the hot loop never
/// touches shared state.
#[derive(Debug, Clone)]
pub struct PhaseProf {
    timing: bool,
    /// The counters being accumulated.
    pub stats: PhaseStats,
}

impl Default for PhaseProf {
    fn default() -> Self {
        PhaseProf {
            timing: phase_timing_enabled(),
            stats: PhaseStats::default(),
        }
    }
}

impl PhaseProf {
    /// Starts a phase timer; `None` (free) unless `RBP_PHASE_PROF` is
    /// set.
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<std::time::Instant> {
        if self.timing {
            Some(std::time::Instant::now())
        } else {
            None
        }
    }

    /// Accounts a started timer to the canonicalize phase.
    #[inline]
    pub fn stop_canon(&mut self, t0: Option<std::time::Instant>) {
        if let Some(t0) = t0 {
            self.stats.canonicalize_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Accounts a started timer to the heuristic phase.
    #[inline]
    pub fn stop_heur(&mut self, t0: Option<std::time::Instant>) {
        if let Some(t0) = t0 {
            self.stats.heuristic_ns += t0.elapsed().as_nanos() as u64;
        }
    }

    /// Drains the accumulated counters, leaving zeros behind.
    pub fn take(&mut self) -> PhaseStats {
        std::mem::take(&mut self.stats)
    }
}

/// Result of an exact solve together with the search counters that
/// produced it — the unit the before/after benchmarks compare.
#[derive(Debug, Clone)]
pub struct SearchOutcome<T> {
    /// The optimal solution, or `None` when the instance is infeasible,
    /// too large, provably unsolvable, or a resource limit was hit
    /// (see [`SearchOutcome::reason`] for which).
    pub solution: Option<T>,
    /// Search-effort counters for this run.
    pub stats: SearchStats,
    /// Why the search stopped; disambiguates `solution == None`
    /// between "proven unsolvable", "state budget", and "deadline".
    pub reason: StopReason,
    /// Per-shard counters (empty for sequential solves).
    pub shards: Vec<ShardStats>,
    /// Phase-level hot-path accounting (summed across shards).
    pub phases: PhaseStats,
}

/// A compact one-word move encoding; the solvers define the bit layout.
pub type PackedMove = u32;

const BUCKET_CAP: u64 = 1 << 22;

/// Min-priority frontier: bucket queue for small priority ranges, binary
/// heap fallback otherwise. Entries carry the g-value at push time so
/// stale entries can be recognized without a decrease-key operation.
pub(crate) enum Frontier<K> {
    Buckets {
        buckets: Vec<Vec<(K, u64)>>,
        cursor: usize,
        len: usize,
    },
    Heap(BinaryHeap<(Reverse<u64>, K, u64)>),
}

impl<K: Copy + Ord> Frontier<K> {
    /// `max_priority` should upper-bound every `f` value ever pushed
    /// (e.g. the Lemma 1 trivial upper bound); it only selects the
    /// representation, never correctness.
    pub(crate) fn new(max_priority: u64) -> Self {
        if max_priority <= BUCKET_CAP {
            Frontier::Buckets {
                buckets: Vec::new(),
                cursor: 0,
                len: 0,
            }
        } else {
            Frontier::Heap(BinaryHeap::new())
        }
    }

    pub(crate) fn push(&mut self, priority: u64, key: K, dist: u64) {
        match self {
            Frontier::Buckets {
                buckets,
                cursor,
                len,
            } => {
                let idx = usize::try_from(priority).expect("priority fits usize");
                if idx >= buckets.len() {
                    buckets.resize_with(idx + 1, Vec::new);
                }
                buckets[idx].push((key, dist));
                // A consistent heuristic never pushes below the cursor;
                // tolerate it anyway so a merely-admissible heuristic
                // still yields correct results.
                *cursor = (*cursor).min(idx);
                *len += 1;
            }
            Frontier::Heap(heap) => heap.push((Reverse(priority), key, dist)),
        }
    }

    /// Pops the minimum-priority entry as `(priority, key, dist)`.
    pub(crate) fn pop(&mut self) -> Option<(u64, K, u64)> {
        match self {
            Frontier::Buckets {
                buckets,
                cursor,
                len,
            } => {
                if *len == 0 {
                    return None;
                }
                while buckets[*cursor].is_empty() {
                    *cursor += 1;
                }
                *len -= 1;
                buckets[*cursor].pop().map(|(k, d)| (*cursor as u64, k, d))
            }
            Frontier::Heap(heap) => heap.pop().map(|(Reverse(p), k, d)| (p, k, d)),
        }
    }

    /// The minimum priority currently queued, without popping it.
    /// Conservative in the presence of stale entries: may report a
    /// priority whose entry will be discarded on pop, never one larger
    /// than the true minimum.
    pub(crate) fn peek_priority(&mut self) -> Option<u64> {
        match self {
            Frontier::Buckets {
                buckets,
                cursor,
                len,
            } => {
                if *len == 0 {
                    return None;
                }
                while buckets[*cursor].is_empty() {
                    *cursor += 1;
                }
                Some(*cursor as u64)
            }
            Frontier::Heap(heap) => heap.peek().map(|(Reverse(p), _, _)| *p),
        }
    }

    /// Current number of queued (possibly stale) entries.
    pub(crate) fn len(&self) -> usize {
        match self {
            Frontier::Buckets { len, .. } => *len,
            Frontier::Heap(heap) => heap.len(),
        }
    }
}

/// An admissible, consistent lower bound on the remaining cost of a
/// pebbling search state, shared by both exact solvers and exported to
/// `rbp-bounds`.
///
/// Let `pebbled = red_all ∪ blue` and let the **needed set** `A` be the
/// upward closure of the unpebbled sinks through unpebbled nodes
/// (following predecessor edges). Every `v ∈ A` must be computed at
/// least once in *any* completion: an unpebbled sink must clearly be
/// computed (it cannot be loaded — it is not blue, and blue pebbles
/// only appear by storing red ones, which requires acquiring red
/// first); and if `v ∈ A` must be computed, an unpebbled predecessor
/// `p` must hold a red pebble at that moment, whose first acquisition
/// must itself be a compute by the same argument. A compute step
/// finishes at most `k` nodes, and a computable node has all
/// predecessors red — it is a *minimal* element of `A` — so one step
/// removes at most `k` nodes from `A`. Hence
/// `ceil(|A| / k) · compute` remaining compute cost, and the bound
/// drops by at most `compute` per compute step (consistency).
///
/// A re-entry term strengthens the compute count: every predecessor of
/// `A` that is blue (or green, folded into the blue role) but not red
/// must re-enter fast memory before its consumer computes, occupying a
/// slot in some load batch (cost `load_cost`) or — where recomputing is
/// legal — a slot in some compute batch. With `a = |A|`, `forced` the
/// uncomputable such predecessors (Hong–Kung sources, spent one-shot
/// nodes) and `optional` the computable ones, any completion with `x`
/// compute steps and `y` load steps satisfies `kx ≥ a + rb` and
/// `ky ≥ forced + optional − rb` for *some* split `rb`, so
///
/// ```text
/// h ≥ min over rb of ceil((a+rb)/k)·compute
///                  + ceil((forced+optional−rb)/k)·load_cost
/// ```
///
/// is admissible (the slot counts bound disjoint step classes: the
/// re-entering nodes are pebbled, hence disjoint from `A`). Under the
/// Hong–Kung sink convention every non-blue sink additionally forces a
/// store. This is the Lemma 1 trivial I/O reasoning applied to the
/// not-yet-red values a completion still has to touch.
///
/// [`AdmissibleHeuristic::eval`] returns `None` for provably dead
/// states (a needed node can never be computed again), which the
/// one-shot variant uses as exact pruning.
#[derive(Debug, Clone)]
pub struct AdmissibleHeuristic {
    preds: Vec<u64>,
    sinks: u64,
    k: u64,
    compute_cost: u64,
    g: u64,
    /// Cheapest way to re-redden one batch of pebbled values — `g`,
    /// except in the three-level game where the green tier may undercut
    /// it (`min(g, green_cost)`).
    load_cost: u64,
    /// Nodes rule R3 can never fire on (Hong–Kung sources).
    no_compute: u64,
    /// One-shot variant: nodes in `computed` cannot be recomputed.
    one_shot: bool,
    /// Hong–Kung sink convention: sinks must end blue.
    store_sinks: bool,
}

impl AdmissibleHeuristic {
    /// The heuristic for an MPP instance (base game: everything is
    /// computable, sinks may end red or blue).
    #[must_use]
    pub fn for_mpp(instance: &MppInstance) -> Self {
        let (preds, sinks) = masks(instance.dag);
        AdmissibleHeuristic {
            preds,
            sinks,
            k: instance.k as u64,
            compute_cost: instance.model.compute,
            g: instance.model.g,
            load_cost: instance.model.g,
            no_compute: 0,
            one_shot: false,
            store_sinks: false,
        }
    }

    /// Caps the re-entry (load) cost used by the bound — the
    /// three-level game reloads green-held values at `green_cost`,
    /// which may undercut the blue `g`.
    #[must_use]
    pub fn with_load_cost(mut self, load_cost: u64) -> Self {
        self.load_cost = load_cost;
        self
    }

    /// The heuristic for an SPP instance, honoring its variant flags.
    #[must_use]
    pub fn for_spp(instance: &SppInstance) -> Self {
        let (preds, sinks) = masks(instance.dag);
        let no_compute = if instance.variant.sources_start_blue {
            instance
                .dag
                .sources()
                .iter()
                .fold(0u64, |m, s| m | (1u64 << s.index()))
        } else {
            0
        };
        AdmissibleHeuristic {
            preds,
            sinks,
            k: 1,
            compute_cost: instance.model.compute,
            g: instance.model.g,
            load_cost: instance.model.g,
            no_compute,
            one_shot: instance.variant.one_shot,
            store_sinks: instance.variant.sinks_need_blue,
        }
    }

    /// Evaluates the bound at a packed state. `red_all` is the union of
    /// all red masks, `computed` the ever-computed mask (zero unless the
    /// one-shot variant tracks it). `None` means the state admits no
    /// completion at all.
    #[must_use]
    pub fn eval(&self, red_all: u64, blue: u64, computed: u64) -> Option<u64> {
        let pebbled = red_all | blue;
        let mut need = self.sinks & !pebbled;
        let mut stack = need;
        let mut pred_union = 0u64;
        while stack != 0 {
            let v = stack.trailing_zeros() as usize;
            stack &= stack - 1;
            let ps = self.preds[v];
            pred_union |= ps;
            let fresh = ps & !pebbled & !need;
            need |= fresh;
            stack |= fresh;
        }
        let uncomputable = self.no_compute | if self.one_shot { computed } else { 0 };
        if need & uncomputable != 0 {
            return None;
        }
        Some(self.terms(need, pred_union, red_all, blue, uncomputable))
    }

    /// The bound's arithmetic given the needed set, the union of its
    /// predecessor sets, and the state masks: compute slots for `A`
    /// plus re-entry slots for its blue-only predecessors (minimized
    /// over the load/recompute split), plus forced sink stores.
    #[inline]
    fn terms(&self, need: u64, pred_union: u64, red_all: u64, blue: u64, uncomputable: u64) -> u64 {
        let a = u64::from(need.count_ones());
        // Blue-only predecessors of needed nodes: each must re-enter
        // fast memory, by a load batch slot or (when recomputable) a
        // compute batch slot.
        let reenter = pred_union & blue & !red_all;
        let forced = u64::from((reenter & uncomputable).count_ones());
        let optional = u64::from((reenter & !uncomputable).count_ones());
        let mut h = u64::MAX;
        for rb in 0..=optional {
            let c = (a + rb).div_ceil(self.k) * self.compute_cost
                + (forced + optional - rb).div_ceil(self.k) * self.load_cost;
            h = h.min(c);
        }
        if self.store_sinks {
            let missing_stores = self.sinks & !blue;
            h += u64::from(missing_stores.count_ones()).div_ceil(self.k) * self.g;
        }
        h
    }

    /// Prepares a per-parent context for [`AdmissibleHeuristic::
    /// eval_delta`]: one from-scratch evaluation whose needed set is
    /// retained so each successor can be answered by a bitmask delta.
    /// Returns `None` iff the parent state is dead (same contract as
    /// `eval`).
    #[must_use]
    pub fn prepare(&self, red_all: u64, blue: u64, computed: u64) -> Option<HeurCtx> {
        let pebbled = red_all | blue;
        let mut need = self.sinks & !pebbled;
        let mut stack = need;
        let mut pred_union = 0u64;
        while stack != 0 {
            let v = stack.trailing_zeros() as usize;
            stack &= stack - 1;
            let ps = self.preds[v];
            pred_union |= ps;
            let fresh = ps & !pebbled & !need;
            need |= fresh;
            stack |= fresh;
        }
        let uncomputable = self.no_compute | if self.one_shot { computed } else { 0 };
        if need & uncomputable != 0 {
            return None;
        }
        let h = self.terms(need, pred_union, red_all, blue, uncomputable);
        debug_assert_eq!(Some(h), self.eval(red_all, blue, computed));
        Some(HeurCtx {
            pebbled,
            need,
            pred_union,
            h,
            computed,
        })
    }

    /// Evaluates the bound at a successor of the state `ctx` was
    /// prepared for, reusing the parent's needed set instead of
    /// re-walking the closure when the move permits it. Increments the
    /// `heur_delta_fast` / `heur_full_evals` counters in `stats`.
    ///
    /// The fast paths skip the closure walk — the expensive part — and
    /// re-run only the O(1)-ish `terms` arithmetic on
    /// the cached needed set. They are exact, not approximations (a
    /// `debug_assert` cross-checks against
    /// [`AdmissibleHeuristic::eval`]):
    ///
    /// - **Needed set unchanged**: if no node was unpebbled, `computed`
    ///   is unchanged, and no newly pebbled node lies in `A`, then
    ///   `A' = A` (the closure only stops *earlier* at pebbled nodes,
    ///   and it stopped at none of the new ones) and its predecessor
    ///   union is unchanged; only the red/blue masks feeding the
    ///   re-entry and store terms moved.
    /// - **Shrink only**: if nodes `hit = added ∩ A` were pebbled and no
    ///   surviving member of `A` reaches the sinks *through* a hit node
    ///   — i.e. `preds⁻¹(hit) ∩ A ∩ ¬added = ∅` — then `A' = A \
    ///   added` exactly: any path certifying membership of `v ∈ A'`
    ///   in the parent closure either avoided `added` (still valid) or
    ///   its first `added` node `w` has an unpebbled `A`-predecessor on
    ///   the path, contradicting the cut condition. The predecessor
    ///   union is rebuilt by one pass over the surviving members.
    ///
    /// Both paths are alive by inheritance: `A' ⊆ A` with the same
    /// uncomputable mask, and the parent passed the dead check.
    /// Everything else — a move that unpebbled a node (red eviction of
    /// the last copy) or changed `computed` — re-runs the from-scratch
    /// evaluation.
    #[must_use]
    pub fn eval_delta(
        &self,
        ctx: &HeurCtx,
        red_all: u64,
        blue: u64,
        computed: u64,
        stats: &mut PhaseStats,
    ) -> Option<u64> {
        let result = self.eval_delta_inner(ctx, red_all, blue, computed, stats);
        debug_assert_eq!(
            result,
            self.eval(red_all, blue, computed),
            "incremental heuristic diverged from from-scratch evaluation"
        );
        result
    }

    fn eval_delta_inner(
        &self,
        ctx: &HeurCtx,
        red_all: u64,
        blue: u64,
        computed: u64,
        stats: &mut PhaseStats,
    ) -> Option<u64> {
        let pebbled = red_all | blue;
        if ctx.pebbled & !pebbled == 0 && computed == ctx.computed {
            let uncomputable = self.no_compute | if self.one_shot { computed } else { 0 };
            let added = pebbled & !ctx.pebbled;
            let hit = added & ctx.need;
            if hit == 0 {
                stats.heur_delta_fast += 1;
                return Some(self.terms(ctx.need, ctx.pred_union, red_all, blue, uncomputable));
            }
            // Union of predecessor sets of the hit nodes: the only
            // nodes whose membership proof could route through `hit`.
            let mut cut_preds = 0u64;
            let mut m = hit;
            while m != 0 {
                let v = m.trailing_zeros() as usize;
                m &= m - 1;
                cut_preds |= self.preds[v];
            }
            if cut_preds & ctx.need & !added == 0 {
                stats.heur_delta_fast += 1;
                let need = ctx.need & !added;
                let mut pred_union = 0u64;
                let mut m = need;
                while m != 0 {
                    let v = m.trailing_zeros() as usize;
                    m &= m - 1;
                    pred_union |= self.preds[v];
                }
                return Some(self.terms(need, pred_union, red_all, blue, uncomputable));
            }
        }
        stats.heur_full_evals += 1;
        self.eval(red_all, blue, computed)
    }
}

/// Per-parent context for [`AdmissibleHeuristic::eval_delta`]: the
/// parent's pebbled mask, needed set, and bound, cached by
/// [`AdmissibleHeuristic::prepare`] once per expansion.
#[derive(Debug, Clone, Copy)]
pub struct HeurCtx {
    pebbled: u64,
    need: u64,
    pred_union: u64,
    h: u64,
    computed: u64,
}

impl HeurCtx {
    /// The parent's heuristic value (what `eval` returned for it).
    #[must_use]
    pub fn h(&self) -> u64 {
        self.h
    }
}

fn masks(dag: &rbp_dag::Dag) -> (Vec<u64>, u64) {
    let preds = dag
        .nodes()
        .map(|v| {
            dag.preds(v)
                .iter()
                .fold(0u64, |m, p| m | (1u64 << p.index()))
        })
        .collect();
    let sinks = dag
        .sinks()
        .iter()
        .fold(0u64, |m, s| m | (1u64 << s.index()));
    (preds, sinks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbp_dag::generators;

    #[test]
    fn frontier_bucket_orders_by_priority() {
        let mut f: Frontier<u32> = Frontier::new(100);
        assert!(matches!(f, Frontier::Buckets { .. }));
        f.push(5, 50, 5);
        f.push(1, 10, 1);
        f.push(3, 30, 3);
        f.push(1, 11, 1);
        assert_eq!(f.peek_priority(), Some(1));
        let mut out = Vec::new();
        while let Some((p, k, d)) = f.pop() {
            assert_eq!(p, d, "test entries carry priority as dist");
            out.push(k);
        }
        assert_eq!(out.len(), 4);
        assert!(out[..2].contains(&10) && out[..2].contains(&11));
        assert_eq!(&out[2..], &[30, 50]);
        assert_eq!(f.peek_priority(), None);
    }

    #[test]
    fn frontier_heap_fallback_orders_by_priority() {
        let mut f: Frontier<u32> = Frontier::new(u64::MAX);
        assert!(matches!(f, Frontier::Heap(_)));
        f.push(1 << 40, 2, 7);
        f.push(3, 1, 3);
        assert_eq!(f.peek_priority(), Some(3));
        assert_eq!(f.pop(), Some((3, 1, 3)));
        assert_eq!(f.pop(), Some((1 << 40, 2, 7)));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn frontier_tolerates_push_below_cursor() {
        let mut f: Frontier<u32> = Frontier::new(100);
        f.push(5, 50, 5);
        assert_eq!(f.pop(), Some((5, 50, 5)));
        f.push(2, 20, 2);
        assert_eq!(f.pop(), Some((2, 20, 2)));
    }

    #[test]
    fn heuristic_counts_remaining_computes() {
        let dag = generators::chain(4);
        let inst = MppInstance::new(&dag, 1, 2, 3);
        let h = AdmissibleHeuristic::for_mpp(&inst);
        // Nothing pebbled: all 4 nodes must be computed.
        assert_eq!(h.eval(0, 0, 0), Some(4));
        // Node 2 red: the closure from sink 3 stops there; 3 remains.
        assert_eq!(h.eval(1 << 2, 0, 0), Some(1));
        // Sink pebbled: done.
        assert_eq!(h.eval(1 << 3, 0, 0), Some(0));
        assert_eq!(h.eval(0, 1 << 3, 0), Some(0));
    }

    #[test]
    fn heuristic_divides_by_k() {
        let dag = generators::independent_chains(2, 3); // 6 nodes
        let inst = MppInstance::new(&dag, 2, 2, 1);
        let h = AdmissibleHeuristic::for_mpp(&inst);
        assert_eq!(h.eval(0, 0, 0), Some(3));
    }

    #[test]
    fn heuristic_hong_kung_forces_loads_and_stores() {
        use crate::{CostModel, SppVariant};
        let dag = generators::chain(3);
        let inst = SppInstance {
            dag: &dag,
            r: 2,
            model: CostModel::spp_io_only(2),
            variant: SppVariant::hong_kung(),
        };
        let h = AdmissibleHeuristic::for_spp(&inst);
        // Source (node 0) starts blue; sink (node 2) must end blue.
        // Needed = {1, 2}; node 0 is a forced load; sink store missing:
        // h = 0 computes + g(load 0) + g(store 2) = 4.
        assert_eq!(h.eval(0, 1 << 0, 0), Some(4));
        // Everything blue: done.
        assert_eq!(h.eval(0, 0b111, 0), Some(0));
    }

    #[test]
    fn delta_heuristic_agrees_with_full_eval_exhaustively() {
        // Every parent mask × every single-node addition, in both the
        // "new red" and "new blue" directions. This is the release-mode
        // pin of the debug_assert cross-check inside eval_delta.
        let dag = generators::layered_random(3, 3, 2, 7);
        let n = dag.n();
        assert!(n <= 10, "exhaustive test wants a small dag");
        let inst = MppInstance::new(&dag, 2, 3, 2);
        let h = AdmissibleHeuristic::for_mpp(&inst);
        let mut stats = PhaseStats::default();
        for m in 0u64..(1 << n) {
            let ctx = h.prepare(m, 0, 0).expect("MPP states are never dead");
            assert_eq!(ctx.h(), h.eval(m, 0, 0).unwrap());
            for v in 0..n {
                let bit = 1u64 << v;
                if m & bit != 0 {
                    continue;
                }
                // Compute/load-like move: node v becomes red.
                assert_eq!(
                    h.eval_delta(&ctx, m | bit, 0, 0, &mut stats),
                    h.eval(m | bit, 0, 0)
                );
                // Blue-side move: node v becomes blue instead.
                assert_eq!(h.eval_delta(&ctx, m, bit, 0, &mut stats), h.eval(m, bit, 0));
            }
            // Unpebbling move: must fall back to the full walk.
            if m != 0 {
                let low = 1u64 << m.trailing_zeros();
                assert_eq!(
                    h.eval_delta(&ctx, m & !low, 0, 0, &mut stats),
                    h.eval(m & !low, 0, 0)
                );
            }
        }
        assert!(stats.heur_delta_fast > 0, "fast path never taken");
        assert!(stats.heur_full_evals > 0, "fallback never taken");
    }

    #[test]
    fn delta_heuristic_handles_io_term_variants() {
        use crate::{CostModel, SppVariant};
        let dag = generators::chain(3);
        let inst = SppInstance {
            dag: &dag,
            r: 2,
            model: CostModel::spp_io_only(2),
            variant: SppVariant::hong_kung(),
        };
        let h = AdmissibleHeuristic::for_spp(&inst);
        let mut stats = PhaseStats::default();
        let ctx = h.prepare(0, 1 << 0, 0).expect("state is live");
        assert_eq!(ctx.h(), 4);
        // Hong–Kung variants carry I/O terms; the fast paths recompute
        // the load/store arithmetic from the cached needed set, so
        // every delta evaluation must still agree with eval.
        for red in 0u64..8 {
            for blue in 0u64..8 {
                assert_eq!(
                    h.eval_delta(&ctx, red, blue | 1, 0, &mut stats),
                    h.eval(red, blue | 1, 0)
                );
            }
        }
        // The only fallbacks are moves that pebble the sink (node 2)
        // without pebbling node 1: the cut check cannot certify that
        // node 1's membership proof avoided the sink.
        assert_eq!(stats.heur_delta_fast, 52);
        assert_eq!(stats.heur_full_evals, 12);
    }

    #[test]
    fn heuristic_one_shot_detects_dead_states() {
        let dag = generators::chain(2);
        let inst = SppInstance {
            dag: &dag,
            r: 2,
            model: crate::CostModel::spp_io_only(1),
            variant: crate::SppVariant::one_shot(),
        };
        let h = AdmissibleHeuristic::for_spp(&inst);
        // Node 0 computed then deleted without a store, sink unpebbled:
        // node 0 must be re-acquired but cannot be. Dead.
        assert_eq!(h.eval(0, 0, 1 << 0), None);
        // Same mask but node 0 still red: fine.
        assert!(h.eval(1 << 0, 0, 1 << 0).is_some());
    }
}
