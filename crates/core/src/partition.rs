//! Pluggable shard-ownership strategies for the parallel exact solver.
//!
//! The HDA\*-style engine in `driver.rs` assigns every canonical state
//! to an owning shard; successors generated on the wrong shard travel
//! over an SPSC ring. The original owner function was a pure hash of
//! the packed key — perfectly balanced, but with `T` shards a fraction
//! `(T-1)/T` of all successors is foreign, so the search becomes
//! communication-bound. A [`PartitionMode`] selects how ownership is
//! derived instead:
//!
//! - [`PartitionMode::Hash`] — the original fastrange hash. Best load
//!   balance, worst locality; the baseline every other mode is measured
//!   against.
//! - [`PartitionMode::Bands`] — progress projection: the owner is a
//!   function of the highest topological level holding a pebble.
//!   Successors of a state usually stay within the same band (computes
//!   deep in the DAG, loads, stores), so most traffic disappears, while
//!   the band sweep hands work from shard to shard as the search
//!   advances through the DAG.
//! - [`PartitionMode::Anchors`] — abstraction projection in the HDA\*
//!   tradition: a small set of structurally important *anchor* nodes is
//!   chosen once per instance ([`rbp_dag::analysis::anchor_nodes`]),
//!   and the owner is a function of the pebbled-node-set restricted to
//!   the anchors' durable (blue) component. Blue pebbles are never
//!   deleted by the normalized solvers, so the projection is monotone
//!   along every path: only the store step that first blues an anchor
//!   crosses shards, and every other rule application stays local.
//!
//! All three are pure functions of the *canonical* key (plus the
//! instance), so ownership is total, stable across repeated calls, and
//! — because canonicalization sorts the per-processor red masks before
//! the driver ever sees a key — invariant under processor permutation.
//! That invariance is what keeps the distributed termination proof and
//! the duplicate-detection arena sound under every mode.

use std::str::FromStr;

use crate::arena::shard_of;

/// Shard-ownership strategy for the parallel exact solver (the
/// `--partition` knob). See the module docs for when each mode wins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionMode {
    /// Fastrange hash of the packed canonical key (the pre-partition
    /// behavior): best balance, no locality.
    #[default]
    Hash,
    /// Topological-band progress projection: owner follows the deepest
    /// pebbled level.
    Bands,
    /// Anchor-set abstraction projection: owner follows the blue pebbles
    /// on a few high-degree anchor nodes.
    Anchors,
}

impl PartitionMode {
    /// Every mode, in the order CLI help and sweeps enumerate them.
    pub const ALL: [PartitionMode; 3] = [
        PartitionMode::Hash,
        PartitionMode::Bands,
        PartitionMode::Anchors,
    ];

    /// Lowercase token used by the CLI, the serve API, and traces.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            PartitionMode::Hash => "hash",
            PartitionMode::Bands => "bands",
            PartitionMode::Anchors => "anchors",
        }
    }
}

impl FromStr for PartitionMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "hash" => Ok(PartitionMode::Hash),
            "bands" => Ok(PartitionMode::Bands),
            "anchors" => Ok(PartitionMode::Anchors),
            other => Err(format!(
                "unknown partition mode '{other}' (expected hash, bands, or anchors)"
            )),
        }
    }
}

impl std::fmt::Display for PartitionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A built ownership function: [`PartitionMode`] plus the per-instance
/// tables it projects through. Built once per solve and shared
/// read-only by every worker. Re-exported through [`crate::engine`] so
/// external [`crate::engine::Domain`] implementations can route their
/// canonical states through the same structure-aware projections.
#[derive(Debug)]
pub struct Partition {
    mode: PartitionMode,
    /// `Bands`: topological level of each node.
    level: Vec<u32>,
    /// `Bands`: number of levels (`max(level) + 1`), at least 1.
    depth: u32,
    /// `Anchors`: bit positions of the anchor nodes (ascending).
    anchors: Vec<u32>,
}

impl Partition {
    /// Builds the ownership tables for `mode` over `dag` with `shards`
    /// worker shards. Cheap for `Hash`; one topological pass otherwise.
    pub fn build(mode: PartitionMode, dag: &rbp_dag::Dag, shards: usize) -> Self {
        let mut p = Partition {
            mode,
            level: Vec::new(),
            depth: 1,
            anchors: Vec::new(),
        };
        match mode {
            PartitionMode::Hash => {}
            PartitionMode::Bands => {
                let topo = dag.topo();
                p.level = dag.nodes().map(|v| topo.level(v) as u32).collect();
                p.depth = topo.depth().max(1) as u32;
            }
            PartitionMode::Anchors => {
                // ceil(log2(shards)) anchors give exactly `shards`
                // projection cells when shards is a power of two; more
                // anchors would split stores across shards more often
                // (worse locality) for balance the speculative expander
                // already provides.
                let want = usize::BITS - (shards.max(2) - 1).leading_zeros();
                let want = (want as usize).clamp(1, 6);
                p.anchors = rbp_dag::analysis::anchor_nodes(dag, want)
                    .into_iter()
                    .map(|v| v.index() as u32)
                    .collect();
            }
        }
        p
    }

    /// The owning shard of the canonical state `(red_all, blue)` whose
    /// packed-key hash is `hash`. Total (`< shards`) and a pure function
    /// of its arguments.
    #[inline]
    pub fn owner(&self, red_all: u64, blue: u64, hash: u64, shards: usize) -> usize {
        match self.mode {
            PartitionMode::Hash => shard_of(hash, shards),
            PartitionMode::Bands => {
                let pebbled = red_all | blue;
                if pebbled == 0 {
                    return 0;
                }
                let mut band = 0u32;
                let mut m = pebbled;
                while m != 0 {
                    let i = m.trailing_zeros() as usize;
                    m &= m - 1;
                    band = band.max(self.level[i]);
                }
                (band as usize * shards) / self.depth as usize
            }
            PartitionMode::Anchors => {
                if self.anchors.is_empty() {
                    return 0;
                }
                let mut cell = 0usize;
                for (i, &a) in self.anchors.iter().enumerate() {
                    cell |= ((blue >> a & 1) as usize) << i;
                }
                (cell * shards) >> self.anchors.len()
            }
        }
    }

    /// The anchor nodes this partition projects through (empty unless
    /// mode is `Anchors`). Exposed for traces and tests.
    #[cfg(test)]
    pub fn anchor_bits(&self) -> &[u32] {
        &self.anchors
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arena::hash_words;
    use rbp_dag::generators;

    fn grid() -> rbp_dag::Dag {
        generators::grid(2, 4)
    }

    /// Ownership is total (always `< shards`) and stable (same inputs,
    /// same shard, across repeated calls and rebuilt partitions).
    #[test]
    fn ownership_total_and_stable_across_modes() {
        let dag = grid();
        let n = dag.n();
        for mode in PartitionMode::ALL {
            for shards in [2usize, 3, 4, 8] {
                let p = Partition::build(mode, &dag, shards);
                let q = Partition::build(mode, &dag, shards);
                for seed in 0..512u64 {
                    let red = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) & ((1 << n) - 1);
                    let blue = seed.wrapping_mul(0xd134_2543_de82_ef95) & ((1 << n) - 1);
                    let h = hash_words(&[red, blue]);
                    let o = p.owner(red, blue, h, shards);
                    assert!(o < shards, "{mode} shards={shards}: owner {o} out of range");
                    assert_eq!(o, p.owner(red, blue, h, shards), "{mode}: unstable");
                    assert_eq!(o, q.owner(red, blue, h, shards), "{mode}: build-dependent");
                }
            }
        }
    }

    /// The anchors projection depends only on the canonical `(red_all,
    /// blue)` masks: permuting which processor holds which red pebble
    /// (same union) never moves the state to a different shard.
    #[test]
    fn anchors_invariant_under_processor_permutation() {
        let dag = grid();
        let p = Partition::build(PartitionMode::Anchors, &dag, 4);
        // Two processors holding {0,1} ∪ {4,5} in either assignment:
        // the canonical key packs the same red union either way.
        let red_all = 0b11_0011u64;
        for blue in [0u64, 0b1000, 0b1100_0000] {
            let h1 = hash_words(&[red_all, blue, 1]);
            let h2 = hash_words(&[red_all, blue, 2]); // different raw packing
            assert_eq!(
                p.owner(red_all, blue, h1, 4),
                p.owner(red_all, blue, h2, 4),
                "anchors owner must ignore the hash entirely"
            );
        }
    }

    /// Anchors: only blue transitions on anchor nodes move ownership;
    /// red churn (the high-frequency move class) never does.
    #[test]
    fn anchors_ignore_red_churn() {
        let dag = grid();
        let p = Partition::build(PartitionMode::Anchors, &dag, 4);
        assert!(!p.anchor_bits().is_empty());
        let blue = 1u64 << p.anchor_bits()[0];
        let base = p.owner(0, blue, 0, 4);
        for red in 0..(1u64 << dag.n().min(8)) {
            assert_eq!(p.owner(red, blue, hash_words(&[red]), 4), base);
        }
    }

    /// Bands: deepening the pebbled frontier moves ownership forward
    /// monotonically, and the deepest band maps to the last shard.
    #[test]
    fn bands_follow_topological_progress() {
        let dag = generators::chain(8); // level(i) = i, depth 8
        let shards = 4;
        let p = Partition::build(PartitionMode::Bands, &dag, shards);
        let mut prev = 0;
        for i in 0..8u64 {
            let o = p.owner(1 << i, 0, 0, shards);
            assert!(o >= prev, "band owner regressed at node {i}");
            prev = o;
        }
        assert_eq!(p.owner(0, 0, 0, shards), 0, "empty state owned by shard 0");
        assert_eq!(p.owner(1 << 7, 0, 0, shards), shards - 1);
    }

    /// Every mode parses its own token and rejects junk.
    #[test]
    fn mode_tokens_round_trip() {
        for mode in PartitionMode::ALL {
            assert_eq!(mode.as_str().parse::<PartitionMode>(), Ok(mode));
            assert_eq!(mode.to_string(), mode.as_str());
        }
        assert!("fancy".parse::<PartitionMode>().is_err());
        assert_eq!(PartitionMode::default(), PartitionMode::Hash);
    }
}
