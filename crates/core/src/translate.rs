//! Lemma 5 machinery: simulating an MPP strategy on a single processor.
//!
//! Any `k`-processor strategy with per-processor memory `r` can be
//! executed by one processor with fast memory `k·r`: keep the union of
//! all shades in the single fast memory (with reference counts for
//! multiply-shaded nodes) and expand each parallel rule into at most `k`
//! sequential rules. Consequently an SPP I/O lower bound `L` at memory
//! `k·r` implies an MPP I/O-step lower bound `L/k` (Lemma 5) and a total
//! cost bound `g·L/k + n/k` (Corollary 1) — `rbp-bounds` applies this;
//! here we provide the constructive direction used to *test* it.

use std::collections::HashMap;

use rbp_dag::NodeId;

use crate::{
    MppInstance, MppMove, MppStrategy, Pebble, SppInstance, SppMove, SppStrategy, SppVariant,
};

/// Compiles an MPP strategy into an SPP strategy on fast memory `k·r`.
///
/// The result validates against `SppInstance { r: k·r, … }` and uses at
/// most `k` SPP I/O moves per MPP I/O step (the Lemma 5 simulation). The
/// input strategy itself is assumed valid for `instance` (validate it
/// first).
#[must_use]
pub fn mpp_to_spp(instance: &MppInstance, strategy: &MppStrategy) -> SppStrategy {
    // refcount[v] = number of shades currently holding a red pebble on v.
    // The SPP red set is exactly {v : refcount[v] > 0}; SPP moves are
    // emitted on 0→1 and 1→0 transitions.
    let mut refcount: HashMap<NodeId, usize> = HashMap::new();
    let mut blue = instance.dag.empty_set();
    let mut out = Vec::new();

    let add_red = |v: NodeId,
                   out: &mut Vec<SppMove>,
                   blue: &rbp_dag::NodeSet,
                   refcount: &mut HashMap<NodeId, usize>,
                   via_compute: bool| {
        let c = refcount.entry(v).or_insert(0);
        *c += 1;
        if *c == 1 {
            if via_compute {
                out.push(SppMove::Compute(v));
            } else {
                debug_assert!(blue.contains(v));
                out.push(SppMove::Load(v));
            }
        }
    };

    for mv in &strategy.moves {
        match mv {
            MppMove::Compute(batch) => {
                for &(_, v) in batch {
                    // A node computed simultaneously by several shades
                    // only needs one SPP compute; further shades just
                    // bump the refcount.
                    add_red(v, &mut out, &blue, &mut refcount, true);
                }
            }
            MppMove::Load(batch) => {
                for &(_, v) in batch {
                    add_red(v, &mut out, &blue, &mut refcount, false);
                }
            }
            MppMove::Store(batch) => {
                for &(_, v) in batch {
                    if blue.insert(v) {
                        out.push(SppMove::Store(v));
                    }
                }
            }
            MppMove::Remove(Pebble::Red(_, v)) => {
                let c = refcount.get_mut(v).expect("removing untracked red");
                *c -= 1;
                if *c == 0 {
                    refcount.remove(v);
                    out.push(SppMove::RemoveRed(*v));
                }
            }
            MppMove::Remove(Pebble::Blue(v)) => {
                if blue.remove(*v) {
                    out.push(SppMove::RemoveBlue(*v));
                }
            }
        }
    }
    SppStrategy::from_moves(out)
}

/// The SPP instance on which [`mpp_to_spp`] output validates: same DAG
/// and cost model, fast memory `k·r`, base variant.
#[must_use]
pub fn simulation_instance<'a>(instance: &MppInstance<'a>) -> SppInstance<'a> {
    SppInstance {
        dag: instance.dag,
        r: instance.k * instance.r,
        model: instance.model,
        variant: SppVariant::base(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{validate_mpp, MppSimulator};
    use rbp_dag::{dag_from_edges, generators};

    fn v(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn communication_pattern_translates() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 2, 2, 3);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0))]).unwrap();
        sim.store(vec![(0, v(0))]).unwrap();
        sim.load(vec![(1, v(0))]).unwrap();
        sim.remove_red(0, v(0)).unwrap();
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        let mpp_cost = validate_mpp(&inst, &run.strategy.moves).unwrap();

        let spp = mpp_to_spp(&inst, &run.strategy);
        let spp_inst = simulation_instance(&inst);
        assert_eq!(spp_inst.r, 4);
        let spp_cost = spp.validate(&spp_inst).unwrap();
        // Lemma 5 accounting: SPP I/O moves ≤ k × MPP I/O steps.
        assert!(spp_cost.io_steps() <= inst.k as u64 * mpp_cost.io_steps());
    }

    #[test]
    fn batched_moves_expand_to_at_most_k_sequential_moves() {
        let d = generators::independent_chains(2, 3);
        let inst = MppInstance::new(&d, 2, 2, 2);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0)), (1, v(3))]).unwrap();
        sim.compute(vec![(0, v(1)), (1, v(4))]).unwrap();
        sim.store(vec![(0, v(0)), (1, v(3))]).unwrap();
        sim.remove_red(0, v(0)).unwrap();
        sim.remove_red(1, v(3)).unwrap();
        sim.compute(vec![(0, v(2)), (1, v(5))]).unwrap();
        let run = sim.finish().unwrap();
        let mpp_cost = validate_mpp(&inst, &run.strategy.moves).unwrap();

        let spp = mpp_to_spp(&inst, &run.strategy);
        let spp_cost = spp.validate(&simulation_instance(&inst)).unwrap();
        assert!(spp_cost.io_steps() <= 2 * mpp_cost.io_steps());
        assert_eq!(spp_cost.computes, 6);
    }

    #[test]
    fn duplicate_shade_computes_collapse() {
        // Both procs compute the same source in one step → one SPP
        // compute, refcounted removals.
        let d = dag_from_edges(1, &[]);
        let inst = MppInstance::new(&d, 2, 1, 1);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0)), (1, v(0))]).unwrap();
        let run = sim.finish().unwrap();
        let spp = mpp_to_spp(&inst, &run.strategy);
        assert_eq!(spp.moves, vec![SppMove::Compute(v(0))]);
    }

    #[test]
    fn refcounted_removal_keeps_shared_value() {
        let d = dag_from_edges(2, &[(0, 1)]);
        let inst = MppInstance::new(&d, 2, 2, 1);
        let mut sim = MppSimulator::new(inst);
        sim.compute(vec![(0, v(0)), (1, v(0))]).unwrap();
        sim.remove_red(0, v(0)).unwrap(); // shade 0 drops; shade 1 keeps
        sim.compute(vec![(1, v(1))]).unwrap();
        let run = sim.finish().unwrap();
        let spp = mpp_to_spp(&inst, &run.strategy);
        // No RemoveRed emitted between the computes.
        assert_eq!(
            spp.moves,
            vec![SppMove::Compute(v(0)), SppMove::Compute(v(1))]
        );
        spp.validate(&simulation_instance(&inst)).unwrap();
    }

    #[test]
    fn memory_bound_kr_suffices_on_random_strategy() {
        // A dense little DAG exercised by the exact solver's witness.
        let d = generators::binary_in_tree(4);
        let inst = MppInstance::new(&d, 2, 3, 2);
        let sol = crate::solve_mpp(&inst, crate::SolveLimits::default()).unwrap();
        let spp = mpp_to_spp(&inst, &sol.strategy);
        spp.validate(&simulation_instance(&inst)).unwrap();
    }
}
